// E9 (ablation) -- designed templates vs random enumeration.
//
// DESIGN.md calls out the paper's central design choice: compare models
// with the small *designed* template suite instead of mass enumeration.
// This harness quantifies it: how much of the 90-model space's structure
// (equivalence classes; distinguishable pairs) is recovered by
//
//   * the Corollary-1 template suite (124 tests),
//   * the nine Figure-3 tests,
//   * random naive tests of increasing count,
//
// and at what admissibility-checking cost.
#include <cstdio>

#include "engine/verdict_engine.h"
#include "enumeration/naive.h"
#include "enumeration/suite.h"
#include "explore/cover.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace mcmc;

/// Number of equivalence classes and distinguishable pairs induced by a
/// verdict matrix.
struct Power {
  int classes = 0;
  std::size_t pairs = 0;
};

Power measure(const explore::AdmissibilityMatrix& matrix) {
  Power p;
  const int n = matrix.num_models();
  std::vector<int> cls(static_cast<std::size_t>(n), -1);
  for (int a = 0; a < n; ++a) {
    if (cls[static_cast<std::size_t>(a)] >= 0) continue;
    cls[static_cast<std::size_t>(a)] = p.classes;
    for (int b = a + 1; b < n; ++b) {
      if (cls[static_cast<std::size_t>(b)] < 0 &&
          matrix.compare(a, b) == explore::Relation::Equivalent) {
        cls[static_cast<std::size_t>(b)] = p.classes;
      }
    }
    ++p.classes;
  }
  p.pairs = explore::distinguishable_pairs(matrix).size();
  return p;
}

}  // namespace

int main() {
  std::printf("== E9 / ablation: designed templates vs random tests ==\n\n");

  const auto space = explore::model_space(true);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());

  util::Table table({"test set", "#tests", "equiv. classes (true: 82)",
                     "distinguished pairs (true: 3997)", "time (ms)"});

  // One engine across every test set: the Figure-3 tests alias suite
  // members canonically, so later matrices reuse cached verdicts.
  engine::VerdictEngine eng;
  auto add = [&](const std::string& label,
                 const std::vector<litmus::LitmusTest>& tests) {
    util::Timer timer;
    const explore::AdmissibilityMatrix matrix(eng, models, tests);
    const Power p = measure(matrix);
    table.add_row({label, std::to_string(tests.size()),
                   std::to_string(p.classes), std::to_string(p.pairs),
                   std::to_string(static_cast<long long>(timer.millis()))});
  };

  add("Corollary-1 template suite", enumeration::corollary1_suite(true));
  add("Figure-3 nine tests", litmus::figure3_tests());
  enumeration::NaiveOptions options;
  for (const int count : {50, 200, 1000}) {
    add("random naive x" + std::to_string(count),
        enumeration::sample_naive_tests(options, count, 7));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("engine totals: %s\n\n", eng.total_stats().to_string().c_str());
  std::printf(
      "Reading: random tests approach but do not reliably reach the true\n"
      "structure (the same-address write-read distinctions need the L8/L9\n"
      "shapes, which random programs rarely produce with the right\n"
      "outcome), while the designed 9..124-test sets recover it exactly\n"
      "at a fraction of the checking cost.\n");
  return 0;
}
