// E5 -- Section 3.4's test-count comparison.
//
// Regenerates the paper's reduction chain:
//
//   naive bounded enumeration      ~ a million tests
//   prior work (CAV 2010 style)    ~ thousands
//   this paper (Corollary 1)       230 with deps / 124 without
//
// Naive space: two threads, 1..3 memory accesses each, three addresses,
// optional fences; tests = programs x syntactically possible outcomes.
// The reduced baseline canonicalizes under address permutation and thread
// exchange and keeps communicating programs only.
//
// Every number derives from the streaming enumerator's generator core
// (enumeration/exhaustive.h): the full-space totals are its counting
// walk, and a bounded slice is drained through the materializing stream
// to verify that counted and materialized tests agree test for test.
// `--full` drains the whole ~5-million-test space instead (minutes).
#include <cstdio>
#include <cstring>

#include "peak_rss.h"

#include "enumeration/exhaustive.h"
#include "enumeration/naive.h"
#include "enumeration/suite.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mcmc;
  using namespace mcmc::enumeration;

  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  std::printf("== E5 / Section 3.4: how many litmus tests? ==\n\n");

  util::Timer timer;
  const NaiveCounts naive = count_naive(NaiveOptions{});
  const double naive_time = timer.seconds();

  util::Table table({"method", "programs", "tests", "note"});
  table.add_row({"naive enumeration", std::to_string(naive.programs),
                 std::to_string(naive.tests),
                 "paper: 'approximately million tests'"});
  table.add_row({"symmetry-reduced naive (cf. CAV'10)",
                 std::to_string(naive.reduced_programs),
                 std::to_string(naive.reduced_tests),
                 "paper: 'several thousands'"});
  table.add_row({"Corollary 1 bound (no deps)", "-",
                 std::to_string(corollary1_bound(false)), "paper: 124"});
  table.add_row({"Corollary 1 bound (with deps)", "-",
                 std::to_string(corollary1_bound(true)), "paper: 230"});
  table.add_row({"materialized template suite (no deps)", "-",
                 std::to_string(corollary1_suite(false).size()),
                 "address-compatible, non-degenerate"});
  table.add_row({"materialized template suite (with deps)", "-",
                 std::to_string(corollary1_suite(true).size()),
                 "address-compatible, non-degenerate"});
  std::printf("%s\n", table.to_string().c_str());

  const double improvement =
      static_cast<double>(naive.reduced_tests) /
      static_cast<double>(corollary1_bound(true));
  std::printf("Reduction vs symmetry-reduced baseline: %.0fx "
              "(paper: 'more than an order of magnitude').\n",
              improvement);
  std::printf("Naive-space counting walk: %.2fs for %lld programs.\n\n",
              naive_time, naive.programs);

  // ---- Counted vs materialized: drain the stream and compare. ----
  ExhaustiveOptions slice;
  if (!full) slice.bounds.max_accesses_per_thread = 2;
  const ExhaustiveCounts counted = ExhaustiveStream::count(slice);
  ExhaustiveStream stream(slice);
  timer.reset();
  engine::for_each_test(stream, [](const litmus::LitmusTest&) {});
  const double drain_time = timer.seconds();
  const bool agree = stream.emitted().programs == counted.programs &&
                     stream.emitted().tests == counted.tests;
  std::printf("Streamed %s space: materialized %lld programs / %lld tests "
              "in %.2fs (%.0f tests/s); counting walk says %lld / %lld: %s\n",
              full ? "FULL" : "2-access",
              stream.emitted().programs, stream.emitted().tests, drain_time,
              drain_time > 0
                  ? static_cast<double>(stream.emitted().tests) / drain_time
                  : 0.0,
              counted.programs, counted.tests,
              agree ? "agree" : "DISAGREE");
  // The stream is chunked and never resident: peak RSS must stay flat
  // even for the full 5.16M-test drain.
  const double rss = mcmc::bench::peak_rss_mb();
  if (rss >= 0) std::printf("Peak RSS: %.1f MB\n", rss);
  return agree ? 0 : 1;
}
