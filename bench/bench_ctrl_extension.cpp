// E10 (extension) -- control dependencies.
//
// The paper: "for a complete specification of RMO and Alpha, we need to
// add control dependencies, which were not implemented but are supported
// by our framework."  This harness implements that extension: it contrasts
// full RMO (with ControlDep) against the explored RMO variant (data deps
// only) and shows the branch-carrying litmus tests that separate them,
// plus the verdicts of every named model on those tests.
#include <cstdio>

#include "core/analysis.h"
#include "core/checker.h"
#include "litmus/catalog.h"
#include "models/zoo.h"
#include "util/table.h"

int main() {
  using namespace mcmc;

  std::printf("== E10 / extension: control dependencies ==\n\n");

  const auto tests = {litmus::ctrl_lb(), litmus::ctrl_mp(),
                      litmus::load_buffering(), litmus::message_passing()};
  const auto named = models::all_named_models();

  std::vector<std::string> header = {"test"};
  for (const auto& m : named) header.push_back(m.name());
  util::Table table(header);
  for (const auto& t : tests) {
    const core::Analysis an(t.program());
    std::vector<std::string> row = {t.name()};
    for (const auto& m : named) {
      row.push_back(core::is_allowed(an, m, t.outcome()) ? "allow"
                                                         : "forbid");
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.to_string().c_str());

  // The separation result.
  const auto rmo_full = models::rmo();
  const auto rmo_nc = models::rmo_no_ctrl();
  int separating = 0;
  for (const auto& t : litmus::full_catalog()) {
    const core::Analysis an(t.program());
    if (core::is_allowed(an, rmo_full, t.outcome()) !=
        core::is_allowed(an, rmo_nc, t.outcome())) {
      ++separating;
      std::printf("separates RMO from RMO-noctrl: %s\n", t.name().c_str());
    }
  }
  std::printf("\n%d catalog tests separate the variants; all carry a "
              "branch (ControlDep is invisible without one).\n",
              separating);
  return 0;
}
