// E7 -- the empirical Theorem-1 / Corollary-1 equivalence run.
//
// Streams the *entire* naive bounded space (Section 3.4; ~5.16 million
// tests at the default bounds) through the VerdictEngine in fixed-size
// chunks — never materializing it — and builds the 90x90 model-pair
// distinguishability matrix it induces.  That matrix is compared bit
// for bit against the one induced by the paper's Corollary-1 suite:
// Theorem 1 claims the tiny suite distinguishes every model pair the
// million-test space distinguishes.
//
// Also reports the symmetry reduction measured by the canonical-key
// machinery (thread exchange x location renaming x value renaming):
// streamed tests vs canonical classes actually evaluated.
//
// Flags:
//   --max-accesses N    accesses per thread (default 3 = the full space)
//   --locations N       locations (default 3)
//   --no-fences         drop the optional fences
//   --with-deps         extend the space with dependency-carrying slots
//                       (data-dep reads/writes and ctrl-dep branches
//                       after a read; ~25.4M tests at default bounds);
//                       the streamed matrix is then compared against
//                       the *with-dep* Corollary-1 suite, and with
//                       --json a no-dep baseline pass additionally
//                       reports the keys-stage cost ratio
//   --chunk N           tests per chunk (default 4096)
//   --threads N         engine threads (default: hardware concurrency)
//   --backend B         explicit | sat | adaptive (default: adaptive)
//   --shards N          dedup-set mutex stripes (default 64)
//   --no-filter         disable the monotone-extremes prefilter
//   --no-overlap        disable producer-thread chunk prefetching
//   --audit             collision-audit the hash-based dedup (more RAM)
//   --verify-serial     re-run single-threaded, require a bit-for-bit
//                       identical distinguishability matrix
//   --progress N        print chunk stats every N chunks (default 64)
//   --json FILE         also write the run summary (bounds, counts,
//                       stage breakdown, throughput, matrix outcome) as
//                       JSON; BENCH_exhaustive.json in the repo root is
//                       a committed snapshot of a full-space run
//   --store FILE        persistent verdict store: verdicts load from and
//                       commit to FILE (crash-safe; see README
//                       "Persistence guarantees")
//   --resume            continue an interrupted run from the checkpoint
//                       in --store (no-op when none is present)
//   --checkpoint-every N  seal a checkpoint every N chunks (default 64)
//   --require-store-hit-rate R  exit nonzero unless the store served at
//                       least fraction R of all probed verdict cells
//                       (CI's warm-store regression gate)
//   --kill-after-seals N  testing hook: abort the stream right after its
//                       N-th checkpoint commit, leaving exactly the file
//                       a SIGKILL would; rerun with --resume to continue
//
// With non-default bounds the streamed space is a strict sub-space, so
// containment (naive <= suite) is checked instead of equality.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "peak_rss.h"

#include "engine/verdict_engine.h"
#include "enumeration/exhaustive.h"
#include "enumeration/suite.h"
#include "explore/distinguish.h"
#include "explore/space.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mcmc;

  enumeration::ExhaustiveOptions opts;
  opts.chunk_size = 4096;
  opts.track_program_classes = true;
  engine::EngineOptions engine_options;
  explore::TheoremHarnessOptions harness;
  long progress_every = 64;
  bool verify_serial = false;
  std::string json_path;
  std::string store_path;
  bool resume = false;
  long checkpoint_every = 64;
  double require_hit_rate = -1.0;
  long kill_after_seals = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_arg = [&](long lo, long hi, long& out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < lo || v > hi) return false;
      out = v;
      return true;
    };
    long v = 0;
    if (arg == "--max-accesses" && int_arg(1, 4, v)) {
      opts.bounds.max_accesses_per_thread = static_cast<int>(v);
    } else if (arg == "--locations" && int_arg(1, 4, v)) {
      opts.bounds.num_locations = static_cast<int>(v);
    } else if (arg == "--no-fences") {
      opts.bounds.fences = false;
    } else if (arg == "--with-deps") {
      opts.bounds.deps = true;
    } else if (arg == "--chunk" && int_arg(1, 1 << 20, v)) {
      opts.chunk_size = static_cast<int>(v);
    } else if (arg == "--threads" && int_arg(0, 4096, v)) {
      engine_options.num_threads = static_cast<int>(v);
    } else if (arg == "--backend" && i + 1 < argc) {
      if (!engine::parse_backend(argv[++i], engine_options.backend)) {
        std::fprintf(stderr, "unknown backend '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--shards" && int_arg(1, 1 << 16, v)) {
      harness.stream.dedup_shards = static_cast<int>(v);
    } else if (arg == "--no-filter") {
      harness.filter_extremes = false;
    } else if (arg == "--no-overlap") {
      harness.stream.overlap_production = false;
    } else if (arg == "--audit") {
      harness.stream.audit_dedup_keys = true;
    } else if (arg == "--verify-serial") {
      verify_serial = true;
    } else if (arg == "--progress" && int_arg(1, 1 << 20, v)) {
      progress_every = v;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--checkpoint-every" && int_arg(1, 1 << 20, v)) {
      checkpoint_every = v;
    } else if (arg == "--require-store-hit-rate" && i + 1 < argc) {
      char* end = nullptr;
      require_hit_rate = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || require_hit_rate < 0.0 ||
          require_hit_rate > 1.0) {
        std::fprintf(stderr, "bad hit rate '%s' (want [0, 1])\n", argv[i]);
        return 2;
      }
    } else if (arg == "--kill-after-seals" && int_arg(1, 1 << 20, v)) {
      kill_after_seals = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--max-accesses N] [--locations N] [--no-fences]"
                   " [--with-deps]"
                   " [--chunk N] [--threads N] [--backend B] [--shards N]"
                   " [--no-filter] [--no-overlap] [--audit] [--verify-serial]"
                   " [--progress N] [--json FILE] [--store FILE] [--resume]"
                   " [--checkpoint-every N] [--require-store-hit-rate R]"
                   " [--kill-after-seals N]\n",
                   argv[0]);
      return 2;
    }
  }

  const bool full_space = opts.bounds.max_accesses_per_thread == 3 &&
                          opts.bounds.num_locations == 3 && opts.bounds.fences;

  std::printf("== E7: streamed naive space vs the Corollary-1 suite ==\n\n");
  const auto expected = enumeration::ExhaustiveStream::count(opts);
  std::printf("space: %lld programs, %lld tests (chunks of %d)\n\n",
              expected.programs, expected.tests, opts.chunk_size);

  // ---- The suite-induced matrices. ----
  const auto space = explore::model_space(true);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());
  engine::VerdictEngine eng(engine_options);

  // ---- Persistent verdict store (optional). ----
  const store::StoreMeta store_meta = explore::harness_store_meta(models);
  const util::Key128 zoo_fp = store_meta.zoo_fingerprint();
  std::unique_ptr<store::VerdictStore> vstore;
  store::OpenOutcome store_outcome = store::OpenOutcome::Fresh;
  store::StreamPersistence persistence;
  if (!store_path.empty()) {
    auto opened = store::VerdictStore::open(store_path, store_meta);
    store_outcome = opened.outcome;
    vstore = std::move(opened.store);
    std::printf("store: %s -- %s, %zu entries%s%s\n", store_path.c_str(),
                store::to_string(store_outcome).c_str(), vstore->size(),
                opened.detail.empty() ? "" : ": ",
                opened.detail.c_str());
    eng.set_store(vstore.get());
    harness.verdict_store = vstore.get();
    persistence.path = store_path;
    persistence.checkpoint_every_chunks = static_cast<int>(checkpoint_every);
    persistence.resume = resume;
    persistence.kill_after_seals = static_cast<int>(kill_after_seals);
    harness.persistence = &persistence;
  }

  const auto suite_nodep = enumeration::corollary1_suite(false);
  const auto suite_dep = enumeration::corollary1_suite(true);
  const auto by_suite_nodep =
      explore::distinguishability(eng, models, suite_nodep);
  const auto by_suite_dep = explore::distinguishability(eng, models, suite_dep);

  // ---- The streamed naive-space matrix. ----
  enumeration::ExhaustiveStream stream(opts);
  explore::TheoremHarnessReport report;
  // Program-class accounting runs behind the FIFO: the producer thread
  // only queues program copies, and this consumer-side tally hashes
  // them per chunk.  The tally rides the harness checkpoint through
  // the extra-sink hooks, so a killed-and-resumed run still reports
  // the full class count (absorb is idempotent across the replayed
  // boundary chunk).
  enumeration::ProgramClassTally program_tally;
  std::vector<core::Program> drained_programs;
  harness.save_extra_sink = [&](std::vector<std::uint64_t>& out) {
    program_tally.export_state(out);
  };
  harness.restore_extra_sink = [&](const std::vector<std::uint64_t>& data) {
    return program_tally.restore_state(data);
  };
  util::Timer timer;
  explore::DistinguishMatrix by_naive;
  try {
    by_naive = explore::distinguishability_streamed(
        eng, models, stream, harness, &report,
        [&](const engine::StreamChunkStats& cs) {
          stream.take_new_programs(drained_programs);
          program_tally.absorb(drained_programs);
          if ((cs.index + 1) % static_cast<std::size_t>(progress_every) != 0) {
            return;
          }
          std::printf("  chunk %5zu: streamed %zu novel %zu (dedup %.1f%%)"
                      " engine[%s]\n",
                      cs.index + 1, cs.streamed, cs.novel,
                      cs.streamed > 0
                          ? 100.0 * static_cast<double>(cs.duplicates) /
                                static_cast<double>(cs.streamed)
                          : 0.0,
                      cs.engine.to_string().c_str());
        });
  } catch (const store::StreamInterrupted& interrupted) {
    std::printf("\nstream interrupted by test hook: %s\n", interrupted.what());
    std::printf("rerun with --store %s --resume to continue\n",
                store_path.c_str());
    return 3;
  }
  const double wall = timer.seconds();
  // The last chunk's programs may still be queued (the progress
  // callback has already fired for it by the time production ends).
  stream.take_new_programs(drained_programs);
  program_tally.absorb(drained_programs);

  std::printf("\nstream: %s\n", report.stream.to_string().c_str());
  std::printf("pipeline stages: %s%s; dedup set: %d shards\n",
              report.stream.stages.to_string().c_str(),
              report.stream.overlapped ? " (produce overlapped with consume)"
                                       : "",
              report.stream.dedup_shards);
  std::printf("throughput: %.0f streamed tests/sec (%.1fs wall, %d threads)\n",
              wall > 0
                  ? static_cast<double>(report.stream.tests_streamed) / wall
                  : 0.0,
              wall, eng.effective_threads());
  if (harness.filter_extremes) {
    std::printf("extremes prefilter: %zu candidates / %zu filtered "
                "(sweep %.1fs [%s])\n",
                report.candidate_tests, report.filtered_tests,
                report.sweep_seconds, report.sweep.to_string().c_str());
  }
  double store_hit_rate = 0.0;
  if (vstore != nullptr) {
    const std::uint64_t probed = vstore->hits() + vstore->misses();
    store_hit_rate = probed > 0
                         ? static_cast<double>(vstore->hits()) /
                               static_cast<double>(probed)
                         : 0.0;
    std::printf("store: %zu entries, %llu/%llu probed cells served "
                "(hit rate %.4f)\n",
                vstore->size(),
                static_cast<unsigned long long>(vstore->hits()),
                static_cast<unsigned long long>(probed), store_hit_rate);
  }
  const double rss = bench::peak_rss_mb();
  if (rss >= 0) std::printf("peak RSS: %.1f MB\n", rss);

  // ---- Symmetry reduction measured by the canonical-key machinery. ----
  const long long canonical_tests =
      static_cast<long long>(report.stream.novel_tests);
  std::printf("\nsymmetry reduction (canonical keys): %lld tests -> %lld "
              "classes (%.1fx); %lld programs -> %lld classes (%.1fx)\n",
              report.stream.tests_streamed > 0
                  ? static_cast<long long>(report.stream.tests_streamed)
                  : 0LL,
              canonical_tests,
              canonical_tests > 0
                  ? static_cast<double>(report.stream.tests_streamed) /
                        static_cast<double>(canonical_tests)
                  : 0.0,
              stream.emitted().programs, program_tally.count(),
              program_tally.count() > 0
                  ? static_cast<double>(stream.emitted().programs) /
                        static_cast<double>(program_tally.count())
                  : 0.0);

  // ---- The Theorem-1 comparison. ----
  util::Table table({"corpus", "tests", "distinguished pairs (of 4005)"});
  table.add_row({"naive space (streamed)",
                 std::to_string(report.stream.tests_streamed),
                 std::to_string(by_naive.distinguished_pairs())});
  table.add_row({"Corollary-1 suite, no deps",
                 std::to_string(suite_nodep.size()),
                 std::to_string(by_suite_nodep.distinguished_pairs())});
  table.add_row({"Corollary-1 suite, with deps",
                 std::to_string(suite_dep.size()),
                 std::to_string(by_suite_dep.distinguished_pairs())});
  std::printf("\n%s\n", table.to_string().c_str());

  // With deps the streamed space contains dependency tests the no-dep
  // suite cannot match, so the comparison target is the with-dep suite.
  const auto& by_suite_target =
      opts.bounds.deps ? by_suite_dep : by_suite_nodep;
  const char* target_name =
      opts.bounds.deps ? "with-dep suite" : "no-dep suite";
  bool ok = true;
  bool theorem_identical = false;
  if (full_space) {
    const bool equal = by_naive == by_suite_target;
    theorem_identical = equal;
    std::printf("naive space vs %s, bit for bit: %s\n", target_name,
                equal ? "IDENTICAL (Theorem 1 holds empirically)"
                      : "MISMATCH");
    if (!equal) {
      for (const auto& [a, b] : by_naive.pairs_beyond(by_suite_target)) {
        std::printf("  naive-only pair: %s vs %s\n", space[a].name().c_str(),
                    space[b].name().c_str());
      }
      for (const auto& [a, b] : by_suite_target.pairs_beyond(by_naive)) {
        std::printf("  suite-only pair: %s vs %s\n", space[a].name().c_str(),
                    space[b].name().c_str());
      }
    }
    ok = ok && equal;
  } else {
    const bool subset = by_naive.subset_of(by_suite_target);
    std::printf("sub-space naive <= %s: %s\n", target_name,
                subset ? "holds" : "VIOLATED");
    ok = ok && subset;
  }
  const bool within_dep = by_naive.subset_of(by_suite_dep);
  std::printf("naive <= with-dep suite: %s\n",
              within_dep ? "holds" : "VIOLATED");
  ok = ok && within_dep;

  // ---- Dep keys-cost baseline: with deps on, measure the keys stage
  // of a plain no-dep stream (keys cost is model-independent, so two
  // probe models suffice) and report the per-test ratio.  The 2x
  // budget is reported, not gated — a loaded CI box must not flake the
  // nightly run. ----
  const double run_keys_ns = report.stream.keys_ns_per_test();
  double norun_keys_ns = 0.0;
  std::size_t nodep_baseline_tests = 0;
  double nodep_keys_seconds = 0.0;
  if (opts.bounds.deps && !json_path.empty()) {
    enumeration::ExhaustiveOptions base_opts = opts;
    base_opts.bounds.deps = false;
    base_opts.track_program_classes = false;
    enumeration::ExhaustiveStream base_stream(base_opts);
    engine::VerdictEngine base_eng(engine_options);
    const std::vector<core::MemoryModel> probes = {models[0], models[1]};
    engine::StreamOptions base_so = harness.stream;
    base_so.audit_dedup_keys = false;
    const auto base_stats =
        base_eng.run_stream(probes, base_stream, nullptr, base_so);
    norun_keys_ns = base_stats.keys_ns_per_test();
    nodep_baseline_tests = base_stats.tests_streamed;
    nodep_keys_seconds = base_stats.stages.keys;
    std::printf("\nkeys stage per test: dep space %.1f ns, no-dep baseline "
                "%.1f ns (ratio %.2fx, budget 2x)\n",
                run_keys_ns, norun_keys_ns,
                norun_keys_ns > 0 ? run_keys_ns / norun_keys_ns : 0.0);
  }

  // ---- The serial-vs-parallel determinism guard: the same stream run
  // on one thread, no producer overlap, must induce the identical
  // matrix bit for bit. ----
  if (verify_serial) {
    engine::EngineOptions serial_options = engine_options;
    serial_options.num_threads = 1;
    explore::TheoremHarnessOptions serial_harness = harness;
    serial_harness.stream.overlap_production = false;
    // The guard proves the parallel pipeline deterministic by full
    // recomputation — a store would let it serve answers instead of
    // deriving them.
    serial_harness.verdict_store = nullptr;
    serial_harness.persistence = nullptr;
    serial_harness.save_extra_sink = nullptr;
    serial_harness.restore_extra_sink = nullptr;
    engine::VerdictEngine serial_eng(serial_options);
    // The guard compares matrices and stream accounting; program-class
    // accounting is not re-run, so don't queue (and leak) copies.
    enumeration::ExhaustiveOptions serial_opts = opts;
    serial_opts.track_program_classes = false;
    enumeration::ExhaustiveStream serial_stream(serial_opts);
    util::Timer serial_timer;
    explore::TheoremHarnessReport serial_report;
    const auto by_serial = explore::distinguishability_streamed(
        serial_eng, models, serial_stream, serial_harness, &serial_report);
    const bool identical =
        by_serial == by_naive &&
        serial_report.stream.tests_streamed == report.stream.tests_streamed &&
        serial_report.stream.novel_tests == report.stream.novel_tests;
    std::printf("\nserial re-run (1 thread, no overlap): %.1fs, "
                "matrix + stream accounting vs parallel run: %s\n",
                serial_timer.seconds(),
                identical ? "IDENTICAL (bit for bit)" : "MISMATCH");
    ok = ok && identical;
  }

  // ---- The warm-store regression gate (CI reruns against the nightly
  // artifact and requires >= 99% of probed cells served). ----
  if (require_hit_rate >= 0.0) {
    const bool enough = vstore != nullptr && store_hit_rate >= require_hit_rate;
    std::printf("store hit-rate gate: %.4f >= %.4f: %s\n", store_hit_rate,
                require_hit_rate, enough ? "holds" : "VIOLATED");
    ok = ok && enough;
  }

  // ---- Machine-readable summary (committed snapshots live in the repo
  // root as BENCH_exhaustive.json). ----
  if (!json_path.empty()) {
    std::FILE* js = std::fopen(json_path.c_str(), "w");
    if (js == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    const auto& s = report.stream;
    std::fprintf(js, "{\n");
    std::fprintf(js, "  \"schema_version\": 3,\n");
    std::fprintf(js, "  \"zoo_fingerprint\": \"%016llx%016llx\",\n",
                 static_cast<unsigned long long>(zoo_fp.hi),
                 static_cast<unsigned long long>(zoo_fp.lo));
    std::fprintf(js,
                 "  \"bounds\": {\"max_accesses_per_thread\": %d, "
                 "\"num_locations\": %d, \"fences\": %s, \"deps\": %s},\n",
                 opts.bounds.max_accesses_per_thread,
                 opts.bounds.num_locations,
                 opts.bounds.fences ? "true" : "false",
                 opts.bounds.deps ? "true" : "false");
    std::fprintf(js, "  \"full_space\": %s,\n",
                 full_space ? "true" : "false");
    std::fprintf(js, "  \"chunk_size\": %d,\n", opts.chunk_size);
    std::fprintf(js, "  \"threads\": %d,\n", eng.effective_threads());
    std::fprintf(js, "  \"programs\": %lld,\n", stream.emitted().programs);
    std::fprintf(js, "  \"program_classes\": %lld,\n", program_tally.count());
    std::fprintf(js, "  \"tests_streamed\": %zu,\n", s.tests_streamed);
    std::fprintf(js, "  \"novel_tests\": %zu,\n", s.novel_tests);
    std::fprintf(js, "  \"duplicate_tests\": %zu,\n", s.duplicate_tests);
    std::fprintf(js, "  \"dedup_rate\": %.6f,\n", s.dedup_rate());
    std::fprintf(js, "  \"wall_seconds\": %.3f,\n", wall);
    std::fprintf(js, "  \"tests_per_second\": %.0f,\n",
                 wall > 0 ? static_cast<double>(s.tests_streamed) / wall : 0.0);
    std::fprintf(js,
                 "  \"stages_seconds\": {\"produce\": %.3f, \"keys\": %.3f, "
                 "\"dedup\": %.3f, \"verdict\": %.3f},\n",
                 s.stages.produce, s.stages.keys, s.stages.dedup,
                 s.stages.verdict);
    std::fprintf(js, "  \"keys_ns_per_test\": %.1f,\n", run_keys_ns);
    if (norun_keys_ns > 0.0) {
      std::fprintf(js,
                   "  \"nodep_baseline\": {\"tests_streamed\": %zu, "
                   "\"keys_seconds\": %.3f, \"keys_ns_per_test\": %.1f},\n",
                   nodep_baseline_tests, nodep_keys_seconds, norun_keys_ns);
      std::fprintf(js, "  \"keys_cost_ratio\": %.3f,\n",
                   run_keys_ns / norun_keys_ns);
      std::fprintf(js, "  \"keys_cost_within_2x\": %s,\n",
                   run_keys_ns <= 2.0 * norun_keys_ns ? "true" : "false");
    }
    std::fprintf(js, "  \"produce_overlapped\": %s,\n",
                 s.overlapped ? "true" : "false");
    std::fprintf(js, "  \"dedup_audit\": %s,\n",
                 harness.stream.audit_dedup_keys ? "true" : "false");
    std::fprintf(js, "  \"extremes_prefilter\": %s,\n",
                 harness.filter_extremes ? "true" : "false");
    std::fprintf(js, "  \"candidate_tests\": %zu,\n", report.candidate_tests);
    std::fprintf(js, "  \"sweep_seconds\": %.3f,\n", report.sweep_seconds);
    if (vstore != nullptr) {
      std::fprintf(js,
                   "  \"store\": {\"path\": \"%s\", \"outcome\": \"%s\", "
                   "\"resumed\": %s, \"entries\": %zu, \"hits\": %llu, "
                   "\"misses\": %llu, \"hit_rate\": %.6f},\n",
                   store_path.c_str(),
                   store::to_string(store_outcome).c_str(),
                   resume ? "true" : "false", vstore->size(),
                   static_cast<unsigned long long>(vstore->hits()),
                   static_cast<unsigned long long>(vstore->misses()),
                   store_hit_rate);
    } else {
      std::fprintf(js, "  \"store\": null,\n");
    }
    std::fprintf(js, "  \"distinguished_pairs\": {\"naive_stream\": %lld, "
                 "\"suite_nodep\": %lld, \"suite_dep\": %lld},\n",
                 static_cast<long long>(by_naive.distinguished_pairs()),
                 static_cast<long long>(by_suite_nodep.distinguished_pairs()),
                 static_cast<long long>(by_suite_dep.distinguished_pairs()));
    std::fprintf(js, "  \"theorem1_identical\": %s,\n",
                 theorem_identical ? "true" : "false");
    std::fprintf(js, "  \"peak_rss_mb\": %.1f,\n", bench::peak_rss_mb());
    std::fprintf(js, "  \"ok\": %s\n", ok ? "true" : "false");
    std::fprintf(js, "}\n");
    std::fclose(js);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
