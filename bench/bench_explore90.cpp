// E6 -- Section 4.2: exploring the space of memory models.
//
// Regenerates the exploration results: the 90-model space, the eight
// equivalent model pairs (all differing only in same-address write->read
// reordering), and summary statistics of the pairwise relations.
//
// The full 90-model x Corollary-1-suite sweep routes through the batched
// engine::VerdictEngine and is checked bit-for-bit against the serial
// seed path (per-cell core::is_allowed loop) it replaced, reporting the
// speedup plus the engine's cache / backend statistics.  When the
// prepared fast path is on (the default), a second cold engine sweep
// with the PR-1 per-cell path measures what the skeleton/overlay split
// and compiled reorder masks buy per cell, and the formula-evaluation
// ratio (per-cell-equivalent evals / evals actually run) is reported
// from the EngineStats counters.
//
// Flags:
//   --threads N      engine threads (default: hardware concurrency)
//   --backend B      explicit | sat | adaptive  (default: adaptive)
//   --no-cache       disable the verdict cache entirely
//   --no-canonical   keep the cache but use only exact structural keys
//   --no-prepared    use the PR-1 per-cell path in the main sweep
//   --skip-baseline  skip the serial reference sweep (and its check)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/analysis.h"
#include "core/checker.h"
#include "engine/verdict_engine.h"
#include "enumeration/suite.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

/// The seed's serial evaluation loop, kept verbatim as the reference:
/// one Analysis per test, then a per-cell core::is_allowed sweep.
mcmc::engine::BitMatrix serial_seed_sweep(
    const std::vector<mcmc::core::MemoryModel>& models,
    const std::vector<mcmc::litmus::LitmusTest>& tests) {
  using namespace mcmc;
  std::vector<core::Analysis> analyses;
  analyses.reserve(tests.size());
  for (const auto& t : tests) analyses.emplace_back(t.program());

  engine::BitMatrix bits(static_cast<int>(models.size()),
                         static_cast<int>(tests.size()));
  for (std::size_t m = 0; m < models.size(); ++m) {
    for (std::size_t t = 0; t < tests.size(); ++t) {
      if (core::is_allowed(analyses[t], models[m], tests[t].outcome(),
                           core::Engine::Explicit)) {
        bits.set(static_cast<int>(m), static_cast<int>(t), true);
      }
    }
  }
  return bits;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmc;

  engine::EngineOptions options;
  bool skip_baseline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      const long threads = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || threads < 0 || threads > 4096) {
        std::fprintf(stderr,
                     "--threads takes an integer in [0, 4096] (0 = hardware)"
                     ", got '%s'\n",
                     argv[i]);
        return 2;
      }
      options.num_threads = static_cast<int>(threads);
    } else if (arg == "--backend" && i + 1 < argc) {
      if (!engine::parse_backend(argv[++i], options.backend)) {
        std::fprintf(stderr, "unknown backend '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--no-cache") {
      options.cache_enabled = false;
    } else if (arg == "--no-canonical") {
      options.canonical_dedup = false;
    } else if (arg == "--no-prepared") {
      options.prepared = false;
    } else if (arg == "--skip-baseline") {
      skip_baseline = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--backend explicit|sat|adaptive]"
                   " [--no-cache] [--no-canonical] [--no-prepared]"
                   " [--skip-baseline]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== E6 / Section 4.2: the 90-model space ==\n\n");

  const auto space = explore::model_space(true);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());
  const auto suite = enumeration::corollary1_suite(true);

  double baseline_time = 0.0;
  engine::BitMatrix baseline_bits;
  if (!skip_baseline) {
    util::Timer baseline_timer;
    baseline_bits = serial_seed_sweep(models, suite);
    baseline_time = baseline_timer.seconds();
  }

  engine::VerdictEngine eng(options);
  util::Timer timer;
  const explore::AdmissibilityMatrix matrix(eng, models, suite);
  const double matrix_time = timer.seconds();

  bool bits_match = true;
  if (!skip_baseline) {
    bits_match = matrix.bits() == baseline_bits;
    std::printf("serial seed sweep: %.3fs   engine sweep: %.3fs   "
                "speedup: %.2fx   verdicts bit-for-bit: %s\n",
                baseline_time, matrix_time,
                matrix_time > 0 ? baseline_time / matrix_time : 0.0,
                bits_match ? "match" : "MISMATCH");
  } else {
    std::printf("engine sweep: %.3fs (baseline skipped)\n", matrix_time);
  }
  std::printf("engine [backend=%s]: %s\n\n",
              engine::to_string(options.backend).c_str(),
              matrix.build_stats().to_string().c_str());

  // ---- Prepared-vs-PR-1 per-cell cost: rerun the same cold sweep with
  // the per-cell core::is_allowed path and compare. ----
  if (options.prepared) {
    engine::EngineOptions pr1_options = options;
    pr1_options.prepared = false;
    engine::VerdictEngine pr1_engine(pr1_options);
    util::Timer pr1_timer;
    const explore::AdmissibilityMatrix pr1_matrix(pr1_engine, models, suite);
    const double pr1_time = pr1_timer.seconds();
    const bool pr1_match = pr1_matrix.bits() == matrix.bits();
    bits_match = bits_match && pr1_match;

    const auto& stats = matrix.build_stats();
    const std::size_t evals_run = stats.formula_evals;
    const std::size_t evals_equiv =
        stats.formula_evals + stats.formula_evals_saved;
    const double eval_ratio =
        evals_run > 0 ? static_cast<double>(evals_equiv) /
                            static_cast<double>(evals_run)
                      : 0.0;
    const std::size_t cells = stats.cells;
    std::printf("prepared vs PR-1 per-cell path (cold engines):\n");
    std::printf("  wall: prepared %.3fs vs PR-1 %.3fs   speedup: %.2fx   "
                "verdicts bit-for-bit: %s\n",
                matrix_time, pr1_time,
                matrix_time > 0 ? pr1_time / matrix_time : 0.0,
                pr1_match ? "match" : "MISMATCH");
    std::printf("  formula evals: %zu run vs %zu per-cell-equivalent "
                "(%.1fx fewer)\n",
                evals_run, evals_equiv, eval_ratio);
    std::printf("  per cell: prepared %.2fus vs PR-1 %.2fus   "
                "(rf enums saved %zu, skeletons reused %zu)\n\n",
                cells > 0 ? 1e6 * matrix_time / static_cast<double>(cells)
                          : 0.0,
                cells > 0 ? 1e6 * pr1_time / static_cast<double>(cells) : 0.0,
                stats.rf_enums_saved, stats.skeletons_reused);
  }

  int equivalent = 0;
  int ordered = 0;
  int incomparable = 0;
  util::Table equal_pairs({"pair", "shared digits (WW,RW,RR)", "WR digits"});
  for (int a = 0; a < matrix.num_models(); ++a) {
    for (int b = a + 1; b < matrix.num_models(); ++b) {
      switch (matrix.compare(a, b)) {
        case explore::Relation::Equivalent: {
          ++equivalent;
          const auto& ca = space[static_cast<std::size_t>(a)];
          const auto& cb = space[static_cast<std::size_t>(b)];
          equal_pairs.add_row(
              {ca.name() + " == " + cb.name(),
               std::to_string(ca.ww) + "," + std::to_string(ca.rw) + "," +
                   std::to_string(ca.rr),
               std::to_string(ca.wr) + " vs " + std::to_string(cb.wr)});
          break;
        }
        case explore::Relation::FirstWeaker:
        case explore::Relation::FirstStronger:
          ++ordered;
          break;
        case explore::Relation::Incomparable:
          ++incomparable;
          break;
      }
    }
  }

  std::printf("models: %zu   suite tests: %zu   matrix time: %.2fs\n\n",
              space.size(), suite.size(), matrix_time);
  std::printf("pairwise relations: %d equivalent (paper: 8), %d strictly "
              "ordered, %d incomparable\n\n",
              equivalent, ordered, incomparable);
  std::printf("Equivalent pairs (paper: all differ only in same-address "
              "write->read reordering):\n%s\n",
              equal_pairs.to_string().c_str());

  // Equivalence structurally explained: WR 0 vs 1 is undetectable exactly
  // when the L8 route (RR in {2,3,4}) and the L9 route (WW=1 and RW in
  // {3,4}) are both closed.
  int predicted = 0;
  for (const auto& c : space) {
    if (c.wr != 0) continue;
    const bool l8_route = c.rr >= 2;
    const bool l9_route = c.ww == 1 && c.rw >= 3;
    if (!l8_route && !l9_route) ++predicted;
  }
  std::printf("Structural prediction of undetectable WR pairs: %d "
              "(matches measured %d: %s)\n",
              predicted, equivalent,
              predicted == equivalent ? "yes" : "NO");
  return predicted == equivalent && bits_match ? 0 : 1;
}
