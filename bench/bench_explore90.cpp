// E6 -- Section 4.2: exploring the space of memory models.
//
// Regenerates the exploration results: the 90-model space, the eight
// equivalent model pairs (all differing only in same-address write->read
// reordering), and summary statistics of the pairwise relations.
#include <cstdio>

#include "enumeration/suite.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace mcmc;

  std::printf("== E6 / Section 4.2: the 90-model space ==\n\n");

  util::Timer timer;
  const auto space = explore::model_space(true);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());
  const auto suite = enumeration::corollary1_suite(true);
  const explore::AdmissibilityMatrix matrix(models, suite);
  const double matrix_time = timer.seconds();

  int equivalent = 0;
  int ordered = 0;
  int incomparable = 0;
  util::Table equal_pairs({"pair", "shared digits (WW,RW,RR)", "WR digits"});
  for (int a = 0; a < matrix.num_models(); ++a) {
    for (int b = a + 1; b < matrix.num_models(); ++b) {
      switch (matrix.compare(a, b)) {
        case explore::Relation::Equivalent: {
          ++equivalent;
          const auto& ca = space[static_cast<std::size_t>(a)];
          const auto& cb = space[static_cast<std::size_t>(b)];
          equal_pairs.add_row(
              {ca.name() + " == " + cb.name(),
               std::to_string(ca.ww) + "," + std::to_string(ca.rw) + "," +
                   std::to_string(ca.rr),
               std::to_string(ca.wr) + " vs " + std::to_string(cb.wr)});
          break;
        }
        case explore::Relation::FirstWeaker:
        case explore::Relation::FirstStronger:
          ++ordered;
          break;
        case explore::Relation::Incomparable:
          ++incomparable;
          break;
      }
    }
  }

  std::printf("models: %zu   suite tests: %zu   matrix time: %.2fs\n\n",
              space.size(), suite.size(), matrix_time);
  std::printf("pairwise relations: %d equivalent (paper: 8), %d strictly "
              "ordered, %d incomparable\n\n",
              equivalent, ordered, incomparable);
  std::printf("Equivalent pairs (paper: all differ only in same-address "
              "write->read reordering):\n%s\n",
              equal_pairs.to_string().c_str());

  // Equivalence structurally explained: WR 0 vs 1 is undetectable exactly
  // when the L8 route (RR in {2,3,4}) and the L9 route (WW=1 and RW in
  // {3,4}) are both closed.
  int predicted = 0;
  for (const auto& c : space) {
    if (c.wr != 0) continue;
    const bool l8_route = c.rr >= 2;
    const bool l9_route = c.ww == 1 && c.rw >= 3;
    if (!l8_route && !l9_route) ++predicted;
  }
  std::printf("Structural prediction of undetectable WR pairs: %d "
              "(matches measured %d: %s)\n",
              predicted, equivalent,
              predicted == equivalent ? "yes" : "NO");
  return predicted == equivalent ? 0 : 1;
}
