// E1 -- Figure 1: Test A under the named hardware models.
//
// Regenerates the paper's Figure 1 discussion: the outcome
// r1 = 0; r2 = 2; r3 = 0 is allowed under TSO/x86 (store-buffer
// forwarding lets T2 read its own Write Y early) and forbidden under SC
// and IBM370 (which orders same-address write->read pairs).
#include <cstdio>

#include "core/analysis.h"
#include "core/checker.h"
#include "litmus/catalog.h"
#include "models/zoo.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace mcmc;

  const auto test = litmus::test_a();
  std::printf("== E1 / Figure 1: litmus Test A ==\n\n%s\n",
              test.to_string().c_str());

  const core::Analysis an(test.program());
  util::Table table({"model", "must-not-reorder F", "Test A outcome",
                     "check time (us)"});
  for (const auto& model : models::all_named_models()) {
    util::Timer timer;
    const auto result = core::check(an, model, test.outcome());
    const double us = timer.seconds() * 1e6;
    table.add_row({model.name(), model.formula().to_string(),
                   result.allowed ? "ALLOWED" : "forbidden",
                   std::to_string(static_cast<long long>(us))});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Witness explanation under TSO, mirroring the figure's happens-before
  // sketch.
  const auto witness = core::check(an, models::tso(), test.outcome());
  if (witness.allowed) {
    std::printf("TSO witness linearization (one acyclic happens-before):\n");
    for (const auto e : witness.order) {
      const auto& ev = an.event(e);
      std::printf("  T%d: %s\n", ev.thread + 1,
                  core::to_string(*ev.instr).c_str());
    }
    std::printf(
        "\nNote the absence of a Write Y => Read Y (r2) edge: T2 reads its\n"
        "own buffered store early, exactly the forwarding the paper "
        "describes.\n");
  }
  return 0;
}
