// E2 -- Figure 2: the seven litmus-test templates.
//
// Regenerates the template statistics of Sections 3.2/3.4: per-case
// instantiation counts, the Theorem-1 size bounds (2 threads, <= 6 memory
// accesses), and one rendered example per case.
#include <cstdio>
#include <map>
#include <string>

#include "enumeration/segment.h"
#include "enumeration/suite.h"
#include "enumeration/templates.h"
#include "util/table.h"

int main() {
  using namespace mcmc;
  using namespace mcmc::enumeration;

  std::printf("== E2 / Figure 2: litmus test templates ==\n\n");

  for (const bool deps : {true, false}) {
    const auto breakdown = suite_breakdown(deps);
    util::Table table({"template (critical segment)", "instances"});
    table.add_row({"Case 1  read-write", std::to_string(breakdown.case1)});
    table.add_row({"Case 2  write-write", std::to_string(breakdown.case2)});
    table.add_row({"Case 3a read-read x write-write",
                   std::to_string(breakdown.case3a)});
    table.add_row({"Case 3b read-read x (write-read . read-write)",
                   std::to_string(breakdown.case3b)});
    table.add_row({"Case 4  write-read, different address",
                   std::to_string(breakdown.case4)});
    table.add_row({"Case 5a write-read same address + read-read",
                   std::to_string(breakdown.case5a)});
    table.add_row({"Case 5b write-read same address + read-write",
                   std::to_string(breakdown.case5b)});
    table.add_row({"total materialized", std::to_string(breakdown.total())});
    table.add_row({"Corollary 1 bound",
                   std::to_string(corollary1_bound(deps))});
    std::printf("%s data dependencies:\n%s\n", deps ? "WITH" : "WITHOUT",
                table.to_string().c_str());
  }

  // Size bounds across the whole suite.
  int max_accesses = 0;
  int max_threads = 0;
  for (const auto& t : corollary1_suite(true)) {
    max_accesses = std::max(max_accesses, t.program().num_memory_accesses());
    max_threads = std::max(max_threads, t.program().num_threads());
  }
  std::printf("Theorem 1 bounds over the suite: threads <= %d (bound 2), "
              "memory accesses <= %d (bound 6)\n\n",
              max_threads, max_accesses);

  // One example per case.
  const Segment rw_dep{SegType::RW, false, Interior::Dep};
  const Segment ww_diff{SegType::WW, false, Interior::None};
  const Segment rr_fence{SegType::RR, false, Interior::Fence};
  const Segment wr_diff{SegType::WR, false, Interior::None};
  const Segment wr_same{SegType::WR, true, Interior::None};
  const Segment rr_dep{SegType::RR, false, Interior::Dep};
  const Segment rw_dep2{SegType::RW, false, Interior::Dep};
  std::printf("-- example instantiations --\n\n");
  std::printf("%s\n", case1(rw_dep)->to_string().c_str());
  std::printf("%s\n", case2(ww_diff)->to_string().c_str());
  std::printf("%s\n", case3a(rr_fence, ww_diff)->to_string().c_str());
  std::printf("%s\n",
              case3b(rr_fence, wr_diff, rw_dep)->to_string().c_str());
  std::printf("%s\n", case4(wr_diff)->to_string().c_str());
  std::printf("%s\n", case5a(wr_same, rr_dep)->to_string().c_str());
  std::printf("%s\n", case5b(wr_same, rw_dep2)->to_string().c_str());
  return 0;
}
