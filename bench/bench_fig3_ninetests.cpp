// E3 -- Figure 3: the nine contrasting litmus tests L1..L9.
//
// Regenerates: (a) the verdict matrix of L1..L9 across the named hardware
// models, (b) the sufficiency claim -- the nine tests distinguish every
// non-equivalent pair among the 90 explored models, and (c) the minimum
// distinguishing-set size computed by exact set cover over the full
// Corollary-1 suite.
#include <cstdio>

#include "engine/verdict_engine.h"
#include "enumeration/suite.h"
#include "explore/cover.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "models/zoo.h"
#include "util/table.h"
#include "util/timer.h"

int main() {
  using namespace mcmc;

  std::printf("== E3 / Figure 3: the nine contrasting litmus tests ==\n\n");

  const auto nine = litmus::figure3_tests();
  for (const auto& t : nine) std::printf("%s\n", t.to_string().c_str());

  // One engine for the whole harness: the nine tests are canonical
  // members of the Corollary-1 suite, so the second matrix is largely
  // served from the verdict cache.
  engine::VerdictEngine eng;

  // (a) named-model verdicts, one batched matrix.
  const auto named = models::all_named_models();
  std::vector<std::string> header = {"test"};
  for (const auto& m : named) header.push_back(m.name());
  util::Table verdicts(header);
  const auto named_bits = eng.run_matrix(named, nine);
  for (std::size_t t = 0; t < nine.size(); ++t) {
    std::vector<std::string> row = {nine[t].name()};
    for (std::size_t m = 0; m < named.size(); ++m) {
      row.push_back(named_bits.get(static_cast<int>(m), static_cast<int>(t))
                        ? "allow"
                        : "forbid");
    }
    verdicts.add_row(row);
  }
  std::printf("Verdicts (allow = outcome observable):\n%s\n",
              verdicts.to_string().c_str());

  // (b) sufficiency over the 90-model space.
  util::Timer timer;
  const auto space = explore::model_space(true);
  std::vector<core::MemoryModel> space_models;
  for (const auto& c : space) space_models.push_back(c.to_model());
  const auto suite = enumeration::corollary1_suite(true);
  const explore::AdmissibilityMatrix full(eng, space_models, suite);
  const explore::AdmissibilityMatrix nine_matrix(eng, space_models, nine);
  std::printf("engine after both matrices: %s\n\n",
              eng.total_stats().to_string().c_str());
  const auto pairs = explore::distinguishable_pairs(full);
  std::size_t covered = 0;
  for (const auto& [a, b] : pairs) {
    for (int t = 0; t < nine_matrix.num_tests(); ++t) {
      if (nine_matrix.allowed(a, t) != nine_matrix.allowed(b, t)) {
        ++covered;
        break;
      }
    }
  }
  std::printf("Sufficiency: L1..L9 distinguish %zu / %zu non-equivalent "
              "model pairs of the 90-model space.\n",
              covered, pairs.size());

  // (c) minimality by exact set cover over the full suite.
  const auto greedy = explore::greedy_cover(full);
  const auto exact = explore::exact_minimum_cover(full);
  std::printf("Greedy cover over the %zu-test suite: %zu tests.\n",
              suite.size(), greedy.size());
  std::printf("Exact minimum cover: %zu tests (paper reports a sufficient "
              "set of 9).\n",
              exact.size());
  std::printf("Exact-cover members:\n");
  for (const int t : exact) {
    std::printf("  %s\n", suite[static_cast<std::size_t>(t)].name().c_str());
  }
  std::printf("Total analysis time: %.2fs\n", timer.seconds());
  return 0;
}
