// E4 -- Figure 4: the lattice of dependency-free models.
//
// Regenerates the figure: the 36 models without data dependencies
// collapse into 30 equivalence classes (six double-labeled nodes); edges
// run from weaker to stronger models, labeled with a distinguishing test
// from L1..L9.  Emits Graphviz DOT next to the textual rendering and
// spot-checks the orderings legible in the paper's figure.
#include <cstdio>
#include <fstream>

#include "engine/verdict_engine.h"
#include "explore/lattice.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "util/check.h"
#include "util/timer.h"

int main() {
  using namespace mcmc;

  std::printf("== E4 / Figure 4: relation between explored models "
              "(without data dependencies) ==\n\n");

  util::Timer timer;
  const auto space = explore::model_space(false);
  std::vector<core::MemoryModel> models;
  std::vector<std::string> names;
  for (const auto& c : space) {
    models.push_back(c.to_model());
    names.push_back(c.name());
  }
  const auto nine = litmus::figure3_tests();
  std::vector<std::string> test_names;
  for (const auto& t : nine) test_names.push_back(t.name());

  engine::VerdictEngine eng;
  const explore::AdmissibilityMatrix matrix(eng, models, nine);
  std::printf("engine: %s\n\n", matrix.build_stats().to_string().c_str());
  const auto lattice = explore::build_lattice(matrix, names, test_names);

  // Attach the hardware-model labels of the figure.
  auto annotate = [](const std::string& label) -> std::string {
    if (label.find("M4444") != std::string::npos) return label + "  (SC)";
    if (label.find("M4044") != std::string::npos) return label + "  (TSO, x86)";
    if (label.find("M1044") != std::string::npos) return label + "  (PSO)";
    if (label.find("M4144") != std::string::npos) return label + "  (IBM370)";
    if (label.find("M1010") != std::string::npos) return label + "  (RMO)";
    return label;
  };

  std::printf("%zu models -> %zu nodes (%d merged pairs)\n\n", space.size(),
              lattice.nodes.size(), [&] {
                int merged = 0;
                for (const auto& n : lattice.nodes) {
                  merged += n.members.size() == 2;
                }
                return merged;
              }());
  std::printf("Nodes:\n");
  for (const auto& n : lattice.nodes) {
    std::printf("  %s\n", annotate(n.label).c_str());
  }
  std::printf("\nHasse edges (weaker -> stronger [distinguishing test]):\n");
  for (const auto& e : lattice.edges) {
    std::printf("  %-14s -> %-14s [%s]\n",
                lattice.nodes[static_cast<std::size_t>(e.weaker)].label.c_str(),
                lattice.nodes[static_cast<std::size_t>(e.stronger)]
                    .label.c_str(),
                e.witness_name.c_str());
  }

  const std::string dot = lattice.to_dot();
  std::ofstream("fig4_lattice.dot") << dot;
  std::printf("\nGraphviz written to fig4_lattice.dot (%zu bytes).\n",
              dot.size());

  // Spot checks of relations legible in the paper's figure.
  auto idx = [&](const char* name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    MCMC_UNREACHABLE("model not found");
  };
  struct Expectation {
    const char* weaker;
    const char* stronger;
  };
  const Expectation expectations[] = {
      {"M1010", "M1044"},  // RMO below PSO
      {"M1044", "M4044"},  // PSO below TSO
      {"M4044", "M4144"},  // TSO below IBM370 (forwarding)
      {"M4144", "M4444"},  // IBM370 below SC
      {"M1010", "M4444"},  // RMO below SC
  };
  bool all_ok = true;
  for (const auto& e : expectations) {
    const auto r = matrix.compare(idx(e.weaker), idx(e.stronger));
    const bool ok = r == explore::Relation::FirstWeaker;
    all_ok = all_ok && ok;
    std::printf("check: %s < %s : %s\n", e.weaker, e.stronger,
                ok ? "ok" : "MISMATCH");
  }
  std::printf("\nFigure-4 spot checks %s; total %.2fs\n",
              all_ok ? "all passed" : "FAILED", timer.seconds());
  return all_ok ? 0 : 1;
}
