// Microbenchmark of the keys-stage primitives: what does one test cost
// to canonicalize, and what did the fingerprint rewrite buy?
//
// Four timed passes over the same prefix of the exhaustive stream:
//
//   analysis      full core::Analysis per test (legacy prerequisite)
//   key-facts     core::KeyFacts per test (fingerprint prerequisite)
//   string-key    Analysis + legacy canonical_key string
//   fingerprint   canonical_fingerprint (KeyFacts + 128-bit min-hash)
//
// plus the structural pair (structural_key vs structural_fingerprint).
// Each pass folds its results into a checksum so the work cannot be
// optimized away, and a final differential pass re-derives both keys
// and asserts fingerprint classes == string-key classes on the sample
// (exit status reflects it).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "peak_rss.h"

#include "core/analysis.h"
#include "core/key_facts.h"
#include "enumeration/exhaustive.h"
#include "litmus/test.h"
#include "util/hash128.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

struct Pass {
  const char* name;
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

double ns_per_test(const Pass& pass, std::size_t n) {
  return n == 0 ? 0.0 : pass.seconds * 1e9 / static_cast<double>(n);
}

std::string format(double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%s", v, suffix);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmc;

  std::size_t num_tests = 50000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tests") == 0 && i + 1 < argc) {
      num_tests = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }

  std::printf("== bench_keys: per-test cost of the keys stage ==\n\n");

  // ---- Materialize the sample: the first N tests of the full space. ----
  enumeration::ExhaustiveStream stream({});
  std::vector<litmus::LitmusTest> tests;
  tests.reserve(num_tests);
  std::vector<litmus::LitmusTest> chunk;
  while (tests.size() < num_tests && stream.next_chunk(chunk)) {
    for (auto& test : chunk) {
      if (tests.size() == num_tests) break;
      tests.push_back(std::move(test));
    }
    chunk.clear();
  }
  for (auto& test : chunk) {
    if (tests.size() == num_tests) break;
    tests.push_back(std::move(test));
  }
  std::printf("Sample: first %zu tests of the exhaustive stream.\n\n",
              tests.size());

  util::Timer timer;

  // ---- Prerequisites: Analysis vs KeyFacts. ----
  Pass analysis{"analysis (full)"};
  timer.reset();
  for (const auto& test : tests) {
    const core::Analysis an(test.program());
    analysis.checksum += static_cast<std::uint64_t>(an.num_events());
  }
  analysis.seconds = timer.seconds();

  Pass facts_pass{"key-facts (lean)"};
  core::KeyFacts facts;
  timer.reset();
  for (const auto& test : tests) {
    if (facts.build(test.program())) {
      facts_pass.checksum += static_cast<std::uint64_t>(facts.num_threads());
    }
  }
  facts_pass.seconds = timer.seconds();

  // ---- Canonical: legacy string key vs 128-bit fingerprint. ----
  Pass string_key{"canonical string key"};
  litmus::KeyScratch scratch;
  timer.reset();
  for (const auto& test : tests) {
    const core::Analysis an(test.program());
    const std::string& key =
        litmus::canonical_key(an, test.outcome(), scratch);
    string_key.checksum += key.size();
  }
  string_key.seconds = timer.seconds();

  Pass fingerprint{"canonical fingerprint"};
  timer.reset();
  for (const auto& test : tests) {
    fingerprint.checksum ^= litmus::canonical_fingerprint(test, scratch).lo;
  }
  fingerprint.seconds = timer.seconds();

  // ---- Structural: string vs fingerprint. ----
  Pass structural_string{"structural string key"};
  std::string structural_buf;
  timer.reset();
  for (const auto& test : tests) {
    litmus::structural_key(test, structural_buf);
    structural_string.checksum += structural_buf.size();
  }
  structural_string.seconds = timer.seconds();

  Pass structural_fp{"structural fingerprint"};
  timer.reset();
  for (const auto& test : tests) {
    structural_fp.checksum ^= litmus::structural_fingerprint(test).lo;
  }
  structural_fp.seconds = timer.seconds();

  const Pass* passes[] = {&analysis,   &facts_pass,        &string_key,
                          &fingerprint, &structural_string, &structural_fp};
  util::Table table({"pass", "total", "ns/test", "checksum"});
  for (const Pass* pass : passes) {
    table.add_row({pass->name, format(pass->seconds, "s"),
                   format(ns_per_test(*pass, tests.size()), ""),
                   std::to_string(pass->checksum)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Speedups: prerequisites %.1fx, canonical %.1fx, "
              "structural %.1fx.\n\n",
              facts_pass.seconds > 0 ? analysis.seconds / facts_pass.seconds
                                     : 0.0,
              fingerprint.seconds > 0 ? string_key.seconds / fingerprint.seconds
                                      : 0.0,
              structural_fp.seconds > 0
                  ? structural_string.seconds / structural_fp.seconds
                  : 0.0);

  // ---- Differential validation on the timed sample. ----
  bool ok = true;
  std::unordered_map<std::string, util::Key128> key_to_fp;
  std::unordered_map<util::Key128, std::string, util::Key128Hash> fp_to_key;
  for (const auto& test : tests) {
    const std::string key = litmus::canonical_key(test);
    const util::Key128 fp = litmus::canonical_fingerprint(test, scratch);
    const auto by_key = key_to_fp.emplace(key, fp);
    if (!by_key.second && !(by_key.first->second == fp)) ok = false;
    const auto by_fp = fp_to_key.emplace(fp, key);
    if (!by_fp.second && by_fp.first->second != key) ok = false;
  }
  std::printf("Differential: %zu string-key classes, %zu fingerprint "
              "classes: %s\n",
              key_to_fp.size(), fp_to_key.size(),
              ok && key_to_fp.size() == fp_to_key.size() ? "agree"
                                                         : "DISAGREE");
  const double rss = mcmc::bench::peak_rss_mb();
  if (rss >= 0) std::printf("Peak RSS: %.1f MB\n", rss);
  return ok && key_to_fp.size() == fp_to_key.size() ? 0 : 1;
}
