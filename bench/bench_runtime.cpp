// E7 -- Section 4.2 runtime claims, as google-benchmark microbenchmarks.
//
// The paper: "The comparison of each pair of models was done in a few
// seconds, and a pairwise comparison of all 90 models completed in 20
// minutes."  We measure: one admissibility check, one pairwise model
// comparison on the full suite, the full 90-model exploration via the
// admissibility matrix, and the SAT-vs-explicit engine ablation.
#include <benchmark/benchmark.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "enumeration/suite.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "models/zoo.h"

namespace {

using namespace mcmc;

const std::vector<litmus::LitmusTest>& suite() {
  static const auto s = enumeration::corollary1_suite(true);
  return s;
}

const std::vector<core::Analysis>& analyses() {
  static const auto a = [] {
    std::vector<core::Analysis> out;
    for (const auto& t : suite()) out.emplace_back(t.program());
    return out;
  }();
  return a;
}

void BM_SingleCheck_Explicit(benchmark::State& state) {
  const auto model = models::tso();
  const auto& t = litmus::test_a();
  const core::Analysis an(t.program());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::is_allowed(an, model, t.outcome(), core::Engine::Explicit));
  }
}
BENCHMARK(BM_SingleCheck_Explicit);

void BM_SingleCheck_Sat(benchmark::State& state) {
  const auto model = models::tso();
  const auto& t = litmus::test_a();
  const core::Analysis an(t.program());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::is_allowed(an, model, t.outcome(), core::Engine::Sat));
  }
}
BENCHMARK(BM_SingleCheck_Sat);

/// One pairwise model comparison over the full suite (the unit the paper
/// reports as "a few seconds").
void BM_PairwiseComparison(benchmark::State& state) {
  const auto a = explore::tso_choices().to_model();
  const auto b = explore::pso_choices().to_model();
  for (auto _ : state) {
    bool a_extra = false;
    bool b_extra = false;
    for (std::size_t t = 0; t < suite().size(); ++t) {
      const bool va =
          core::is_allowed(analyses()[t], a, suite()[t].outcome());
      const bool vb =
          core::is_allowed(analyses()[t], b, suite()[t].outcome());
      a_extra |= va && !vb;
      b_extra |= vb && !va;
    }
    benchmark::DoNotOptimize(a_extra);
    benchmark::DoNotOptimize(b_extra);
  }
}
BENCHMARK(BM_PairwiseComparison)->Unit(benchmark::kMillisecond);

/// The full exploration (the unit the paper reports as "20 minutes").
void BM_Full90ModelExploration(benchmark::State& state) {
  const auto space = explore::model_space(true);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());
  for (auto _ : state) {
    const explore::AdmissibilityMatrix matrix(models, suite());
    int equivalent = 0;
    for (int a = 0; a < matrix.num_models(); ++a) {
      for (int b = a + 1; b < matrix.num_models(); ++b) {
        equivalent +=
            matrix.compare(a, b) == explore::Relation::Equivalent;
      }
    }
    if (equivalent != 8) state.SkipWithError("expected 8 equivalent pairs");
  }
}
BENCHMARK(BM_Full90ModelExploration)->Unit(benchmark::kMillisecond);

/// Engine ablation across the whole suite x named models.
void BM_SuiteSweep(benchmark::State& state) {
  const auto engine = static_cast<core::Engine>(state.range(0));
  const auto named = models::all_named_models();
  for (auto _ : state) {
    int allowed = 0;
    for (std::size_t t = 0; t < suite().size(); ++t) {
      for (const auto& m : named) {
        allowed +=
            core::is_allowed(analyses()[t], m, suite()[t].outcome(), engine);
      }
    }
    benchmark::DoNotOptimize(allowed);
  }
}
BENCHMARK(BM_SuiteSweep)
    ->Arg(static_cast<int>(core::Engine::Sat))
    ->Arg(static_cast<int>(core::Engine::Explicit))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
