// E7 -- Section 4.2 runtime claims, as google-benchmark microbenchmarks.
//
// The paper: "The comparison of each pair of models was done in a few
// seconds, and a pairwise comparison of all 90 models completed in 20
// minutes."  We measure: one admissibility check, one pairwise model
// comparison on the full suite, the full 90-model exploration, and the
// SAT-vs-explicit engine ablation.  The sweeps route through the batched
// engine::VerdictEngine; the `_SerialBaseline` variants keep the seed's
// hand-rolled per-cell loop for comparison.  Engine sweeps run cold
// (fresh engine per iteration) and warm (persistent engine, so repeat
// iterations are pure cache hits).
#include <benchmark/benchmark.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/prepared.h"
#include "engine/verdict_engine.h"
#include "enumeration/suite.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "models/zoo.h"

namespace {

using namespace mcmc;

const std::vector<litmus::LitmusTest>& suite() {
  static const auto s = enumeration::corollary1_suite(true);
  return s;
}

const std::vector<core::Analysis>& analyses() {
  static const auto a = [] {
    std::vector<core::Analysis> out;
    for (const auto& t : suite()) out.emplace_back(t.program());
    return out;
  }();
  return a;
}

const std::vector<core::MemoryModel>& space_models() {
  static const auto m = [] {
    std::vector<core::MemoryModel> out;
    for (const auto& c : explore::model_space(true)) {
      out.push_back(c.to_model());
    }
    return out;
  }();
  return m;
}

void BM_SingleCheck_Explicit(benchmark::State& state) {
  const auto model = models::tso();
  const auto& t = litmus::test_a();
  const core::Analysis an(t.program());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::is_allowed(an, model, t.outcome(), core::Engine::Explicit));
  }
}
BENCHMARK(BM_SingleCheck_Explicit);

void BM_SingleCheck_Sat(benchmark::State& state) {
  const auto model = models::tso();
  const auto& t = litmus::test_a();
  const core::Analysis an(t.program());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::is_allowed(an, model, t.outcome(), core::Engine::Sat));
  }
}
BENCHMARK(BM_SingleCheck_Sat);

/// One prepared check (the per-cell unit of the prepared fast path):
/// rf maps and skeletons are hoisted, so an iteration is one compiled
/// mask + the allocation-free closure DFS.  Compare against
/// BM_SingleCheck_Explicit for the per-cell win.
void BM_SingleCheck_Prepared(benchmark::State& state) {
  const auto model = models::tso();
  const auto& t = litmus::test_a();
  const core::PreparedTest prep(t.program(), t.outcome());
  for (auto _ : state) {
    benchmark::DoNotOptimize(prep.allowed(model, core::Engine::Explicit));
  }
}
BENCHMARK(BM_SingleCheck_Prepared);

/// Building the prepared skeleton itself (analysis + rf enumeration +
/// per-rf skeletons): the one-off cost amortized across a model space.
void BM_PreparedTestBuild(benchmark::State& state) {
  const auto& t = litmus::test_a();
  for (auto _ : state) {
    const core::PreparedTest prep(t.program(), t.outcome());
    benchmark::DoNotOptimize(prep.skeletons().size());
  }
}
BENCHMARK(BM_PreparedTestBuild);

/// One pairwise model comparison over the full suite (the unit the paper
/// reports as "a few seconds"): pre-analyzed tests, per-cell checks, so
/// the number stays comparable to the seed and the paper's anchor.
void BM_PairwiseComparison(benchmark::State& state) {
  const auto a = explore::tso_choices().to_model();
  const auto b = explore::pso_choices().to_model();
  for (auto _ : state) {
    bool a_extra = false;
    bool b_extra = false;
    for (std::size_t t = 0; t < suite().size(); ++t) {
      const bool va = core::is_allowed(analyses()[t], a, suite()[t].outcome());
      const bool vb = core::is_allowed(analyses()[t], b, suite()[t].outcome());
      a_extra |= va && !vb;
      b_extra |= vb && !va;
    }
    benchmark::DoNotOptimize(a_extra);
    benchmark::DoNotOptimize(b_extra);
  }
}
BENCHMARK(BM_PairwiseComparison)->Unit(benchmark::kMillisecond);

/// The same comparison through a cold engine: includes engine setup,
/// per-batch analysis construction, and canonical-key minimization, so
/// it bounds the engine's fixed per-batch overhead rather than the
/// paper's unit.
void BM_PairwiseComparison_EngineCold(benchmark::State& state) {
  const std::vector<core::MemoryModel> pair = {
      explore::tso_choices().to_model(), explore::pso_choices().to_model()};
  for (auto _ : state) {
    engine::VerdictEngine eng;
    const explore::AdmissibilityMatrix matrix(eng, pair, suite());
    benchmark::DoNotOptimize(matrix.compare(0, 1));
  }
}
BENCHMARK(BM_PairwiseComparison_EngineCold)->Unit(benchmark::kMillisecond);

/// The full exploration (the unit the paper reports as "20 minutes"),
/// as the seed shipped it: serial per-cell loop.
void BM_Full90ModelExploration_SerialBaseline(benchmark::State& state) {
  for (auto _ : state) {
    int equivalent = 0;
    std::vector<std::vector<bool>> rows;
    for (const auto& model : space_models()) {
      std::vector<bool> row;
      for (std::size_t t = 0; t < suite().size(); ++t) {
        row.push_back(
            core::is_allowed(analyses()[t], model, suite()[t].outcome()));
      }
      rows.push_back(std::move(row));
    }
    for (std::size_t a = 0; a < rows.size(); ++a) {
      for (std::size_t b = a + 1; b < rows.size(); ++b) {
        equivalent += rows[a] == rows[b];
      }
    }
    if (equivalent != 8) state.SkipWithError("expected 8 equivalent pairs");
  }
}
BENCHMARK(BM_Full90ModelExploration_SerialBaseline)
    ->Unit(benchmark::kMillisecond);

int count_equivalent(const explore::AdmissibilityMatrix& matrix) {
  int equivalent = 0;
  for (int a = 0; a < matrix.num_models(); ++a) {
    for (int b = a + 1; b < matrix.num_models(); ++b) {
      equivalent += matrix.compare(a, b) == explore::Relation::Equivalent;
    }
  }
  return equivalent;
}

/// Engine sweep, cold: a fresh engine (empty cache) per iteration; the
/// range argument is the thread count (0 = hardware concurrency).
void BM_Full90ModelExploration_EngineCold(benchmark::State& state) {
  for (auto _ : state) {
    engine::EngineOptions options;
    options.num_threads = static_cast<int>(state.range(0));
    engine::VerdictEngine eng(options);
    const explore::AdmissibilityMatrix matrix(eng, space_models(), suite());
    if (count_equivalent(matrix) != 8) {
      state.SkipWithError("expected 8 equivalent pairs");
    }
  }
}
BENCHMARK(BM_Full90ModelExploration_EngineCold)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

/// The same cold sweep with the prepared fast path disabled (the PR-1
/// per-cell core::is_allowed loop), single-threaded: the direct
/// prepared-vs-PR-1 per-cell comparison.
void BM_Full90ModelExploration_EngineCold_PR1Path(benchmark::State& state) {
  for (auto _ : state) {
    engine::EngineOptions options;
    options.num_threads = 1;
    options.prepared = false;
    engine::VerdictEngine eng(options);
    const explore::AdmissibilityMatrix matrix(eng, space_models(), suite());
    if (count_equivalent(matrix) != 8) {
      state.SkipWithError("expected 8 equivalent pairs");
    }
  }
}
BENCHMARK(BM_Full90ModelExploration_EngineCold_PR1Path)
    ->Unit(benchmark::kMillisecond);

/// Engine sweep, warm: one persistent engine, so every iteration after
/// the first is served from the verdict cache.
void BM_Full90ModelExploration_EngineWarm(benchmark::State& state) {
  engine::VerdictEngine eng;
  for (auto _ : state) {
    const explore::AdmissibilityMatrix matrix(eng, space_models(), suite());
    if (count_equivalent(matrix) != 8) {
      state.SkipWithError("expected 8 equivalent pairs");
    }
  }
}
BENCHMARK(BM_Full90ModelExploration_EngineWarm)->Unit(benchmark::kMillisecond);

/// Engine ablation across the whole suite x named models, batched.
void BM_SuiteSweep(benchmark::State& state) {
  const auto backend = static_cast<engine::Backend>(state.range(0));
  const auto named = models::all_named_models();
  for (auto _ : state) {
    engine::EngineOptions options;
    options.backend = backend;
    engine::VerdictEngine eng(options);
    const auto bits = eng.run_matrix(named, suite());
    benchmark::DoNotOptimize(bits.rows());
  }
}
BENCHMARK(BM_SuiteSweep)
    ->Arg(static_cast<int>(engine::Backend::Sat))
    ->Arg(static_cast<int>(engine::Backend::Explicit))
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
