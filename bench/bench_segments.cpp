// E8 -- Section 3.3: the local-segment length bound.
//
// Regenerates the paper's special-fence construction: with n chained
// special fences f1..fn (each ordering only its chain neighbors), the
// models F1 = SameAddr | special and F2 = SameAddr agree on every test
// whose local segments are shorter than n+2 instructions and differ on
// the full-chain test, demonstrating that segment length is bounded by
// the number of instruction equivalence classes of the predicate set.
#include <cstdio>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/formula.h"
#include "core/model.h"
#include "models/special_fence.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace mcmc;

}  // namespace

int main() {
  std::printf("== E8 / Section 3.3: local segment length bound ==\n\n");
  std::printf("F1 = SameAddr | special(f1..fn chain), F2 = SameAddr.\n"
              "Cell shows F1/F2 verdict on the LB test whose read->write\n"
              "segment carries k fences; 'contrast' marks the first k\n"
              "where the models differ (paper: k = n, i.e. segment length "
              "n+2).\n\n");

  util::Table table({"n (chain)", "k=0", "k=1", "k=2", "k=3", "k=4",
                     "first contrast at", "time (ms)"});
  for (int n = 1; n <= 4; ++n) {
    const core::MemoryModel f1 = models::special_fence_chain(n);
    const core::MemoryModel f2 = models::same_addr_only();
    util::Timer timer;
    std::vector<std::string> row = {std::to_string(n)};
    int first_contrast = -1;
    for (int k = 0; k <= 4; ++k) {
      const auto t = models::lb_with_fence_chain(k);
      const core::Analysis an(t.program());
      const bool a1 = core::is_allowed(an, f1, t.outcome());
      const bool a2 = core::is_allowed(an, f2, t.outcome());
      row.push_back(std::string(a1 ? "A" : "F") + "/" + (a2 ? "A" : "F"));
      if (a1 != a2 && first_contrast < 0) first_contrast = k;
    }
    row.push_back(first_contrast < 0 ? "none <= 4"
                                     : "k=" + std::to_string(first_contrast));
    row.push_back(std::to_string(static_cast<long long>(timer.millis())));
    table.add_row(row);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Reading: A=allowed, F=forbidden.  F1 contrasts F2 exactly at "
              "k = n, so the\ncontrasting test needs a local segment of "
              "n+2 instructions -- the bound of\nSection 3.3 is tight for "
              "this predicate set.\n");
  return 0;
}
