// Peak resident set of the current process, shared by the bench
// harnesses that assert bounded-memory streaming.
#pragma once

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mcmc::bench {

/// Peak resident set of this process in MB, or a negative value when
/// the platform doesn't expose it.  Note ru_maxrss units differ: bytes
/// on macOS, kilobytes elsewhere.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return -1.0;
#endif
}

}  // namespace mcmc::bench
