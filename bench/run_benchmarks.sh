#!/usr/bin/env bash
# Runs the google-benchmark harness with machine-readable output so the
# repo accumulates a perf trajectory.
#
#   bench/run_benchmarks.sh [BUILD_DIR] [OUT_JSON]
#
# BUILD_DIR defaults to ./build, OUT_JSON to BENCH_runtime.json in the
# current directory.  The build must have been configured in Release
# (the default) with google-benchmark available; if bench_runtime was
# skipped at configure time this script reports that and exits 0 so CI
# smoke jobs degrade gracefully on hosts without the library.
#
# Extra arguments after the first two are forwarded to bench_runtime,
# e.g. --benchmark_filter=BM_SingleCheck or --benchmark_repetitions=3.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_runtime.json}"
shift $(( $# > 2 ? 2 : $# )) || true

BIN="$BUILD_DIR/bench_runtime"
if [[ ! -x "$BIN" ]]; then
  echo "run_benchmarks: $BIN not built (google-benchmark missing at" \
       "configure time?); skipping" >&2
  exit 0
fi

"$BIN" --benchmark_format=json --benchmark_out="$OUT_JSON" \
       --benchmark_out_format=json "$@"

echo "run_benchmarks: wrote $OUT_JSON"
