// Compare two memory models by name.
//
//   $ ./compare_models TSO SC
//   $ ./compare_models M1044 M4144
//   $ ./compare_models RMO Alpha
//
// Accepts the named hardware models (SC, TSO, x86, PSO, IBM370, RMO,
// Alpha) and any Figure-4 style digit name (M[ww][wr][rw][rr]).  Reports
// the relation induced by the bounded template suite -- which, by
// Theorem 1, decides equivalence for the whole class -- and prints the
// distinguishing tests in each direction.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/analysis.h"
#include "core/checker.h"
#include "engine/verdict_engine.h"
#include "enumeration/suite.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "models/zoo.h"

namespace {

std::optional<mcmc::core::MemoryModel> lookup(const std::string& name) {
  using namespace mcmc;
  if (name == "SC") return models::sc();
  if (name == "TSO") return models::tso();
  if (name == "x86") return models::x86();
  if (name == "PSO") return models::pso();
  if (name == "IBM370") return models::ibm370();
  if (name == "RMO") return models::rmo_no_ctrl();
  if (name == "Alpha") return models::alpha_variant();
  if (const auto c = explore::parse_model_name(name)) return c->to_model();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmc;
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s <model> <model>\n"
                 "models: SC TSO x86 PSO IBM370 RMO Alpha or M####\n",
                 argv[0]);
    return 2;
  }
  const auto a = lookup(argv[1]);
  const auto b = lookup(argv[2]);
  if (!a || !b) {
    std::fprintf(stderr, "unknown model '%s'\n", !a ? argv[1] : argv[2]);
    return 2;
  }

  std::printf("%s: F = %s\n%s: F = %s\n\n", a->name().c_str(),
              a->formula().to_string().c_str(), b->name().c_str(),
              b->formula().to_string().c_str());

  const auto suite = enumeration::corollary1_suite(true);
  engine::VerdictEngine eng;
  const explore::AdmissibilityMatrix matrix(eng, {*a, *b}, suite);
  const auto relation = matrix.compare(0, 1);
  switch (relation) {
    case explore::Relation::Equivalent:
      std::printf("EQUIVALENT: the models agree on all %zu suite tests;\n"
                  "by the small-litmus-test theorem they allow exactly the "
                  "same executions.\n",
                  suite.size());
      break;
    case explore::Relation::FirstWeaker:
      std::printf("%s is STRICTLY WEAKER than %s.\n", a->name().c_str(),
                  b->name().c_str());
      break;
    case explore::Relation::FirstStronger:
      std::printf("%s is STRICTLY STRONGER than %s.\n", a->name().c_str(),
                  b->name().c_str());
      break;
    case explore::Relation::Incomparable:
      std::printf("INCOMPARABLE: each model allows something the other "
                  "forbids.\n");
      break;
  }

  auto report = [&](int x, int y, const core::MemoryModel& mx,
                    const core::MemoryModel& my) {
    const auto only = matrix.allowed_by_first_only(x, y);
    if (only.empty()) return;
    std::printf("\nAllowed by %s, forbidden by %s (%zu tests), e.g.:\n",
                mx.name().c_str(), my.name().c_str(), only.size());
    std::printf("%s", suite[static_cast<std::size_t>(only[0])]
                          .to_string()
                          .c_str());
  };
  report(0, 1, *a, *b);
  report(1, 0, *b, *a);
  std::fprintf(stderr, "\n[engine %s]\n",
               matrix.build_stats().to_string().c_str());
  return 0;
}
