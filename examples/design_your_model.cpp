// Design a custom memory model and locate it in the explored space.
//
//   $ ./design_your_model
//
// Shows the workflow a memory-model designer would use: write a
// must-not-reorder formula for a hypothetical machine, then ask (a) which
// of the 90 catalogued models it is equivalent to, (b) where it sits
// between the named hardware models, and (c) which litmus tests separate
// it from its neighbors.
#include <cstdio>

#include "engine/verdict_engine.h"
#include "enumeration/suite.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "models/zoo.h"

int main() {
  using namespace mcmc;
  using namespace mcmc::core;  // formula DSL

  // A hypothetical machine: keeps writes ordered and respects data
  // dependencies, but lets reads sink below anything independent.
  const MemoryModel custom(
      "custom",
      (write_x() && write_y()) || data_dep() || fence_x() || fence_y());
  std::printf("custom model: F(x,y) = %s\n\n",
              custom.formula().to_string().c_str());

  const auto suite = enumeration::corollary1_suite(true);
  const auto space = explore::model_space(true);

  std::vector<MemoryModel> all;
  all.push_back(custom);
  for (const auto& c : space) all.push_back(c.to_model());
  engine::VerdictEngine eng;
  const explore::AdmissibilityMatrix matrix(eng, all, suite);

  // (a) equivalence class within the space.
  bool placed = false;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (matrix.compare(0, static_cast<int>(i + 1)) ==
        explore::Relation::Equivalent) {
      std::printf("equivalent to catalogued model %s\n",
                  space[i].name().c_str());
      placed = true;
    }
  }
  if (!placed) {
    std::printf("not equivalent to any of the 90 catalogued models\n");
  }

  // (b) position relative to the named hardware models.
  struct Named {
    const char* label;
    explore::ModelChoices choices;
  };
  const Named named[] = {
      {"SC", explore::sc_choices()},       {"TSO", explore::tso_choices()},
      {"PSO", explore::pso_choices()},
      {"IBM370", explore::ibm370_choices()},
      {"RMO", explore::rmo_choices()},
  };
  std::printf("\nrelative to hardware models:\n");
  for (const auto& n : named) {
    // Find the index of this model in the space.
    int idx = -1;
    for (std::size_t i = 0; i < space.size(); ++i) {
      if (space[i] == n.choices) idx = static_cast<int>(i);
    }
    const auto rel = matrix.compare(0, idx + 1);
    std::printf("  vs %-7s: custom is %s\n", n.label,
                explore::to_string(rel).c_str());
  }

  // (c) a separating test against TSO.
  int tso_idx = -1;
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (space[i] == explore::tso_choices()) tso_idx = static_cast<int>(i);
  }
  const auto separating = matrix.distinguishing_tests(0, tso_idx + 1);
  if (!separating.empty()) {
    const auto& t = suite[static_cast<std::size_t>(separating[0])];
    std::printf("\nexample separating test vs TSO:\n%s",
                t.to_string().c_str());
    std::printf("  custom: %s, TSO: %s\n",
                matrix.allowed(0, separating[0]) ? "allow" : "forbid",
                matrix.allowed(tso_idx + 1, separating[0]) ? "allow"
                                                           : "forbid");
  }
  return 0;
}
