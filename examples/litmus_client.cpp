// litmus_client: command-line client for a running litmusd.
//
//   litmus_client --socket /tmp/litmusd.sock check test.litmus
//   litmus_client --socket /tmp/litmusd.sock stats
//   litmus_client --tcp 7411 models
//
// `check` sends the file's tests (one or a whole corpus) and prints,
// per test, whether each served model admits the outcome and whether
// the answer came from the store or was computed.  `stats` dumps the
// server's counters; `models` lists the served model names.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.h"

namespace {

const char* source_name(mcmc::serve::VerdictSource source) {
  switch (source) {
    case mcmc::serve::VerdictSource::kStore:
      return "store";
    case mcmc::serve::VerdictSource::kComputed:
      return "computed";
    default:
      return "unknown";
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket PATH | --tcp PORT) COMMAND\n"
               "  check FILE   verdicts for the litmus test(s) in FILE\n"
               "  stats        server counters\n"
               "  models       served model names\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmc;

  std::string socket_path;
  int tcp_port = -1;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_port = std::atoi(argv[++i]);
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty() || (socket_path.empty() && tcp_port < 0)) {
    return usage(argv[0]);
  }

  serve::Client client;
  std::string error;
  const bool up = socket_path.empty()
                      ? client.connect_tcp(tcp_port, &error)
                      : client.connect_unix(socket_path, &error);
  if (!up) {
    std::fprintf(stderr, "litmus_client: %s\n", error.c_str());
    return 1;
  }

  if (args[0] == "models" && args.size() == 1) {
    std::vector<std::string> names;
    if (!client.models(names, &error)) {
      std::fprintf(stderr, "litmus_client: %s\n", error.c_str());
      return 1;
    }
    for (const auto& name : names) std::printf("%s\n", name.c_str());
    return 0;
  }

  if (args[0] == "stats" && args.size() == 1) {
    static const char* const kNames[] = {
        "probes",          "probe_store_hits", "probe_unknown",
        "checks",          "check_store_hits", "check_computed",
        "batches",         "max_coalesced",    "queue_depth",
        "queue_rejected",  "conns_opened",     "conns_active",
        "latency_p50_ns",  "latency_p99_ns",   "store_entries",
        "store_saves",     "client_requests",  "client_store_hits",
    };
    std::vector<std::uint64_t> fields;
    if (!client.stats(fields, &error)) {
      std::fprintf(stderr, "litmus_client: %s\n", error.c_str());
      return 1;
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      const char* name = i < std::size(kNames) ? kNames[i] : "field";
      std::printf("%-18s %llu\n", name,
                  static_cast<unsigned long long>(fields[i]));
    }
    return 0;
  }

  if (args[0] == "check" && args.size() == 2) {
    std::ifstream in(args[1]);
    if (!in) {
      std::fprintf(stderr, "litmus_client: cannot read %s\n", args[1].c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    std::vector<std::string> names;
    std::vector<serve::VerdictRowWire> rows;
    if (!client.models(names, &error) ||
        !client.batch_check(text.str(), rows, &error)) {
      std::fprintf(stderr, "litmus_client: %s\n", error.c_str());
      return 1;
    }
    for (std::size_t t = 0; t < rows.size(); ++t) {
      const auto& row = rows[t];
      std::printf("test %zu (%s): allowed by", t, source_name(row.source));
      int allowed = 0;
      for (std::size_t m = 0; m < names.size(); ++m) {
        if (row.known(static_cast<int>(m)) &&
            row.allowed(static_cast<int>(m))) {
          std::printf(" %s", names[m].c_str());
          ++allowed;
        }
      }
      if (allowed == 0) std::printf(" none");
      std::printf("\n");
    }
    return 0;
  }

  return usage(argv[0]);
}
