// Evaluate litmus tests under memory models.
//
//   $ ./litmus_runner                       # run the built-in catalog
//   $ ./litmus_runner tests.lit             # run a corpus from a file
//   $ ./litmus_runner -                     # read tests from stdin
//   $ ./litmus_runner --exhaustive 40       # first 40 naive-space tests
//   $ ./litmus_runner --explain tests.lit   # also explain forbidden ones
//   $ ./litmus_runner --stats tests.lit     # engine statistics on stderr
//   $ ./litmus_runner --store FILE tests.lit # persistent verdict store:
//                                           # verdicts load from / commit
//                                           # to FILE (crash-safe; see
//                                           # README "Persistence
//                                           # guarantees")
//
// Prints the verdict of every named hardware model for each test, plus a
// witness execution order when the outcome is allowed; with --explain,
// forbidden verdicts are justified with the forced happens-before cycle.
// The file format is described in src/litmus/parser.h; a file may contain
// several tests, each starting at a `name:` line.
//
// All verdicts for the whole corpus are evaluated in one batched
// engine::VerdictEngine run (parallel across cells, symmetric tests
// deduplicated); witness linearizations are then recovered only for the
// allowed cells.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/explain.h"
#include "engine/verdict_engine.h"
#include "enumeration/exhaustive.h"
#include "litmus/catalog.h"
#include "litmus/parser.h"
#include "models/zoo.h"
#include "store/verdict_store.h"
#include "util/table.h"

namespace {

void print_one(const mcmc::litmus::LitmusTest& test,
               const std::vector<mcmc::core::MemoryModel>& models,
               const mcmc::engine::BitMatrix& verdicts, int test_index,
               bool explain) {
  using namespace mcmc;
  std::printf("%s\n", test.to_string().c_str());
  const core::Analysis an(test.program());
  util::Table table({"model", "verdict", "witness (first event ... last)"});
  for (std::size_t m = 0; m < models.size(); ++m) {
    const bool allowed = verdicts.get(static_cast<int>(m), test_index);
    std::string witness;
    if (allowed) {
      // The engine answered the (cheap, cached) decision question; the
      // witness linearization is only materialized for allowed cells.
      const auto result = core::check(an, models[m], test.outcome());
      for (const auto e : result.order) {
        if (!an.is_memory_access(e) && !an.is_fence(e)) continue;
        if (!witness.empty()) witness += "; ";
        witness += "T" + std::to_string(an.event(e).thread + 1) + ":" +
                   core::to_string(*an.event(e).instr);
      }
    }
    table.add_row({models[m].name(), allowed ? "ALLOWED" : "forbidden",
                   witness});
  }
  std::printf("%s\n", table.to_string().c_str());

  if (!explain) return;
  for (const auto& model : models) {
    const auto explanation =
        core::explain_forbidden(an, model, test.outcome());
    if (explanation.actually_allowed) continue;
    std::printf("why %s forbids it:\n", model.name().c_str());
    for (std::size_t i = 0; i < explanation.candidates.size(); ++i) {
      const auto& item = explanation.candidates[i];
      std::printf("  read-from candidate %zu: %s\n", i + 1,
                  item.summary.c_str());
      for (const auto& line : item.forced_cycle) {
        std::printf("    %s\n", line.c_str());
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmc;
  bool explain = false;
  bool stats = false;
  long exhaustive = 0;
  std::string store_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--explain") {
      explain = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--exhaustive" && i + 1 < argc) {
      exhaustive = std::strtol(argv[++i], nullptr, 10);
      if (exhaustive <= 0) {
        std::fprintf(stderr, "--exhaustive takes a positive test count\n");
        return 2;
      }
    } else {
      inputs.push_back(arg);
    }
  }
  try {
    std::vector<litmus::LitmusTest> tests;
    if (exhaustive > 0) {
      // A slice of the naive-space enumeration, pulled chunk by chunk.
      enumeration::ExhaustiveStream stream(enumeration::ExhaustiveOptions{});
      std::vector<litmus::LitmusTest> chunk;
      bool more = true;
      while (more && static_cast<long>(tests.size()) < exhaustive) {
        chunk.clear();
        more = stream.next_chunk(chunk);
        for (auto& t : chunk) {
          if (static_cast<long>(tests.size()) == exhaustive) break;
          tests.push_back(std::move(t));
        }
      }
    } else if (inputs.empty()) {
      tests = litmus::full_catalog();
    } else {
      for (const auto& input : inputs) {
        std::string text;
        if (input == "-") {
          std::ostringstream buffer;
          buffer << std::cin.rdbuf();
          text = buffer.str();
        } else {
          std::ifstream in(input);
          if (!in) {
            std::fprintf(stderr, "cannot open %s\n", input.c_str());
            return 2;
          }
          std::ostringstream buffer;
          buffer << in.rdbuf();
          text = buffer.str();
        }
        for (auto& t : litmus::parse_corpus(text)) {
          tests.push_back(std::move(t));
        }
      }
    }

    const auto models = models::all_named_models();
    engine::VerdictEngine eng;
    // Optional persistent store: verdicts computed on earlier runs are
    // served from disk, and this run's are committed back (atomically;
    // a corrupt or stale file self-invalidates and everything is simply
    // recomputed).
    std::unique_ptr<store::VerdictStore> vstore;
    if (!store_path.empty()) {
      auto opened = store::VerdictStore::open(
          store_path, store::StoreMeta::from_models(models));
      std::fprintf(stderr, "[store %s: %s, %zu entries]\n", store_path.c_str(),
                   store::to_string(opened.outcome).c_str(),
                   opened.store->size());
      vstore = std::move(opened.store);
      eng.set_store(vstore.get());
    }
    const auto verdicts = eng.run_matrix(models, tests);
    if (stats) {
      std::fprintf(stderr, "[engine %s]\n",
                   eng.last_stats().to_string().c_str());
    }
    if (vstore != nullptr) {
      std::string error;
      if (!vstore->save(store_path, nullptr, &error)) {
        std::fprintf(stderr, "[store save failed: %s]\n", error.c_str());
      }
    }
    for (std::size_t t = 0; t < tests.size(); ++t) {
      print_one(tests[t], models, verdicts, static_cast<int>(t), explain);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
