// Quickstart: define two memory models, check a litmus test, and find a
// test that tells them apart.
//
//   $ ./quickstart
//
// Walks through the library's three core steps:
//   1. specify models as must-not-reorder formulas (Section 2),
//   2. check a single litmus test (the tool core of Section 4.1),
//   3. compare the models over the bounded template suite (Theorem 1 +
//      Corollary 1 make this complete for the class).
#include <cstdio>

#include "core/analysis.h"
#include "core/checker.h"
#include "enumeration/suite.h"
#include "litmus/catalog.h"
#include "models/zoo.h"

int main() {
  using namespace mcmc;

  // 1. Two models: SPARC TSO and sequential consistency.
  const core::MemoryModel tso = models::tso();
  const core::MemoryModel sc = models::sc();
  std::printf("TSO: F(x,y) = %s\n", tso.formula().to_string().c_str());
  std::printf("SC:  F(x,y) = %s\n\n", sc.formula().to_string().c_str());

  // 2. Check the store-buffering test under both.
  const litmus::LitmusTest sb = litmus::store_buffering();
  std::printf("%s\n", sb.to_string().c_str());
  const core::Analysis an(sb.program());
  for (const auto* model : {&tso, &sc}) {
    const bool allowed = core::is_allowed(an, *model, sb.outcome());
    std::printf("  %-4s %s this outcome\n", model->name().c_str(),
                allowed ? "ALLOWS" : "forbids");
  }

  // 3. Complete comparison over the bounded suite: by the small-litmus-
  //    test theorem, agreeing on these tests means the models are
  //    equivalent on all programs.
  std::printf("\nComparing TSO and SC over the template suite...\n");
  int differences = 0;
  for (const auto& test : enumeration::corollary1_suite(true)) {
    const core::Analysis a(test.program());
    const bool under_tso = core::is_allowed(a, tso, test.outcome());
    const bool under_sc = core::is_allowed(a, sc, test.outcome());
    if (under_tso != under_sc) {
      if (++differences == 1) {
        std::printf("distinguished! e.g. by:\n%s", test.to_string().c_str());
        std::printf("  TSO: %s, SC: %s\n\n", under_tso ? "allow" : "forbid",
                    under_sc ? "allow" : "forbid");
      }
    }
  }
  std::printf("%d distinguishing tests in total -- TSO is strictly weaker "
              "than SC.\n",
              differences);
  return 0;
}
