// Run the operational machines on a litmus test and compare their
// reachable outcomes with the axiomatic verdicts.
//
//   $ ./simulate            # simulate Figure 1's Test A
//   $ ./simulate SB MP LB   # simulate catalog tests by name
//
// Demonstrates the sim layer: exhaustive exploration of the SC, TSO, PSO
// and IBM370 store-buffer machines, and the agreement between each
// machine and its axiomatic model.
#include <cstdio>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/checker.h"
#include "litmus/catalog.h"
#include "models/zoo.h"
#include "sim/storebuffer.h"
#include "util/table.h"

namespace {

using namespace mcmc;

void simulate(const litmus::LitmusTest& test) {
  std::printf("%s\n", test.to_string().c_str());
  struct Pairing {
    std::unique_ptr<sim::Machine> machine;
    core::MemoryModel model;
  };
  std::vector<Pairing> pairings;
  pairings.push_back({sim::sc_machine(), models::sc()});
  pairings.push_back({sim::tso_machine(), models::tso()});
  pairings.push_back({sim::pso_machine(), models::pso()});
  pairings.push_back({sim::ibm370_machine(), models::ibm370()});

  const core::Analysis an(test.program());
  util::Table table({"machine", "reachable outcomes", "this outcome",
                     "axiomatic", "agree"});
  for (const auto& p : pairings) {
    const auto outcomes = p.machine->reachable_outcomes(test.program());
    const bool reachable =
        p.machine->outcome_reachable(test.program(), test.outcome());
    const bool axiomatic = core::is_allowed(an, p.model, test.outcome());
    table.add_row({p.machine->name(), std::to_string(outcomes.size()),
                   reachable ? "reachable" : "unreachable",
                   axiomatic ? "allowed" : "forbidden",
                   reachable == axiomatic ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> wanted;
  for (int i = 1; i < argc; ++i) wanted.emplace_back(argv[i]);
  if (wanted.empty()) wanted.emplace_back("TestA");

  const auto catalog = litmus::full_catalog();
  for (const auto& name : wanted) {
    bool found = false;
    for (const auto& t : catalog) {
      if (t.name() == name) {
        simulate(t);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown test '%s'; available:", name.c_str());
      for (const auto& t : catalog) {
        std::fprintf(stderr, " %s", t.name().c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
  }
  return 0;
}
