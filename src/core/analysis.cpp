#include "core/analysis.h"

#include <map>

#include "util/check.h"

namespace mcmc::core {

Analysis::Analysis(const Program& program) : program_(&program) {
  program.validate();
  resolve_events();
  compute_deps();
  compute_indexes();
}

void Analysis::resolve_events() {
  for (int t = 0; t < program_->num_threads(); ++t) {
    thread_base_.push_back(static_cast<int>(events_.size()));
    const auto& th = program_->thread(t);
    std::map<Reg, int> static_value;  // DepConst-defined registers
    for (int i = 0; i < static_cast<int>(th.size()); ++i) {
      const auto& instr = th[static_cast<std::size_t>(i)];
      Event e;
      e.thread = t;
      e.index = i;
      e.op = instr.op;
      e.dst = instr.dst;
      e.instr = &instr;
      if (instr.op == Op::DepConst) {
        e.value = instr.value;
        static_value[instr.dst] = instr.value;
      }
      if (instr.is_memory_access()) {
        if (instr.addr_reg >= 0) {
          const auto it = static_value.find(instr.addr_reg);
          MCMC_CHECK_MSG(it != static_value.end(),
                         "address register not statically resolvable");
          MCMC_CHECK_MSG(it->second >= 0,
                         "address register resolves to a negative location");
          e.loc = it->second;
        } else {
          e.loc = instr.loc;
        }
      }
      if (instr.op == Op::Write) {
        if (instr.value_from_reg) {
          const auto it = static_value.find(instr.src);
          MCMC_CHECK_MSG(it != static_value.end(),
                         "store value register not statically resolvable");
          e.value = it->second;
        } else {
          e.value = instr.value;
        }
      }
      events_.push_back(e);
    }
  }
}

void Analysis::compute_deps() {
  const auto n = static_cast<std::size_t>(num_events());
  dep_.assign(n, std::vector<bool>(n, false));
  cdep_.assign(n, std::vector<bool>(n, false));

  for (int t = 0; t < program_->num_threads(); ++t) {
    const auto& th = program_->thread(t);
    const int base = thread_base_[static_cast<std::size_t>(t)];
    const int len = static_cast<int>(th.size());

    // taint[i][j]: instruction j's inputs depend on instruction i's output
    // (i < j, both positions within this thread).
    std::vector<std::vector<bool>> taint(
        static_cast<std::size_t>(len),
        std::vector<bool>(static_cast<std::size_t>(len), false));

    // reg_def[r] = position defining register r in this thread.
    std::map<Reg, int> reg_def;
    for (int j = 0; j < len; ++j) {
      const auto& instr = th[static_cast<std::size_t>(j)];
      auto absorb = [&](Reg r) {
        if (r < 0) return;
        const auto it = reg_def.find(r);
        if (it == reg_def.end()) return;  // defined in another thread: invalid
        const int d = it->second;
        taint[static_cast<std::size_t>(d)][static_cast<std::size_t>(j)] = true;
        // Transitive through the defining instruction's own dependencies.
        for (int i = 0; i < d; ++i) {
          if (taint[static_cast<std::size_t>(i)][static_cast<std::size_t>(d)]) {
            taint[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                true;
          }
        }
      };
      absorb(instr.addr_reg);
      if (instr.op == Op::DepConst || instr.op == Op::Branch) absorb(instr.src);
      if (instr.op == Op::Write && instr.value_from_reg) absorb(instr.src);
      if (instr.dst >= 0) reg_def[instr.dst] = j;
    }

    for (int i = 0; i < len; ++i) {
      for (int j = i + 1; j < len; ++j) {
        dep_[static_cast<std::size_t>(base + i)]
            [static_cast<std::size_t>(base + j)] =
                taint[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      }
    }

    // Control dependencies: everything after a branch is control-dependent
    // on whatever the branch condition data-depends on (and on the branch's
    // own inputs' sources).
    for (int b = 0; b < len; ++b) {
      if (th[static_cast<std::size_t>(b)].op != Op::Branch) continue;
      for (int i = 0; i < b; ++i) {
        const bool feeds_branch =
            taint[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)];
        if (!feeds_branch) continue;
        for (int j = b + 1; j < len; ++j) {
          cdep_[static_cast<std::size_t>(base + i)]
               [static_cast<std::size_t>(base + j)] = true;
        }
      }
    }
  }
}

const Event& Analysis::event(EventId e) const {
  MCMC_REQUIRE(e >= 0 && e < num_events());
  return events_[static_cast<std::size_t>(e)];
}

EventId Analysis::event_id(int thread, int index) const {
  MCMC_REQUIRE(thread >= 0 && thread < program_->num_threads());
  MCMC_REQUIRE(index >= 0 &&
               index < static_cast<int>(program_->thread(thread).size()));
  return thread_base_[static_cast<std::size_t>(thread)] + index;
}

void Analysis::compute_indexes() {
  const int n = num_events();
  writes_by_loc_.assign(
      static_cast<std::size_t>(program_->num_locations()), {});
  for (EventId e = 0; e < n; ++e) {
    if (is_write(e)) {
      writes_by_loc_[static_cast<std::size_t>(event(e).loc)].push_back(e);
    }
    if (is_read(e)) reads_.push_back(e);
  }

  for (EventId a = 0; a < n; ++a) {
    for (EventId b = 0; b < n; ++b) {
      if (a != b && po(a, b)) ++num_po_pairs_;
    }
  }

  if (!masks_valid()) return;
  po_mask_.assign(static_cast<std::size_t>(n), 0);
  same_addr_mask_.assign(static_cast<std::size_t>(n), 0);
  data_dep_mask_.assign(static_cast<std::size_t>(n), 0);
  ctrl_dep_mask_.assign(static_cast<std::size_t>(n), 0);
  for (EventId a = 0; a < n; ++a) {
    const std::uint64_t bit = 1ULL << a;
    if (is_read(a)) reads_mask_ |= bit;
    if (is_write(a)) writes_mask_ |= bit;
    if (is_fence(a)) fences_mask_ |= bit;
    for (EventId b = 0; b < n; ++b) {
      if (b == a) continue;
      const std::uint64_t bbit = 1ULL << b;
      const auto sa = static_cast<std::size_t>(a);
      if (po(a, b)) po_mask_[sa] |= bbit;
      if (same_addr(a, b)) same_addr_mask_[sa] |= bbit;
      if (data_dep(a, b)) data_dep_mask_[sa] |= bbit;
      if (ctrl_dep(a, b)) ctrl_dep_mask_[sa] |= bbit;
    }
  }
}

const std::vector<EventId>& Analysis::writes_to(Loc loc) const {
  MCMC_REQUIRE(loc >= 0 &&
               loc < static_cast<Loc>(writes_by_loc_.size()));
  return writes_by_loc_[static_cast<std::size_t>(loc)];
}

std::uint64_t Analysis::po_mask(EventId x) const {
  MCMC_REQUIRE(masks_valid() && x >= 0 && x < num_events());
  return po_mask_[static_cast<std::size_t>(x)];
}

std::uint64_t Analysis::same_addr_mask(EventId x) const {
  MCMC_REQUIRE(masks_valid() && x >= 0 && x < num_events());
  return same_addr_mask_[static_cast<std::size_t>(x)];
}

std::uint64_t Analysis::data_dep_mask(EventId x) const {
  MCMC_REQUIRE(masks_valid() && x >= 0 && x < num_events());
  return data_dep_mask_[static_cast<std::size_t>(x)];
}

std::uint64_t Analysis::ctrl_dep_mask(EventId x) const {
  MCMC_REQUIRE(masks_valid() && x >= 0 && x < num_events());
  return ctrl_dep_mask_[static_cast<std::size_t>(x)];
}

bool Analysis::po(EventId a, EventId b) const {
  const auto& ea = event(a);
  const auto& eb = event(b);
  return ea.thread == eb.thread && ea.index < eb.index;
}

bool Analysis::same_thread(EventId a, EventId b) const {
  return event(a).thread == event(b).thread;
}

bool Analysis::same_addr(EventId a, EventId b) const {
  const auto& ea = event(a);
  const auto& eb = event(b);
  return ea.instr->is_memory_access() && eb.instr->is_memory_access() &&
         ea.loc == eb.loc;
}

bool Analysis::data_dep(EventId a, EventId b) const {
  MCMC_REQUIRE(a >= 0 && a < num_events() && b >= 0 && b < num_events());
  return dep_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

bool Analysis::ctrl_dep(EventId a, EventId b) const {
  MCMC_REQUIRE(a >= 0 && a < num_events() && b >= 0 && b < num_events());
  return cdep_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

}  // namespace mcmc::core
