// Static analysis of a litmus program: flattens instructions into events,
// resolves addresses and store values, and precomputes the predicate
// matrices (SameAddr, DataDep, ControlDep) that must-not-reorder functions
// consume (Section 2.3 of the paper).
//
// Because programs are straight-line, instruction executions are in 1:1
// correspondence with instructions; an "event" here is the paper's
// instruction execution with everything but read results resolved.
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.h"

namespace mcmc::core {

/// Dense event index across all threads (thread-major order).
using EventId = int;

/// A resolved instruction execution.
struct Event {
  int thread = 0;        ///< thread index
  int index = 0;         ///< position within the thread
  Op op = Op::Fence;     ///< opcode
  Loc loc = kNoLoc;      ///< resolved address (memory accesses only)
  int value = 0;         ///< resolved store value (writes) / constant
  Reg dst = kNoReg;      ///< defined register
  const Instruction* instr = nullptr;  ///< the underlying instruction
};

/// Immutable analysis result over a validated program.
class Analysis {
 public:
  /// Validates and analyzes `program` (kept by reference; the program must
  /// outlive the analysis).
  explicit Analysis(const Program& program);

  [[nodiscard]] const Program& program() const { return *program_; }
  [[nodiscard]] int num_events() const {
    return static_cast<int>(events_.size());
  }
  [[nodiscard]] const Event& event(EventId e) const;
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Event id of instruction `index` in `thread`.
  [[nodiscard]] EventId event_id(int thread, int index) const;

  /// All write events to `loc`, in event-id order.  Precomputed; the
  /// reference stays valid for the analysis' lifetime.
  [[nodiscard]] const std::vector<EventId>& writes_to(Loc loc) const;

  /// All read events, in event-id order.  Precomputed; the reference
  /// stays valid for the analysis' lifetime.
  [[nodiscard]] const std::vector<EventId>& reads() const { return reads_; }

  /// Program order: true iff `a` and `b` are in the same thread and `a`
  /// precedes `b`.
  [[nodiscard]] bool po(EventId a, EventId b) const;

  [[nodiscard]] bool same_thread(EventId a, EventId b) const;

  // ---- Predicates (Section 2.3) ----

  [[nodiscard]] bool is_read(EventId e) const {
    return event(e).op == Op::Read;
  }
  [[nodiscard]] bool is_write(EventId e) const {
    return event(e).op == Op::Write;
  }
  [[nodiscard]] bool is_fence(EventId e) const {
    return event(e).op == Op::Fence;
  }
  [[nodiscard]] bool is_memory_access(EventId e) const {
    return event(e).instr->is_memory_access();
  }

  /// SameAddr(a, b): both memory accesses to one location.
  [[nodiscard]] bool same_addr(EventId a, EventId b) const;

  /// DataDep(a, b): a defines a register that b's inputs (address, store
  /// value, DepConst source, branch condition) transitively depend on;
  /// requires po(a, b).
  [[nodiscard]] bool data_dep(EventId a, EventId b) const;

  /// ControlDep(a, b): some Branch between a and b (exclusive of b's
  /// position upper bound) has a condition data-dependent on a; requires
  /// po(a, b).
  [[nodiscard]] bool ctrl_dep(EventId a, EventId b) const;

  // ---- Predicate bitmask rows (events packed into std::uint64_t) ----
  //
  // Available when the program has at most 64 events (the explicit
  // engine's regime); Formula::eval_po_matrix compiles must-not-reorder
  // functions over them in a single tree traversal instead of one
  // tree-walk per event pair.

  /// True iff the bitmask accessors below are available.
  [[nodiscard]] bool masks_valid() const { return num_events() <= 64; }

  /// Bit e set iff event e is a read / write / fence.
  [[nodiscard]] std::uint64_t reads_mask() const { return reads_mask_; }
  [[nodiscard]] std::uint64_t writes_mask() const { return writes_mask_; }
  [[nodiscard]] std::uint64_t fences_mask() const { return fences_mask_; }

  /// Bit y set iff po(x, y) — x's program-order successors.
  [[nodiscard]] std::uint64_t po_mask(EventId x) const;
  /// Bit y set iff SameAddr(x, y).
  [[nodiscard]] std::uint64_t same_addr_mask(EventId x) const;
  /// Bit y set iff DataDep(x, y).
  [[nodiscard]] std::uint64_t data_dep_mask(EventId x) const;
  /// Bit y set iff ControlDep(x, y).
  [[nodiscard]] std::uint64_t ctrl_dep_mask(EventId x) const;

  /// Number of ordered pairs (x, y) with po(x, y) — the per-rf-map
  /// must-not-reorder evaluation count of the unprepared check path.
  [[nodiscard]] int num_po_pairs() const { return num_po_pairs_; }

 private:
  void resolve_events();
  void compute_deps();
  void compute_indexes();

  const Program* program_;
  std::vector<Event> events_;
  std::vector<int> thread_base_;        // first EventId of each thread
  std::vector<std::vector<bool>> dep_;  // dep_[a][b]: data dependency
  std::vector<std::vector<bool>> cdep_;  // cdep_[a][b]: control dependency

  std::vector<std::vector<EventId>> writes_by_loc_;  // index: location
  std::vector<EventId> reads_;
  int num_po_pairs_ = 0;

  // Bitmask rows; empty when !masks_valid().
  std::uint64_t reads_mask_ = 0;
  std::uint64_t writes_mask_ = 0;
  std::uint64_t fences_mask_ = 0;
  std::vector<std::uint64_t> po_mask_;
  std::vector<std::uint64_t> same_addr_mask_;
  std::vector<std::uint64_t> data_dep_mask_;
  std::vector<std::uint64_t> ctrl_dep_mask_;
};

}  // namespace mcmc::core
