#include "core/checker.h"

#include <algorithm>
#include <cstdint>

#include "sat/solver.h"
#include "util/check.h"

namespace mcmc::core {

namespace {

// ---------------------------------------------------------------------------
// SAT engine
// ---------------------------------------------------------------------------

/// Boolean variable for the ordered pair (i, j); the diagonal is unused but
/// keeping the dense layout is simpler than compacting it.
sat::Var pair_var(int n, EventId i, EventId j) {
  return static_cast<sat::Var>(i * n + j);
}

bool sat_engine(const HbProblem& p, std::vector<EventId>* order) {
  const int n = p.num_events;
  sat::Solver solver;
  for (int i = 0; i < n * n; ++i) solver.new_var();
  for (const auto& clause : hb_to_cnf(p).clauses) solver.add_clause(clause);

  if (!solver.solve()) return false;

  if (order != nullptr) {
    // Linearize the model's partial order: repeatedly emit a node with no
    // unemitted predecessor.
    std::vector<bool> emitted(static_cast<std::size_t>(n), false);
    order->clear();
    for (int step = 0; step < n; ++step) {
      for (EventId v = 0; v < n; ++v) {
        if (emitted[static_cast<std::size_t>(v)]) continue;
        bool ready = true;
        for (EventId u = 0; u < n; ++u) {
          if (u != v && !emitted[static_cast<std::size_t>(u)] &&
              solver.model_value(pair_var(n, u, v))) {
            ready = false;
            break;
          }
        }
        if (ready) {
          order->push_back(v);
          emitted[static_cast<std::size_t>(v)] = true;
          break;
        }
      }
    }
    MCMC_CHECK_MSG(static_cast<int>(order->size()) == n,
                   "SAT model was not acyclic");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Explicit engine
// ---------------------------------------------------------------------------

/// DFS over disjunction choices with an incrementally maintained transitive
/// closure.  reach[i] is the bitmask of events strictly reachable from i.
class ExplicitSearch {
 public:
  explicit ExplicitSearch(const HbProblem& p) : p_(p), n_(p.num_events) {
    MCMC_REQUIRE_MSG(n_ <= 64, "explicit engine supports up to 64 events");
    forb_.assign(static_cast<std::size_t>(n_), 0);
    for (const auto& [x, y] : p.forbidden) {
      forb_[static_cast<std::size_t>(x)] |= bit(y);
    }
  }

  bool run(std::vector<EventId>* order) {
    std::vector<std::uint64_t> reach(static_cast<std::size_t>(n_), 0);
    for (const auto& [x, y] : p_.forced) {
      if (!add_edge(reach, x, y)) return false;
    }
    if (!solve(reach, 0)) return false;
    if (order != nullptr) linearize(witness_, *order);
    return true;
  }

 private:
  static std::uint64_t bit(EventId e) { return 1ULL << e; }

  /// Adds u=>v and re-closes; fails on cycle or forbidden-edge violation.
  bool add_edge(std::vector<std::uint64_t>& reach, EventId u, EventId v) {
    if (u == v) return false;
    if ((reach[static_cast<std::size_t>(v)] & bit(u)) != 0) return false;
    const std::uint64_t gain =
        bit(v) | reach[static_cast<std::size_t>(v)];
    for (EventId i = 0; i < n_; ++i) {
      const bool reaches_u =
          i == u || (reach[static_cast<std::size_t>(i)] & bit(u)) != 0;
      if (!reaches_u) continue;
      const std::uint64_t nr = reach[static_cast<std::size_t>(i)] | gain;
      if ((nr & bit(i)) != 0) return false;            // cycle through i
      if ((nr & forb_[static_cast<std::size_t>(i)]) != 0) return false;
      reach[static_cast<std::size_t>(i)] = nr;
    }
    return true;
  }

  bool holds(const std::vector<std::uint64_t>& reach, const Edge& e) const {
    return (reach[static_cast<std::size_t>(e.first)] & bit(e.second)) != 0;
  }

  bool solve(std::vector<std::uint64_t>& reach, std::size_t idx) {
    while (idx < p_.disjunctions.size() &&
           (holds(reach, p_.disjunctions[idx].first) ||
            holds(reach, p_.disjunctions[idx].second))) {
      ++idx;
    }
    if (idx == p_.disjunctions.size()) {
      witness_ = reach;
      return true;
    }
    const auto& d = p_.disjunctions[idx];
    for (const Edge& e : {d.first, d.second}) {
      std::vector<std::uint64_t> copy = reach;
      if (add_edge(copy, e.first, e.second) && solve(copy, idx + 1)) {
        return true;
      }
    }
    return false;
  }

  void linearize(const std::vector<std::uint64_t>& reach,
                 std::vector<EventId>& order) const {
    order.clear();
    std::uint64_t emitted = 0;
    for (int step = 0; step < n_; ++step) {
      for (EventId v = 0; v < n_; ++v) {
        if ((emitted & bit(v)) != 0) continue;
        bool ready = true;
        for (EventId u = 0; u < n_; ++u) {
          if ((emitted & bit(u)) == 0 && u != v &&
              (reach[static_cast<std::size_t>(u)] & bit(v)) != 0) {
            ready = false;
            break;
          }
        }
        if (ready) {
          order.push_back(v);
          emitted |= bit(v);
          break;
        }
      }
    }
    MCMC_CHECK_MSG(static_cast<int>(order.size()) == n_,
                   "closure was not acyclic");
  }

  const HbProblem& p_;
  int n_;
  std::vector<std::uint64_t> forb_;
  std::vector<std::uint64_t> witness_;
};

}  // namespace

sat::Cnf hb_to_cnf(const HbProblem& p) {
  const int n = p.num_events;
  sat::Cnf cnf;
  cnf.num_vars = n * n;
  // Antisymmetry (which, with transitivity, yields acyclicity).
  for (EventId i = 0; i < n; ++i) {
    for (EventId j = i + 1; j < n; ++j) {
      cnf.clauses.push_back({sat::Lit::neg(pair_var(n, i, j)),
                             sat::Lit::neg(pair_var(n, j, i))});
    }
  }
  // Transitivity.
  for (EventId i = 0; i < n; ++i) {
    for (EventId j = 0; j < n; ++j) {
      if (j == i) continue;
      for (EventId k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        cnf.clauses.push_back({sat::Lit::neg(pair_var(n, i, j)),
                               sat::Lit::neg(pair_var(n, j, k)),
                               sat::Lit::pos(pair_var(n, i, k))});
      }
    }
  }
  for (const auto& [x, y] : p.forced) {
    cnf.clauses.push_back({sat::Lit::pos(pair_var(n, x, y))});
  }
  for (const auto& [x, y] : p.forbidden) {
    cnf.clauses.push_back({sat::Lit::neg(pair_var(n, x, y))});
  }
  for (const auto& d : p.disjunctions) {
    cnf.clauses.push_back(
        {sat::Lit::pos(pair_var(n, d.first.first, d.first.second)),
         sat::Lit::pos(pair_var(n, d.second.first, d.second.second))});
  }
  return cnf;
}

bool hb_satisfiable(const HbProblem& p, Engine engine) {
  if (p.infeasible) return false;
  if (engine == Engine::Sat) return sat_engine(p, nullptr);
  return ExplicitSearch(p).run(nullptr);
}

bool hb_satisfiable_witness(const HbProblem& p, Engine engine,
                            std::vector<EventId>& order) {
  if (p.infeasible) return false;
  if (engine == Engine::Sat) return sat_engine(p, &order);
  return ExplicitSearch(p).run(&order);
}

bool is_allowed(const Analysis& analysis, const MemoryModel& model,
                const Outcome& outcome, Engine engine) {
  for (const RfMap& rf : enumerate_read_from(analysis, outcome)) {
    const HbProblem p = build_hb_problem(analysis, model, rf);
    if (hb_satisfiable(p, engine)) return true;
  }
  return false;
}

CheckResult check(const Analysis& analysis, const MemoryModel& model,
                  const Outcome& outcome, Engine engine) {
  CheckResult result;
  for (const RfMap& rf : enumerate_read_from(analysis, outcome)) {
    const HbProblem p = build_hb_problem(analysis, model, rf);
    std::vector<EventId> order;
    if (hb_satisfiable_witness(p, engine, order)) {
      result.allowed = true;
      result.rf = rf;
      result.order = std::move(order);
      return result;
    }
  }
  return result;
}

}  // namespace mcmc::core
