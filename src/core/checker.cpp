#include "core/checker.h"

#include <algorithm>
#include <cstdint>

#include "core/closure_search.h"
#include "sat/solver.h"
#include "util/check.h"

namespace mcmc::core {

namespace {

// ---------------------------------------------------------------------------
// SAT engine
// ---------------------------------------------------------------------------

/// Boolean variable for the ordered pair (i, j); the diagonal is unused but
/// keeping the dense layout is simpler than compacting it.
sat::Var pair_var(int n, EventId i, EventId j) {
  return static_cast<sat::Var>(i * n + j);
}

bool sat_engine(const HbProblem& p, std::vector<EventId>* order) {
  const int n = p.num_events;
  sat::Solver solver;
  for (int i = 0; i < n * n; ++i) solver.new_var();
  for (const auto& clause : hb_to_cnf(p).clauses) solver.add_clause(clause);

  if (!solver.solve()) return false;

  if (order != nullptr) {
    // Linearize the model's partial order with Kahn's algorithm over
    // precomputed in-degrees (O(n^2), vs the O(n^3) emit-scan it
    // replaced).
    const auto has_edge = [&](EventId u, EventId v) {
      return u != v && solver.model_value(pair_var(n, u, v));
    };
    std::vector<int> indeg(static_cast<std::size_t>(n), 0);
    for (EventId u = 0; u < n; ++u) {
      for (EventId v = 0; v < n; ++v) {
        if (has_edge(u, v)) ++indeg[static_cast<std::size_t>(v)];
      }
    }
    std::vector<EventId> queue;
    queue.reserve(static_cast<std::size_t>(n));
    for (EventId v = 0; v < n; ++v) {
      if (indeg[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
    order->clear();
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const EventId u = queue[head];
      order->push_back(u);
      for (EventId v = 0; v < n; ++v) {
        if (has_edge(u, v) && --indeg[static_cast<std::size_t>(v)] == 0) {
          queue.push_back(v);
        }
      }
    }
    MCMC_CHECK_MSG(static_cast<int>(order->size()) == n,
                   "SAT model was not acyclic");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Explicit engine
// ---------------------------------------------------------------------------

/// Decides one HbProblem with the shared allocation-free closure DFS
/// (core/closure_search.h): fixed bitmask-array state, frame-local stack
/// copies in the disjunction search, Kahn's-algorithm linearization.
bool explicit_engine(const HbProblem& p, std::vector<EventId>* order) {
  detail::ClosureSearch search(p.num_events);
  for (const auto& [x, y] : p.forbidden) search.forbid(x, y);
  detail::Reach64 reach;
  reach.clear();
  for (const auto& [x, y] : p.forced) {
    if (!search.add_edge(reach, x, y)) return false;
  }
  if (!search.solve(reach, p.disjunctions.data(), p.disjunctions.size())) {
    return false;
  }
  if (order != nullptr) {
    detail::kahn_linearize(search.witness(), p.num_events, *order);
  }
  return true;
}

}  // namespace

sat::Cnf hb_to_cnf(const HbProblem& p) {
  const int n = p.num_events;
  sat::Cnf cnf;
  cnf.num_vars = n * n;
  // Antisymmetry (which, with transitivity, yields acyclicity).
  for (EventId i = 0; i < n; ++i) {
    for (EventId j = i + 1; j < n; ++j) {
      cnf.clauses.push_back({sat::Lit::neg(pair_var(n, i, j)),
                             sat::Lit::neg(pair_var(n, j, i))});
    }
  }
  // Transitivity.
  for (EventId i = 0; i < n; ++i) {
    for (EventId j = 0; j < n; ++j) {
      if (j == i) continue;
      for (EventId k = 0; k < n; ++k) {
        if (k == i || k == j) continue;
        cnf.clauses.push_back({sat::Lit::neg(pair_var(n, i, j)),
                               sat::Lit::neg(pair_var(n, j, k)),
                               sat::Lit::pos(pair_var(n, i, k))});
      }
    }
  }
  for (const auto& [x, y] : p.forced) {
    cnf.clauses.push_back({sat::Lit::pos(pair_var(n, x, y))});
  }
  for (const auto& [x, y] : p.forbidden) {
    cnf.clauses.push_back({sat::Lit::neg(pair_var(n, x, y))});
  }
  for (const auto& d : p.disjunctions) {
    cnf.clauses.push_back(
        {sat::Lit::pos(pair_var(n, d.first.first, d.first.second)),
         sat::Lit::pos(pair_var(n, d.second.first, d.second.second))});
  }
  return cnf;
}

bool hb_satisfiable(const HbProblem& p, Engine engine) {
  if (p.infeasible) return false;
  if (engine == Engine::Sat) return sat_engine(p, nullptr);
  return explicit_engine(p, nullptr);
}

bool hb_satisfiable_witness(const HbProblem& p, Engine engine,
                            std::vector<EventId>& order) {
  if (p.infeasible) return false;
  if (engine == Engine::Sat) return sat_engine(p, &order);
  return explicit_engine(p, &order);
}

bool is_allowed(const Analysis& analysis, const MemoryModel& model,
                const Outcome& outcome, Engine engine) {
  for (const RfMap& rf : enumerate_read_from(analysis, outcome)) {
    const HbProblem p = build_hb_problem(analysis, model, rf);
    if (hb_satisfiable(p, engine)) return true;
  }
  return false;
}

CheckResult check(const Analysis& analysis, const MemoryModel& model,
                  const Outcome& outcome, Engine engine) {
  CheckResult result;
  for (const RfMap& rf : enumerate_read_from(analysis, outcome)) {
    const HbProblem p = build_hb_problem(analysis, model, rf);
    std::vector<EventId> order;
    if (hb_satisfiable_witness(p, engine, order)) {
      result.allowed = true;
      result.rf = rf;
      result.order = std::move(order);
      return result;
    }
  }
  return result;
}

}  // namespace mcmc::core
