// Litmus-test admissibility checking (the paper's Section 4.1 tool core).
//
// A test outcome is allowed under a model iff SOME read-from map consistent
// with the outcome admits SOME acyclic happens-before partial order
// satisfying the axioms.  Two independent engines decide the inner
// existence question:
//
//   Engine::Sat       encodes the partial order into CNF (one boolean per
//                     ordered event pair; antisymmetry + transitivity +
//                     the HbProblem constraints) and runs the CDCL solver —
//                     the architecture the paper describes (it used
//                     MiniSat).
//   Engine::Explicit  depth-first search over the write-write / read-write
//                     disjunctions with an incrementally maintained
//                     transitive closure (bitmask rows).
//
// The engines are differential-tested against each other; Explicit is the
// default because the instances are tiny.
#pragma once

#include <vector>

#include "core/analysis.h"
#include "core/hb.h"
#include "core/model.h"
#include "core/outcome.h"
#include "core/readfrom.h"
#include "sat/dimacs.h"

namespace mcmc::core {

enum class Engine { Sat, Explicit };

/// The CNF encoding the SAT engine solves: one boolean per ordered event
/// pair (variable i*n + j for the pair (i, j)), antisymmetry and
/// transitivity clauses, plus the HbProblem constraints.  Exposed for
/// tooling (DIMACS export) and for differential-testing the encoding
/// itself.
[[nodiscard]] sat::Cnf hb_to_cnf(const HbProblem& p);

/// Result of a full admissibility check.
struct CheckResult {
  bool allowed = false;
  /// Witnesses, populated when allowed:
  RfMap rf;                     ///< the admitting read-from map
  std::vector<EventId> order;   ///< a linearization of the witness hb
};

/// Decides whether an acyclic partial order satisfying `p` exists.
[[nodiscard]] bool hb_satisfiable(const HbProblem& p, Engine engine);

/// As `hb_satisfiable`, and returns a linearization witness through `order`
/// when satisfiable.
[[nodiscard]] bool hb_satisfiable_witness(const HbProblem& p, Engine engine,
                                          std::vector<EventId>& order);

/// Decides whether `outcome` is allowed for the analyzed program under
/// `model`.
[[nodiscard]] bool is_allowed(const Analysis& analysis,
                              const MemoryModel& model, const Outcome& outcome,
                              Engine engine = Engine::Explicit);

/// As `is_allowed`, with witnesses.
[[nodiscard]] CheckResult check(const Analysis& analysis,
                                const MemoryModel& model,
                                const Outcome& outcome,
                                Engine engine = Engine::Explicit);

}  // namespace mcmc::core
