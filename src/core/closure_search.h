// Allocation-free transitive-closure DFS over happens-before
// disjunctions (internal to core; used by checker.cpp's explicit engine
// and by the prepared fast path in prepared.cpp).
//
// State is a fixed std::array of 64 reachability bitmask rows, a plain
// value type: DFS branches copy the whole state into the recursion
// frame (512 bytes on the stack) instead of heap-allocating per node,
// which is what makes the prepared explicit check zero-allocation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/analysis.h"
#include "core/hb.h"
#include "util/check.h"

namespace mcmc::core::detail {

/// Strict reachability rows: bit y of `row[x]` means x reaches y through
/// at least one edge.  Copyable by value (the DFS relies on it).
struct Reach64 {
  std::array<std::uint64_t, 64> row;

  void clear() { row.fill(0); }
  [[nodiscard]] bool holds(EventId x, EventId y) const {
    return (row[static_cast<std::size_t>(x)] & (1ULL << y)) != 0;
  }
};

/// DFS over disjunction choices with an incrementally maintained
/// transitive closure, for problems of at most 64 events.
class ClosureSearch {
 public:
  explicit ClosureSearch(int num_events) : n_(num_events) {
    MCMC_REQUIRE_MSG(n_ >= 0 && n_ <= 64,
                     "explicit engine supports up to 64 events");
    forb_.clear();
  }

  /// Marks x => y as forbidden; add_edge fails on any closure that
  /// would contain it.
  void forbid(EventId x, EventId y) {
    forb_.row[static_cast<std::size_t>(x)] |= 1ULL << y;
  }

  /// Adds u=>v and re-closes; fails on cycle or forbidden-edge
  /// violation.  Does not allocate.
  bool add_edge(Reach64& reach, EventId u, EventId v) const {
    if (u == v) return false;
    const auto sv = static_cast<std::size_t>(v);
    if ((reach.row[sv] & (1ULL << u)) != 0) return false;
    const std::uint64_t gain = (1ULL << v) | reach.row[sv];
    for (EventId i = 0; i < n_; ++i) {
      const auto si = static_cast<std::size_t>(i);
      const bool reaches_u = i == u || (reach.row[si] & (1ULL << u)) != 0;
      if (!reaches_u) continue;
      const std::uint64_t nr = reach.row[si] | gain;
      if ((nr & (1ULL << i)) != 0) return false;  // cycle through i
      if ((nr & forb_.row[si]) != 0) return false;
      reach.row[si] = nr;
    }
    return true;
  }

  /// Satisfies every disjunction in `disj[0..count)` on top of `reach`,
  /// branching depth-first with frame-local state copies (zero heap
  /// allocations per node).  On success the witness closure is kept
  /// (see `witness`).
  bool solve(Reach64& reach, const EdgeDisjunction* disj, std::size_t count) {
    std::size_t idx = 0;
    while (idx < count && (reach.holds(disj[idx].first.first,
                                       disj[idx].first.second) ||
                           reach.holds(disj[idx].second.first,
                                       disj[idx].second.second))) {
      ++idx;
    }
    if (idx == count) {
      witness_ = reach;
      return true;
    }
    const auto& d = disj[idx];
    for (const Edge& e : {d.first, d.second}) {
      Reach64 copy = reach;  // frame-local; lives on the stack
      if (add_edge(copy, e.first, e.second) && solve(copy, disj, count)) {
        return true;
      }
    }
    return false;
  }

  /// The closure accepted by the last successful `solve`.
  [[nodiscard]] const Reach64& witness() const { return witness_; }

  [[nodiscard]] int num_events() const { return n_; }

 private:
  int n_;
  Reach64 forb_;
  Reach64 witness_;
};

/// Topologically sorts the DAG described by `reach` (edge u->v iff bit v
/// of row u) into `order` via Kahn's algorithm over precomputed
/// in-degrees: O(n + E) setup and processing, replacing the previous
/// O(n^3) emit-scan.
inline void kahn_linearize(const Reach64& reach, int n,
                           std::vector<EventId>& order) {
  std::array<int, 64> indeg{};
  for (EventId u = 0; u < n; ++u) {
    std::uint64_t succ = reach.row[static_cast<std::size_t>(u)];
    while (succ != 0) {
      const int v = __builtin_ctzll(succ);
      succ &= succ - 1;
      ++indeg[static_cast<std::size_t>(v)];
    }
  }
  std::array<EventId, 64> queue{};
  int head = 0;
  int tail = 0;
  for (EventId v = 0; v < n; ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) queue[tail++] = v;
  }
  order.clear();
  while (head < tail) {
    const EventId u = queue[head++];
    order.push_back(u);
    std::uint64_t succ = reach.row[static_cast<std::size_t>(u)];
    while (succ != 0) {
      const int v = __builtin_ctzll(succ);
      succ &= succ - 1;
      if (--indeg[static_cast<std::size_t>(v)] == 0) {
        queue[tail++] = static_cast<EventId>(v);
      }
    }
  }
  MCMC_CHECK_MSG(static_cast<int>(order.size()) == n,
                 "closure was not acyclic");
}

}  // namespace mcmc::core::detail
