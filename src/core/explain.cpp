#include "core/explain.h"

#include <algorithm>

#include "core/checker.h"
#include "core/hb.h"
#include "util/check.h"

namespace mcmc::core {

namespace {

std::string event_label(const Analysis& an, EventId e) {
  const auto& ev = an.event(e);
  return "T" + std::to_string(ev.thread + 1) + ": " +
         core::to_string(*ev.instr);
}

/// Finds a cycle in the forced-edge graph, returned as edge indices into
/// p.forced; empty if the forced edges are acyclic.
std::vector<std::size_t> forced_cycle_edges(const HbProblem& p) {
  // Adjacency by forced-edge index.
  std::vector<std::vector<std::size_t>> out(
      static_cast<std::size_t>(p.num_events));
  for (std::size_t i = 0; i < p.forced.size(); ++i) {
    out[static_cast<std::size_t>(p.forced[i].first)].push_back(i);
  }
  // Iterative DFS with colors; on back edge reconstruct the cycle.
  enum class Color { White, Gray, Black };
  std::vector<Color> color(static_cast<std::size_t>(p.num_events),
                           Color::White);
  std::vector<std::size_t> parent_edge(static_cast<std::size_t>(p.num_events),
                                       SIZE_MAX);
  for (EventId root = 0; root < p.num_events; ++root) {
    if (color[static_cast<std::size_t>(root)] != Color::White) continue;
    std::vector<std::pair<EventId, std::size_t>> stack;  // node, child index
    stack.emplace_back(root, 0);
    color[static_cast<std::size_t>(root)] = Color::Gray;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const auto& edges = out[static_cast<std::size_t>(node)];
      if (child >= edges.size()) {
        color[static_cast<std::size_t>(node)] = Color::Black;
        stack.pop_back();
        continue;
      }
      const std::size_t edge_index = edges[child++];
      const EventId next = p.forced[edge_index].second;
      if (color[static_cast<std::size_t>(next)] == Color::Gray) {
        // Back edge: walk parent_edge from `node` up to `next`.
        std::vector<std::size_t> cycle = {edge_index};
        EventId walk = node;
        while (walk != next) {
          const std::size_t pe = parent_edge[static_cast<std::size_t>(walk)];
          MCMC_CHECK(pe != SIZE_MAX);
          cycle.push_back(pe);
          walk = p.forced[pe].first;
        }
        std::reverse(cycle.begin(), cycle.end());
        return cycle;
      }
      if (color[static_cast<std::size_t>(next)] == Color::White) {
        color[static_cast<std::size_t>(next)] = Color::Gray;
        parent_edge[static_cast<std::size_t>(next)] = edge_index;
        stack.emplace_back(next, 0);
      }
    }
  }
  return {};
}

}  // namespace

ForbiddenExplanation explain_forbidden(const Analysis& an,
                                       const MemoryModel& model,
                                       const Outcome& outcome) {
  ForbiddenExplanation result;
  for (const RfMap& rf : enumerate_read_from(an, outcome)) {
    HbTrace trace;
    const HbProblem p = build_hb_problem_traced(an, model, rf, trace);
    if (hb_satisfiable(p, Engine::Explicit)) {
      result.actually_allowed = true;
      result.candidates.clear();
      return result;
    }
    RfExplanation item;
    item.rf = rf;
    if (p.infeasible) {
      item.summary =
          "read-from map infeasible: a read of the initial value would "
          "skip its own thread's earlier write to the same address";
    } else {
      const auto cycle = forced_cycle_edges(p);
      if (!cycle.empty()) {
        for (const std::size_t i : cycle) {
          const auto [x, y] = p.forced[i];
          item.forced_cycle.push_back(
              event_label(an, x) + "  =>  " + event_label(an, y) + "   [" +
              to_string(trace.forced_origin[i]) + "]");
        }
        item.summary = "the forced happens-before edges close a cycle";
      } else {
        item.summary =
            "every orientation of the write-write / from-read choices "
            "closes a happens-before cycle (" +
            std::to_string(p.disjunctions.size()) + " choice points)";
      }
    }
    result.candidates.push_back(std::move(item));
  }
  if (result.candidates.empty() && !result.actually_allowed) {
    RfExplanation item;
    item.summary =
        "no read-from map matches the outcome (a constrained value is "
        "never written, or only by a program-order-later write of the "
        "same thread)";
    result.candidates.push_back(std::move(item));
  }
  return result;
}

}  // namespace mcmc::core
