// Human-readable explanations of forbidden outcomes.
//
// When an outcome is forbidden, every read-from candidate fails; for each
// one this module reports why: either the read-from map itself is
// infeasible (a read of the initial value would skip its own thread's
// earlier write) or the forced happens-before edges already close a
// cycle, which is printed edge by edge with the axiom that produced it.
// Failures that only materialize through the write-write / from-read
// disjunctions are summarized (every orientation closes some cycle).
#pragma once

#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/model.h"
#include "core/outcome.h"
#include "core/readfrom.h"

namespace mcmc::core {

/// Explanation for one read-from candidate.
struct RfExplanation {
  RfMap rf;
  /// One line per forced-cycle edge, e.g.
  /// "T1: Write X <- 1  =>  T2: Read X -> r1   [read-from]";
  /// empty if the failure is disjunction-driven or rf-infeasible.
  std::vector<std::string> forced_cycle;
  std::string summary;  ///< always set
};

/// Full explanation of a forbidden outcome.
struct ForbiddenExplanation {
  bool actually_allowed = false;  ///< outcome was allowed after all
  std::vector<RfExplanation> candidates;
};

/// Explains why (analysis, model, outcome) is forbidden.  If the outcome
/// is in fact allowed, `actually_allowed` is set and candidates are left
/// empty.
[[nodiscard]] ForbiddenExplanation explain_forbidden(const Analysis& analysis,
                                                     const MemoryModel& model,
                                                     const Outcome& outcome);

}  // namespace mcmc::core
