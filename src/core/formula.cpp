#include "core/formula.h"

#include "util/check.h"
#include "util/strings.h"

namespace mcmc::core {

struct Formula::Node {
  enum class Kind { Atom, And, Or };
  Kind kind = Kind::Atom;
  Atom atom = Atom::False;
  std::string custom_name;
  CustomPredicate custom_pred;
  std::vector<std::shared_ptr<const Node>> children;
};

Formula Formula::constant(bool value) {
  auto n = std::make_shared<Node>();
  n->atom = value ? Atom::True : Atom::False;
  return Formula(std::move(n));
}

Formula Formula::atom(Atom a) {
  MCMC_REQUIRE_MSG(a != Atom::Custom, "use Formula::custom for custom atoms");
  auto n = std::make_shared<Node>();
  n->atom = a;
  return Formula(std::move(n));
}

Formula Formula::custom(std::string name, CustomPredicate pred) {
  MCMC_REQUIRE(pred != nullptr);
  auto n = std::make_shared<Node>();
  n->atom = Atom::Custom;
  n->custom_name = std::move(name);
  n->custom_pred = std::move(pred);
  return Formula(std::move(n));
}

Formula Formula::conj(std::vector<Formula> operands) {
  MCMC_REQUIRE(!operands.empty());
  if (operands.size() == 1) return operands[0];
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::And;
  for (auto& f : operands) n->children.push_back(f.node_);
  return Formula(std::move(n));
}

Formula Formula::disj(std::vector<Formula> operands) {
  MCMC_REQUIRE(!operands.empty());
  if (operands.size() == 1) return operands[0];
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Or;
  for (auto& f : operands) n->children.push_back(f.node_);
  return Formula(std::move(n));
}

namespace {

bool eval_atom(Atom a, const std::string&, const CustomPredicate& pred,
               const Analysis& an, EventId x, EventId y) {
  switch (a) {
    case Atom::True:
      return true;
    case Atom::False:
      return false;
    case Atom::ReadX:
      return an.is_read(x);
    case Atom::ReadY:
      return an.is_read(y);
    case Atom::WriteX:
      return an.is_write(x);
    case Atom::WriteY:
      return an.is_write(y);
    case Atom::FenceX:
      return an.is_fence(x);
    case Atom::FenceY:
      return an.is_fence(y);
    case Atom::SameAddr:
      return an.same_addr(x, y);
    case Atom::DataDep:
      return an.data_dep(x, y);
    case Atom::ControlDep:
      return an.ctrl_dep(x, y);
    case Atom::Custom:
      return pred(an, x, y);
  }
  MCMC_UNREACHABLE("bad atom");
}

}  // namespace

struct FormulaEval;  // (placeholder to keep clang-format stable)

bool Formula::eval(const Analysis& analysis, EventId x, EventId y) const {
  struct Rec {
    static bool go(const Node& n, const Analysis& an, EventId x, EventId y) {
      switch (n.kind) {
        case Node::Kind::Atom:
          return eval_atom(n.atom, n.custom_name, n.custom_pred, an, x, y);
        case Node::Kind::And:
          for (const auto& c : n.children) {
            if (!go(*c, an, x, y)) return false;
          }
          return true;
        case Node::Kind::Or:
          for (const auto& c : n.children) {
            if (go(*c, an, x, y)) return true;
          }
          return false;
      }
      MCMC_UNREACHABLE("bad node kind");
    }
  };
  return Rec::go(*node_, analysis, x, y);
}

std::size_t Formula::eval_po_matrix(const Analysis& analysis,
                                    std::array<std::uint64_t, 64>& rows) const {
  MCMC_REQUIRE_MSG(analysis.masks_valid(),
                   "eval_po_matrix needs a <= 64-event analysis");
  // One frame per subformula: row x is the mask of events y for which
  // the subformula holds on (x, y).  Frames are stack values (the
  // matrix path must not heap-allocate).
  struct Matrix {
    std::array<std::uint64_t, 64> rows;
  };
  struct Rec {
    static std::size_t atom(const Node& nd, const Analysis& an, Matrix& out) {
      const int n = an.num_events();
      const std::uint64_t full = n == 64 ? ~0ULL : (1ULL << n) - 1;
      const auto fill = [&](auto&& row_of) {
        for (EventId x = 0; x < n; ++x) {
          out.rows[static_cast<std::size_t>(x)] = row_of(x);
        }
      };
      std::size_t pair_evals = 0;
      switch (nd.atom) {
        case Atom::True:
          fill([&](EventId) { return full; });
          break;
        case Atom::False:
          fill([](EventId) { return 0ULL; });
          break;
        case Atom::ReadX:
          fill([&](EventId x) { return an.is_read(x) ? full : 0ULL; });
          break;
        case Atom::ReadY:
          fill([&](EventId) { return an.reads_mask(); });
          break;
        case Atom::WriteX:
          fill([&](EventId x) { return an.is_write(x) ? full : 0ULL; });
          break;
        case Atom::WriteY:
          fill([&](EventId) { return an.writes_mask(); });
          break;
        case Atom::FenceX:
          fill([&](EventId x) { return an.is_fence(x) ? full : 0ULL; });
          break;
        case Atom::FenceY:
          fill([&](EventId) { return an.fences_mask(); });
          break;
        case Atom::SameAddr:
          fill([&](EventId x) { return an.same_addr_mask(x); });
          break;
        case Atom::DataDep:
          fill([&](EventId x) { return an.data_dep_mask(x); });
          break;
        case Atom::ControlDep:
          fill([&](EventId x) { return an.ctrl_dep_mask(x); });
          break;
        case Atom::Custom:
          // Opaque predicate: per-pair calls, restricted to the po pairs
          // the final matrix is masked to anyway.
          for (EventId x = 0; x < n; ++x) {
            std::uint64_t row = 0;
            std::uint64_t todo = an.po_mask(x);
            while (todo != 0) {
              const int y = __builtin_ctzll(todo);
              todo &= todo - 1;
              ++pair_evals;
              if (nd.custom_pred(an, x, y)) row |= 1ULL << y;
            }
            out.rows[static_cast<std::size_t>(x)] = row;
          }
          break;
      }
      return pair_evals;
    }

    static std::size_t go(const Node& nd, const Analysis& an, Matrix& out) {
      const int n = an.num_events();
      switch (nd.kind) {
        case Node::Kind::Atom:
          return atom(nd, an, out);
        case Node::Kind::And:
        case Node::Kind::Or: {
          std::size_t pair_evals = go(*nd.children.front(), an, out);
          for (std::size_t c = 1; c < nd.children.size(); ++c) {
            Matrix child;
            pair_evals += go(*nd.children[c], an, child);
            for (EventId x = 0; x < n; ++x) {
              const auto sx = static_cast<std::size_t>(x);
              if (nd.kind == Node::Kind::And) {
                out.rows[sx] &= child.rows[sx];
              } else {
                out.rows[sx] |= child.rows[sx];
              }
            }
          }
          return pair_evals;
        }
      }
      MCMC_UNREACHABLE("bad node kind");
    }
  };

  Matrix m;
  const std::size_t pair_evals = Rec::go(*node_, analysis, m);
  const int n = analysis.num_events();
  for (EventId x = 0; x < n; ++x) {
    rows[static_cast<std::size_t>(x)] =
        m.rows[static_cast<std::size_t>(x)] & analysis.po_mask(x);
  }
  for (int x = n; x < 64; ++x) rows[static_cast<std::size_t>(x)] = 0;
  return pair_evals;
}

bool Formula::is_false() const {
  return node_->kind == Node::Kind::Atom && node_->atom == Atom::False;
}

bool Formula::has_custom() const {
  struct Rec {
    static bool go(const Node& n) {
      if (n.kind == Node::Kind::Atom) return n.atom == Atom::Custom;
      for (const auto& c : n.children) {
        if (go(*c)) return true;
      }
      return false;
    }
  };
  return Rec::go(*node_);
}

namespace {

std::string atom_name(Atom a, const std::string& custom_name) {
  switch (a) {
    case Atom::True:
      return "true";
    case Atom::False:
      return "false";
    case Atom::ReadX:
      return "Read(x)";
    case Atom::ReadY:
      return "Read(y)";
    case Atom::WriteX:
      return "Write(x)";
    case Atom::WriteY:
      return "Write(y)";
    case Atom::FenceX:
      return "Fence(x)";
    case Atom::FenceY:
      return "Fence(y)";
    case Atom::SameAddr:
      return "SameAddr(x,y)";
    case Atom::DataDep:
      return "DataDep(x,y)";
    case Atom::ControlDep:
      return "ControlDep(x,y)";
    case Atom::Custom:
      return custom_name + "(x,y)";
  }
  MCMC_UNREACHABLE("bad atom");
}

}  // namespace

std::string Formula::to_string() const {
  // Parenthesize whenever a connective nests inside a different one, so
  // the rendering never relies on precedence conventions.
  struct Rec {
    static std::string go(const Node& n, Node::Kind parent) {
      switch (n.kind) {
        case Node::Kind::Atom:
          return atom_name(n.atom, n.custom_name);
        case Node::Kind::And: {
          std::vector<std::string> parts;
          for (const auto& c : n.children) {
            parts.push_back(go(*c, Node::Kind::And));
          }
          const std::string s = util::join(parts, " & ");
          return parent == Node::Kind::Or ? "(" + s + ")" : s;
        }
        case Node::Kind::Or: {
          std::vector<std::string> parts;
          for (const auto& c : n.children) {
            parts.push_back(go(*c, Node::Kind::Or));
          }
          const std::string s = util::join(parts, " | ");
          return parent == Node::Kind::And ? "(" + s + ")" : s;
        }
      }
      MCMC_UNREACHABLE("bad node kind");
    }
  };
  return Rec::go(*node_, Node::Kind::Atom);
}

Formula operator&&(const Formula& a, const Formula& b) {
  return Formula::conj({a, b});
}

Formula operator||(const Formula& a, const Formula& b) {
  return Formula::disj({a, b});
}

Formula f_true() { return Formula::constant(true); }
Formula f_false() { return Formula::constant(false); }
Formula read_x() { return Formula::atom(Atom::ReadX); }
Formula read_y() { return Formula::atom(Atom::ReadY); }
Formula write_x() { return Formula::atom(Atom::WriteX); }
Formula write_y() { return Formula::atom(Atom::WriteY); }
Formula fence_x() { return Formula::atom(Atom::FenceX); }
Formula fence_y() { return Formula::atom(Atom::FenceY); }
Formula same_addr() { return Formula::atom(Atom::SameAddr); }
Formula data_dep() { return Formula::atom(Atom::DataDep); }
Formula ctrl_dep() { return Formula::atom(Atom::ControlDep); }

}  // namespace mcmc::core
