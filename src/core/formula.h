// Quantifier-free positive boolean formulas over instruction-pair
// predicates: the representation of must-not-reorder functions F(x, y)
// (Section 2.3 of the paper).
//
// Atoms are the paper's predicates applied to the pair (x, y):
//   Read(x), Read(y), Write(x), Write(y), Fence(x), Fence(y),
//   SameAddr(x, y), DataDep(x, y), ControlDep(x, y),
// plus user-registered custom predicates (needed for the Section 3.3
// special-fence construction and for exploring exotic models).
//
// Formulas are immutable trees with value semantics; combine them with
// `&&` and `||`.  Negation is intentionally absent (the class is positive).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis.h"

namespace mcmc::core {

/// Built-in predicate atoms.
enum class Atom {
  True,
  False,
  ReadX,
  ReadY,
  WriteX,
  WriteY,
  FenceX,
  FenceY,
  SameAddr,
  DataDep,
  ControlDep,
  Custom,
};

/// Signature of a custom predicate: evaluated on the analyzed program and
/// an ordered event pair with po(x, y).
using CustomPredicate =
    std::function<bool(const Analysis&, EventId x, EventId y)>;

/// A positive boolean formula over pair predicates.
class Formula {
 public:
  /// Constant and atom factories.
  static Formula constant(bool value);
  static Formula atom(Atom a);
  /// Custom predicate atom; `name` is used for printing.
  static Formula custom(std::string name, CustomPredicate pred);

  static Formula conj(std::vector<Formula> operands);
  static Formula disj(std::vector<Formula> operands);

  /// Evaluates F(x, y) for events with po(x, y) in `analysis`.
  [[nodiscard]] bool eval(const Analysis& analysis, EventId x,
                          EventId y) const;

  /// Evaluates F over every program-order pair in ONE tree traversal:
  /// on return, bit y of `rows[x]` is set iff po(x, y) and F(x, y).
  /// Built-in atoms combine the analysis' precomputed bitmask rows
  /// word-wise; custom-predicate atoms fall back to per-pair calls.
  /// Requires `analysis.masks_valid()` (at most 64 events); performs no
  /// heap allocation for custom-free formulas.  Returns the number of
  /// per-pair fallback evaluations performed (0 when custom-free).
  std::size_t eval_po_matrix(const Analysis& analysis,
                             std::array<std::uint64_t, 64>& rows) const;

  /// Renders the formula, e.g. "(Write(x) & Write(y)) | Fence(x) | Fence(y)".
  [[nodiscard]] std::string to_string() const;

  /// True if this formula is the constant `false`.
  [[nodiscard]] bool is_false() const;

  /// True if any atom is a user-registered custom predicate (whose
  /// semantics the library cannot inspect).
  [[nodiscard]] bool has_custom() const;

  /// Stable identity of the underlying immutable tree: copies share it,
  /// independently built formulas do not.  Caches key formulas with
  /// custom predicates by identity, since structural equality cannot be
  /// decided for opaque predicate functions.
  [[nodiscard]] const void* identity() const { return node_.get(); }

 private:
  struct Node;
  explicit Formula(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

[[nodiscard]] Formula operator&&(const Formula& a, const Formula& b);
[[nodiscard]] Formula operator||(const Formula& a, const Formula& b);

// Named atom shorthands.
[[nodiscard]] Formula f_true();
[[nodiscard]] Formula f_false();
[[nodiscard]] Formula read_x();
[[nodiscard]] Formula read_y();
[[nodiscard]] Formula write_x();
[[nodiscard]] Formula write_y();
[[nodiscard]] Formula fence_x();
[[nodiscard]] Formula fence_y();
[[nodiscard]] Formula same_addr();
[[nodiscard]] Formula data_dep();
[[nodiscard]] Formula ctrl_dep();

}  // namespace mcmc::core
