// Happens-before constraint generation (Section 2.2).
//
// Given an analyzed program, a must-not-reorder function F, and a
// read-from map, the paper's axioms induce constraints on a candidate
// happens-before partial order `=>`:
//
//   Program order   F(x,y) and x <po y           =>  x => y        (forced)
//   Write-write     writes x,y to one address    =>  x=>y or y=>x  (choice;
//                                                    forced forward when
//                                                    same-thread)
//   Write-read      x |-> y across threads       =>  x => y        (forced)
//   Read-write      read x, write y to x's addr,
//                   y not x's source             =>  x=>y or y=>rf(x)
//                                                    (see hb.cpp for the
//                                                    initial-value and
//                                                    local-write cases)
//   Ignore local    restricts generated edges to never point backward
//                   within a thread (see the note in hb.cpp)
//
// The execution is allowed iff some acyclic relation satisfies all of
// them.  `HbProblem` is the engine-independent form of these constraints;
// the two deciding engines live in checker.cpp.
#pragma once

#include <utility>
#include <vector>

#include "core/analysis.h"
#include "core/model.h"
#include "core/readfrom.h"

namespace mcmc::core {

/// An ordered-pair constraint `first => second`.
using Edge = std::pair<EventId, EventId>;

/// "HB(a,b) or HB(c,d)" — exactly the shape produced by the write-write
/// and read-write axioms.
struct EdgeDisjunction {
  Edge first;
  Edge second;

  friend bool operator==(const EdgeDisjunction& a, const EdgeDisjunction& b) {
    return a.first == b.first && a.second == b.second;
  }
};

/// Which axiom produced a forced edge (used by explanations).
enum class EdgeOrigin {
  ProgramOrder,   ///< F(x,y) with x <po y
  Coherence,      ///< same-thread same-address write pair
  ReadFrom,       ///< cross-thread rf
  FromRead,       ///< read of the initial value before a write
  CoherenceEscape ///< skipped local write ordered before the read's source
};

[[nodiscard]] const char* to_string(EdgeOrigin origin);

/// Engine-independent happens-before constraint set.  Deliberately free
/// of provenance bookkeeping — this is the struct the hot check path
/// builds; explanation/witness callers use `build_hb_problem_traced` to
/// get origins alongside.
struct HbProblem {
  int num_events = 0;
  bool infeasible = false;                   ///< rf contradicts coherence
  std::vector<Edge> forced;                  ///< must be in =>
  std::vector<Edge> forbidden;               ///< must NOT be in =>
  std::vector<EdgeDisjunction> disjunctions; ///< at least one must hold
};

/// Provenance of a problem's forced edges; `forced_origin[i]` explains
/// `problem.forced[i]`.
struct HbTrace {
  std::vector<EdgeOrigin> forced_origin;
};

/// The model-independent slice of an rf map's HbProblem: every
/// constraint except the program-order (F) edges, which are the only
/// part that varies across models.  core::PreparedTest builds one per
/// rf map and shares it across an entire model space.
struct HbSkeleton {
  bool infeasible = false;                   ///< rf contradicts coherence
  std::vector<Edge> forced;                  ///< coherence / rf / fr edges
  std::vector<EdgeDisjunction> disjunctions; ///< ww + rw choices
};

/// Instantiates the five axioms for (analysis, model, rf).
[[nodiscard]] HbProblem build_hb_problem(const Analysis& analysis,
                                         const MemoryModel& model,
                                         const RfMap& rf);

/// As `build_hb_problem`, recording each forced edge's origin into
/// `trace` (the explanation path; the hot path skips the bookkeeping).
[[nodiscard]] HbProblem build_hb_problem_traced(const Analysis& analysis,
                                                const MemoryModel& model,
                                                const RfMap& rf,
                                                HbTrace& trace);

/// Instantiates only the model-independent axioms (everything but
/// program order) for (analysis, rf).
[[nodiscard]] HbSkeleton build_hb_skeleton(const Analysis& analysis,
                                           const RfMap& rf);

}  // namespace mcmc::core
