#include "core/instruction.h"

#include "util/check.h"

namespace mcmc::core {

std::string loc_name(Loc loc) {
  MCMC_REQUIRE(loc >= 0);
  static const char* kNames[] = {"X", "Y", "Z", "W"};
  if (loc < 4) return kNames[loc];
  return "A" + std::to_string(loc);
}

std::string reg_name(Reg reg) {
  MCMC_REQUIRE(reg >= 0);
  return "r" + std::to_string(reg);
}

std::string to_string(const Instruction& i, bool value_is_loc) {
  switch (i.op) {
    case Op::Read: {
      const std::string addr = (i.addr_reg >= 0)
                                   ? "[" + reg_name(i.addr_reg) + "]"
                                   : loc_name(i.loc);
      return "Read " + addr + " -> " + reg_name(i.dst);
    }
    case Op::Write: {
      const std::string addr = (i.addr_reg >= 0)
                                   ? "[" + reg_name(i.addr_reg) + "]"
                                   : loc_name(i.loc);
      const std::string val =
          i.value_from_reg ? reg_name(i.src) : std::to_string(i.value);
      return "Write " + addr + " <- " + val;
    }
    case Op::Fence:
      return "Fence";
    case Op::DepConst: {
      const std::string c =
          value_is_loc ? loc_name(i.value) : std::to_string(i.value);
      return reg_name(i.dst) + " = " + reg_name(i.src) + "-" +
             reg_name(i.src) + "+" + c;
    }
    case Op::Branch:
      return "Branch " + reg_name(i.src);
  }
  MCMC_UNREACHABLE("bad opcode");
}

}  // namespace mcmc::core
