// Instruction IR for litmus-test programs.
//
// The paper's class of memory models (Section 2) distinguishes memory
// access instructions (reads and writes) from everything else (fences,
// arithmetic, branches).  This IR carries exactly the structure the
// paper's predicates need:
//
//   Read     loads from a location into a destination register,
//   Write    stores an immediate (or register-derived) value,
//   Fence    a full memory fence,
//   DepConst the paper's dependency idiom `t = r - r + c`: the value is the
//            constant `c` no matter what `r` holds, but a data dependency
//            on `r` is real.  Used to build data-dependent addresses and
//            store values (tests L4, L6, L8, L9 in Figure 3),
//   Branch   a conditional branch marker whose condition is a register;
//            instructions after it are control-dependent on whatever the
//            condition register depends on.
//
// Static-resolvability restriction: addresses and written values must be
// statically determined (immediates or DepConst chains).  Only the values
// *loaded by reads* vary between executions.  Every litmus test in the
// paper (and every test the bounded-test theorem needs) has this shape; it
// is what makes outcome-constrained read-from enumeration finite and
// cheap.
#pragma once

#include <string>

namespace mcmc::core {

/// Instruction opcode.
enum class Op { Read, Write, Fence, DepConst, Branch };

/// Symbolic memory location index (0 = "X", 1 = "Y", ...).
using Loc = int;

/// Register index, unique across the whole program (SSA-style).
using Reg = int;

constexpr int kNoReg = -1;
constexpr int kNoLoc = -1;

/// One instruction.  Use the factory functions below instead of aggregate
/// initialization; they keep the unused fields in their inert state.
struct Instruction {
  Op op = Op::Fence;

  Loc loc = kNoLoc;       ///< direct address for Read/Write (if addr_reg < 0)
  Reg addr_reg = kNoReg;  ///< indirect address register for Read/Write
  Reg dst = kNoReg;       ///< defined register (Read, DepConst)
  Reg src = kNoReg;       ///< consumed register (DepConst, Branch,
                          ///<   Write with value_from_reg)
  int value = 0;          ///< immediate: stored value (Write), constant
                          ///<   (DepConst, where it may encode a location)
  bool value_from_reg = false;  ///< Write takes its value from `src`

  [[nodiscard]] bool is_memory_access() const {
    return op == Op::Read || op == Op::Write;
  }
};

/// `Read loc -> r dst`
[[nodiscard]] inline Instruction make_read(Loc loc, Reg dst) {
  Instruction i;
  i.op = Op::Read;
  i.loc = loc;
  i.dst = dst;
  return i;
}

/// `Read [addr_reg] -> r dst` (register-indirect address)
[[nodiscard]] inline Instruction make_read_indirect(Reg addr_reg, Reg dst) {
  Instruction i;
  i.op = Op::Read;
  i.addr_reg = addr_reg;
  i.dst = dst;
  return i;
}

/// `Write loc <- value`
[[nodiscard]] inline Instruction make_write(Loc loc, int value) {
  Instruction i;
  i.op = Op::Write;
  i.loc = loc;
  i.value = value;
  return i;
}

/// `Write loc <- r src` (value from a register; must be statically
/// resolvable, i.e. DepConst-defined)
[[nodiscard]] inline Instruction make_write_from_reg(Loc loc, Reg src) {
  Instruction i;
  i.op = Op::Write;
  i.loc = loc;
  i.src = src;
  i.value_from_reg = true;
  return i;
}

/// `Write [addr_reg] <- value` (register-indirect address)
[[nodiscard]] inline Instruction make_write_indirect(Reg addr_reg, int value) {
  Instruction i;
  i.op = Op::Write;
  i.addr_reg = addr_reg;
  i.value = value;
  return i;
}

/// Full memory fence.
[[nodiscard]] inline Instruction make_fence() {
  Instruction i;
  i.op = Op::Fence;
  return i;
}

/// `r dst = r src - r src + value` — the dependency idiom.
[[nodiscard]] inline Instruction make_dep_const(Reg dst, Reg src, int value) {
  Instruction i;
  i.op = Op::DepConst;
  i.dst = dst;
  i.src = src;
  i.value = value;
  return i;
}

/// Conditional branch on `src` (target irrelevant for litmus purposes).
[[nodiscard]] inline Instruction make_branch(Reg src) {
  Instruction i;
  i.op = Op::Branch;
  i.src = src;
  return i;
}

/// Human-readable location name: X, Y, Z, W, A5, A6, ...
[[nodiscard]] std::string loc_name(Loc loc);

/// Human-readable register name: r0, r1, ...
[[nodiscard]] std::string reg_name(Reg reg);

/// Renders one instruction, e.g. "Write X <- 1" or "r2 = r1-r1+Y".
/// `value_is_loc` tells the printer to render DepConst constants as
/// location names (used when the register feeds an address).
[[nodiscard]] std::string to_string(const Instruction& instr,
                                    bool value_is_loc = false);

}  // namespace mcmc::core
