#include "core/key_facts.h"

namespace mcmc::core {

void KeyFacts::grow_reg_tables(Reg reg) {
  const auto need = static_cast<std::size_t>(reg) + 1;
  if (reg_value_gen_.size() < need) {
    reg_value_gen_.resize(need, 0);
    reg_value_.resize(need, 0);
    reg_def_gen_.resize(need, 0);
    reg_def_.resize(need, 0);
    reg_defined_gen_.resize(need, 0);
  }
}

bool KeyFacts::build(const Program& program) {
  ++gen_;
  events_.clear();
  taint_.clear();
  ctrl_.clear();
  thread_base_.clear();
  thread_base_.push_back(0);

  const int num_threads = program.num_threads();
  for (int t = 0; t < num_threads; ++t) {
    const auto& th = program.thread(t);
    const int len = static_cast<int>(th.size());
    if (len > 64) return false;  // dependency masks hold 64 positions

    // Union of the taint of every branch so far: the control-dependency
    // sources of whatever comes next (Analysis::compute_deps's cdep).
    std::uint64_t branch_sources = 0;
    for (int j = 0; j < len; ++j) {
      const auto& instr = th[static_cast<std::size_t>(j)];
      // Transitive data-dependency sources of instruction j, as a mask
      // over earlier positions of this thread.  Consuming a register
      // absorbs its defining position and, transitively, that
      // position's own (already final) sources.
      std::uint64_t sources = 0;
      bool resolvable = true;
      const auto absorb = [&](Reg r) {
        if (r < 0) return;
        if (static_cast<std::size_t>(r) >= reg_def_gen_.size() ||
            reg_def_gen_[static_cast<std::size_t>(r)] != gen_) {
          return;  // defined in another thread: validate() rejects this
        }
        const int d = reg_def_[static_cast<std::size_t>(r)];
        sources |= (1ULL << d) |
                   taint_[static_cast<std::size_t>(thread_base_.back() + d)];
      };
      const auto static_value = [&](Reg r, int& out) {
        if (static_cast<std::size_t>(r) < reg_value_gen_.size() &&
            reg_value_gen_[static_cast<std::size_t>(r)] == gen_) {
          out = reg_value_[static_cast<std::size_t>(r)];
          return;
        }
        resolvable = false;
      };
      absorb(instr.addr_reg);
      if (instr.op == Op::DepConst || instr.op == Op::Branch) {
        absorb(instr.src);
      }
      if (instr.op == Op::Write && instr.value_from_reg) absorb(instr.src);

      Event e;
      e.op = instr.op;
      e.dst = instr.dst;
      if (instr.op == Op::DepConst) {
        e.value = instr.value;
        if (instr.dst >= 0) {
          grow_reg_tables(instr.dst);
          reg_value_gen_[static_cast<std::size_t>(instr.dst)] = gen_;
          reg_value_[static_cast<std::size_t>(instr.dst)] = instr.value;
        }
      }
      if (instr.is_memory_access()) {
        if (instr.addr_reg >= 0) {
          static_value(instr.addr_reg, e.loc);
          if (e.loc < 0) resolvable = false;
        } else {
          e.loc = instr.loc;
        }
      }
      if (instr.op == Op::Write && instr.value_from_reg) {
        static_value(instr.src, e.value);
      } else if (instr.op == Op::Write) {
        e.value = instr.value;
      }
      if (!resolvable) return false;  // Analysis would MCMC_CHECK here
      if (instr.dst >= 0) {
        grow_reg_tables(instr.dst);
        reg_def_gen_[static_cast<std::size_t>(instr.dst)] = gen_;
        reg_def_[static_cast<std::size_t>(instr.dst)] = j;
        reg_defined_gen_[static_cast<std::size_t>(instr.dst)] = gen_;
      }

      events_.push_back(e);
      taint_.push_back(sources);
      ctrl_.push_back(branch_sources);
      if (instr.op == Op::Branch) branch_sources |= sources;
    }
    thread_base_.push_back(static_cast<int>(events_.size()));
  }
  return true;
}

}  // namespace mcmc::core
