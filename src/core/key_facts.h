// The slice of core::Analysis that canonical fingerprinting needs:
// resolved events plus within-thread dependency bits — nothing else.
//
// The streaming pipeline computes one dedup key per streamed test
// (millions per run), and a full Analysis is overkill for that: keys
// never consult rf indexes, po-pair counts, or predicate bitmask rows,
// and the Analysis constructor re-validates the program and heap-
// allocates O(events^2) dependency matrices per test.  KeyFacts
// resolves the same events and the same transitive data/control
// dependency relation into flat per-thread 64-bit masks, reusing its
// buffers across builds (generation-stamped register tables, no
// std::map), so the steady-state cost of keying a test is zero heap
// allocations.
//
// KeyFacts trusts its input: callers hand it programs that already
// passed Program::validate (litmus::LitmusTest validates at
// construction).  On the shapes validation rules out — an unresolvable
// address or store-value register, or a thread longer than 64
// instructions (the mask width) — build() returns false and the caller
// falls back to the full Analysis path.  Both bail-out conditions are
// invariant under thread permutation and location/value renaming, so a
// canonical class never straddles the fast and fallback paths.
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.h"

namespace mcmc::core {

/// Resolved events + within-thread dependency bitmasks of one program,
/// with buffers reused across build() calls.
class KeyFacts {
 public:
  /// A resolved instruction execution (the fields canonical keys read;
  /// compare core::Event).
  struct Event {
    Op op = Op::Fence;
    Loc loc = kNoLoc;  ///< resolved address (memory accesses only)
    int value = 0;     ///< resolved store value (writes) / constant
    Reg dst = kNoReg;  ///< defined register
  };

  /// Rebuilds the facts for `program`; returns false when the program
  /// falls outside the fast path (see the header comment) and nothing
  /// may be read.  Amortized allocation-free: tables grow to the
  /// high-water mark and are reset by generation counter.
  [[nodiscard]] bool build(const Program& program);

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(thread_base_.size()) - 1;
  }
  [[nodiscard]] int thread_len(int t) const {
    return thread_base_[static_cast<std::size_t>(t) + 1] -
           thread_base_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] const Event& event(int t, int i) const {
    return events_[static_cast<std::size_t>(
        thread_base_[static_cast<std::size_t>(t)] + i)];
  }

  /// Bit i set iff instruction j of thread t transitively data-depends
  /// on instruction i (i < j, same thread) — Analysis::data_dep
  /// restricted to within-thread pairs, which is all of it.
  [[nodiscard]] std::uint64_t data_dep_bits(int t, int j) const {
    return taint_[static_cast<std::size_t>(
        thread_base_[static_cast<std::size_t>(t)] + j)];
  }
  /// Bit i set iff instruction j of thread t is control-dependent on
  /// instruction i: i feeds the condition of some branch before j.
  [[nodiscard]] std::uint64_t ctrl_dep_bits(int t, int j) const {
    return ctrl_[static_cast<std::size_t>(
        thread_base_[static_cast<std::size_t>(t)] + j)];
  }

  /// True iff some event of the last built program defines `reg`.
  [[nodiscard]] bool defines(Reg reg) const {
    return reg >= 0 &&
           static_cast<std::size_t>(reg) < reg_defined_gen_.size() &&
           reg_defined_gen_[static_cast<std::size_t>(reg)] == gen_;
  }

 private:
  /// Ensures the register tables cover `reg`.
  void grow_reg_tables(Reg reg);

  std::vector<Event> events_;            // thread-major, like Analysis
  std::vector<int> thread_base_;         // first event of each thread + end
  std::vector<std::uint64_t> taint_;     // per event: data-dep source bits
  std::vector<std::uint64_t> ctrl_;      // per event: ctrl-dep source bits

  // Flat register tables, valid when their stamp equals gen_.  Registers
  // are program-unique (SSA, enforced by validate), so one program-wide
  // table works even though resolution is per-thread in Analysis.
  std::vector<std::uint64_t> reg_value_gen_;  // DepConst static value stamp
  std::vector<int> reg_value_;
  std::vector<std::uint64_t> reg_def_gen_;    // defining-position stamp
  std::vector<int> reg_def_;                  // position within its thread
  std::vector<std::uint64_t> reg_defined_gen_;  // defined-anywhere stamp
  std::uint64_t gen_ = 0;
};

}  // namespace mcmc::core
