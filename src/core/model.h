// Memory models as must-not-reorder functions (Section 2.2).
//
// A model in the paper's class is fully determined by its must-not-reorder
// function F(x, y); the happens-before axioms are shared by the whole
// class.  `MemoryModel` pairs a printable name with the formula.
#pragma once

#include <string>
#include <utility>

#include "core/analysis.h"
#include "core/formula.h"

namespace mcmc::core {

/// A named memory model in the paper's class.
class MemoryModel {
 public:
  MemoryModel(std::string name, Formula must_not_reorder)
      : name_(std::move(name)), f_(std::move(must_not_reorder)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Formula& formula() const { return f_; }

  /// F(x, y): true iff x and y must execute in program order.  Defined for
  /// pairs with po(x, y).
  [[nodiscard]] bool must_not_reorder(const Analysis& analysis, EventId x,
                                      EventId y) const {
    return f_.eval(analysis, x, y);
  }

 private:
  std::string name_;
  Formula f_;
};

}  // namespace mcmc::core
