#include "core/outcome.h"

#include "util/check.h"

namespace mcmc::core {

Outcome::Outcome(std::vector<std::pair<Reg, int>> constraints) {
  for (const auto& [reg, value] : constraints) require(reg, value);
}

void Outcome::require(Reg reg, int value) {
  MCMC_REQUIRE(reg >= 0);
  MCMC_REQUIRE_MSG(!required(reg).has_value(),
                   "register constrained more than once");
  constraints_.emplace_back(reg, value);
}

std::optional<int> Outcome::required(Reg reg) const {
  for (const auto& [r, v] : constraints_) {
    if (r == reg) return v;
  }
  return std::nullopt;
}

std::string Outcome::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i) out += "; ";
    out += reg_name(constraints_[i].first) + " = " +
           std::to_string(constraints_[i].second);
  }
  return out;
}

}  // namespace mcmc::core
