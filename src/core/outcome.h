// Litmus-test outcomes: constraints on final register values.
//
// A litmus test asks "can the program end with these register values?"
// (e.g. Figure 1's `r1 = 0; r2 = 2; r3 = 0`).  Registers not mentioned are
// unconstrained.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/instruction.h"

namespace mcmc::core {

/// A conjunction of register-equals-value constraints.
class Outcome {
 public:
  Outcome() = default;
  explicit Outcome(std::vector<std::pair<Reg, int>> constraints);

  /// Adds `reg == value`; a register may be constrained at most once.
  void require(Reg reg, int value);

  /// The required value of `reg`, if constrained.
  [[nodiscard]] std::optional<int> required(Reg reg) const;

  [[nodiscard]] const std::vector<std::pair<Reg, int>>& constraints() const {
    return constraints_;
  }

  [[nodiscard]] bool empty() const { return constraints_.empty(); }

  /// Renders e.g. "r1 = 0; r2 = 2; r3 = 0".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Outcome& a, const Outcome& b) {
    return a.constraints_ == b.constraints_;
  }

 private:
  std::vector<std::pair<Reg, int>> constraints_;
};

}  // namespace mcmc::core
