#include "core/prepared.h"

#include "core/closure_search.h"
#include "util/check.h"

namespace mcmc::core {

PreparedTest::PreparedTest(const Program& program, Outcome outcome)
    : PreparedTest(Analysis(program), std::move(outcome)) {}

PreparedTest::PreparedTest(Analysis analysis, Outcome outcome)
    : analysis_(std::move(analysis)), outcome_(std::move(outcome)) {
  rf_maps_ = enumerate_read_from(analysis_, outcome_);
  skeletons_.reserve(rf_maps_.size());
  for (const RfMap& rf : rf_maps_) {
    skeletons_.push_back(build_hb_skeleton(analysis_, rf));
  }
}

void PreparedTest::compile_mask(const MemoryModel& model, ReorderMask& out,
                                PreparedCheckStats* stats) const {
  out.num_events = analysis_.num_events();
  const std::size_t pair_evals =
      model.formula().eval_po_matrix(analysis_, out.rows);
  if (stats != nullptr) stats->formula_evals += 1 + pair_evals;
}

bool PreparedTest::allowed(const MemoryModel& model, Engine engine,
                           PreparedCheckStats* stats) const {
  if (rf_maps_.empty()) return false;
  if (engine == Engine::Explicit || analysis_.masks_valid()) {
    MCMC_REQUIRE_MSG(analysis_.masks_valid(),
                     "explicit engine supports up to 64 events");
    ReorderMask mask;
    compile_mask(model, mask, stats);
    if (engine == Engine::Explicit) return allowed_explicit(mask, stats);
    // SAT on a small instance: materialize each problem from the mask +
    // skeleton (the SAT encoding needs explicit edge lists anyway).
    const int n = analysis_.num_events();
    for (std::size_t k = 0; k < skeletons_.size(); ++k) {
      const HbSkeleton& skel = skeletons_[k];
      if (stats != nullptr) {
        ++stats->skeletons_used;
        stats->equivalent_pair_evals +=
            static_cast<std::size_t>(analysis_.num_po_pairs());
      }
      if (skel.infeasible) continue;
      HbProblem p;
      p.num_events = n;
      for (EventId x = 0; x < n; ++x) {
        std::uint64_t row = mask.rows[static_cast<std::size_t>(x)];
        while (row != 0) {
          const int y = __builtin_ctzll(row);
          row &= row - 1;
          p.forced.emplace_back(x, y);
        }
      }
      p.forced.insert(p.forced.end(), skel.forced.begin(), skel.forced.end());
      p.disjunctions = skel.disjunctions;
      if (hb_satisfiable(p, Engine::Sat)) return true;
    }
    return false;
  }
  return allowed_via_problems(model, engine, stats);
}

bool PreparedTest::allowed_explicit(const ReorderMask& mask,
                                    PreparedCheckStats* stats) const {
  const int n = analysis_.num_events();
  detail::ClosureSearch search(n);
  // Base closure over the model's program-order edges, built once and
  // copied per rf map (the skeletons differ, the po overlay does not).
  detail::Reach64 base;
  base.clear();
  for (EventId x = 0; x < n; ++x) {
    std::uint64_t row = mask.rows[static_cast<std::size_t>(x)];
    while (row != 0) {
      const int y = __builtin_ctzll(row);
      row &= row - 1;
      // Program order is acyclic and nothing is forbidden yet, so the
      // closure cannot fail here.
      MCMC_CHECK(search.add_edge(base, x, y));
    }
  }

  for (std::size_t k = 0; k < skeletons_.size(); ++k) {
    const HbSkeleton& skel = skeletons_[k];
    if (stats != nullptr) {
      ++stats->skeletons_used;
      // The per-cell path would rebuild this rf map's HbProblem,
      // re-evaluating F on every po pair.
      stats->equivalent_pair_evals +=
          static_cast<std::size_t>(analysis_.num_po_pairs());
    }
    if (skel.infeasible) continue;
    detail::Reach64 reach = base;
    bool ok = true;
    for (const auto& [x, y] : skel.forced) {
      if (!search.add_edge(reach, x, y)) {
        ok = false;
        break;
      }
    }
    if (ok && search.solve(reach, skel.disjunctions.data(),
                           skel.disjunctions.size())) {
      return true;
    }
  }
  return false;
}

bool PreparedTest::allowed_via_problems(const MemoryModel& model,
                                        Engine engine,
                                        PreparedCheckStats* stats) const {
  // Beyond 64 events there are no bitmask rows; evaluate F per pair once
  // (still hoisted out of the per-rf-map loop) and share the edge list.
  const int n = analysis_.num_events();
  std::vector<Edge> po_forced;
  for (EventId x = 0; x < n; ++x) {
    for (EventId y = 0; y < n; ++y) {
      if (x == y || !analysis_.po(x, y)) continue;
      if (stats != nullptr) ++stats->formula_evals;
      if (model.must_not_reorder(analysis_, x, y)) po_forced.emplace_back(x, y);
    }
  }
  for (std::size_t k = 0; k < skeletons_.size(); ++k) {
    const HbSkeleton& skel = skeletons_[k];
    if (stats != nullptr) {
      ++stats->skeletons_used;
      stats->equivalent_pair_evals +=
          static_cast<std::size_t>(analysis_.num_po_pairs());
    }
    if (skel.infeasible) continue;
    HbProblem p;
    p.num_events = n;
    p.forced = po_forced;
    p.forced.insert(p.forced.end(), skel.forced.begin(), skel.forced.end());
    p.disjunctions = skel.disjunctions;
    if (hb_satisfiable(p, engine)) return true;
  }
  return false;
}

}  // namespace mcmc::core
