// The prepared-check fast path: hoists everything model-independent out
// of the (model x test) product.
//
// core::is_allowed re-does three things for every (model, test) cell
// that do not depend on the model at all: analyzing the program,
// enumerating the read-from maps consistent with the outcome, and
// instantiating the write-write / read-from / from-read constraints of
// each rf map.  Only the program-order edges — F(x, y) over po pairs —
// vary across models.  PreparedTest performs the shared work once:
//
//   prepare            Analysis + rf enumeration + one HbSkeleton per
//                      rf map (built once, shared by every model),
//   compile            the model's F evaluated over ALL po pairs in a
//                      single formula traversal into per-event 64-bit
//                      row masks (ReorderMask) — not one tree-walk per
//                      pair per rf map per cell,
//   check              base po-closure from the mask, then per skeleton
//                      a frame-local closure DFS with zero heap
//                      allocations per node (closure_search.h).
//
// Verdicts are bit-for-bit identical to core::is_allowed: rf maps are
// visited in enumeration order and the same axioms are instantiated.
// engine::VerdictEngine routes every batch through this path; the
// witness/explanation APIs (core::check, explain_forbidden) keep the
// classic per-cell constructors.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/hb.h"
#include "core/model.h"
#include "core/outcome.h"
#include "core/readfrom.h"

namespace mcmc::core {

/// A compiled must-not-reorder function against one analysis: bit y of
/// `rows[x]` is set iff po(x, y) and F(x, y).  Fixed-size so compiling
/// into one performs no heap allocation.
struct ReorderMask {
  int num_events = 0;
  std::array<std::uint64_t, 64> rows{};
};

/// Accounting of prepared checks, aggregated into engine::EngineStats.
struct PreparedCheckStats {
  /// Formula evaluations actually performed: one per compiled matrix
  /// traversal plus one per per-pair fallback (custom predicates or
  /// >64-event analyses).
  std::size_t formula_evals = 0;
  /// Per-pair F evaluations the unprepared per-cell path would have
  /// performed for the same verdict (po pairs x rf maps it would try,
  /// honoring its first-hit early exit).
  std::size_t equivalent_pair_evals = 0;
  /// Skeletons consulted instead of rebuilt.
  std::size_t skeletons_used = 0;

  PreparedCheckStats& operator+=(const PreparedCheckStats& other) {
    formula_evals += other.formula_evals;
    equivalent_pair_evals += other.equivalent_pair_evals;
    skeletons_used += other.skeletons_used;
    return *this;
  }
};

/// One litmus test prepared for checking against many models: the
/// model-independent skeleton of the admissibility question.  Immutable
/// after construction and safe to share across threads.
class PreparedTest {
 public:
  /// Analyzes `program` and enumerates the outcome's rf maps and their
  /// skeletons.  The program must outlive the prepared test (as with
  /// Analysis).
  PreparedTest(const Program& program, Outcome outcome);

  /// Adopts an already-built analysis instead of re-analyzing (the
  /// batched engine computes cache keys from bare analyses first and
  /// only prepares the tests that miss).  The analyzed program must
  /// still outlive the prepared test.
  PreparedTest(Analysis analysis, Outcome outcome);

  [[nodiscard]] const Analysis& analysis() const { return analysis_; }
  [[nodiscard]] const Outcome& outcome() const { return outcome_; }
  /// Rf maps in enumeration order (empty when the outcome is statically
  /// impossible), and their parallel skeletons.
  [[nodiscard]] const std::vector<RfMap>& rf_maps() const { return rf_maps_; }
  [[nodiscard]] const std::vector<HbSkeleton>& skeletons() const {
    return skeletons_;
  }

  /// Compiles the model's F into row masks against this analysis via
  /// one Formula::eval_po_matrix traversal.  Requires
  /// `analysis().masks_valid()`.
  void compile_mask(const MemoryModel& model, ReorderMask& out,
                    PreparedCheckStats* stats = nullptr) const;

  /// Decides whether the outcome is allowed under `model` — the same
  /// verdict as core::is_allowed(analysis, model, outcome, engine).
  /// With Engine::Explicit (<= 64 events) the check is allocation-free.
  [[nodiscard]] bool allowed(const MemoryModel& model,
                             Engine engine = Engine::Explicit,
                             PreparedCheckStats* stats = nullptr) const;

 private:
  [[nodiscard]] bool allowed_explicit(const ReorderMask& mask,
                                      PreparedCheckStats* stats) const;
  [[nodiscard]] bool allowed_via_problems(const MemoryModel& model,
                                          Engine engine,
                                          PreparedCheckStats* stats) const;

  Analysis analysis_;
  Outcome outcome_;
  std::vector<RfMap> rf_maps_;
  std::vector<HbSkeleton> skeletons_;
};

}  // namespace mcmc::core
