#include "core/program.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/check.h"
#include "util/strings.h"

namespace mcmc::core {

Program::Program(std::vector<Thread> threads) : threads_(std::move(threads)) {}

const Thread& Program::thread(int t) const {
  MCMC_REQUIRE(t >= 0 && t < num_threads());
  return threads_[static_cast<std::size_t>(t)];
}

Thread& Program::mutable_thread(int t) {
  MCMC_REQUIRE(t >= 0 && t < num_threads());
  return threads_[static_cast<std::size_t>(t)];
}

int Program::add_thread(Thread thread) {
  threads_.push_back(std::move(thread));
  return num_threads() - 1;
}

int Program::size() const {
  int n = 0;
  for (const auto& t : threads_) n += static_cast<int>(t.size());
  return n;
}

int Program::num_memory_accesses() const {
  int n = 0;
  for (const auto& t : threads_) {
    for (const auto& i : t) {
      if (i.is_memory_access()) ++n;
    }
  }
  return n;
}

int Program::num_locations() const {
  int hi = -1;
  for (const auto& t : threads_) {
    for (const auto& i : t) {
      if (i.is_memory_access() && i.addr_reg < 0) hi = std::max(hi, i.loc);
    }
  }
  // Indirect addresses resolve through DepConst constants; scan those too.
  for (const auto& t : threads_) {
    std::map<Reg, int> dep_consts;
    for (const auto& i : t) {
      if (i.op == Op::DepConst) dep_consts[i.dst] = i.value;
      if (i.is_memory_access() && i.addr_reg >= 0) {
        const auto it = dep_consts.find(i.addr_reg);
        if (it != dep_consts.end()) hi = std::max(hi, it->second);
      }
    }
  }
  return hi + 1;
}

int Program::num_registers() const {
  int hi = -1;
  for (const auto& t : threads_) {
    for (const auto& i : t) {
      hi = std::max({hi, i.dst, i.src, i.addr_reg});
    }
  }
  return hi + 1;
}

void Program::validate() const {
  std::map<Reg, std::pair<int, int>> def_site;  // reg -> (thread, index)
  for (int t = 0; t < num_threads(); ++t) {
    const auto& th = threads_[static_cast<std::size_t>(t)];
    for (int i = 0; i < static_cast<int>(th.size()); ++i) {
      const auto& instr = th[static_cast<std::size_t>(i)];
      if (instr.dst >= 0) {
        if (!def_site.emplace(instr.dst, std::make_pair(t, i)).second) {
          throw std::invalid_argument("register " + reg_name(instr.dst) +
                                      " defined more than once");
        }
      }
    }
  }
  auto check_use = [&](Reg r, int t, int i, bool must_be_static) {
    const auto it = def_site.find(r);
    if (it == def_site.end()) {
      throw std::invalid_argument("register " + reg_name(r) +
                                  " used but never defined");
    }
    const auto [dt, di] = it->second;
    if (dt != t || di >= i) {
      throw std::invalid_argument("register " + reg_name(r) +
                                  " used before its definition");
    }
    if (must_be_static) {
      const auto& def = threads_[static_cast<std::size_t>(dt)]
                                [static_cast<std::size_t>(di)];
      if (def.op != Op::DepConst) {
        throw std::invalid_argument(
            "register " + reg_name(r) +
            " must be statically resolvable (DepConst-defined) where used "
            "as an address or store value");
      }
    }
  };
  for (int t = 0; t < num_threads(); ++t) {
    const auto& th = threads_[static_cast<std::size_t>(t)];
    for (int i = 0; i < static_cast<int>(th.size()); ++i) {
      const auto& instr = th[static_cast<std::size_t>(i)];
      if (instr.addr_reg >= 0) check_use(instr.addr_reg, t, i, true);
      if (instr.op == Op::Write && instr.value_from_reg) {
        check_use(instr.src, t, i, true);
      }
      if (instr.op == Op::DepConst || instr.op == Op::Branch) {
        check_use(instr.src, t, i, false);
      }
      if (instr.is_memory_access() && instr.addr_reg < 0 && instr.loc < 0) {
        throw std::invalid_argument("memory access without an address");
      }
    }
  }
}

std::string Program::to_string() const {
  std::vector<std::vector<std::string>> cols;
  std::size_t rows = 0;
  for (const auto& th : threads_) {
    std::vector<std::string> col;
    // Mark DepConst registers that feed addresses so the printer shows
    // location names for their constants.
    std::vector<bool> feeds_addr(th.size(), false);
    for (std::size_t i = 0; i < th.size(); ++i) {
      if (th[i].addr_reg < 0) continue;
      for (std::size_t j = 0; j < i; ++j) {
        if (th[j].op == Op::DepConst && th[j].dst == th[i].addr_reg) {
          feeds_addr[j] = true;
        }
      }
    }
    for (std::size_t i = 0; i < th.size(); ++i) {
      col.push_back(core::to_string(th[i], feeds_addr[i]));
    }
    rows = std::max(rows, col.size());
    cols.push_back(std::move(col));
  }
  std::vector<std::size_t> width(cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    width[c] = std::string("T" + std::to_string(c + 1)).size();
    for (const auto& s : cols[c]) width[c] = std::max(width[c], s.size());
  }
  std::string out;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (c) out += " | ";
    out += util::pad_right("T" + std::to_string(c + 1), width[c]);
  }
  out += '\n';
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (c) out += "-+-";
    out += std::string(width[c], '-');
  }
  out += '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (c) out += " | ";
      out += util::pad_right(r < cols[c].size() ? cols[c][r] : "", width[c]);
    }
    out += '\n';
  }
  return out;
}

bool operator==(const Instruction& a, const Instruction& b) {
  return a.op == b.op && a.loc == b.loc && a.addr_reg == b.addr_reg &&
         a.dst == b.dst && a.src == b.src && a.value == b.value &&
         a.value_from_reg == b.value_from_reg;
}

bool operator==(const Program& a, const Program& b) {
  return a.threads_ == b.threads_;
}

}  // namespace mcmc::core
