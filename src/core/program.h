// Programs: a fixed number of threads, each a straight-line instruction
// sequence (Section 2.1 of the paper; loops are unrolled, and the bounded
// litmus tests the paper constructs are loop-free).
#pragma once

#include <string>
#include <vector>

#include "core/instruction.h"

namespace mcmc::core {

/// One thread's instruction sequence.
using Thread = std::vector<Instruction>;

/// A multithreaded straight-line program.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Thread> threads);

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(threads_.size());
  }
  [[nodiscard]] const Thread& thread(int t) const;
  [[nodiscard]] Thread& mutable_thread(int t);
  [[nodiscard]] const std::vector<Thread>& threads() const { return threads_; }

  /// Appends a thread and returns its index.
  int add_thread(Thread thread);

  /// Total instruction count across threads.
  [[nodiscard]] int size() const;

  /// Count of memory access instructions (reads + writes).
  [[nodiscard]] int num_memory_accesses() const;

  /// Largest location index used, plus one.
  [[nodiscard]] int num_locations() const;

  /// Largest register index used, plus one.
  [[nodiscard]] int num_registers() const;

  /// Validates the static-resolvability rules; throws std::invalid_argument
  /// with a diagnostic if violated:
  ///   * each register is defined exactly once, before any use, and used
  ///     only within its defining thread,
  ///   * address registers and write-value registers resolve to DepConst
  ///     definitions (statically known addresses and store values).
  void validate() const;

  /// Renders the program as a side-by-side table of threads.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Program& a, const Program& b);

 private:
  std::vector<Thread> threads_;
};

bool operator==(const Instruction& a, const Instruction& b);

}  // namespace mcmc::core
