#include "core/readfrom.h"

#include "util/check.h"

namespace mcmc::core {

namespace {

/// Candidate source writes for read `r`: same location, matching value if
/// the outcome constrains the read, and not a later write of r's thread.
std::vector<EventId> candidates_for(const Analysis& an, EventId r,
                                    const Outcome& outcome) {
  const Event& read = an.event(r);
  const std::optional<int> need = outcome.required(read.instr->dst);
  std::vector<EventId> out;
  if (!need.has_value() || *need == 0) {
    out.push_back(kReadsInitial);
  }
  for (const EventId w : an.writes_to(read.loc)) {
    const Event& write = an.event(w);
    if (write.thread == read.thread && write.index > read.index) {
      continue;  // cannot read from a future write in the same thread
    }
    if (need.has_value() && write.value != *need) continue;
    out.push_back(w);
  }
  return out;
}

/// Checks outcome constraints on registers that are not read destinations:
/// DepConst registers have static values; anything else constrained is a
/// contradiction (undefined registers hold no final value).
bool static_constraints_ok(const Analysis& an, const Outcome& outcome) {
  for (const auto& [reg, value] : outcome.constraints()) {
    bool defined_by_read = false;
    bool ok_static = false;
    bool defined = false;
    for (const auto& ev : an.events()) {
      if (ev.dst != reg) continue;
      defined = true;
      if (ev.op == Op::Read) {
        defined_by_read = true;
      } else if (ev.op == Op::DepConst) {
        ok_static = ev.value == value;
      }
      break;
    }
    if (!defined) return false;
    if (!defined_by_read && !ok_static) return false;
  }
  return true;
}

}  // namespace

std::vector<RfMap> enumerate_read_from(const Analysis& an,
                                       const Outcome& outcome) {
  std::vector<RfMap> result;
  if (!static_constraints_ok(an, outcome)) return result;

  const std::vector<EventId>& reads = an.reads();
  std::vector<std::vector<EventId>> candidates;
  candidates.reserve(reads.size());
  for (const EventId r : reads) {
    candidates.push_back(candidates_for(an, r, outcome));
    if (candidates.back().empty()) return result;  // outcome unreachable
  }

  RfMap rf(static_cast<std::size_t>(an.num_events()), kReadsInitial);
  // Depth-first product of per-read candidates.
  std::vector<std::size_t> cursor(reads.size(), 0);
  std::size_t level = 0;
  for (;;) {
    if (level == reads.size()) {
      result.push_back(rf);
      if (level == 0) break;  // no reads: single empty rf
      --level;
      ++cursor[level];
      continue;
    }
    if (cursor[level] >= candidates[level].size()) {
      if (level == 0) break;
      cursor[level] = 0;
      --level;
      ++cursor[level];
      continue;
    }
    rf[static_cast<std::size_t>(reads[level])] =
        candidates[level][cursor[level]];
    ++level;
  }
  return result;
}

int read_value(const Analysis& an, const RfMap& rf, EventId e) {
  MCMC_REQUIRE(an.is_read(e));
  const EventId w = rf[static_cast<std::size_t>(e)];
  if (w == kReadsInitial) return 0;
  return an.event(w).value;
}

std::vector<Outcome> outcome_space(const Analysis& an) {
  struct ReadValues {
    Reg reg;
    std::vector<int> values;
  };
  std::vector<ReadValues> reads;
  for (const EventId r : an.reads()) {
    ReadValues info;
    info.reg = an.event(r).instr->dst;
    info.values.push_back(0);
    for (const EventId w : an.writes_to(an.event(r).loc)) {
      info.values.push_back(an.event(w).value);
    }
    reads.push_back(std::move(info));
  }
  std::vector<Outcome> out;
  std::vector<std::size_t> idx(reads.size(), 0);
  for (;;) {
    Outcome o;
    for (std::size_t i = 0; i < reads.size(); ++i) {
      o.require(reads[i].reg, reads[i].values[idx[i]]);
    }
    out.push_back(std::move(o));
    std::size_t level = 0;
    while (level < reads.size() &&
           ++idx[level] == reads[level].values.size()) {
      idx[level] = 0;
      ++level;
    }
    if (level == reads.size()) break;
  }
  return out;
}

}  // namespace mcmc::core
