// Read-from map enumeration (Section 2.2).
//
// A read-from relation maps each read to the write whose value it observes
// (or to nothing, meaning the initial value 0).  The paper's constraints:
//   * sources write the value the read observes, to the same address,
//   * at most one source per read,
//   * a read may not source a program-order-later write of its own thread
//     ("cannot read from a future write in the same thread").
//
// Because addresses and store values are static, an outcome constraint on
// a read's destination register filters its candidate sources directly,
// which keeps the enumeration tiny (typically 1–4 maps per test).
#pragma once

#include <vector>

#include "core/analysis.h"
#include "core/outcome.h"

namespace mcmc::core {

/// Initial-value pseudo-source.
constexpr EventId kReadsInitial = -1;

/// rf[e] is meaningful only when event `e` is a read: the sourcing write's
/// EventId, or kReadsInitial.
using RfMap = std::vector<EventId>;

/// Enumerates every read-from map consistent with the outcome.  Returns an
/// empty list when the outcome is statically impossible (e.g. it constrains
/// a DepConst register to the wrong constant, or no candidate write has the
/// required value).
[[nodiscard]] std::vector<RfMap> enumerate_read_from(const Analysis& analysis,
                                                     const Outcome& outcome);

/// The value observed by read `e` under `rf` (0 for the initial value).
[[nodiscard]] int read_value(const Analysis& analysis, const RfMap& rf,
                             EventId e);

/// The full syntactic outcome space of a program: every assignment of
/// each read's register to the initial value or any value written to the
/// read's location.  This over-approximates the observable outcomes of
/// any model; it is the domain the operational machines and differential
/// suites quantify over.
[[nodiscard]] std::vector<Outcome> outcome_space(const Analysis& analysis);

}  // namespace mcmc::core
