// Packed verdict matrix: rows of 64-bit words, one bit per (row, col)
// cell.  This is the engine's batch-result representation and the storage
// behind explore::AdmissibilityMatrix, whose row comparisons become
// word-wise AND/XOR sweeps instead of per-cell loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mcmc::engine {

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(int rows, int cols)
      : rows_(checked_dim(rows)),
        cols_(checked_dim(cols)),
        words_per_row_((static_cast<std::size_t>(cols_) + 63) / 64),
        words_(static_cast<std::size_t>(rows_) * words_per_row_, 0) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t words_per_row() const { return words_per_row_; }

  [[nodiscard]] bool get(int r, int c) const {
    check_cell(r, c);
    return (row(r)[static_cast<std::size_t>(c) / 64] >>
            (static_cast<std::size_t>(c) % 64)) &
           1ULL;
  }

  void set(int r, int c, bool value) {
    check_cell(r, c);
    std::uint64_t& word =
        words_[static_cast<std::size_t>(r) * words_per_row_ +
               static_cast<std::size_t>(c) / 64];
    const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(c) % 64);
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  /// Word pointer for row `r`; bits beyond `cols()` are zero.
  [[nodiscard]] const std::uint64_t* row(int r) const {
    MCMC_REQUIRE(r >= 0 && r < rows_);
    return words_.data() + static_cast<std::size_t>(r) * words_per_row_;
  }

  /// True iff rows `a` and `b` hold identical bits.
  [[nodiscard]] bool rows_equal(int a, int b) const {
    const std::uint64_t* ra = row(a);
    const std::uint64_t* rb = row(b);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      if (ra[w] != rb[w]) return false;
    }
    return true;
  }

  friend bool operator==(const BitMatrix& a, const BitMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitMatrix& a, const BitMatrix& b) {
    return !(a == b);
  }

 private:
  static int checked_dim(int dim) {
    MCMC_REQUIRE(dim >= 0);
    return dim;
  }

  void check_cell(int r, int c) const {
    MCMC_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mcmc::engine
