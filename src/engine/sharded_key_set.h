// Mutex-striped cross-chunk dedup set for the streaming pipeline.
//
// run_stream's workers compute canonical-key hashes for a whole chunk
// in parallel and claim each one here as they go.  Determinism under
// any thread count comes from a two-phase protocol per chunk:
//
//   1. claim(key, index) — parallel, any order.  A key first seen in an
//      earlier chunk reports "duplicate of the past" immediately; keys
//      first seen this chunk keep the *minimum* claiming index (min is
//      commutative, so racing claims converge to the same owner).
//   2. owner(key) — serial, in chunk order.  The test whose index owns
//      its key is the chunk's novel representative; every other
//      claimant is a within-chunk duplicate.  The outcome is identical
//      to what a serial first-come-first-served insertion in chunk
//      order would have produced.
//
// Storage is split by claim temperature.  Keys from earlier chunks live
// in per-shard *sealed* tables — open-addressed flat arrays of bare
// Key128s (16 bytes per class, no heap nodes) that are immutable during
// the parallel phase, so the overwhelmingly common claim outcome on a
// ~91%-duplicate stream (a sealed hit) is decided by a lock-free probe.
// Only keys new to this chunk touch the mutex-striped *pending* tables
// (bounded by the chunk size, reused across chunks); begin_chunk() then
// migrates them into the sealed tables on the single consumer thread.
// See util/hash128.h for the collision math and
// StreamOptions::audit_dedup_keys for the on-demand audit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"
#include "util/hash128.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcmc::engine {

class ShardedKeySet {
 public:
  static constexpr int kDefaultShards = 64;

  /// `shards` is rounded up to a power of two; values below 1 get the
  /// default.
  explicit ShardedKeySet(int shards = kDefaultShards) {
    std::size_t n = 1;
    while (n < static_cast<std::size_t>(shards < 1 ? kDefaultShards : shards)) {
      n <<= 1;
    }
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }

  /// Starts a new chunk epoch: seals the previous chunk's pending keys.
  /// Must not race with claim/owner calls; run_stream calls it between
  /// chunks, outside any parallel phase.
  void begin_chunk() {
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      for (const Slot& slot : shard->pending.slots) {
        if (slot.key != util::Key128{}) shard->sealed.insert(slot.key);
      }
      shard->pending.clear();
    }
  }

  /// Claims `key` for test `index` of the current chunk.  Returns true
  /// iff the key was first seen in an *earlier* chunk (a settled
  /// duplicate); false means this chunk's owner is still being resolved
  /// — consult owner() after the parallel phase.  Thread-safe.
  bool claim(util::Key128 key, std::uint32_t index) {
    normalize(key);
    Shard& shard = shard_for(key);
    // Sealed tables only change in begin_chunk(), never concurrently
    // with claims: the hot path (a duplicate of an earlier chunk) takes
    // no lock at all.
    if (shard.sealed.contains(key)) return true;
    util::MutexLock lock(shard.mu);
    Slot& slot = shard.pending.slots[shard.pending.locate(key)];
    if (slot.key != key) {
      slot.key = key;
      slot.index = index;
      shard.pending.count += 1;
      if (shard.pending.count * 10 >= shard.pending.slots.size() * 7) {
        shard.pending.grow();
      }
    } else if (index < slot.index) {
      slot.index = index;
    }
    return false;
  }

  /// The owning (minimum) index of a key claimed this chunk.  Only
  /// meaningful for keys whose claim() returned false this epoch.
  [[nodiscard]] std::uint32_t owner(util::Key128 key) const {
    normalize(key);
    const Shard& shard = shard_for(key);
    util::MutexLock lock(shard.mu);
    const Slot& slot = shard.pending.slots[shard.pending.locate(key)];
    MCMC_CHECK_MSG(slot.key == key,
                   "owner() queried for a key not claimed this chunk");
    return slot.index;
  }

  /// Appends every distinct key in the set (sealed plus pending) to
  /// `out`.  Serial use only (checkpoint sealing, between parallel
  /// phases); slot order is not meaningful — callers wanting a stable
  /// serialization sort the result.
  void export_keys(std::vector<util::Key128>& out) const {
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      for (const SealedSlot& slot : shard->sealed.slots) {
        if (slot.key != util::Key128{}) out.push_back(slot.key);
      }
      for (const Slot& slot : shard->pending.slots) {
        if (slot.key != util::Key128{}) out.push_back(slot.key);
      }
    }
  }

  /// Seeds the sealed tables from a checkpoint's exported keys, as if
  /// every key had been claimed in an already-sealed chunk.  Must run
  /// before any claim of the new stream (keys were exported
  /// post-normalization, so they are inserted as-is).
  void seed(const std::vector<util::Key128>& keys) {
    for (util::Key128 key : keys) shard_for(key).sealed.insert(key);
  }

  /// Total distinct keys claimed across the stream so far (sealed plus
  /// the current chunk's pending claims).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mu);
      total += shard->sealed.count + shard->pending.count;
    }
    return total;
  }

 private:
  struct Slot {
    util::Key128 key;  // zero-initialized == the empty sentinel
    std::uint32_t index = 0;
  };

  /// Open-addressed flat table core (linear probing, power-of-two
  /// capacity, grown at 70% load).
  template <typename Entry>
  struct FlatTable {
    std::vector<Entry> slots = std::vector<Entry>(kInitialSlots);
    std::size_t count = 0;

    /// The slot holding `key`, or the free slot where it belongs.
    [[nodiscard]] std::size_t locate(util::Key128 key) const {
      const std::size_t mask = slots.size() - 1;
      std::size_t i = static_cast<std::size_t>(key.hi) & mask;
      while (slots[i].key != key && slots[i].key != util::Key128{}) {
        i = (i + 1) & mask;
      }
      return i;
    }

    void grow() {
      std::vector<Entry> old = std::vector<Entry>(slots.size() * 2);
      old.swap(slots);
      for (const Entry& entry : old) {
        if (entry.key != util::Key128{}) slots[locate(entry.key)] = entry;
      }
    }

    void clear() {
      for (Entry& entry : slots) entry = Entry{};
      count = 0;
    }
  };

  struct SealedSlot {
    util::Key128 key;
  };

  struct SealedTable : FlatTable<SealedSlot> {
    [[nodiscard]] bool contains(util::Key128 key) const {
      return slots[locate(key)].key == key;
    }
    void insert(util::Key128 key) {
      SealedSlot& slot = slots[locate(key)];
      if (slot.key == key) return;
      slot.key = key;
      if (++count * 10 >= slots.size() * 7) grow();
    }
  };

  struct Shard {
    mutable util::Mutex mu;
    // `sealed` rides a phase protocol the analysis cannot express:
    // mutated only on the single consumer thread (begin_chunk/seed,
    // never concurrent with claims) and probed lock-free during the
    // parallel claim phase, when it is immutable.  TSan covers the
    // protocol; the mutex-guarded state is `pending`.
    SealedTable sealed;
    FlatTable<Slot> pending GUARDED_BY(mu);  // this chunk's claims, min index
  };

  static constexpr std::size_t kInitialSlots = 64;

  static void normalize(util::Key128& key) {
    // A real all-zero key (probability 2^-128) would alias the empty
    // sentinel; remap it.
    if (key == util::Key128{}) key.lo = 1;
  }

  [[nodiscard]] Shard& shard_for(util::Key128 key) {
    return *shards_[key.lo & (shards_.size() - 1)];
  }
  [[nodiscard]] const Shard& shard_for(util::Key128 key) const {
    return *shards_[key.lo & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mcmc::engine
