// Pull-based litmus-test streams for the VerdictEngine.
//
// Corpora that are too large to materialize (the naive bounded
// enumeration is ~5 million tests) are consumed in fixed-size chunks:
// the producer implements TestSource, and VerdictEngine::run_stream
// pulls chunk after chunk, deduplicates across chunks by canonical key,
// and hands each chunk's verdicts to a sink while keeping peak memory
// at O(chunk size + unique keys), never O(corpus).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "litmus/test.h"

namespace mcmc::engine {

/// A chunked producer of litmus tests.
class TestSource {
 public:
  virtual ~TestSource() = default;

  /// Appends the next chunk (up to the source's chunk size) to `out`,
  /// which the caller has cleared.  Returns true while more chunks may
  /// follow; the final call may both append a partial chunk and return
  /// false.
  virtual bool next_chunk(std::vector<litmus::LitmusTest>& out) = 0;
};

/// Drains `source` to exhaustion, invoking `fn(test)` for every
/// streamed test.  Encodes the next_chunk contract once: the final
/// call may both append a partial chunk and return false, so the chunk
/// must be consumed before the return value ends the loop.
template <typename Fn>
void for_each_test(TestSource& source, Fn&& fn) {
  std::vector<litmus::LitmusTest> chunk;
  bool more = true;
  while (more) {
    chunk.clear();
    more = source.next_chunk(chunk);
    for (auto& test : chunk) fn(test);
  }
}

/// Adapter presenting an in-memory corpus as a chunked stream (tests
/// are moved out chunk by chunk).
class VectorSource final : public TestSource {
 public:
  VectorSource(std::vector<litmus::LitmusTest> tests, std::size_t chunk_size)
      : tests_(std::move(tests)), chunk_size_(chunk_size == 0 ? 1 : chunk_size) {}

  bool next_chunk(std::vector<litmus::LitmusTest>& out) override {
    const std::size_t end =
        next_ + chunk_size_ < tests_.size() ? next_ + chunk_size_
                                            : tests_.size();
    for (; next_ < end; ++next_) out.push_back(std::move(tests_[next_]));
    return next_ < tests_.size();
  }

 private:
  std::vector<litmus::LitmusTest> tests_;
  std::size_t next_ = 0;
  std::size_t chunk_size_;
};

}  // namespace mcmc::engine
