// Pull-based litmus-test streams for the VerdictEngine.
//
// Corpora that are too large to materialize (the naive bounded
// enumeration is ~5 million tests) are consumed in fixed-size chunks:
// the producer implements TestSource, and VerdictEngine::run_stream
// pulls chunk after chunk, deduplicates across chunks by canonical key,
// and hands each chunk's verdicts to a sink while keeping peak memory
// at O(chunk size + unique keys), never O(corpus).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "litmus/test.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace mcmc::engine {

/// A chunked producer of litmus tests.
class TestSource {
 public:
  virtual ~TestSource() = default;

  /// Appends the next chunk (up to the source's chunk size) to `out`,
  /// which the caller has cleared.  Returns true while more chunks may
  /// follow; the final call may both append a partial chunk and return
  /// false.
  virtual bool next_chunk(std::vector<litmus::LitmusTest>& out) = 0;

  /// Serializes the position after the chunks delivered so far, as
  /// opaque words: restoring this cursor into a freshly constructed
  /// equivalent source re-delivers exactly the remaining suffix with
  /// identical chunk boundaries (what stream checkpointing needs).
  /// Sources that cannot checkpoint return false (the default).
  [[nodiscard]] virtual bool snapshot_cursor(
      std::vector<std::uint64_t>& out) const {
    (void)out;
    return false;
  }

  /// Restores a snapshot_cursor() position; must be called before the
  /// first next_chunk.  False if the words are not a valid cursor for
  /// this source (the caller then restarts from scratch).
  [[nodiscard]] virtual bool restore_cursor(
      const std::vector<std::uint64_t>& cursor) {
    (void)cursor;
    return false;
  }
};

/// Drains `source` to exhaustion, invoking `fn(test)` for every
/// streamed test.  Encodes the next_chunk contract once: the final
/// call may both append a partial chunk and return false, so the chunk
/// must be consumed before the return value ends the loop.
template <typename Fn>
void for_each_test(TestSource& source, Fn&& fn) {
  std::vector<litmus::LitmusTest> chunk;
  bool more = true;
  while (more) {
    chunk.clear();
    more = source.next_chunk(chunk);
    for (auto& test : chunk) fn(test);
  }
}

/// Overlaps chunk production with consumption: a dedicated producer
/// thread pulls chunks from the wrapped source into a bounded queue
/// while the consumer processes earlier ones — the produce stage of
/// the streaming pipeline runs concurrently with the key/dedup/verdict
/// stages.  Chunk boundaries and order are exactly the wrapped
/// source's (one producer, FIFO hand-off), so prefetching never
/// changes streamed results.  A producer-side exception is rethrown
/// from next_chunk after the chunks produced before it have been
/// delivered.
class ChunkPrefetcher final : public TestSource {
 public:
  /// `depth` bounds the queue (chunks materialized ahead of the
  /// consumer); values below 1 are clamped to 1.  One chunk of
  /// lookahead already hides production fully when produce is cheaper
  /// than consume, and every queued chunk is resident memory, so the
  /// default stays minimal.  `capture_cursors` snapshots the wrapped
  /// source's position after every chunk so snapshot_cursor works;
  /// callers that never checkpoint (no persistence attached) pass
  /// false and skip that per-chunk producer-thread work entirely.
  explicit ChunkPrefetcher(TestSource& source, std::size_t depth = 1,
                           bool capture_cursors = true)
      : source_(source),
        depth_(depth < 1 ? 1 : depth),
        capture_cursors_(capture_cursors) {
    producer_ = std::thread([this] { produce(); });
  }

  ~ChunkPrefetcher() override {
    {
      util::MutexLock lock(mu_);
      stop_ = true;
    }
    slot_free_.notify_all();
    producer_.join();
  }

  ChunkPrefetcher(const ChunkPrefetcher&) = delete;
  ChunkPrefetcher& operator=(const ChunkPrefetcher&) = delete;

  bool next_chunk(std::vector<litmus::LitmusTest>& out) override {
    Item item;
    {
      util::MutexLock lock(mu_);
      while (queue_.empty() && !done_) chunk_ready_.wait(mu_);
      if (queue_.empty()) {
        if (error_) std::rethrow_exception(error_);
        return false;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    slot_free_.notify_one();
    if (out.empty()) {
      out = std::move(item.tests);
    } else {
      for (auto& test : item.tests) out.push_back(std::move(test));
    }
    last_produce_seconds_ = item.produce_seconds;
    last_cursor_ = std::move(item.cursor);
    last_cursor_valid_ = item.cursor_valid;
    return item.more;
  }

  /// The wrapped source's cursor as of the most recently *delivered*
  /// chunk — captured by the producer right after materializing it, so
  /// prefetched-ahead chunks never leak into the snapshot.
  [[nodiscard]] bool snapshot_cursor(
      std::vector<std::uint64_t>& out) const override {
    if (!last_cursor_valid_) return false;
    out = last_cursor_;
    return true;
  }

  /// Restore through the wrapped source before constructing the
  /// prefetcher (its producer thread starts pulling immediately).
  [[nodiscard]] bool restore_cursor(
      const std::vector<std::uint64_t>& cursor) override {
    (void)cursor;
    return false;
  }

  /// Time the producer spent inside the wrapped source's next_chunk for
  /// the most recently delivered chunk (runs concurrently with the
  /// consumer, so it is overlap, not critical-path wall time).
  [[nodiscard]] double last_produce_seconds() const {
    return last_produce_seconds_;
  }

 private:
  struct Item {
    std::vector<litmus::LitmusTest> tests;
    bool more = false;
    double produce_seconds = 0.0;
    std::vector<std::uint64_t> cursor;  // source position after this chunk
    bool cursor_valid = false;
  };

  void produce() {
    for (;;) {
      Item item;
      util::Timer timer;
      try {
        item.more = source_.next_chunk(item.tests);
        if (capture_cursors_) {
          item.cursor_valid = source_.snapshot_cursor(item.cursor);
        }
      } catch (...) {
        util::MutexLock lock(mu_);
        error_ = std::current_exception();
        done_ = true;
        chunk_ready_.notify_all();
        return;
      }
      item.produce_seconds = timer.seconds();
      const bool more = item.more;
      {
        util::MutexLock lock(mu_);
        while (queue_.size() >= depth_ && !stop_) slot_free_.wait(mu_);
        if (stop_) return;
        queue_.push_back(std::move(item));
        if (!more) done_ = true;
      }
      chunk_ready_.notify_one();
      if (!more) return;
    }
  }

  TestSource& source_;
  std::size_t depth_;
  bool capture_cursors_;
  std::thread producer_;

  util::Mutex mu_;
  util::CondVar chunk_ready_;  // consumer waits for a chunk
  util::CondVar slot_free_;    // producer waits for queue room
  std::deque<Item> queue_ GUARDED_BY(mu_);
  bool done_ GUARDED_BY(mu_) = false;  // source exhausted (or errored)
  bool stop_ GUARDED_BY(mu_) = false;  // destructor: abandon production
  std::exception_ptr error_ GUARDED_BY(mu_);
  // Below: consumer-thread-only state (written in next_chunk, read by
  // the consumer's snapshot/stat accessors) — no guard needed.
  double last_produce_seconds_ = 0.0;
  std::vector<std::uint64_t> last_cursor_;
  bool last_cursor_valid_ = false;
};

/// Adapter presenting an in-memory corpus as a chunked stream (tests
/// are moved out chunk by chunk).
class VectorSource final : public TestSource {
 public:
  VectorSource(std::vector<litmus::LitmusTest> tests, std::size_t chunk_size)
      : tests_(std::move(tests)),
        chunk_size_(chunk_size == 0 ? 1 : chunk_size) {}

  bool next_chunk(std::vector<litmus::LitmusTest>& out) override {
    const std::size_t end =
        next_ + chunk_size_ < tests_.size() ? next_ + chunk_size_
                                            : tests_.size();
    for (; next_ < end; ++next_) out.push_back(std::move(tests_[next_]));
    return next_ < tests_.size();
  }

  [[nodiscard]] bool snapshot_cursor(
      std::vector<std::uint64_t>& out) const override {
    out = {next_};
    return true;
  }

  [[nodiscard]] bool restore_cursor(
      const std::vector<std::uint64_t>& cursor) override {
    if (cursor.size() != 1 || cursor[0] > tests_.size()) return false;
    next_ = static_cast<std::size_t>(cursor[0]);
    return true;
  }

 private:
  std::vector<litmus::LitmusTest> tests_;
  std::size_t next_ = 0;
  std::size_t chunk_size_;
};

}  // namespace mcmc::engine
