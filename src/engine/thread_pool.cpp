#include "engine/thread_pool.h"

namespace mcmc::engine {

WorkStealingPool::WorkStealingPool(int total_threads)
    : total_threads_(total_threads < 1 ? 1 : total_threads) {
  workers_.reserve(static_cast<std::size_t>(total_threads_ - 1));
  for (int i = 1; i < total_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    util::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool WorkStealingPool::Job::try_pop(std::size_t slot, std::size_t& out) {
  SlotQueue& sq = slots[slot];
  util::MutexLock lock(sq.mu);
  if (sq.pending.empty()) return false;
  out = sq.pending.back();
  sq.pending.pop_back();
  return true;
}

bool WorkStealingPool::Job::try_steal(std::size_t slot, std::size_t& out) {
  for (std::size_t k = 1; k < num_slots; ++k) {
    SlotQueue& victim = slots[(slot + k) % num_slots];
    util::MutexLock lock(victim.mu);
    if (victim.pending.empty()) continue;
    out = victim.pending.front();
    victim.pending.pop_front();
    return true;
  }
  return false;
}

void WorkStealingPool::Job::run_one(std::size_t index) {
  // After the first failure the batch is poisoned: remaining indices
  // are drained (so `remaining` still reaches zero and the submitter
  // wakes) but their tasks never run — parallel_for rethrows the first
  // exception, so their results could never be observed anyway.
  if (!failed.load(std::memory_order_acquire)) {
    try {
      (*fn)(index);
    } catch (...) {
      {
        util::MutexLock lock(err_mu);
        if (!err) err = std::current_exception();
      }
      failed.store(true, std::memory_order_release);
    }
  }
  remaining.fetch_sub(1, std::memory_order_acq_rel);
}

void WorkStealingPool::Job::work(std::size_t slot) {
  std::size_t index = 0;
  while (try_pop(slot, index) || try_steal(slot, index)) run_one(index);
}

void WorkStealingPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    std::size_t slot = 0;
    {
      util::MutexLock lock(mu_);
      // job_ may already be null again if the batch drained before this
      // worker woke; in that case keep waiting for the next epoch.
      while (!stop_ && !(job_ != nullptr && epoch_ != seen_epoch)) {
        work_cv_.wait(mu_);
      }
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      // Spawned workers occupy slots 1..N-1; the submitting thread is 0.
      // (workers_ is immutable after construction, so reading it here
      // needs no guard.)
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (workers_[i].get_id() == std::this_thread::get_id()) slot = i + 1;
      }
    }
    job->work(slot);
    // Taking mu_ before notifying orders this worker's final
    // remaining-decrement after any waiter's predicate check, so the
    // wakeup cannot be lost.
    { util::MutexLock lock(mu_); }
    done_cv_.notify_all();
  }
}

void WorkStealingPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  util::MutexLock submit_lock(submit_mu_);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  const auto slots = static_cast<std::size_t>(total_threads_);
  job->slots = std::make_unique<SlotQueue[]>(slots);
  job->num_slots = slots;
  for (std::size_t s = 0; s < slots; ++s) {
    // Same round-robin distribution as pushing i to queue i % slots in
    // index order, filled a slot at a time so each stripe locks once.
    SlotQueue& sq = job->slots[s];
    util::MutexLock lock(sq.mu);
    for (std::size_t i = s; i < n; i += slots) sq.pending.push_back(i);
  }
  job->remaining.store(n, std::memory_order_relaxed);

  {
    util::MutexLock lock(mu_);
    job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();

  job->work(0);  // the submitting thread participates as slot 0

  {
    util::MutexLock lock(mu_);
    while (job->remaining.load(std::memory_order_acquire) != 0) {
      done_cv_.wait(mu_);
    }
    job_ = nullptr;
  }

  std::exception_ptr err;
  {
    util::MutexLock lock(job->err_mu);
    err = job->err;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace mcmc::engine
