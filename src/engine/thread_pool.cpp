#include "engine/thread_pool.h"

namespace mcmc::engine {

WorkStealingPool::WorkStealingPool(int total_threads)
    : total_threads_(total_threads < 1 ? 1 : total_threads) {
  workers_.reserve(static_cast<std::size_t>(total_threads_ - 1));
  for (int i = 1; i < total_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool WorkStealingPool::Job::try_pop(std::size_t slot, std::size_t& out) {
  std::lock_guard<std::mutex> lock(queue_mu[slot]);
  auto& q = queues[slot];
  if (q.empty()) return false;
  out = q.back();
  q.pop_back();
  return true;
}

bool WorkStealingPool::Job::try_steal(std::size_t slot, std::size_t& out) {
  const std::size_t n = queues.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t victim = (slot + k) % n;
    std::lock_guard<std::mutex> lock(queue_mu[victim]);
    auto& q = queues[victim];
    if (q.empty()) continue;
    out = q.front();
    q.pop_front();
    return true;
  }
  return false;
}

void WorkStealingPool::Job::run_one(std::size_t index) {
  // After the first failure the batch is poisoned: remaining indices
  // are drained (so `remaining` still reaches zero and the submitter
  // wakes) but their tasks never run — parallel_for rethrows the first
  // exception, so their results could never be observed anyway.
  if (!failed.load(std::memory_order_acquire)) {
    try {
      (*fn)(index);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!err) err = std::current_exception();
      }
      failed.store(true, std::memory_order_release);
    }
  }
  remaining.fetch_sub(1, std::memory_order_acq_rel);
}

void WorkStealingPool::Job::work(std::size_t slot) {
  std::size_t index = 0;
  while (try_pop(slot, index) || try_steal(slot, index)) run_one(index);
}

void WorkStealingPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    std::size_t slot = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // job_ may already be null again if the batch drained before this
      // worker woke; in that case keep waiting for the next epoch.
      work_cv_.wait(lock,
                    [&] { return stop_ || (job_ && epoch_ != seen_epoch); });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
      // Spawned workers occupy slots 1..N-1; the submitting thread is 0.
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (workers_[i].get_id() == std::this_thread::get_id()) slot = i + 1;
      }
    }
    job->work(slot);
    // Taking mu_ before notifying orders this worker's final
    // remaining-decrement after any waiter's predicate check, so the
    // wakeup cannot be lost.
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_all();
  }
}

void WorkStealingPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::lock_guard<std::mutex> submit_lock(submit_mu_);

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  const auto slots = static_cast<std::size_t>(total_threads_);
  job->queues.resize(slots);
  job->queue_mu = std::make_unique<std::mutex[]>(slots);
  for (std::size_t i = 0; i < n; ++i) job->queues[i % slots].push_back(i);
  job->remaining.store(n, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++epoch_;
  }
  work_cv_.notify_all();

  job->work(0);  // the submitting thread participates as slot 0

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
  }

  if (job->err) std::rethrow_exception(job->err);
}

}  // namespace mcmc::engine
