// Work-stealing thread pool for batch verdict evaluation.
//
// The pool owns `total_threads - 1` worker threads; the thread calling
// `parallel_for` participates as the remaining worker, so a pool built
// with one thread runs everything inline (no spawned threads, fully
// deterministic scheduling).  Each `parallel_for` distributes the index
// range round-robin across per-worker deques; a worker pops from the
// back of its own deque and steals from the front of a victim's when it
// runs dry.  Individual tasks are admissibility checks (microseconds to
// milliseconds), so stealing one index at a time is plenty.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcmc::engine {

class WorkStealingPool {
 public:
  /// `total_threads` counts the caller of `parallel_for`; values below 1
  /// are clamped to 1 (inline execution, no worker threads).
  explicit WorkStealingPool(int total_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Total worker count, including the calling thread.
  [[nodiscard]] int num_threads() const { return total_threads_; }

  /// Runs `fn(i)` once for every `i` in `[0, n)` and blocks until all
  /// complete.  Tasks must be independent; the assignment of indices to
  /// threads is unspecified.  The first exception thrown by any task is
  /// rethrown here after the batch drains; once a task has thrown, the
  /// batch fails as a unit — indices not yet started are abandoned
  /// (popped and counted, never run), so a poisoned batch finishes
  /// promptly instead of grinding through work whose result will be
  /// discarded.  The pool itself stays fully usable for subsequent
  /// batches.  Not reentrant: one `parallel_for` at a time per pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// One batch of work shared between the participating threads.
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::vector<std::deque<std::size_t>> queues;  // one per worker slot
    std::unique_ptr<std::mutex[]> queue_mu;
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> failed{false};  // set with the first captured error
    std::mutex err_mu;
    std::exception_ptr err;

    /// Runs tasks as worker `slot` until no queued work remains anywhere.
    void work(std::size_t slot);

   private:
    bool try_pop(std::size_t slot, std::size_t& out);
    bool try_steal(std::size_t slot, std::size_t& out);
    void run_one(std::size_t index);
  };

  void worker_loop();

  int total_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a new job
  std::condition_variable done_cv_;   // parallel_for waits here for drain
  std::shared_ptr<Job> job_;          // current job, null when idle
  std::uint64_t epoch_ = 0;           // bumped per job so workers re-wake
  bool stop_ = false;
  std::mutex submit_mu_;              // serializes parallel_for callers
};

}  // namespace mcmc::engine
