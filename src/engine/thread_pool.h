// Work-stealing thread pool for batch verdict evaluation.
//
// The pool owns `total_threads - 1` worker threads; the thread calling
// `parallel_for` participates as the remaining worker, so a pool built
// with one thread runs everything inline (no spawned threads, fully
// deterministic scheduling).  Each `parallel_for` distributes the index
// range round-robin across per-worker deques; a worker pops from the
// back of its own deque and steals from the front of a victim's when it
// runs dry.  Individual tasks are admissibility checks (microseconds to
// milliseconds), so stealing one index at a time is plenty.
//
// Lock discipline (compile-time checked, see util/thread_annotations.h):
// `mu_` guards the job hand-off state (job_, epoch_, stop_); each
// per-slot deque has its own mutex; a Job's first captured exception is
// guarded by err_mu.  `remaining` and `failed` are atomics outside any
// lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcmc::engine {

class WorkStealingPool {
 public:
  /// `total_threads` counts the caller of `parallel_for`; values below 1
  /// are clamped to 1 (inline execution, no worker threads).
  explicit WorkStealingPool(int total_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Total worker count, including the calling thread.
  [[nodiscard]] int num_threads() const { return total_threads_; }

  /// Runs `fn(i)` once for every `i` in `[0, n)` and blocks until all
  /// complete.  Tasks must be independent; the assignment of indices to
  /// threads is unspecified.  The first exception thrown by any task is
  /// rethrown here after the batch drains; once a task has thrown, the
  /// batch fails as a unit — indices not yet started are abandoned
  /// (popped and counted, never run), so a poisoned batch finishes
  /// promptly instead of grinding through work whose result will be
  /// discarded.  The pool itself stays fully usable for subsequent
  /// batches.  Not reentrant: one `parallel_for` at a time per pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// One worker slot's deque of pending indices, with its stripe lock.
  struct SlotQueue {
    util::Mutex mu;
    std::deque<std::size_t> pending GUARDED_BY(mu);
  };

  /// One batch of work shared between the participating threads.
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::unique_ptr<SlotQueue[]> slots;  // one per worker slot
    std::size_t num_slots = 0;
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> failed{false};  // set with the first captured error
    util::Mutex err_mu;
    std::exception_ptr err GUARDED_BY(err_mu);

    /// Runs tasks as worker `slot` until no queued work remains anywhere.
    void work(std::size_t slot);

   private:
    [[nodiscard]] bool try_pop(std::size_t slot, std::size_t& out);
    [[nodiscard]] bool try_steal(std::size_t slot, std::size_t& out);
    void run_one(std::size_t index);
  };

  void worker_loop();

  int total_threads_;
  std::vector<std::thread> workers_;  // immutable after construction

  util::Mutex mu_;
  util::CondVar work_cv_;   // workers wait here for a new job
  util::CondVar done_cv_;   // parallel_for waits here for drain
  std::shared_ptr<Job> job_ GUARDED_BY(mu_);  // current job, null when idle
  std::uint64_t epoch_ GUARDED_BY(mu_) = 0;  // bumped per job, wakes workers
  bool stop_ GUARDED_BY(mu_) = false;
  util::Mutex submit_mu_;   // serializes parallel_for callers
};

}  // namespace mcmc::engine
