#include "engine/verdict_engine.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>
#include <thread>

#include "core/analysis.h"
#include "engine/sharded_key_set.h"
#include "store/verdict_store.h"
#include "util/check.h"
#include "util/hash128.h"
#include "util/timer.h"

namespace mcmc::engine {

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::Explicit:
      return "explicit";
    case Backend::Sat:
      return "sat";
    case Backend::Adaptive:
      return "adaptive";
  }
  MCMC_UNREACHABLE("bad backend");
}

bool parse_backend(const std::string& text, Backend& out) {
  if (text == "explicit") {
    out = Backend::Explicit;
  } else if (text == "sat") {
    out = Backend::Sat;
  } else if (text == "adaptive") {
    out = Backend::Adaptive;
  } else {
    return false;
  }
  return true;
}

EngineStats& EngineStats::operator+=(const EngineStats& other) {
  cells += other.cells;
  checks_run += other.checks_run;
  cache_hits += other.cache_hits;
  dedup_hits += other.dedup_hits;
  store_hits += other.store_hits;
  store_misses += other.store_misses;
  explicit_checks += other.explicit_checks;
  sat_checks += other.sat_checks;
  unique_analyses += other.unique_analyses;
  rf_enums_saved += other.rf_enums_saved;
  skeletons_reused += other.skeletons_reused;
  formula_evals += other.formula_evals;
  formula_evals_saved += other.formula_evals_saved;
  if (other.threads_used > threads_used) threads_used = other.threads_used;
  wall_seconds += other.wall_seconds;
  return *this;
}

std::string EngineStats::to_string() const {
  std::ostringstream os;
  os << "cells=" << cells << " checks=" << checks_run
     << " cache_hits=" << cache_hits << " dedup_hits=" << dedup_hits;
  if (store_hits + store_misses > 0) {
    os << " store_hits=" << store_hits << "/" << (store_hits + store_misses);
  }
  os << " backends=explicit:" << explicit_checks << "/sat:" << sat_checks
     << " analyses=" << unique_analyses
     << " rf_enums_saved=" << rf_enums_saved
     << " skeletons_reused=" << skeletons_reused
     << " formula_evals=" << formula_evals << " (saved "
     << formula_evals_saved << ")"
     << " threads=" << threads_used << " wall=" << wall_seconds << "s";
  return os.str();
}

VerdictEngine::VerdictEngine(EngineOptions options) : options_(options) {
  MCMC_REQUIRE(options_.num_threads >= 0);
  MCMC_REQUIRE(options_.sat_event_threshold >= 0);
}

VerdictEngine::~VerdictEngine() = default;

int VerdictEngine::effective_threads() const {
  if (options_.num_threads > 0) return options_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

core::Engine VerdictEngine::resolve_backend(int num_events) const {
  switch (options_.backend) {
    case Backend::Explicit:
      return core::Engine::Explicit;
    case Backend::Sat:
      return core::Engine::Sat;
    case Backend::Adaptive: {
      // The explicit engine's transitive-closure bitmasks hold 64 events.
      const int limit =
          options_.sat_event_threshold < 64 ? options_.sat_event_threshold : 64;
      return num_events <= limit ? core::Engine::Explicit : core::Engine::Sat;
    }
  }
  MCMC_UNREACHABLE("bad backend");
}

WorkStealingPool& VerdictEngine::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkStealingPool>(effective_threads());
  }
  return *pool_;
}

std::size_t VerdictEngine::cache_size() const {
  util::MutexLock lock(cache_mu_);
  std::size_t total = 0;
  for (const auto& [key, bucket] : cache_) total += bucket.size();
  return total;
}

void VerdictEngine::clear_cache() {
  util::MutexLock lock(cache_mu_);
  cache_.clear();
  pinned_custom_formulas_.clear();
  pinned_ids_.clear();
}

std::vector<char> VerdictEngine::run_batch(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests,
    const std::vector<VerdictRequest>& requests) {
  return run_batch_impl(models, tests, requests, /*persist_verdicts=*/true);
}

std::vector<char> VerdictEngine::run_batch_impl(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests,
    const std::vector<VerdictRequest>& requests, bool persist_verdicts,
    bool use_cache,
    std::vector<std::unique_ptr<core::Analysis>>* premade_analyses) {
  util::Timer timer;
  const bool cache_enabled = options_.cache_enabled && use_cache;
  // Batch-level store participation: probing is sound only for
  // canonical test classes, and the stream fast path (use_cache off)
  // consults the store itself at stream level, so it is excluded here
  // the same way the cache is.
  store::VerdictStore* const vstore =
      use_cache && options_.canonical_dedup ? store_ : nullptr;
  // The grouping/fingerprint layer runs for either consumer: the
  // in-memory cache, the on-disk store, or both.
  const bool grouped = cache_enabled || vstore != nullptr;
  EngineStats stats;
  stats.cells = requests.size();
  std::vector<char> results(requests.size(), 0);

  const int num_models = static_cast<int>(models.size());
  const int num_tests = static_cast<int>(tests.size());
  for (const auto& r : requests) {
    MCMC_REQUIRE_MSG(r.model >= 0 && r.model < num_models,
                     "request model index out of range");
    MCMC_REQUIRE_MSG(r.test >= 0 && r.test < num_tests,
                     "request test index out of range");
  }
  if (requests.empty()) {
    last_stats_ = stats;
    total_stats_ += stats;
    return results;
  }

  // ---- Which tests and models this batch touches. ----
  std::vector<char> test_used(tests.size(), 0);
  std::vector<char> model_used(models.size(), 0);
  for (const auto& r : requests) {
    test_used[static_cast<std::size_t>(r.test)] = 1;
    model_used[static_cast<std::size_t>(r.model)] = 1;
  }
  std::vector<int> used_tests;
  for (int t = 0; t < num_tests; ++t) {
    if (test_used[static_cast<std::size_t>(t)]) used_tests.push_back(t);
  }

  // ---- Model cache keys.  Structurally identical custom-free formulas
  // share; formulas with custom predicates are keyed by tree identity. ----
  struct ModelKey {
    std::string key;
    bool custom = false;
  };
  std::vector<ModelKey> model_keys(models.size());
  bool any_canonical = false;
  bool any_structural = false;
  for (int m = 0; m < num_models; ++m) {
    if (!model_used[static_cast<std::size_t>(m)]) continue;
    auto& mk = model_keys[static_cast<std::size_t>(m)];
    const auto& formula = models[static_cast<std::size_t>(m)].formula();
    mk.custom = formula.has_custom();
    if (mk.custom) {
      std::ostringstream os;
      os << "P:" << formula.identity();
      mk.key = os.str();
      if (cache_enabled) {
        // Pin the node so its address (= the cache key) cannot be
        // recycled by a different custom formula while this engine's
        // cached verdicts reference it.
        util::MutexLock lock(cache_mu_);
        if (pinned_ids_.insert(formula.identity()).second) {
          pinned_custom_formulas_.push_back(formula);
        }
      }
    } else {
      mk.key = "F:" + formula.to_string();
    }
    if (mk.custom || !options_.canonical_dedup) {
      any_structural = true;
    } else {
      any_canonical = true;
    }
  }

  const bool need_canonical = grouped && any_canonical;
  const bool need_structural = grouped && any_structural;

  // ---- Test fingerprints.  128-bit canonical/structural fingerprints
  // (litmus::canonical_fingerprint) are all the cache layer needs: no
  // Analysis and no key string is built here.  Analyses are deferred
  // until the cache and the within-batch dedup have spoken, so only
  // tests that actually reach evaluation pay for one. ----
  std::vector<std::unique_ptr<core::PreparedTest>> prepared(tests.size());
  std::vector<std::unique_ptr<core::Analysis>> analyses(tests.size());
  std::vector<util::Key128> canonical_fps(need_canonical ? tests.size() : 0);
  std::vector<util::Key128> structural_fps(need_structural ? tests.size() : 0);
  const int threads = effective_threads();
  if (need_canonical || need_structural) {
    const std::size_t nk = used_tests.size();
    const std::size_t tasks =
        threads > 1 && nk > 1
            ? (nk < static_cast<std::size_t>(threads) * 4
                   ? nk
                   : static_cast<std::size_t>(threads) * 4)
            : 1;
    const auto fingerprint_range = [&](std::size_t r) {
      litmus::KeyScratch scratch;
      const std::size_t begin = nk * r / tasks;
      const std::size_t end = nk * (r + 1) / tasks;
      for (std::size_t k = begin; k < end; ++k) {
        const auto t = static_cast<std::size_t>(used_tests[k]);
        if (need_canonical) {
          canonical_fps[t] = litmus::canonical_fingerprint(tests[t], scratch);
        }
        if (need_structural) {
          structural_fps[t] = litmus::structural_fingerprint(tests[t]);
        }
      }
    };
    if (tasks > 1) {
      pool().parallel_for(tasks, fingerprint_range);
    } else {
      fingerprint_range(0);
    }
  }

  // ---- Intern fingerprints into dense class ids so the per-cell
  // grouping cost is two array reads and one integer hash. ----
  //
  // test_class[t]: class id of test t under each key flavor; tests whose
  // fingerprints collide share a class.  model_class[m]: ditto for model
  // keys (strings — there are few models, many tests).
  std::vector<int> model_class(models.size(), -1);
  std::vector<int> canonical_class(tests.size(), -1);
  std::vector<int> structural_class(tests.size(), -1);
  std::vector<const std::string*> model_class_key;
  std::vector<util::Key128> test_class_key;
  if (grouped) {
    std::unordered_map<std::string, int> model_interner;
    std::unordered_map<util::Key128, int, util::Key128Hash> test_interner;
    const auto intern_test = [&](const util::Key128& key) {
      const auto [it, inserted] =
          test_interner.emplace(key, static_cast<int>(test_class_key.size()));
      if (inserted) test_class_key.push_back(key);
      return it->second;
    };
    for (const int t : used_tests) {
      if (need_canonical) {
        canonical_class[static_cast<std::size_t>(t)] =
            intern_test(canonical_fps[static_cast<std::size_t>(t)]);
      }
      if (need_structural) {
        structural_class[static_cast<std::size_t>(t)] =
            intern_test(structural_fps[static_cast<std::size_t>(t)]);
      }
    }
    for (int m = 0; m < num_models; ++m) {
      if (!model_used[static_cast<std::size_t>(m)]) continue;
      const auto& mk = model_keys[static_cast<std::size_t>(m)];
      const auto [it, inserted] = model_interner.emplace(
          mk.key, static_cast<int>(model_class_key.size()));
      if (inserted) model_class_key.push_back(&mk.key);
      model_class[static_cast<std::size_t>(m)] = it->second;
    }
  }

  // ---- Group cells into jobs: one evaluation per distinct
  // (model class, test class) pair, with persistent-cache hits resolved
  // immediately.  Cache-less batches (the streaming fast path: its
  // canonical filter already proved every test unique) skip the whole
  // grouping layer — requests map 1:1 onto checks with no Job, slot
  // list, or group map allocated. ----
  struct Job {
    int model = 0;
    int test = 0;
    int model_cls = -1;
    int test_cls = -1;
    bool from_cache = false;
    bool result = false;
    std::vector<std::size_t> slots;
  };
  // Store columns per model class, resolved once (|-1| = no column:
  // custom-predicate keys, or models outside the store's zoo).
  std::vector<int> store_cols;
  if (vstore != nullptr) {
    store_cols.resize(model_class_key.size());
    for (std::size_t c = 0; c < model_class_key.size(); ++c) {
      store_cols[c] = vstore->column_of(*model_class_key[c]);
    }
  }

  std::vector<Job> jobs;       // from_cache groups stay here too
  std::size_t live_jobs = 0;   // groups that actually need evaluation
  if (grouped) {
    util::MutexLock lock(cache_mu_);
    // Per model class, its persistent-cache bucket (looked up once).
    std::vector<const std::unordered_map<util::Key128, bool, util::Key128Hash>*>
        buckets(model_class_key.size(), nullptr);
    std::vector<char> bucket_ready(model_class_key.size(), 0);
    std::unordered_map<std::uint64_t, std::size_t> group_of;
    group_of.reserve(requests.size());
    const auto num_test_classes =
        static_cast<std::uint64_t>(test_class_key.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto& r = requests[i];
      const auto& mk = model_keys[static_cast<std::size_t>(r.model)];
      const int test_cls =
          (mk.custom || !options_.canonical_dedup)
              ? structural_class[static_cast<std::size_t>(r.test)]
              : canonical_class[static_cast<std::size_t>(r.test)];
      const int model_cls = model_class[static_cast<std::size_t>(r.model)];
      const std::uint64_t pair_id =
          static_cast<std::uint64_t>(model_cls) * num_test_classes +
          static_cast<std::uint64_t>(test_cls);
      const auto [it, inserted] = group_of.emplace(pair_id, jobs.size());
      if (!inserted) {
        Job& job = jobs[it->second];
        job.slots.push_back(i);
        if (job.from_cache) {
          ++stats.cache_hits;
        } else {
          ++stats.dedup_hits;
        }
        continue;
      }
      Job job;
      job.model = r.model;
      job.test = r.test;
      job.model_cls = model_cls;
      job.test_cls = test_cls;
      job.slots.push_back(i);
      // One persistent-cache probe per new group.
      if (cache_enabled) {
        if (!bucket_ready[static_cast<std::size_t>(model_cls)]) {
          const auto bucket = cache_.find(
              *model_class_key[static_cast<std::size_t>(model_cls)]);
          buckets[static_cast<std::size_t>(model_cls)] =
              bucket == cache_.end() ? nullptr : &bucket->second;
          bucket_ready[static_cast<std::size_t>(model_cls)] = 1;
        }
        const auto* bucket = buckets[static_cast<std::size_t>(model_cls)];
        if (bucket != nullptr) {
          const auto hit =
              bucket->find(test_class_key[static_cast<std::size_t>(test_cls)]);
          if (hit != bucket->end()) {
            job.from_cache = true;
            job.result = hit->second;
            ++stats.cache_hits;
          }
        }
      }
      // Cache miss: one on-disk store probe per new group (canonical
      // test classes only — custom-model groups have no column).
      if (!job.from_cache && vstore != nullptr && !mk.custom) {
        const int col = store_cols[static_cast<std::size_t>(model_cls)];
        if (col >= 0) {
          const auto hit = vstore->probe_bit(
              test_class_key[static_cast<std::size_t>(test_cls)], col);
          if (hit.has_value()) {
            job.from_cache = true;
            job.result = *hit;
            ++stats.store_hits;
          } else {
            ++stats.store_misses;
          }
        }
      }
      if (!job.from_cache) ++live_jobs;
      jobs.push_back(std::move(job));
    }
  } else {
    live_jobs = requests.size();
  }

  // Compact the evaluation list: indices of jobs needing a real check
  // (cache path only; the direct path evaluates requests in place).
  std::vector<std::size_t> pending;
  if (grouped) {
    pending.reserve(live_jobs);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (!jobs[j].from_cache) pending.push_back(j);
    }
  }
  const std::size_t live_checks = grouped ? pending.size() : live_jobs;

  // ---- Analyses, now that the cache has spoken: built only for the
  // tests some live job evaluates.  With the fingerprints above coming
  // from core::KeyFacts, a dedup- or cache-served test never constructs
  // an Analysis at all. ----
  std::vector<int> eval_tests;
  if (grouped) {
    std::vector<char> evaluated(tests.size(), 0);
    for (const auto j : pending) {
      evaluated[static_cast<std::size_t>(jobs[j].test)] = 1;
    }
    for (int t = 0; t < num_tests; ++t) {
      if (evaluated[static_cast<std::size_t>(t)]) eval_tests.push_back(t);
    }
  } else {
    eval_tests = used_tests;
  }
  stats.unique_analyses = eval_tests.size();
  if (!eval_tests.empty()) {
    const auto analyze_one = [&](std::size_t k) {
      const auto t = static_cast<std::size_t>(eval_tests[k]);
      analyses[t] =
          (premade_analyses != nullptr && (*premade_analyses)[t] != nullptr)
              ? std::move((*premade_analyses)[t])
              : std::make_unique<core::Analysis>(tests[t].program());
    };
    if (threads > 1 && eval_tests.size() > 1) {
      pool().parallel_for(eval_tests.size(), analyze_one);
    } else {
      for (std::size_t k = 0; k < eval_tests.size(); ++k) analyze_one(k);
    }
  }

  // ---- Evaluate the deduplicated jobs across ONE pool pass.  A
  // cache-miss test's expensive prepared state (rf enumeration +
  // HbProblem skeletons, adopted from the phase-one analyses instead of
  // re-analyzing) is built by whichever worker touches the test first
  // (std::call_once) and is immutable afterward, so worker threads
  // share it without further synchronization and evaluation of other
  // tests proceeds while it builds — no prepare/evaluate barrier.  On
  // cache-heavy streams deduplicated tests never pay for preparation at
  // all.  The job completing a test's last check frees its prepared
  // state (every check of it happens-before the freeing decrement), so
  // peak memory tracks the checks in flight, not the batch size — on
  // dense streamed chunks that is the difference between tens of MB
  // and a working set that never leaves the cache. ----
  const bool prepared_path = options_.prepared && live_checks > 0;
  std::vector<std::once_flag> prepare_once(prepared_path ? tests.size() : 0);
  std::vector<std::atomic<std::uint32_t>> checks_left(
      prepared_path ? tests.size() : 0);
  if (prepared_path) {
    if (grouped) {
      for (const auto j : pending) {
        checks_left[static_cast<std::size_t>(jobs[j].test)].fetch_add(
            1, std::memory_order_relaxed);
      }
    } else {
      for (const auto& r : requests) {
        checks_left[static_cast<std::size_t>(r.test)].fetch_add(
            1, std::memory_order_relaxed);
      }
    }
  }
  std::atomic<std::size_t> explicit_count{0};
  std::atomic<std::size_t> sat_count{0};
  std::atomic<std::size_t> formula_evals{0};
  std::atomic<std::size_t> equivalent_evals{0};
  std::atomic<std::size_t> skeletons_used{0};
  std::atomic<std::size_t> skeletons_built{0};
  std::atomic<std::size_t> tests_prepared{0};
  const auto run_check = [&](int model_idx, int test_idx) -> bool {
    const auto st = static_cast<std::size_t>(test_idx);
    if (options_.prepared) {
      std::call_once(prepare_once[st], [&] {
        prepared[st] = std::make_unique<core::PreparedTest>(
            std::move(*analyses[st]), tests[st].outcome());
        analyses[st].reset();
        skeletons_built.fetch_add(prepared[st]->skeletons().size(),
                                  std::memory_order_relaxed);
        tests_prepared.fetch_add(1, std::memory_order_relaxed);
      });
    }
    const auto& analysis = options_.prepared ? prepared[st]->analysis()
                                             : *analyses[st];
    const core::Engine backend = resolve_backend(analysis.num_events());
    if (backend == core::Engine::Explicit) {
      explicit_count.fetch_add(1, std::memory_order_relaxed);
    } else {
      sat_count.fetch_add(1, std::memory_order_relaxed);
    }
    bool result;
    if (options_.prepared) {
      core::PreparedCheckStats cs;
      result = prepared[st]->allowed(
          models[static_cast<std::size_t>(model_idx)], backend, &cs);
      formula_evals.fetch_add(cs.formula_evals, std::memory_order_relaxed);
      equivalent_evals.fetch_add(cs.equivalent_pair_evals,
                                 std::memory_order_relaxed);
      skeletons_used.fetch_add(cs.skeletons_used, std::memory_order_relaxed);
      // Last check of this test: release its prepared state (acq_rel —
      // every earlier check's use happens-before this free).
      if (checks_left[st].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        prepared[st].reset();
      }
    } else {
      result = core::is_allowed(analysis,
                                models[static_cast<std::size_t>(model_idx)],
                                tests[st].outcome(), backend);
    }
    return result;
  };
  const auto evaluate = [&](std::size_t k) {
    if (grouped) {
      Job& job = jobs[pending[k]];
      job.result = run_check(job.model, job.test);
    } else {
      results[k] = run_check(requests[k].model, requests[k].test) ? 1 : 0;
    }
  };
  if (threads > 1 && live_checks > 1) {
    pool().parallel_for(live_checks, evaluate);
    stats.threads_used = threads;
  } else {
    for (std::size_t k = 0; k < live_checks; ++k) evaluate(k);
    stats.threads_used = 1;
  }
  stats.checks_run = live_checks;
  stats.explicit_checks = explicit_count.load();
  stats.sat_checks = sat_count.load();

  if (options_.prepared) {
    // Per-test work shared across the batch's checks: each check of the
    // per-cell path would have re-enumerated rf maps and rebuilt every
    // skeleton it visited.  (Counters were captured at prepare time —
    // the prepared state itself is already freed test by test.)
    stats.rf_enums_saved = live_checks - tests_prepared.load();
    const std::size_t used = skeletons_used.load();
    const std::size_t built = skeletons_built.load();
    stats.skeletons_reused = used > built ? used - built : 0;
    stats.formula_evals = formula_evals.load();
    const std::size_t equivalent = equivalent_evals.load();
    stats.formula_evals_saved =
        equivalent > stats.formula_evals ? equivalent - stats.formula_evals : 0;
  }

  // ---- Publish results and feed the persistent cache (grouped path
  // only: the direct path wrote results in place and persists nothing).
  if (cache_enabled && persist_verdicts) {
    util::MutexLock lock(cache_mu_);
    for (const auto j : pending) {
      const auto& job = jobs[j];
      cache_[*model_class_key[static_cast<std::size_t>(job.model_cls)]]
          .emplace(test_class_key[static_cast<std::size_t>(job.test_cls)],
                   job.result);
    }
  }
  // Feed the on-disk store: every grouped verdict with a column, cached
  // or evaluated (rewriting a store-served bit is a no-op, and writing
  // cache-served ones keeps a part-warm store converging on complete).
  // One exclusive acquisition covers the whole batch instead of a
  // lock round trip per cell.
  if (vstore != nullptr) {
    util::ExclusiveLock lock(vstore->mu());
    for (const auto& job : jobs) {
      if (model_keys[static_cast<std::size_t>(job.model)].custom) continue;
      const int col = store_cols[static_cast<std::size_t>(job.model_cls)];
      if (col >= 0) {
        vstore->set_bit_locked(
            test_class_key[static_cast<std::size_t>(job.test_cls)], col,
            job.result);
      }
    }
  }
  for (const auto& job : jobs) {
    for (const auto slot : job.slots) results[slot] = job.result ? 1 : 0;
  }

  stats.wall_seconds = timer.seconds();
  last_stats_ = stats;
  total_stats_ += stats;
  return results;
}

BitMatrix VerdictEngine::run_matrix(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests) {
  return run_matrix_impl(models, tests, /*persist_verdicts=*/true);
}

BitMatrix VerdictEngine::run_matrix_impl(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests, bool persist_verdicts,
    bool use_cache) {
  const int num_models = static_cast<int>(models.size());
  const int num_tests = static_cast<int>(tests.size());
  std::vector<VerdictRequest> requests;
  requests.reserve(static_cast<std::size_t>(num_models) *
                   static_cast<std::size_t>(num_tests));
  // Test-major: a test's |models| checks sit adjacently in the batch,
  // so its prepared state is built and freed back to back (verdicts are
  // order-independent; only peak memory changes).
  for (int t = 0; t < num_tests; ++t) {
    for (int m = 0; m < num_models; ++m) requests.push_back({m, t});
  }
  const auto verdicts =
      run_batch_impl(models, tests, requests, persist_verdicts, use_cache);

  BitMatrix matrix(num_models, num_tests);
  std::size_t i = 0;
  for (int t = 0; t < num_tests; ++t) {
    for (int m = 0; m < num_models; ++m, ++i) {
      if (verdicts[i]) matrix.set(m, t, true);
    }
  }
  return matrix;
}

StreamStageTimes& StreamStageTimes::operator+=(const StreamStageTimes& other) {
  produce += other.produce;
  keys += other.keys;
  dedup += other.dedup;
  verdict += other.verdict;
  return *this;
}

std::string StreamStageTimes::to_string() const {
  std::ostringstream os;
  os << "produce=" << produce << "s keys=" << keys << "s dedup=" << dedup
     << "s verdict=" << verdict << "s";
  return os.str();
}

double StreamStats::dedup_rate() const {
  return tests_streamed == 0
             ? 0.0
             : static_cast<double>(duplicate_tests) /
                   static_cast<double>(tests_streamed);
}

std::string StreamStats::to_string() const {
  std::ostringstream os;
  os << "chunks=" << chunks << " streamed=" << tests_streamed
     << " novel=" << novel_tests << " duplicates=" << duplicate_tests
     << " (dedup " << static_cast<int>(100.0 * dedup_rate() + 0.5)
     << "%) wall=" << wall_seconds << "s stages[" << stages.to_string()
     << (overlapped ? " (produce overlapped)" : "")
     << "] shards=" << dedup_shards << " [" << engine.to_string() << "]";
  return os.str();
}

StreamStats VerdictEngine::run_stream(
    const std::vector<core::MemoryModel>& models, TestSource& source,
    const StreamChunkSink& on_chunk, const StreamOptions& stream_options) {
  util::Timer timer;
  StreamStats total;

  // Canonical keys are only sound for models built from the built-in
  // predicates; one custom-predicate model (or a caller that re-uses
  // the novel tests against custom models), or an engine configured
  // for structural-only dedup (EngineOptions::canonical_dedup off),
  // forces structural keys for the whole stream filter.
  bool structural_filter =
      stream_options.force_structural_keys || !options_.canonical_dedup;
  for (const auto& model : models) {
    structural_filter = structural_filter || model.formula().has_custom();
  }

  const int num_models = static_cast<int>(models.size());
  const int threads = effective_threads();
  const bool dedup = stream_options.dedup_across_chunks;

  // ---- Stream-level verdict store: a novel test whose full verdict
  // row is on disk skips evaluation; evaluated rows are written back.
  // Requires canonical dedup keys (the store holds canonical
  // fingerprints only) and a store column for every swept model. ----
  store::VerdictStore* const vstore = stream_options.verdict_store;
  std::vector<int> store_cols;
  bool stream_store = vstore != nullptr && dedup && !structural_filter;
  if (stream_store) {
    store_cols.reserve(models.size());
    for (const auto& model : models) {
      const int col = vstore->column_of(store::model_store_key(model));
      if (col < 0) {
        stream_store = false;
        store_cols.clear();
        break;
      }
      store_cols.push_back(col);
    }
  }

  // ---- Pipeline state.  The dedup set stores 128-bit key hashes in
  // mutex-striped shards; overlap runs the source in a producer thread
  // (ChunkPrefetcher) so materialization hides behind evaluation.  All
  // per-chunk buffers are hoisted and reused across chunks. ----
  std::optional<ShardedKeySet> seen;
  if (dedup) seen.emplace(stream_options.dedup_shards);
  total.dedup_shards = seen ? seen->num_shards() : 0;
  // Audit mode only: fingerprint -> legacy key string and back, proving
  // fingerprint equality coincides with legacy key equality over the
  // stream (see StreamOptions::audit_dedup_keys).
  std::unordered_map<util::Key128, std::string, util::Key128Hash> audit;
  std::unordered_map<std::string, util::Key128> audit_reverse;

  // ---- Checkpoint/resume.  Restoring happens before the prefetcher
  // exists, directly on the raw source; both restore steps validate
  // before mutating, so a failed resume degrades to streaming from
  // scratch rather than diverging. ----
  const store::StreamPersistence* const persist =
      vstore != nullptr && stream_options.persistence != nullptr &&
              !stream_options.persistence->path.empty()
          ? stream_options.persistence
          : nullptr;
  int seals = 0;
  int chunks_since_seal = 0;
  if (persist != nullptr && persist->resume) {
    // checkpoint() hands out a copy (the stored one lives under the
    // store's lock), so the restore steps below work on a stable value.
    const std::optional<store::StreamCheckpoint> ck = vstore->checkpoint();
    if (ck.has_value()) {
      const bool sink_ok =
          !persist->restore_sink || persist->restore_sink(ck->sink_state);
      if (sink_ok && source.restore_cursor(ck->source_cursor)) {
        if (seen) seen->seed(ck->seen_keys);
        total.chunks = static_cast<std::size_t>(ck->chunks);
        total.tests_streamed = static_cast<std::size_t>(ck->tests_streamed);
        total.novel_tests = static_cast<std::size_t>(ck->novel_tests);
        total.duplicate_tests = static_cast<std::size_t>(ck->duplicate_tests);
      } else {
        // Unusable checkpoint (source shape changed, or a sink that
        // cannot adopt the state): drop it and recompute from scratch.
        vstore->clear_checkpoint();
      }
    }
  }

  // The prefetcher runs on its own thread, not a pool worker, so
  // overlap engages even for a 1-thread engine (production still hides
  // behind consumption whenever a spare core exists).
  const bool overlap = stream_options.overlap_production;
  total.overlapped = overlap;
  std::optional<ChunkPrefetcher> prefetcher;
  // Cursor capture exists only for checkpoint seals; without
  // persistence the producer thread skips the per-chunk snapshot.
  if (overlap) prefetcher.emplace(source, 1, persist != nullptr);
  TestSource& input = overlap ? static_cast<TestSource&>(*prefetcher) : source;

  std::vector<litmus::LitmusTest> chunk;
  std::vector<litmus::LitmusTest> novel;
  std::vector<std::unique_ptr<core::Analysis>> analyses;
  std::vector<util::Key128> key_hashes;
  std::vector<char> dup_of_past;
  std::vector<std::string> full_keys;  // audit mode only
  std::vector<int> novel_idx;
  std::vector<std::size_t> eval_pos;  // novel positions the store missed
  std::vector<std::uint64_t> store_row;

  bool more = true;
  while (more) {
    chunk.clear();
    util::Timer produce_timer;
    more = input.next_chunk(chunk);
    const double produce_seconds =
        overlap ? prefetcher->last_produce_seconds() : produce_timer.seconds();
    if (chunk.empty()) {
      total.stages.produce += produce_seconds;
      continue;
    }

    StreamChunkStats cs;
    cs.index = total.chunks;
    cs.streamed = chunk.size();
    cs.stages.produce = produce_seconds;

    // ---- Cross-chunk dedup, two phases.
    //
    // Key phase (parallel): fingerprint computation fans out across the
    // pool in contiguous ranges, each worker reusing one KeyScratch.
    // litmus::canonical_fingerprint hashes the canonicalized event walk
    // directly — no Analysis, no key string, no per-test allocation —
    // and the 128-bit digest is claimed in the sharded set as it goes.
    // Only audit mode still builds the Analysis and the legacy string
    // key per test (handing novel analyses to the batch below).
    //
    // Resolve phase (serial, chunk order): a test is novel iff its key
    // is new to the stream and it holds the chunk's minimum index for
    // that key — exactly what serial insertion in chunk order would
    // decide, making results independent of thread count. ----
    const std::size_t n = chunk.size();
    analyses.clear();
    analyses.resize(n);
    novel_idx.clear();
    if (dedup) {
      util::Timer key_timer;
      key_hashes.resize(n);
      dup_of_past.assign(n, 0);
      if (stream_options.audit_dedup_keys) full_keys.assign(n, {});
      seen->begin_chunk();
      const std::size_t tasks =
          threads > 1 && n > 1
              ? (n < static_cast<std::size_t>(threads) * 4
                     ? n
                     : static_cast<std::size_t>(threads) * 4)
              : 1;
      const auto key_range = [&](std::size_t r) {
        litmus::KeyScratch scratch;
        const std::size_t begin = n * r / tasks;
        const std::size_t end = n * (r + 1) / tasks;
        for (std::size_t i = begin; i < end; ++i) {
          key_hashes[i] =
              structural_filter
                  ? litmus::structural_fingerprint(chunk[i])
                  : litmus::canonical_fingerprint(chunk[i], scratch);
          if (stream_options.audit_dedup_keys) {
            // The legacy string key for the cross-check; the canonical
            // flavor needs the Analysis the fingerprint skipped, which
            // is handed to the batch below so novel tests are not
            // re-analyzed.
            if (structural_filter) {
              litmus::structural_key(chunk[i], scratch.best);
              full_keys[i] = scratch.best;
            } else {
              analyses[i] =
                  std::make_unique<core::Analysis>(chunk[i].program());
              full_keys[i] = litmus::canonical_key(*analyses[i],
                                                   chunk[i].outcome(), scratch);
            }
          }
          dup_of_past[i] =
              seen->claim(key_hashes[i], static_cast<std::uint32_t>(i)) ? 1 : 0;
          // A settled duplicate's audit analysis is dead weight: free it
          // here in the worker, not after the whole chunk is keyed.
          if (dup_of_past[i] != 0) analyses[i].reset();
        }
      };
      if (tasks > 1) {
        pool().parallel_for(tasks, key_range);
      } else {
        key_range(0);
      }
      cs.stages.keys = key_timer.seconds();

      util::Timer dedup_timer;
      for (std::size_t i = 0; i < n; ++i) {
        const bool duplicate =
            dup_of_past[i] != 0 ||
            seen->owner(key_hashes[i]) != static_cast<std::uint32_t>(i);
        if (stream_options.audit_dedup_keys) {
          // Both directions: a fingerprint maps to exactly one legacy
          // key (no collision merges distinct classes) and a legacy key
          // maps to exactly one fingerprint (no class is split).
          const auto it = audit.find(key_hashes[i]);
          if (it == audit.end()) {
            MCMC_CHECK_MSG(
                audit_reverse.emplace(full_keys[i], key_hashes[i]).second,
                "canonical fingerprint split a key class: equal legacy "
                "keys produced distinct fingerprints");
            audit.emplace(key_hashes[i], std::move(full_keys[i]));
          } else {
            MCMC_CHECK_MSG(it->second == full_keys[i],
                           "128-bit fingerprint collision: two distinct "
                           "canonical keys share a fingerprint");
          }
        }
        if (duplicate) {
          analyses[i].reset();
          ++cs.duplicates;
        } else {
          novel_idx.push_back(static_cast<int>(i));
        }
      }
      cs.stages.dedup = dedup_timer.seconds();
    } else {
      novel_idx.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        novel_idx[i] = static_cast<int>(i);
      }
    }
    cs.novel = novel_idx.size();

    util::Timer verdict_timer;

    // ---- Store probe: novel tests whose full verdict row is on disk
    // are delivered straight from it; only the misses evaluate. ----
    BitMatrix verdicts(num_models, static_cast<int>(novel_idx.size()));
    eval_pos.clear();
    if (stream_store) {
      for (std::size_t k = 0; k < novel_idx.size(); ++k) {
        const auto t = static_cast<std::size_t>(novel_idx[k]);
        if (vstore->probe_row(key_hashes[t], store_cols, store_row)) {
          for (int m = 0; m < num_models; ++m) {
            if ((store_row[static_cast<std::size_t>(m) / 64] >>
                 (static_cast<std::size_t>(m) % 64)) &
                1ULL) {
              verdicts.set(m, static_cast<int>(k), true);
            }
          }
        } else {
          eval_pos.push_back(k);
        }
      }
    } else {
      eval_pos.resize(novel_idx.size());
      for (std::size_t k = 0; k < novel_idx.size(); ++k) eval_pos[k] = k;
    }

    // ---- Evaluate the chunk's store-missed novel tests in place (no
    // moves yet: the analyses point into `chunk`'s programs). ----
    if (!eval_pos.empty()) {
      std::vector<VerdictRequest> requests;
      requests.reserve(static_cast<std::size_t>(num_models) * eval_pos.size());
      // Test-major order: a test's |models| checks are adjacent, so its
      // prepared state is freed almost as soon as it is built.
      for (const std::size_t k : eval_pos) {
        const int t = novel_idx[k];
        for (int m = 0; m < num_models; ++m) requests.push_back({m, t});
      }
      // When the stream filter deduped by canonical fingerprints, the
      // novel tests are canonically unique: no within-batch group could
      // ever merge, so skip the batch cache layer instead of
      // re-deriving every fingerprint it would intern.  (A structural
      // filter leaves canonical within-batch sharing worthwhile.)
      const bool batch_cache =
          !stream_options.dedup_across_chunks || structural_filter;
      const auto flat =
          run_batch_impl(models, chunk, requests,
                         stream_options.persist_verdicts, batch_cache,
                         &analyses);
      std::size_t slot = 0;
      for (const std::size_t k : eval_pos) {
        for (int m = 0; m < num_models; ++m, ++slot) {
          if (flat[slot]) verdicts.set(m, static_cast<int>(k), true);
        }
      }
      cs.engine = last_stats_;
      // Write the evaluated rows back so the next cold run (or the next
      // process) serves them from disk — one exclusive acquisition for
      // the whole chunk, not per bit.
      if (stream_store) {
        util::ExclusiveLock lock(vstore->mu());
        for (const std::size_t k : eval_pos) {
          const auto t = static_cast<std::size_t>(novel_idx[k]);
          for (int m = 0; m < num_models; ++m) {
            vstore->set_bit_locked(key_hashes[t],
                                   store_cols[static_cast<std::size_t>(m)],
                                   verdicts.get(m, static_cast<int>(k)));
          }
        }
      }
    }
    if (stream_store) {
      const std::size_t served = novel_idx.size() - eval_pos.size();
      cs.engine.store_hits += served * static_cast<std::size_t>(num_models);
      cs.engine.store_misses +=
          eval_pos.size() * static_cast<std::size_t>(num_models);
    }

    // ---- Deliver: the novel tests move out of the chunk only after
    // the batch (and every Analysis into them) is done. ----
    novel.clear();
    for (const int t : novel_idx) {
      novel.push_back(std::move(chunk[static_cast<std::size_t>(t)]));
    }
    cs.stages.verdict = verdict_timer.seconds();

    ++total.chunks;
    total.tests_streamed += cs.streamed;
    total.novel_tests += cs.novel;
    total.duplicate_tests += cs.duplicates;
    total.stages += cs.stages;
    total.engine += cs.engine;
    if (on_chunk) on_chunk(novel, verdicts, cs);

    // ---- Seal: every K chunks, snapshot the whole resumable state
    // (cursor, dedup set, counters, sink) into the store and commit it
    // atomically.  A failed save (full disk, failing fsync) is not
    // fatal — the previous complete file stands and sealing retries
    // after the next chunk. ----
    if (persist != nullptr && more &&
        ++chunks_since_seal >= persist->checkpoint_every_chunks &&
        persist->checkpoint_every_chunks > 0) {
      store::StreamCheckpoint ck;
      if (input.snapshot_cursor(ck.source_cursor)) {
        ck.chunks = total.chunks;
        ck.tests_streamed = total.tests_streamed;
        ck.novel_tests = total.novel_tests;
        ck.duplicate_tests = total.duplicate_tests;
        if (seen) {
          seen->export_keys(ck.seen_keys);
          // Flat-table slot order depends on claim interleaving; sort
          // so equal dedup sets checkpoint identically.
          std::sort(ck.seen_keys.begin(), ck.seen_keys.end());
        }
        if (persist->save_sink) persist->save_sink(ck.sink_state);
        vstore->set_checkpoint(std::move(ck));
        if (vstore->save(persist->path, persist->fs)) {
          chunks_since_seal = 0;
          ++seals;
          if (persist->kill_after_seals >= 0 &&
              seals >= persist->kill_after_seals) {
            // The file is already committed: on-disk state is exactly a
            // SIGKILL's right after the rename.
            throw store::StreamInterrupted(
                "stream killed by test hook after seal " +
                std::to_string(seals));
          }
        }
      }
    }
  }

  // ---- Completion: the checkpoint has served its purpose; commit the
  // warm store without one so the next run starts clean. ----
  if (persist != nullptr) {
    vstore->clear_checkpoint();
    (void)vstore->save(persist->path, persist->fs);
  }
  total.wall_seconds = timer.seconds();
  return total;
}

bool VerdictEngine::allowed(const core::MemoryModel& model,
                            const litmus::LitmusTest& test) {
  return run_batch({model}, {test}, {VerdictRequest{0, 0}})[0] != 0;
}

}  // namespace mcmc::engine
