#include "engine/verdict_engine.h"

#include <atomic>
#include <sstream>
#include <thread>

#include "core/analysis.h"
#include "util/check.h"
#include "util/timer.h"

namespace mcmc::engine {

std::string to_string(Backend backend) {
  switch (backend) {
    case Backend::Explicit:
      return "explicit";
    case Backend::Sat:
      return "sat";
    case Backend::Adaptive:
      return "adaptive";
  }
  MCMC_UNREACHABLE("bad backend");
}

bool parse_backend(const std::string& text, Backend& out) {
  if (text == "explicit") {
    out = Backend::Explicit;
  } else if (text == "sat") {
    out = Backend::Sat;
  } else if (text == "adaptive") {
    out = Backend::Adaptive;
  } else {
    return false;
  }
  return true;
}

EngineStats& EngineStats::operator+=(const EngineStats& other) {
  cells += other.cells;
  checks_run += other.checks_run;
  cache_hits += other.cache_hits;
  dedup_hits += other.dedup_hits;
  explicit_checks += other.explicit_checks;
  sat_checks += other.sat_checks;
  unique_analyses += other.unique_analyses;
  rf_enums_saved += other.rf_enums_saved;
  skeletons_reused += other.skeletons_reused;
  formula_evals += other.formula_evals;
  formula_evals_saved += other.formula_evals_saved;
  if (other.threads_used > threads_used) threads_used = other.threads_used;
  wall_seconds += other.wall_seconds;
  return *this;
}

std::string EngineStats::to_string() const {
  std::ostringstream os;
  os << "cells=" << cells << " checks=" << checks_run
     << " cache_hits=" << cache_hits << " dedup_hits=" << dedup_hits
     << " backends=explicit:" << explicit_checks << "/sat:" << sat_checks
     << " analyses=" << unique_analyses
     << " rf_enums_saved=" << rf_enums_saved
     << " skeletons_reused=" << skeletons_reused
     << " formula_evals=" << formula_evals << " (saved "
     << formula_evals_saved << ")"
     << " threads=" << threads_used << " wall=" << wall_seconds << "s";
  return os.str();
}

VerdictEngine::VerdictEngine(EngineOptions options) : options_(options) {
  MCMC_REQUIRE(options_.num_threads >= 0);
  MCMC_REQUIRE(options_.sat_event_threshold >= 0);
}

VerdictEngine::~VerdictEngine() = default;

int VerdictEngine::effective_threads() const {
  if (options_.num_threads > 0) return options_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

core::Engine VerdictEngine::resolve_backend(int num_events) const {
  switch (options_.backend) {
    case Backend::Explicit:
      return core::Engine::Explicit;
    case Backend::Sat:
      return core::Engine::Sat;
    case Backend::Adaptive: {
      // The explicit engine's transitive-closure bitmasks hold 64 events.
      const int limit =
          options_.sat_event_threshold < 64 ? options_.sat_event_threshold : 64;
      return num_events <= limit ? core::Engine::Explicit : core::Engine::Sat;
    }
  }
  MCMC_UNREACHABLE("bad backend");
}

WorkStealingPool& VerdictEngine::pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkStealingPool>(effective_threads());
  }
  return *pool_;
}

std::size_t VerdictEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::size_t total = 0;
  for (const auto& [key, bucket] : cache_) total += bucket.size();
  return total;
}

void VerdictEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
  pinned_custom_formulas_.clear();
  pinned_ids_.clear();
}

std::vector<char> VerdictEngine::run_batch(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests,
    const std::vector<VerdictRequest>& requests) {
  return run_batch_impl(models, tests, requests, /*persist_verdicts=*/true);
}

std::vector<char> VerdictEngine::run_batch_impl(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests,
    const std::vector<VerdictRequest>& requests, bool persist_verdicts,
    bool use_cache,
    std::vector<std::unique_ptr<core::Analysis>>* premade_analyses) {
  util::Timer timer;
  const bool cache_enabled = options_.cache_enabled && use_cache;
  EngineStats stats;
  stats.cells = requests.size();
  std::vector<char> results(requests.size(), 0);

  const int num_models = static_cast<int>(models.size());
  const int num_tests = static_cast<int>(tests.size());
  for (const auto& r : requests) {
    MCMC_REQUIRE_MSG(r.model >= 0 && r.model < num_models,
                     "request model index out of range");
    MCMC_REQUIRE_MSG(r.test >= 0 && r.test < num_tests,
                     "request test index out of range");
  }
  if (requests.empty()) {
    last_stats_ = stats;
    total_stats_ += stats;
    return results;
  }

  // ---- Which tests and models this batch touches. ----
  std::vector<char> test_used(tests.size(), 0);
  std::vector<char> model_used(models.size(), 0);
  for (const auto& r : requests) {
    test_used[static_cast<std::size_t>(r.test)] = 1;
    model_used[static_cast<std::size_t>(r.model)] = 1;
  }
  std::vector<int> used_tests;
  for (int t = 0; t < num_tests; ++t) {
    if (test_used[static_cast<std::size_t>(t)]) used_tests.push_back(t);
  }

  // ---- Model cache keys.  Structurally identical custom-free formulas
  // share; formulas with custom predicates are keyed by tree identity. ----
  struct ModelKey {
    std::string key;
    bool custom = false;
  };
  std::vector<ModelKey> model_keys(models.size());
  bool any_canonical = false;
  bool any_structural = false;
  for (int m = 0; m < num_models; ++m) {
    if (!model_used[static_cast<std::size_t>(m)]) continue;
    auto& mk = model_keys[static_cast<std::size_t>(m)];
    const auto& formula = models[static_cast<std::size_t>(m)].formula();
    mk.custom = formula.has_custom();
    if (mk.custom) {
      std::ostringstream os;
      os << "P:" << formula.identity();
      mk.key = os.str();
      if (cache_enabled) {
        // Pin the node so its address (= the cache key) cannot be
        // recycled by a different custom formula while this engine's
        // cached verdicts reference it.
        std::lock_guard<std::mutex> lock(cache_mu_);
        if (pinned_ids_.insert(formula.identity()).second) {
          pinned_custom_formulas_.push_back(formula);
        }
      }
    } else {
      mk.key = "F:" + formula.to_string();
    }
    if (mk.custom || !options_.canonical_dedup) {
      any_structural = true;
    } else {
      any_canonical = true;
    }
  }

  const bool need_canonical = cache_enabled && any_canonical;
  const bool need_structural = cache_enabled && any_structural;

  // ---- Per-test shared state (built once, shared across models and
  // worker threads) and test keys.  Only the bare Analysis is built
  // here — enough for the cache keys; the expensive prepared state (rf
  // enumeration + HbProblem skeletons) is deferred until the cache has
  // spoken, so cache-hit tests never pay for it. ----
  std::vector<std::unique_ptr<core::PreparedTest>> prepared(tests.size());
  std::vector<std::unique_ptr<core::Analysis>> analyses(tests.size());
  std::vector<std::string> canonical_keys(tests.size());
  std::vector<std::string> structural_keys(tests.size());
  const auto analyze_one = [&](std::size_t k) {
    const int t = used_tests[k];
    const auto& test = tests[static_cast<std::size_t>(t)];
    auto built =
        (premade_analyses != nullptr &&
         (*premade_analyses)[static_cast<std::size_t>(t)] != nullptr)
            ? std::move((*premade_analyses)[static_cast<std::size_t>(t)])
            : std::make_unique<core::Analysis>(test.program());
    if (need_canonical) {
      canonical_keys[static_cast<std::size_t>(t)] =
          litmus::canonical_key(*built, test.outcome());
    }
    if (need_structural) {
      structural_keys[static_cast<std::size_t>(t)] = litmus::structural_key(test);
    }
    analyses[static_cast<std::size_t>(t)] = std::move(built);
  };
  stats.unique_analyses = used_tests.size();
  const int threads = effective_threads();
  if (threads > 1 && used_tests.size() > 1) {
    pool().parallel_for(used_tests.size(), analyze_one);
  } else {
    for (std::size_t k = 0; k < used_tests.size(); ++k) analyze_one(k);
  }

  // ---- Intern keys into dense class ids so the per-cell grouping cost
  // is two array reads and one integer hash, never a string. ----
  //
  // test_class[t]: class id of test t under each key flavor; tests whose
  // keys collide share a class.  model_class[m]: ditto for model keys.
  std::vector<int> model_class(models.size(), -1);
  std::vector<int> canonical_class(tests.size(), -1);
  std::vector<int> structural_class(tests.size(), -1);
  std::vector<const std::string*> model_class_key;
  std::vector<const std::string*> test_class_key;
  if (cache_enabled) {
    std::unordered_map<std::string, int> model_interner;
    std::unordered_map<std::string, int> test_interner;
    const auto intern_test = [&](const std::string& key) {
      const auto [it, inserted] =
          test_interner.emplace(key, static_cast<int>(test_class_key.size()));
      if (inserted) test_class_key.push_back(&key);
      return it->second;
    };
    for (const int t : used_tests) {
      if (need_canonical) {
        canonical_class[static_cast<std::size_t>(t)] =
            intern_test(canonical_keys[static_cast<std::size_t>(t)]);
      }
      if (need_structural) {
        structural_class[static_cast<std::size_t>(t)] =
            intern_test(structural_keys[static_cast<std::size_t>(t)]);
      }
    }
    for (int m = 0; m < num_models; ++m) {
      if (!model_used[static_cast<std::size_t>(m)]) continue;
      const auto& mk = model_keys[static_cast<std::size_t>(m)];
      const auto [it, inserted] = model_interner.emplace(
          mk.key, static_cast<int>(model_class_key.size()));
      if (inserted) model_class_key.push_back(&mk.key);
      model_class[static_cast<std::size_t>(m)] = it->second;
    }
  }

  // ---- Group cells into jobs: one evaluation per distinct
  // (model class, test class) pair, with persistent-cache hits resolved
  // immediately. ----
  struct Job {
    int model = 0;
    int test = 0;
    int model_cls = -1;
    int test_cls = -1;
    bool from_cache = false;
    bool result = false;
    std::vector<std::size_t> slots;
  };
  std::vector<Job> jobs;       // from_cache groups stay here too
  std::size_t live_jobs = 0;   // groups that actually need evaluation
  if (cache_enabled) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    // Per model class, its persistent-cache bucket (looked up once).
    std::vector<const std::unordered_map<std::string, bool>*> buckets(
        model_class_key.size(), nullptr);
    std::vector<char> bucket_ready(model_class_key.size(), 0);
    std::unordered_map<std::uint64_t, std::size_t> group_of;
    group_of.reserve(requests.size());
    const auto num_test_classes =
        static_cast<std::uint64_t>(test_class_key.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto& r = requests[i];
      const auto& mk = model_keys[static_cast<std::size_t>(r.model)];
      const int test_cls =
          (mk.custom || !options_.canonical_dedup)
              ? structural_class[static_cast<std::size_t>(r.test)]
              : canonical_class[static_cast<std::size_t>(r.test)];
      const int model_cls = model_class[static_cast<std::size_t>(r.model)];
      const std::uint64_t pair_id =
          static_cast<std::uint64_t>(model_cls) * num_test_classes +
          static_cast<std::uint64_t>(test_cls);
      const auto [it, inserted] = group_of.emplace(pair_id, jobs.size());
      if (!inserted) {
        Job& job = jobs[it->second];
        job.slots.push_back(i);
        if (job.from_cache) {
          ++stats.cache_hits;
        } else {
          ++stats.dedup_hits;
        }
        continue;
      }
      Job job;
      job.model = r.model;
      job.test = r.test;
      job.model_cls = model_cls;
      job.test_cls = test_cls;
      job.slots.push_back(i);
      // One persistent-cache probe per new group.
      if (!bucket_ready[static_cast<std::size_t>(model_cls)]) {
        const auto bucket =
            cache_.find(*model_class_key[static_cast<std::size_t>(model_cls)]);
        buckets[static_cast<std::size_t>(model_cls)] =
            bucket == cache_.end() ? nullptr : &bucket->second;
        bucket_ready[static_cast<std::size_t>(model_cls)] = 1;
      }
      const auto* bucket = buckets[static_cast<std::size_t>(model_cls)];
      if (bucket != nullptr) {
        const auto hit =
            bucket->find(*test_class_key[static_cast<std::size_t>(test_cls)]);
        if (hit != bucket->end()) {
          job.from_cache = true;
          job.result = hit->second;
          ++stats.cache_hits;
        }
      }
      if (!job.from_cache) ++live_jobs;
      jobs.push_back(std::move(job));
    }
  } else {
    jobs.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      Job job;
      job.model = requests[i].model;
      job.test = requests[i].test;
      job.slots.push_back(i);
      jobs.push_back(std::move(job));
    }
    live_jobs = jobs.size();
  }

  // Compact the evaluation list: indices of jobs needing a real check.
  std::vector<std::size_t> pending;
  pending.reserve(live_jobs);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!jobs[j].from_cache) pending.push_back(j);
  }

  // ---- Prepare only the tests that still need a real check, adopting
  // the phase-one analyses instead of re-analyzing.  On cache-heavy
  // streams this skips the rf enumeration and skeleton construction for
  // every deduplicated test. ----
  if (options_.prepared && !pending.empty()) {
    std::vector<char> needs_prepare(tests.size(), 0);
    for (const auto j : pending) {
      needs_prepare[static_cast<std::size_t>(jobs[j].test)] = 1;
    }
    std::vector<int> to_prepare;
    for (const int t : used_tests) {
      if (needs_prepare[static_cast<std::size_t>(t)]) to_prepare.push_back(t);
    }
    const auto prepare_one = [&](std::size_t k) {
      const auto t = static_cast<std::size_t>(to_prepare[k]);
      prepared[t] = std::make_unique<core::PreparedTest>(
          std::move(*analyses[t]), tests[t].outcome());
      analyses[t].reset();
    };
    if (threads > 1 && to_prepare.size() > 1) {
      pool().parallel_for(to_prepare.size(), prepare_one);
    } else {
      for (std::size_t k = 0; k < to_prepare.size(); ++k) prepare_one(k);
    }
  }

  // ---- Evaluate the deduplicated jobs across the pool.  The prepared
  // tests are immutable after construction, so worker threads share
  // them without synchronization. ----
  std::atomic<std::size_t> explicit_count{0};
  std::atomic<std::size_t> sat_count{0};
  std::atomic<std::size_t> formula_evals{0};
  std::atomic<std::size_t> equivalent_evals{0};
  std::atomic<std::size_t> skeletons_used{0};
  const auto evaluate = [&](std::size_t k) {
    Job& job = jobs[pending[k]];
    const auto st = static_cast<std::size_t>(job.test);
    const auto& analysis = options_.prepared ? prepared[st]->analysis()
                                             : *analyses[st];
    const core::Engine backend = resolve_backend(analysis.num_events());
    if (backend == core::Engine::Explicit) {
      explicit_count.fetch_add(1, std::memory_order_relaxed);
    } else {
      sat_count.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.prepared) {
      core::PreparedCheckStats cs;
      job.result = prepared[st]->allowed(
          models[static_cast<std::size_t>(job.model)], backend, &cs);
      formula_evals.fetch_add(cs.formula_evals, std::memory_order_relaxed);
      equivalent_evals.fetch_add(cs.equivalent_pair_evals,
                                 std::memory_order_relaxed);
      skeletons_used.fetch_add(cs.skeletons_used, std::memory_order_relaxed);
    } else {
      job.result = core::is_allowed(
          analysis, models[static_cast<std::size_t>(job.model)],
          tests[st].outcome(), backend);
    }
  };
  if (threads > 1 && pending.size() > 1) {
    pool().parallel_for(pending.size(), evaluate);
    stats.threads_used = threads;
  } else {
    for (std::size_t k = 0; k < pending.size(); ++k) evaluate(k);
    stats.threads_used = 1;
  }
  stats.checks_run = pending.size();
  stats.explicit_checks = explicit_count.load();
  stats.sat_checks = sat_count.load();

  if (options_.prepared) {
    // Per-test work shared across the batch's checks: each check of the
    // per-cell path would have re-enumerated rf maps and rebuilt every
    // skeleton it visited.
    std::vector<char> test_evaluated(tests.size(), 0);
    std::size_t distinct_tests = 0;
    std::size_t skeletons_built = 0;
    for (const auto j : pending) {
      const auto st = static_cast<std::size_t>(jobs[j].test);
      if (!test_evaluated[st]) {
        test_evaluated[st] = 1;
        ++distinct_tests;
        skeletons_built += prepared[st]->skeletons().size();
      }
    }
    stats.rf_enums_saved = pending.size() - distinct_tests;
    const std::size_t used = skeletons_used.load();
    stats.skeletons_reused = used > skeletons_built ? used - skeletons_built : 0;
    stats.formula_evals = formula_evals.load();
    const std::size_t equivalent = equivalent_evals.load();
    stats.formula_evals_saved =
        equivalent > stats.formula_evals ? equivalent - stats.formula_evals : 0;
  }

  // ---- Publish results and feed the persistent cache. ----
  if (cache_enabled && persist_verdicts) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (const auto j : pending) {
      const auto& job = jobs[j];
      cache_[*model_class_key[static_cast<std::size_t>(job.model_cls)]]
          .emplace(*test_class_key[static_cast<std::size_t>(job.test_cls)],
                   job.result);
    }
  }
  for (const auto& job : jobs) {
    for (const auto slot : job.slots) results[slot] = job.result ? 1 : 0;
  }

  stats.wall_seconds = timer.seconds();
  last_stats_ = stats;
  total_stats_ += stats;
  return results;
}

BitMatrix VerdictEngine::run_matrix(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests) {
  return run_matrix_impl(models, tests, /*persist_verdicts=*/true);
}

BitMatrix VerdictEngine::run_matrix_impl(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests, bool persist_verdicts,
    bool use_cache) {
  const int num_models = static_cast<int>(models.size());
  const int num_tests = static_cast<int>(tests.size());
  std::vector<VerdictRequest> requests;
  requests.reserve(static_cast<std::size_t>(num_models) *
                   static_cast<std::size_t>(num_tests));
  for (int m = 0; m < num_models; ++m) {
    for (int t = 0; t < num_tests; ++t) requests.push_back({m, t});
  }
  const auto verdicts =
      run_batch_impl(models, tests, requests, persist_verdicts, use_cache);

  BitMatrix matrix(num_models, num_tests);
  std::size_t i = 0;
  for (int m = 0; m < num_models; ++m) {
    for (int t = 0; t < num_tests; ++t, ++i) {
      if (verdicts[i]) matrix.set(m, t, true);
    }
  }
  return matrix;
}

double StreamStats::dedup_rate() const {
  return tests_streamed == 0
             ? 0.0
             : static_cast<double>(duplicate_tests) /
                   static_cast<double>(tests_streamed);
}

std::string StreamStats::to_string() const {
  std::ostringstream os;
  os << "chunks=" << chunks << " streamed=" << tests_streamed
     << " novel=" << novel_tests << " duplicates=" << duplicate_tests
     << " (dedup " << static_cast<int>(100.0 * dedup_rate() + 0.5)
     << "%) wall=" << wall_seconds << "s [" << engine.to_string() << "]";
  return os.str();
}

StreamStats VerdictEngine::run_stream(
    const std::vector<core::MemoryModel>& models, TestSource& source,
    const StreamChunkSink& on_chunk, const StreamOptions& stream_options) {
  util::Timer timer;
  StreamStats total;

  // Canonical keys are only sound for models built from the built-in
  // predicates; one custom-predicate model (or a caller that re-uses
  // the novel tests against custom models), or an engine configured
  // for structural-only dedup (EngineOptions::canonical_dedup off),
  // forces structural keys for the whole stream filter.
  bool structural_filter =
      stream_options.force_structural_keys || !options_.canonical_dedup;
  for (const auto& model : models) {
    structural_filter = structural_filter || model.formula().has_custom();
  }

  const int num_models = static_cast<int>(models.size());
  std::unordered_set<std::string> seen;
  std::vector<litmus::LitmusTest> chunk;
  std::vector<litmus::LitmusTest> novel;
  bool more = true;
  while (more) {
    chunk.clear();
    more = source.next_chunk(chunk);
    if (chunk.empty()) continue;

    StreamChunkStats cs;
    cs.index = total.chunks;
    cs.streamed = chunk.size();

    // ---- Cross-chunk dedup.  The canonical filter builds each test's
    // Analysis for its key and hands it to the batch below, so a novel
    // test is analyzed exactly once per stream. ----
    std::vector<std::unique_ptr<core::Analysis>> analyses(chunk.size());
    std::vector<int> novel_idx;
    if (stream_options.dedup_across_chunks) {
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        std::string key;
        if (structural_filter) {
          key = litmus::structural_key(chunk[i]);
        } else {
          analyses[i] = std::make_unique<core::Analysis>(chunk[i].program());
          key = litmus::canonical_key(*analyses[i], chunk[i].outcome());
        }
        if (seen.insert(std::move(key)).second) {
          novel_idx.push_back(static_cast<int>(i));
        } else {
          analyses[i].reset();
          ++cs.duplicates;
        }
      }
    } else {
      novel_idx.resize(chunk.size());
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        novel_idx[i] = static_cast<int>(i);
      }
    }
    cs.novel = novel_idx.size();

    // ---- Evaluate the chunk's novel tests in place (no moves yet:
    // the analyses point into `chunk`'s programs). ----
    BitMatrix verdicts(num_models, static_cast<int>(novel_idx.size()));
    if (!novel_idx.empty()) {
      std::vector<VerdictRequest> requests;
      requests.reserve(static_cast<std::size_t>(num_models) * novel_idx.size());
      for (int m = 0; m < num_models; ++m) {
        for (const int t : novel_idx) requests.push_back({m, t});
      }
      // When the stream filter deduped by canonical keys, the novel
      // tests are canonically unique: no within-batch group could ever
      // merge, so skip the batch cache layer instead of re-deriving
      // every canonical key it would intern.  (A structural filter
      // leaves canonical within-batch sharing worthwhile.)
      const bool batch_cache =
          !stream_options.dedup_across_chunks || structural_filter;
      const auto flat =
          run_batch_impl(models, chunk, requests,
                         stream_options.persist_verdicts, batch_cache,
                         &analyses);
      std::size_t slot = 0;
      for (int m = 0; m < num_models; ++m) {
        for (std::size_t k = 0; k < novel_idx.size(); ++k, ++slot) {
          if (flat[slot]) verdicts.set(m, static_cast<int>(k), true);
        }
      }
      cs.engine = last_stats_;
    }

    // ---- Deliver: the novel tests move out of the chunk only after
    // the batch (and every Analysis into them) is done. ----
    novel.clear();
    for (const int t : novel_idx) {
      novel.push_back(std::move(chunk[static_cast<std::size_t>(t)]));
    }

    ++total.chunks;
    total.tests_streamed += cs.streamed;
    total.novel_tests += cs.novel;
    total.duplicate_tests += cs.duplicates;
    total.engine += cs.engine;
    if (on_chunk) on_chunk(novel, verdicts, cs);
  }
  total.wall_seconds = timer.seconds();
  return total;
}

bool VerdictEngine::allowed(const core::MemoryModel& model,
                            const litmus::LitmusTest& test) {
  return run_batch({model}, {test}, {VerdictRequest{0, 0}})[0] != 0;
}

}  // namespace mcmc::engine
