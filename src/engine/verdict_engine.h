// The unified batched verdict pipeline.
//
// Every result in the paper reduces to "is this outcome allowed under
// this model?" asked thousands of times.  VerdictEngine owns that loop
// for the whole repository: callers hand it a batch of (model, test)
// cells and get back a packed verdict matrix, with the engine handling
//
//   * per-test Analysis construction, done once and shared across models,
//   * canonical-test deduplication: symmetric tests (thread-permuted,
//     location-renamed) share verdicts through a persistent cache keyed
//     by litmus::canonical_key — falling back to structural keys for
//     models with custom predicates, whose semantics may observe raw
//     thread/location identity,
//   * the prepared-check fast path (core::PreparedTest): per-test rf
//     enumeration and HbProblem skeletons built once and shared across
//     every model and worker thread, with the model's must-not-reorder
//     formula compiled into per-event bitmask rows per cell instead of
//     re-walked per event pair per rf map,
//   * backend selection per cell: the explicit-closure engine, the SAT
//     engine, or adaptive (explicit for small instances, SAT beyond the
//     explicit engine's 64-event bitmask limit),
//   * a work-stealing std::thread pool parallelizing across cells, and
//   * per-batch statistics (checks run, cache hits, backend split,
//     formula evaluations saved, wall time).
//
// explore::AdmissibilityMatrix, model fingerprinting, the examples, and
// the bench sweeps all route through this engine.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/checker.h"
#include "core/model.h"
#include "core/prepared.h"
#include "engine/bit_matrix.h"
#include "engine/thread_pool.h"
#include "litmus/test.h"

namespace mcmc::engine {

/// Which admissibility decision procedure evaluates a cell.
enum class Backend {
  Explicit,  ///< core::Engine::Explicit for every cell (<= 64 events)
  Sat,       ///< core::Engine::Sat for every cell
  Adaptive,  ///< Explicit below `sat_event_threshold` events, Sat above
};

[[nodiscard]] std::string to_string(Backend backend);

/// Parses "explicit" / "sat" / "adaptive" (as used by the bench flags).
[[nodiscard]] bool parse_backend(const std::string& text, Backend& out);

struct EngineOptions {
  Backend backend = Backend::Adaptive;
  /// Total evaluation threads, including the caller; 0 means
  /// std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Master switch for the verdict cache (both within-batch dedup and
  /// the persistent cross-batch map).
  bool cache_enabled = true;
  /// Use canonical keys (thread-permutation / location-renaming
  /// invariant) where sound; structural keys otherwise.  Disabling
  /// keeps only exact structural dedup.
  bool canonical_dedup = true;
  /// Adaptive backend: instances with more events than this go to SAT.
  /// The explicit engine's transitive-closure bitmasks cap it at 64.
  int sat_event_threshold = 64;
  /// Route checks through the prepared fast path (core::PreparedTest:
  /// shared rf enumeration + skeletons, compiled reorder masks,
  /// allocation-free explicit search).  Off = the PR-1 per-cell
  /// core::is_allowed loop, kept for benchmarking and differential
  /// testing; verdicts are bit-for-bit identical either way.
  bool prepared = true;
};

/// One cell of a batch: indices into the caller's model and test vectors.
struct VerdictRequest {
  int model = 0;
  int test = 0;
};

/// Per-batch accounting (also accumulated across an engine's lifetime).
struct EngineStats {
  std::size_t cells = 0;           ///< verdicts requested
  std::size_t checks_run = 0;      ///< core::is_allowed invocations
  std::size_t cache_hits = 0;      ///< served by the persistent cache
  std::size_t dedup_hits = 0;      ///< shared within the batch via keys
  std::size_t explicit_checks = 0; ///< checks decided by the explicit engine
  std::size_t sat_checks = 0;      ///< checks decided by the SAT engine
  std::size_t unique_analyses = 0; ///< Analysis constructions this batch

  // Prepared-path accounting (zero when EngineOptions::prepared is off).
  std::size_t rf_enums_saved = 0;  ///< enumerate_read_from calls avoided
                                   ///  vs one-per-check (checks minus
                                   ///  distinct tests evaluated)
  std::size_t skeletons_reused = 0;///< skeleton consultations beyond each
                                   ///  prepared test's first build
  std::size_t formula_evals = 0;   ///< formula evaluations run: compiled
                                   ///  matrix traversals + per-pair
                                   ///  fallbacks (custom predicates,
                                   ///  >64-event analyses)
  std::size_t formula_evals_saved = 0; ///< per-pair F evaluations the
                                   ///  per-cell path would have run,
                                   ///  minus the evaluations above

  int threads_used = 1;
  double wall_seconds = 0.0;

  EngineStats& operator+=(const EngineStats& other);
  /// One-line rendering for the bench harnesses.
  [[nodiscard]] std::string to_string() const;
};

/// Batched, parallel, cached (model, test) verdict evaluation.
class VerdictEngine {
 public:
  explicit VerdictEngine(EngineOptions options = {});
  ~VerdictEngine();

  VerdictEngine(const VerdictEngine&) = delete;
  VerdictEngine& operator=(const VerdictEngine&) = delete;

  /// Evaluates the full `models` x `tests` cross product; bit (m, t) of
  /// the result is the verdict of model `m` on test `t`.
  [[nodiscard]] BitMatrix run_matrix(
      const std::vector<core::MemoryModel>& models,
      const std::vector<litmus::LitmusTest>& tests);

  /// Evaluates an arbitrary batch of cells; `result[i]` is the verdict
  /// for `requests[i]`.  Request indices must lie within the vectors.
  [[nodiscard]] std::vector<char> run_batch(
      const std::vector<core::MemoryModel>& models,
      const std::vector<litmus::LitmusTest>& tests,
      const std::vector<VerdictRequest>& requests);

  /// Single-cell convenience; still goes through the cache.
  [[nodiscard]] bool allowed(const core::MemoryModel& model,
                             const litmus::LitmusTest& test);

  /// Stats of the most recent batch.
  [[nodiscard]] const EngineStats& last_stats() const { return last_stats_; }
  /// Stats accumulated over the engine's lifetime.
  [[nodiscard]] const EngineStats& total_stats() const { return total_stats_; }

  [[nodiscard]] const EngineOptions& options() const { return options_; }
  [[nodiscard]] std::size_t cache_size() const;
  void clear_cache();

  /// Threads a batch will actually use (resolves the 0 = hardware
  /// default).
  [[nodiscard]] int effective_threads() const;

 private:
  [[nodiscard]] core::Engine resolve_backend(int num_events) const;
  WorkStealingPool& pool();

  EngineOptions options_;
  std::unique_ptr<WorkStealingPool> pool_;  // created on first parallel batch

  mutable std::mutex cache_mu_;
  /// model key -> (test key -> verdict).  Two-level so a batch touches
  /// each key string once (per class), not once per cell.
  std::unordered_map<std::string, std::unordered_map<std::string, bool>>
      cache_;
  /// Custom-predicate formulas are cache-keyed by their node address;
  /// retaining a copy pins the node so the address cannot be recycled
  /// by a different formula while its verdicts are cached.
  std::vector<core::Formula> pinned_custom_formulas_;
  std::unordered_set<const void*> pinned_ids_;

  EngineStats last_stats_;
  EngineStats total_stats_;
};

}  // namespace mcmc::engine
