// The unified batched verdict pipeline.
//
// Every result in the paper reduces to "is this outcome allowed under
// this model?" asked thousands of times.  VerdictEngine owns that loop
// for the whole repository: callers hand it a batch of (model, test)
// cells and get back a packed verdict matrix, with the engine handling
//
//   * per-test Analysis construction, done once per test that actually
//     reaches evaluation and shared across models — deduplicated and
//     cache-served tests never pay for one,
//   * canonical-test deduplication: symmetric tests (thread-permuted,
//     location-renamed) share verdicts through a persistent cache keyed
//     by litmus::canonical_fingerprint (128-bit, allocation-free;
//     litmus::canonical_key is its audited string form) — falling back
//     to structural fingerprints for models with custom predicates,
//     whose semantics may observe raw thread/location identity,
//   * the prepared-check fast path (core::PreparedTest): per-test rf
//     enumeration and HbProblem skeletons built once and shared across
//     every model and worker thread, with the model's must-not-reorder
//     formula compiled into per-event bitmask rows per cell instead of
//     re-walked per event pair per rf map,
//   * backend selection per cell: the explicit-closure engine, the SAT
//     engine, or adaptive (explicit for small instances, SAT beyond the
//     explicit engine's 64-event bitmask limit),
//   * a work-stealing std::thread pool parallelizing across cells, and
//   * per-batch statistics (checks run, cache hits, backend split,
//     formula evaluations saved, wall time).
//
// explore::AdmissibilityMatrix, model fingerprinting, the examples, and
// the bench sweeps all route through this engine.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/checker.h"
#include "core/model.h"
#include "core/prepared.h"
#include "engine/bit_matrix.h"
#include "engine/test_stream.h"
#include "engine/thread_pool.h"
#include "litmus/test.h"
#include "util/hash128.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcmc::store {
class VerdictStore;
struct StreamPersistence;
}  // namespace mcmc::store

namespace mcmc::engine {

/// Which admissibility decision procedure evaluates a cell.
enum class Backend {
  Explicit,  ///< core::Engine::Explicit for every cell (<= 64 events)
  Sat,       ///< core::Engine::Sat for every cell
  Adaptive,  ///< Explicit below `sat_event_threshold` events, Sat above
};

[[nodiscard]] std::string to_string(Backend backend);

/// Parses "explicit" / "sat" / "adaptive" (as used by the bench flags).
[[nodiscard]] bool parse_backend(const std::string& text, Backend& out);

struct EngineOptions {
  Backend backend = Backend::Adaptive;
  /// Total evaluation threads, including the caller; 0 means
  /// std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Master switch for the verdict cache (both within-batch dedup and
  /// the persistent cross-batch map).
  bool cache_enabled = true;
  /// Use canonical keys (thread-permutation / location-renaming
  /// invariant) where sound; structural keys otherwise.  Disabling
  /// keeps only exact structural dedup.
  bool canonical_dedup = true;
  /// Adaptive backend: instances with more events than this go to SAT.
  /// The explicit engine's transitive-closure bitmasks cap it at 64.
  int sat_event_threshold = 64;
  /// Route checks through the prepared fast path (core::PreparedTest:
  /// shared rf enumeration + skeletons, compiled reorder masks,
  /// allocation-free explicit search).  Off = the PR-1 per-cell
  /// core::is_allowed loop, kept for benchmarking and differential
  /// testing; verdicts are bit-for-bit identical either way.
  bool prepared = true;
};

/// One cell of a batch: indices into the caller's model and test vectors.
struct VerdictRequest {
  int model = 0;
  int test = 0;
};

/// Per-batch accounting (also accumulated across an engine's lifetime).
struct EngineStats {
  std::size_t cells = 0;           ///< verdicts requested
  std::size_t checks_run = 0;      ///< core::is_allowed invocations
  std::size_t cache_hits = 0;      ///< served by the persistent cache
  std::size_t dedup_hits = 0;      ///< shared within the batch via keys
  std::size_t store_hits = 0;      ///< served by the attached verdict store
  std::size_t store_misses = 0;    ///< store probes that found nothing
  std::size_t explicit_checks = 0; ///< checks decided by the explicit engine
  std::size_t sat_checks = 0;      ///< checks decided by the SAT engine
  std::size_t unique_analyses = 0; ///< Analysis constructions this batch
                                   ///  (tests reaching evaluation only:
                                   ///  dedup/cache hits build none)

  // Prepared-path accounting (zero when EngineOptions::prepared is off).
  std::size_t rf_enums_saved = 0;  ///< enumerate_read_from calls avoided
                                   ///  vs one-per-check (checks minus
                                   ///  distinct tests evaluated)
  std::size_t skeletons_reused = 0;///< skeleton consultations beyond each
                                   ///  prepared test's first build
  std::size_t formula_evals = 0;   ///< formula evaluations run: compiled
                                   ///  matrix traversals + per-pair
                                   ///  fallbacks (custom predicates,
                                   ///  >64-event analyses)
  std::size_t formula_evals_saved = 0; ///< per-pair F evaluations the
                                   ///  per-cell path would have run,
                                   ///  minus the evaluations above

  int threads_used = 1;
  double wall_seconds = 0.0;

  EngineStats& operator+=(const EngineStats& other);
  /// One-line rendering for the bench harnesses.
  [[nodiscard]] std::string to_string() const;
};

/// Options for a streaming run (see VerdictEngine::run_stream).
struct StreamOptions {
  /// Skip tests whose dedup key was already seen earlier in the stream
  /// (canonical keys, or structural keys when any model's formula has
  /// custom predicates).  Duplicates are counted, not re-evaluated or
  /// re-delivered: a duplicate's verdicts equal its first
  /// occurrence's, so downstream aggregation loses nothing.
  bool dedup_across_chunks = true;
  /// Overlap chunk production with consumption: a producer thread
  /// (engine::ChunkPrefetcher, dedicated — not a pool worker, so this
  /// engages even for a 1-thread engine) materializes the next chunks
  /// while the pool processes the current one.  Never changes results
  /// (chunk order and boundaries are preserved).
  bool overlap_production = true;
  /// Mutex stripes of the cross-chunk dedup set (rounded up to a power
  /// of two); 0 means the default (ShardedKeySet::kDefaultShards).
  int dedup_shards = 0;
  /// Fingerprint audit: additionally compute every test's legacy string
  /// key (building the Analysis the fingerprint path skips) and verify,
  /// both directions, that fingerprint equality coincides with string
  /// key equality — a fingerprint collision between distinct keys or
  /// two fingerprints for one key throws mid-stream.  This re-adds the
  /// per-test Analysis plus O(classes x key length) memory the
  /// fingerprint path removed, so it is for tests (the slow full-space
  /// run proves the whole 5.16M-test matrix is collision-free), not
  /// production streams.
  bool audit_dedup_keys = false;
  /// Force structural dedup keys even when every streamed model is
  /// custom-free.  Callers that reuse the delivered verdicts beyond the
  /// streamed models (e.g. the extremes-prefiltered Theorem harness,
  /// which sweeps a different model set over the novel tests) must set
  /// this when any of *those* models carries custom predicates —
  /// canonical sharing is unsound for them.
  bool force_structural_keys = false;
  /// Feed the novel verdicts into the engine's persistent verdict
  /// cache.  Off by default: a million-test stream against 90 models
  /// would pin |models| x |unique tests| cache entries, while the
  /// seen-key filter above already provides cross-chunk sharing at
  /// O(unique tests) memory.
  bool persist_verdicts = false;
  /// Persistent verdict store consulted per novel test (caller-owned,
  /// may be null).  When every streamed model has a store column and
  /// the stream dedups by canonical fingerprints, a test whose full
  /// verdict row is present skips evaluation entirely and evaluated
  /// rows are written back — this is what makes a warm rerun serve
  /// from disk.  Ignored under structural keys (the store holds
  /// canonical fingerprints only).
  store::VerdictStore* verdict_store = nullptr;
  /// Chunk-granular checkpoint/resume of the stream into
  /// `verdict_store` (null = no checkpointing; requires
  /// `verdict_store`).  See store::StreamPersistence.
  const store::StreamPersistence* persistence = nullptr;
};

/// Per-stage wall time of the streaming pipeline.  `produce` is time
/// spent inside the source's next_chunk — with overlap_production it
/// runs concurrently with the other stages, so it is overlap, not
/// critical path.  `keys` is the parallel fingerprint/claim phase,
/// `dedup` the serial chunk-order ownership resolution, `verdict` the
/// batched evaluation plus delivery.
struct StreamStageTimes {
  double produce = 0.0;
  double keys = 0.0;
  double dedup = 0.0;
  double verdict = 0.0;

  StreamStageTimes& operator+=(const StreamStageTimes& other);
  [[nodiscard]] std::string to_string() const;
};

/// Accounting for one streamed chunk.
struct StreamChunkStats {
  std::size_t index = 0;      ///< 0-based chunk number
  std::size_t streamed = 0;   ///< tests pulled from the source
  std::size_t novel = 0;      ///< first-of-their-class tests evaluated
  std::size_t duplicates = 0; ///< cross-chunk dedup hits
  StreamStageTimes stages;    ///< this chunk's per-stage wall breakdown
  EngineStats engine;         ///< engine stats of this chunk's batch
};

/// Accounting for a whole streamed run.
struct StreamStats {
  std::size_t chunks = 0;
  std::size_t tests_streamed = 0;
  std::size_t novel_tests = 0;
  std::size_t duplicate_tests = 0;  ///< cross-chunk dedup hits
  StreamStageTimes stages;          ///< accumulated per-stage breakdown
  int dedup_shards = 0;             ///< stripes of the cross-chunk set
  bool overlapped = false;          ///< producer thread was engaged
  EngineStats engine;               ///< accumulated over chunk batches
  double wall_seconds = 0.0;

  /// Fraction of streamed tests served by the cross-chunk dedup.
  [[nodiscard]] double dedup_rate() const;
  /// Keys-stage cost per streamed test in nanoseconds — the
  /// fingerprint path's scaling number.  bench_exhaustive reports it
  /// per space so the dep-extended run is directly comparable against
  /// the no-dep baseline.
  [[nodiscard]] double keys_ns_per_test() const {
    return tests_streamed == 0
               ? 0.0
               : stages.keys * 1e9 / static_cast<double>(tests_streamed);
  }
  [[nodiscard]] std::string to_string() const;
};

/// Per-chunk delivery: the chunk's novel tests, their models x tests
/// verdict matrix, and the chunk accounting.  Duplicate tests are not
/// re-delivered (their verdicts equal an earlier chunk's).
using StreamChunkSink = std::function<void(
    const std::vector<litmus::LitmusTest>& novel_tests,
    const BitMatrix& verdicts, const StreamChunkStats& stats)>;

/// Batched, parallel, cached (model, test) verdict evaluation.
class VerdictEngine {
 public:
  explicit VerdictEngine(EngineOptions options = {});
  ~VerdictEngine();

  VerdictEngine(const VerdictEngine&) = delete;
  VerdictEngine& operator=(const VerdictEngine&) = delete;

  /// Evaluates the full `models` x `tests` cross product; bit (m, t) of
  /// the result is the verdict of model `m` on test `t`.
  [[nodiscard]] BitMatrix run_matrix(
      const std::vector<core::MemoryModel>& models,
      const std::vector<litmus::LitmusTest>& tests);

  /// Evaluates an arbitrary batch of cells; `result[i]` is the verdict
  /// for `requests[i]`.  Request indices must lie within the vectors.
  [[nodiscard]] std::vector<char> run_batch(
      const std::vector<core::MemoryModel>& models,
      const std::vector<litmus::LitmusTest>& tests,
      const std::vector<VerdictRequest>& requests);

  /// Single-cell convenience; still goes through the cache.
  [[nodiscard]] bool allowed(const core::MemoryModel& model,
                             const litmus::LitmusTest& test);

  /// Streaming evaluation: pulls chunks from `source` until exhausted,
  /// evaluates the `models` x chunk product for each, and invokes
  /// `on_chunk` (may be null) after every chunk.  With
  /// StreamOptions::dedup_across_chunks (the default), tests whose
  /// canonical fingerprint appeared in an earlier chunk are counted as
  /// duplicates and skipped — the dedup set stores the 128-bit
  /// fingerprints directly (16 bytes per class, no Analysis and no key
  /// string ever materialized; auditable via audit_dedup_keys), so the
  /// peak resident set stays O(chunk size + unique classes) no matter
  /// how long the stream runs.
  ///
  /// The run is a parallel pipeline: chunk production overlaps with
  /// consumption (overlap_production), fingerprinting fans out across
  /// the work-stealing pool with per-worker scratch tables, and claims
  /// go to a mutex-striped shard set.  Streamed results are bit-for-bit
  /// deterministic under any thread count: chunk boundaries come from
  /// the single producer, within-chunk duplicate resolution picks the
  /// minimum index regardless of claim order, and novel tests, verdict
  /// bits, and chunk stats are folded in chunk order.
  StreamStats run_stream(const std::vector<core::MemoryModel>& models,
                         TestSource& source, const StreamChunkSink& on_chunk,
                         const StreamOptions& stream_options = {});

  /// Attaches a persistent verdict store (caller-owned, may be null to
  /// detach) consulted by every grouped batch: a (model, test-class)
  /// pair missing the in-memory cache probes the store before
  /// evaluating, and evaluated verdicts are written back.  Only models
  /// with a store column (custom-free, see store::model_store_key)
  /// participate, and only under canonical dedup — the store holds
  /// canonical fingerprints exclusively.
  void set_store(store::VerdictStore* store) { store_ = store; }
  [[nodiscard]] store::VerdictStore* store() const { return store_; }

  /// Stats of the most recent batch.
  [[nodiscard]] const EngineStats& last_stats() const { return last_stats_; }
  /// Stats accumulated over the engine's lifetime.
  [[nodiscard]] const EngineStats& total_stats() const { return total_stats_; }

  [[nodiscard]] const EngineOptions& options() const { return options_; }
  [[nodiscard]] std::size_t cache_size() const;
  void clear_cache();

  /// Threads a batch will actually use (resolves the 0 = hardware
  /// default).
  [[nodiscard]] int effective_threads() const;

 private:
  [[nodiscard]] core::Engine resolve_backend(int num_events) const;
  WorkStealingPool& pool();
  /// run_batch with control over the cache layer.  `persist_verdicts`
  /// gates the persistent-cache writes; `use_cache` false skips
  /// fingerprint computation, interning, and lookups entirely — the
  /// streaming path passes it for batches whose tests its canonical
  /// seen-key filter already proved unique (no within-batch group could
  /// ever merge, so re-deriving fingerprints would be pure overhead).
  /// `premade_analyses`, when given, is aligned with `tests`; entries
  /// present are adopted (moved from) instead of re-analyzing — the
  /// streaming audit mode hands over the analyses it built for the
  /// legacy-key cross-check.
  [[nodiscard]] std::vector<char> run_batch_impl(
      const std::vector<core::MemoryModel>& models,
      const std::vector<litmus::LitmusTest>& tests,
      const std::vector<VerdictRequest>& requests, bool persist_verdicts,
      bool use_cache = true,
      std::vector<std::unique_ptr<core::Analysis>>* premade_analyses =
          nullptr);
  [[nodiscard]] BitMatrix run_matrix_impl(
      const std::vector<core::MemoryModel>& models,
      const std::vector<litmus::LitmusTest>& tests, bool persist_verdicts,
      bool use_cache = true);

  EngineOptions options_;
  std::unique_ptr<WorkStealingPool> pool_;  // created on first parallel batch
  store::VerdictStore* store_ = nullptr;    // caller-owned, optional

  mutable util::Mutex cache_mu_;
  /// model key -> (test fingerprint -> verdict).  Two-level so a batch
  /// resolves each model key string once; the inner map is keyed by the
  /// 128-bit canonical/structural fingerprint, so no per-test key
  /// string is ever materialized or retained.
  std::unordered_map<std::string,
                     std::unordered_map<util::Key128, bool, util::Key128Hash>>
      cache_ GUARDED_BY(cache_mu_);
  /// Custom-predicate formulas are cache-keyed by their node address;
  /// retaining a copy pins the node so the address cannot be recycled
  /// by a different formula while its verdicts are cached.
  std::vector<core::Formula> pinned_custom_formulas_ GUARDED_BY(cache_mu_);
  std::unordered_set<const void*> pinned_ids_ GUARDED_BY(cache_mu_);

  EngineStats last_stats_;
  EngineStats total_stats_;
};

}  // namespace mcmc::engine
