#include "enumeration/builder.h"

#include "util/check.h"

namespace mcmc::enumeration {

TestBuilder::TestBuilder(int num_threads) {
  MCMC_REQUIRE(num_threads >= 1);
  for (int t = 0; t < num_threads; ++t) program_.add_thread({});
}

int TestBuilder::fresh_value(core::Loc loc) {
  MCMC_REQUIRE(loc >= 0);
  if (static_cast<std::size_t>(loc) >= next_value_.size()) {
    next_value_.resize(static_cast<std::size_t>(loc) + 1, 1);
  }
  return next_value_[static_cast<std::size_t>(loc)]++;
}

int TestBuilder::write(int thread, core::Loc loc) {
  const int v = fresh_value(loc);
  program_.mutable_thread(thread).push_back(core::make_write(loc, v));
  return v;
}

core::Reg TestBuilder::read(int thread, core::Loc loc) {
  const core::Reg r = next_reg_++;
  program_.mutable_thread(thread).push_back(core::make_read(loc, r));
  return r;
}

void TestBuilder::fence(int thread) {
  program_.mutable_thread(thread).push_back(core::make_fence());
}

core::Reg TestBuilder::dep_read(int thread, core::Reg src, core::Loc loc) {
  const core::Reg t = next_reg_++;
  const core::Reg r = next_reg_++;
  auto& th = program_.mutable_thread(thread);
  th.push_back(core::make_dep_const(t, src, loc));
  th.push_back(core::make_read_indirect(t, r));
  return r;
}

int TestBuilder::dep_write(int thread, core::Reg src, core::Loc loc) {
  const int v = fresh_value(loc);
  const core::Reg t = next_reg_++;
  auto& th = program_.mutable_thread(thread);
  th.push_back(core::make_dep_const(t, src, v));
  th.push_back(core::make_write_from_reg(loc, t));
  return v;
}

void TestBuilder::expect(core::Reg reg, int value) {
  outcome_.require(reg, value);
}

litmus::LitmusTest TestBuilder::build(const std::string& name,
                                      const std::string& description) && {
  return litmus::LitmusTest(name, std::move(program_), std::move(outcome_),
                            description);
}

}  // namespace mcmc::enumeration
