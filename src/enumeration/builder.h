// Incremental litmus-test construction used by the template instantiator.
//
// The builder owns the value conventions the paper's tests follow: every
// write to a given address stores a fresh nonzero constant (so outcomes
// pin read-from maps), registers are allocated sequentially, and the
// dependency idiom is the canonical `t = r - r + c`.
#pragma once

#include <string>

#include "core/instruction.h"
#include "core/outcome.h"
#include "core/program.h"
#include "litmus/test.h"

namespace mcmc::enumeration {

/// Builds a multi-threaded litmus test step by step.
class TestBuilder {
 public:
  explicit TestBuilder(int num_threads);

  /// Appends `Write loc <- v` with a fresh per-address value; returns v.
  int write(int thread, core::Loc loc);

  /// Appends `Read loc -> r` with a fresh register; returns r.
  core::Reg read(int thread, core::Loc loc);

  /// Appends a full fence.
  void fence(int thread);

  /// Appends `t = src-src+loc ; Read [t] -> r` (address-dependent read);
  /// returns r.
  core::Reg dep_read(int thread, core::Reg src, core::Loc loc);

  /// Appends `t = src-src+v ; Write loc <- t` with a fresh per-address
  /// value v (value-dependent write); returns v.
  int dep_write(int thread, core::Reg src, core::Loc loc);

  /// Constrains register `reg` to `value` in the outcome.
  void expect(core::Reg reg, int value);

  /// Finalizes into a named test.
  [[nodiscard]] litmus::LitmusTest build(const std::string& name,
                                         const std::string& description) &&;

 private:
  int fresh_value(core::Loc loc);

  core::Program program_;
  core::Outcome outcome_;
  core::Reg next_reg_ = 0;
  std::vector<int> next_value_;  // per location, starting at 1
};

}  // namespace mcmc::enumeration
