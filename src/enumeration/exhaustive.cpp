#include "enumeration/exhaustive.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "util/check.h"

namespace mcmc::enumeration {

ExhaustiveStream::ExhaustiveStream(ExhaustiveOptions options)
    : options_(options), shapes_(shapes::all_thread_shapes(options.bounds)) {
  MCMC_REQUIRE(options_.chunk_size > 0);
}

bool ExhaustiveStream::done() const { return exhausted_; }

bool ExhaustiveStream::start_next_program() {
  const std::size_t n = shapes_.size();
  while (i_ < n) {
    const std::size_t a = i_;
    const std::size_t b = j_;
    // Advance the pair cursor before filtering so a rejected pair is
    // never revisited.
    if (++j_ == n) {
      j_ = 0;
      ++i_;
    }
    if (options_.communicating_only &&
        !shapes::communicates(shapes_[a], shapes_[b])) {
      continue;
    }
    ++program_index_;
    ++emitted_.programs;

    // ---- Materialize the program and its read odometer. ----
    std::map<int, int> values;
    core::Reg next_reg = 0;
    std::vector<core::Thread> threads;
    threads.push_back(shapes::materialize(shapes_[a], values, next_reg));
    threads.push_back(shapes::materialize(shapes_[b], values, next_reg));
    program_ = core::Program(std::move(threads));

    read_regs_.clear();
    read_domain_.clear();
    for (const auto& thread : program_.threads()) {
      for (const auto& instr : thread) {
        if (instr.op != core::Op::Read) continue;
        read_regs_.push_back(instr.dst);
        const auto written = values.find(instr.loc);
        read_domain_.push_back(1 +
                               (written == values.end() ? 0 : written->second));
      }
    }
    odometer_.assign(read_regs_.size(), 0);
    outcome_index_ = 0;
    odometer_live_ = true;

    if (options_.track_program_classes) {
      program_classes_.insert(
          litmus::canonical_fingerprint(program_, core::Outcome{}, key_scratch_));
    }
    return true;
  }
  return false;
}

bool ExhaustiveStream::next_chunk(std::vector<litmus::LitmusTest>& out) {
  if (exhausted_) return false;
  const std::size_t target =
      out.size() + static_cast<std::size_t>(options_.chunk_size);
  while (out.size() < target) {
    if (!odometer_live_ && !start_next_program()) {
      exhausted_ = true;
      return false;
    }

    core::Outcome outcome;
    for (std::size_t k = 0; k < read_regs_.size(); ++k) {
      outcome.require(read_regs_[k], odometer_[k]);
    }
    out.emplace_back("x" + std::to_string(program_index_) + "." +
                         std::to_string(outcome_index_),
                     program_, std::move(outcome));
    ++emitted_.tests;
    ++outcome_index_;

    // Advance the odometer; carrying past the last read ends the
    // program (a read-free program emits exactly its one empty-outcome
    // test).
    std::size_t k = 0;
    for (; k < odometer_.size(); ++k) {
      if (++odometer_[k] < read_domain_[k]) break;
      odometer_[k] = 0;
    }
    if (k == odometer_.size()) odometer_live_ = false;
  }
  return true;
}

ExhaustiveCounts ExhaustiveStream::count(const ExhaustiveOptions& options) {
  const auto shapes = shapes::all_thread_shapes(options.bounds);
  ExhaustiveCounts counts;
  for (const auto& a : shapes) {
    for (const auto& b : shapes) {
      if (options.communicating_only && !shapes::communicates(a, b)) continue;
      ++counts.programs;
      counts.tests +=
          shapes::outcome_count(a, b, options.bounds.num_locations);
    }
  }
  return counts;
}

ReductionCounts measure_reduction(const ExhaustiveOptions& options) {
  ExhaustiveOptions tracked = options;
  tracked.track_program_classes = true;
  ExhaustiveStream stream(tracked);

  // Classes are counted as 128-bit canonical fingerprints (run_stream's
  // audit mode verifies fingerprint-equality == key-equality on the
  // same space).
  std::unordered_set<util::Key128, util::Key128Hash> test_classes;
  litmus::KeyScratch scratch;
  engine::for_each_test(stream, [&](const litmus::LitmusTest& test) {
    test_classes.insert(litmus::canonical_fingerprint(test, scratch));
  });

  ReductionCounts counts;
  counts.programs = stream.emitted().programs;
  counts.tests = stream.emitted().tests;
  counts.canonical_programs = stream.canonical_programs();
  counts.canonical_tests = static_cast<long long>(test_classes.size());
  return counts;
}

}  // namespace mcmc::enumeration
