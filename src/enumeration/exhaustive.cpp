#include "enumeration/exhaustive.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>

#include "util/bytes.h"
#include "util/check.h"

namespace mcmc::enumeration {

namespace {

/// Digest of everything the cursor's meaning depends on: the space
/// bounds (dep dimension included), the program filter, and the shape
/// table size they produce.  Embedded in every snapshot so a cursor
/// from a differently-bounded stream — whose indices may all happen to
/// be in range here — is rejected instead of silently restoring into
/// the wrong position of this space.
std::uint64_t options_digest(const ExhaustiveOptions& o,
                             std::size_t num_shapes) {
  std::string bytes;
  util::append_u64(
      bytes, static_cast<std::uint64_t>(o.bounds.max_accesses_per_thread));
  util::append_u64(bytes, static_cast<std::uint64_t>(o.bounds.num_locations));
  util::append_u64(bytes, (o.bounds.fences ? 1ULL : 0ULL) |
                              (o.bounds.deps ? 2ULL : 0ULL) |
                              (o.communicating_only ? 4ULL : 0ULL));
  util::append_u64(bytes, num_shapes);
  return util::hash128(bytes).lo;
}

}  // namespace

ExhaustiveStream::ExhaustiveStream(ExhaustiveOptions options)
    : options_(options), shapes_(shapes::all_thread_shapes(options.bounds)) {
  MCMC_REQUIRE(options_.chunk_size > 0);
  cursor_digest_ = options_digest(options_, shapes_.size());
}

bool ExhaustiveStream::done() const { return exhausted_; }

bool ExhaustiveStream::start_next_program() {
  const std::size_t n = shapes_.size();
  while (i_ < n) {
    const std::size_t a = i_;
    const std::size_t b = j_;
    // Advance the pair cursor before filtering so a rejected pair is
    // never revisited.
    if (++j_ == n) {
      j_ = 0;
      ++i_;
    }
    if (options_.communicating_only &&
        !shapes::communicates(shapes_[a], shapes_[b])) {
      continue;
    }
    ++program_index_;
    ++emitted_.programs;

    cur_a_ = a;
    cur_b_ = b;
    build_program();
    odometer_.assign(read_regs_.size(), 0);
    outcome_index_ = 0;
    odometer_live_ = true;

    if (options_.track_program_classes) {
      // A copy, not a fingerprint: hashing is the consumer's job
      // (ProgramClassTally), so the producer thread never pays it.
      util::MutexLock lock(pending_mu_);
      pending_programs_.push_back(program_);
    }
    return true;
  }
  return false;
}

void ExhaustiveStream::build_program() {
  // ---- Materialize the (cur_a_, cur_b_) program and its read
  // odometer domains.  Deterministic in the pair alone, so a restored
  // cursor re-derives the identical program. ----
  std::map<int, int> values;
  core::Reg next_reg = 0;
  std::vector<core::Thread> threads;
  threads.push_back(shapes::materialize(shapes_[cur_a_], values, next_reg));
  threads.push_back(shapes::materialize(shapes_[cur_b_], values, next_reg));
  program_ = core::Program(std::move(threads));

  read_regs_.clear();
  read_domain_.clear();
  // Reads resolve through for_each_read: a dep-addressed read's domain
  // comes from its DepConst-resolved target location, not from the
  // instruction's (kNoLoc) direct-address field.
  for (const auto& thread : program_.threads()) {
    shapes::for_each_read(thread, [&](core::Reg dst, int loc) {
      read_regs_.push_back(dst);
      const auto written = values.find(loc);
      read_domain_.push_back(1 +
                             (written == values.end() ? 0 : written->second));
    });
  }
}

void ExhaustiveStream::take_new_programs(std::vector<core::Program>& out) {
  util::MutexLock lock(pending_mu_);
  if (out.empty()) {
    out.swap(pending_programs_);
  } else {
    for (auto& program : pending_programs_) {
      out.push_back(std::move(program));
    }
    pending_programs_.clear();
  }
}

namespace {
// Version 2 added the options digest word (the dep-extended space made
// in-range-but-wrong stale cursors a real hazard); version 3 dropped
// the program-class set from the payload (class accounting moved to
// ProgramClassTally, making every snapshot O(1) words — serializing
// the growing set per chunk dominated the with-dep stream's producer
// thread).  Older cursors are rejected, which degrades a resume to a
// from-scratch run.
constexpr std::uint64_t kCursorVersion = 3;
}  // namespace

bool ExhaustiveStream::snapshot_cursor(std::vector<std::uint64_t>& out) const {
  out.clear();
  out.push_back(kCursorVersion);
  out.push_back(cursor_digest_);
  out.push_back((exhausted_ ? 1ULL : 0ULL) | (odometer_live_ ? 2ULL : 0ULL));
  out.push_back(i_);
  out.push_back(j_);
  out.push_back(cur_a_);
  out.push_back(cur_b_);
  out.push_back(static_cast<std::uint64_t>(program_index_));
  out.push_back(static_cast<std::uint64_t>(outcome_index_));
  out.push_back(static_cast<std::uint64_t>(emitted_.programs));
  out.push_back(static_cast<std::uint64_t>(emitted_.tests));
  // The odometer only means anything while live (a finished program
  // leaves it sized but dead); restore_cursor rejects a dead odometer
  // with entries, so emit none.
  out.push_back(odometer_live_ ? odometer_.size() : 0);
  if (odometer_live_) {
    for (const int v : odometer_) out.push_back(static_cast<std::uint64_t>(v));
  }
  return true;
}

bool ExhaustiveStream::restore_cursor(
    const std::vector<std::uint64_t>& cursor) {
  const std::size_t n = shapes_.size();
  // Validate the fixed-width prefix before touching any state.  The
  // digest word pins the cursor to this stream's exact space (bounds,
  // dep dimension, filter, shape-table size).
  if (cursor.size() < 12 || cursor[0] != kCursorVersion ||
      cursor[1] != cursor_digest_) {
    return false;
  }
  const bool exhausted = (cursor[2] & 1ULL) != 0;
  const bool live = (cursor[2] & 2ULL) != 0;
  if (cursor[3] > n || cursor[4] >= (n == 0 ? 1 : n)) return false;
  if (live && (cursor[5] >= n || cursor[6] >= n)) return false;
  const std::uint64_t odo_len = cursor[11];
  if (odo_len > cursor.size() ||
      cursor.size() != 12 + static_cast<std::size_t>(odo_len)) {
    return false;
  }

  i_ = static_cast<std::size_t>(cursor[3]);
  j_ = static_cast<std::size_t>(cursor[4]);
  cur_a_ = static_cast<std::size_t>(cursor[5]);
  cur_b_ = static_cast<std::size_t>(cursor[6]);
  exhausted_ = exhausted;
  program_index_ = static_cast<long long>(cursor[7]);
  outcome_index_ = static_cast<long long>(cursor[8]);
  emitted_.programs = static_cast<long long>(cursor[9]);
  emitted_.tests = static_cast<long long>(cursor[10]);
  odometer_live_ = live;
  {
    // A restore is a position reset: programs queued before it no
    // longer correspond to the stream's past.
    util::MutexLock lock(pending_mu_);
    pending_programs_.clear();
  }

  const auto reject = [this] {
    // A cursor inconsistent with this stream's shapes: reset to a fresh
    // stream so the caller's from-scratch fallback is sound.
    i_ = j_ = cur_a_ = cur_b_ = 0;
    exhausted_ = false;
    program_index_ = -1;
    outcome_index_ = 0;
    emitted_ = ExhaustiveCounts{};
    odometer_live_ = false;
    odometer_.clear();
    return false;
  };

  if (live) {
    build_program();
    if (odo_len != read_regs_.size()) return reject();
    odometer_.resize(read_regs_.size());
    for (std::size_t k = 0; k < odometer_.size(); ++k) {
      const std::uint64_t v = cursor[12 + k];
      if (v >= static_cast<std::uint64_t>(read_domain_[k])) return reject();
      odometer_[k] = static_cast<int>(v);
    }
  } else {
    if (odo_len != 0) return reject();
    odometer_.clear();
  }
  return true;
}

bool ExhaustiveStream::next_chunk(std::vector<litmus::LitmusTest>& out) {
  if (exhausted_) return false;
  const std::size_t target =
      out.size() + static_cast<std::size_t>(options_.chunk_size);
  while (out.size() < target) {
    if (!odometer_live_ && !start_next_program()) {
      exhausted_ = true;
      return false;
    }

    core::Outcome outcome;
    for (std::size_t k = 0; k < read_regs_.size(); ++k) {
      outcome.require(read_regs_[k], odometer_[k]);
    }
    out.emplace_back("x" + std::to_string(program_index_) + "." +
                         std::to_string(outcome_index_),
                     program_, std::move(outcome));
    ++emitted_.tests;
    ++outcome_index_;

    // Advance the odometer; carrying past the last read ends the
    // program (a read-free program emits exactly its one empty-outcome
    // test).
    std::size_t k = 0;
    for (; k < odometer_.size(); ++k) {
      if (++odometer_[k] < read_domain_[k]) break;
      odometer_[k] = 0;
    }
    if (k == odometer_.size()) odometer_live_ = false;
  }
  return true;
}

ExhaustiveCounts ExhaustiveStream::count(const ExhaustiveOptions& options) {
  const auto shapes = shapes::all_thread_shapes(options.bounds);
  ExhaustiveCounts counts;
  for (const auto& a : shapes) {
    for (const auto& b : shapes) {
      if (options.communicating_only && !shapes::communicates(a, b)) continue;
      ++counts.programs;
      counts.tests = shapes::checked_add(
          counts.tests,
          shapes::outcome_count(a, b, options.bounds.num_locations));
    }
  }
  return counts;
}

void ProgramClassTally::absorb(std::vector<core::Program>& programs) {
  for (const auto& program : programs) {
    classes_.insert(
        litmus::canonical_fingerprint(program, core::Outcome{}, scratch_));
  }
  programs.clear();
}

void ProgramClassTally::export_state(std::vector<std::uint64_t>& out) const {
  std::vector<util::Key128> sorted(classes_.begin(), classes_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const util::Key128& a, const util::Key128& b) {
              return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
            });
  out.push_back(sorted.size());
  for (const auto& key : sorted) {
    out.push_back(key.hi);
    out.push_back(key.lo);
  }
}

bool ProgramClassTally::restore_state(const std::vector<std::uint64_t>& data) {
  classes_.clear();
  if (data.empty()) return false;
  const std::uint64_t count = data[0];
  if (data.size() - 1 != count * 2) return false;
  std::size_t pos = 1;
  for (std::uint64_t c = 0; c < count; ++c) {
    util::Key128 key;
    key.hi = data[pos++];
    key.lo = data[pos++];
    classes_.insert(key);
  }
  return true;
}

ReductionCounts measure_reduction(const ExhaustiveOptions& options) {
  ExhaustiveOptions tracked = options;
  tracked.track_program_classes = true;
  ExhaustiveStream stream(tracked);

  // Classes are counted as 128-bit canonical fingerprints (run_stream's
  // audit mode verifies fingerprint-equality == key-equality on the
  // same space).
  std::unordered_set<util::Key128, util::Key128Hash> test_classes;
  litmus::KeyScratch scratch;
  ProgramClassTally programs;
  std::vector<core::Program> drained;
  std::vector<litmus::LitmusTest> chunk;
  bool more = true;
  while (more) {
    chunk.clear();
    more = stream.next_chunk(chunk);
    for (const auto& test : chunk) {
      test_classes.insert(litmus::canonical_fingerprint(test, scratch));
    }
    // Drain per chunk so pending program copies never pile up.
    stream.take_new_programs(drained);
    programs.absorb(drained);
  }

  ReductionCounts counts;
  counts.programs = stream.emitted().programs;
  counts.tests = stream.emitted().tests;
  counts.canonical_programs = programs.count();
  counts.canonical_tests = static_cast<long long>(test_classes.size());
  return counts;
}

}  // namespace mcmc::enumeration
