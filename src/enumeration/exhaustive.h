// Streaming exhaustive materialization of the naive bounded space.
//
// Section 3.4 of the paper counts the naive enumeration — two threads,
// one to three memory accesses each, three locations, optional fences,
// every syntactically possible read outcome — at "approximately a
// million tests" (5,160,270 with the default bounds here).  naive.h
// *counts* that space; this header *materializes* it, as real
// litmus::LitmusTest values, in fixed-size chunks that implement
// engine::TestSource: the full space is never resident at once, so it
// can be pushed through engine::VerdictEngine::run_stream with peak
// memory independent of the corpus size.
//
// That stream is what makes the repo's central claim executable: the
// 90x90 model-pair distinguishability matrix induced by the entire
// naive space can be compared bit-for-bit against the one induced by
// the paper's Corollary-1 suite (see explore/distinguish.h and
// tests/exhaustive_full_test.cpp), and the canonical-key pass measures
// the exact symmetry reduction the paper's suite achieves.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "engine/test_stream.h"
#include "enumeration/naive.h"
#include "enumeration/shapes.h"
#include "litmus/test.h"
#include "util/hash128.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcmc::enumeration {

/// Bounds and chunking of the exhaustive stream.
struct ExhaustiveOptions {
  /// The naive-space bounds (shared with count_naive).
  NaiveOptions bounds;
  /// Tests per chunk handed to next_chunk.
  int chunk_size = 4096;
  /// Drop programs whose threads never interact (the reduced-baseline
  /// filter); the full naive space keeps them.
  bool communicating_only = false;
  /// Queue a copy of every newly started program for consumer-side
  /// class accounting (drain with ExhaustiveStream::take_new_programs,
  /// hash with ProgramClassTally).  The producer thread only copies —
  /// fingerprinting happens on whichever thread drains, so program
  /// accounting never slows chunk production.  Pending programs
  /// accumulate until drained: leave this off unless something drains.
  bool track_program_classes = false;
};

/// What a stream (or the counting walk) has produced.
struct ExhaustiveCounts {
  long long programs = 0;  ///< ordered two-thread programs
  long long tests = 0;     ///< programs x outcome assignments
};

/// The naive space as a resumable chunked stream of materialized tests.
///
/// Iteration order is deterministic: shape pairs in all_thread_shapes
/// order, and for each program every outcome assignment by an odometer
/// over its reads (each read drawing from {0} + {values written to its
/// location}).  Test names are "x<program>.<outcome>" with 0-based
/// stream-order indices.
class ExhaustiveStream final : public engine::TestSource {
 public:
  explicit ExhaustiveStream(ExhaustiveOptions options);

  /// Appends up to chunk_size tests; returns false once exhausted (the
  /// final call may deliver a partial chunk).
  bool next_chunk(std::vector<litmus::LitmusTest>& out) override;

  /// Serializes the full generator position — shape-pair cursor,
  /// odometer, and emitted counters — so a fresh stream with equal
  /// options resumes bit-for-bit: same remaining tests, same chunk
  /// boundaries, same "x<p>.<o>" names.  O(1) words: program-class
  /// accounting lives outside the stream (ProgramClassTally), so a
  /// per-chunk snapshot never serializes a growing set.
  [[nodiscard]] bool snapshot_cursor(
      std::vector<std::uint64_t>& out) const override;

  /// Restores a snapshot; the cursor carries a digest of the options
  /// that produced it (bounds, dep dimension, filter, shape-table
  /// size), so a cursor from any differently-bounded stream is rejected
  /// outright — even when its raw indices would be in range here — and
  /// every field is additionally validated against this stream's shape
  /// table.  Rejection resets to a fresh stream, so a stale cursor can
  /// only cause a from-scratch run, never a diverged one.
  [[nodiscard]] bool restore_cursor(
      const std::vector<std::uint64_t>& cursor) override;

  [[nodiscard]] bool done() const;
  [[nodiscard]] const ExhaustiveCounts& emitted() const { return emitted_; }
  [[nodiscard]] const ExhaustiveOptions& options() const { return options_; }

  /// Drains the programs started since the last drain (requires
  /// options.track_program_classes) by appending them to `out`.
  /// Thread-safe against the producing next_chunk, so a consumer-side
  /// accountant can drain per chunk while a prefetcher produces ahead.
  void take_new_programs(std::vector<core::Program>& out);

  /// Counting-only walk of the same generator core: the totals a full
  /// drain of a fresh stream with these options would emit.
  [[nodiscard]] static ExhaustiveCounts count(const ExhaustiveOptions& options);

 private:
  /// Advances (i_, j_) to the next program passing the filters and
  /// rebuilds the per-program state; returns false when the shape pairs
  /// are exhausted.
  bool start_next_program();
  /// Builds the current program's materialization and read domains.
  void build_program();

  ExhaustiveOptions options_;
  std::vector<shapes::ThreadShape> shapes_;
  std::uint64_t cursor_digest_ = 0;  ///< pins cursors to these options
  ExhaustiveCounts emitted_;

  std::size_t i_ = 0;  ///< first-thread shape index
  std::size_t j_ = 0;  ///< second-thread shape index
  std::size_t cur_a_ = 0;  ///< shape pair of the current program
  std::size_t cur_b_ = 0;
  bool exhausted_ = false;
  long long program_index_ = -1;  ///< 0-based index of the current program
  long long outcome_index_ = 0;   ///< 0-based odometer position within it

  core::Program program_;                    // current program
  std::vector<core::Reg> read_regs_;         // destination reg per read
  std::vector<int> read_domain_;             // 1 + writes to the read's loc
  std::vector<int> odometer_;                // current outcome assignment
  bool odometer_live_ = false;

  // Programs started but not yet drained (track_program_classes only).
  // The producer appends a copy per program; take_new_programs empties
  // it under the same mutex.  Bounded in practice by however far the
  // prefetcher runs ahead of the draining consumer.
  mutable util::Mutex pending_mu_;
  std::vector<core::Program> pending_programs_ GUARDED_BY(pending_mu_);
};

/// Consumer-side accumulator of canonical program classes: feed it the
/// programs drained from ExhaustiveStream::take_new_programs.  Classes
/// are 128-bit canonical fingerprints (16 bytes per class, computed
/// without Analysis or key strings; see util/hash128.h for the
/// collision margin).  Absorbing is idempotent — re-absorbing programs
/// replayed across a checkpoint resume cannot inflate the count.
class ProgramClassTally {
 public:
  /// Fingerprints and forgets `programs` (cleared on return).
  void absorb(std::vector<core::Program>& programs);

  [[nodiscard]] long long count() const {
    return static_cast<long long>(classes_.size());
  }

  /// Appends [count, (hi, lo)...] in sorted key order, so equal
  /// tallies export identical words (checkpoint payloads stay
  /// deterministic in the tally's content).
  void export_state(std::vector<std::uint64_t>& out) const;

  /// Re-adopts an export_state image (replacing the current classes);
  /// false — with the tally left empty — if the words are malformed.
  [[nodiscard]] bool restore_state(const std::vector<std::uint64_t>& data);

 private:
  std::unordered_set<util::Key128, util::Key128Hash> classes_;
  litmus::KeyScratch scratch_;
};

/// Symmetry reduction measured by the canonical-key machinery
/// (litmus::canonical_key: thread exchange x location renaming x
/// per-location value renaming): walks the space defined by `options`
/// without retaining it and counts canonical classes.  This subsumes
/// the shape-level reduction of count_naive — canonical test classes
/// additionally merge outcome assignments that are images of each other
/// under a program automorphism.
struct ReductionCounts {
  long long programs = 0;           ///< programs walked (after filters)
  long long tests = 0;              ///< tests walked
  long long canonical_programs = 0; ///< unique program classes
  long long canonical_tests = 0;    ///< unique (program, outcome) classes

  [[nodiscard]] double program_ratio() const {
    return canonical_programs == 0
               ? 0.0
               : static_cast<double>(programs) /
                     static_cast<double>(canonical_programs);
  }
  [[nodiscard]] double test_ratio() const {
    return canonical_tests == 0 ? 0.0
                                : static_cast<double>(tests) /
                                      static_cast<double>(canonical_tests);
  }
};

[[nodiscard]] ReductionCounts measure_reduction(
    const ExhaustiveOptions& options);

}  // namespace mcmc::enumeration
