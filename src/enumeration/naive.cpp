#include "enumeration/naive.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace mcmc::enumeration {

namespace {

/// One access slot in a thread shape.
struct Access {
  bool is_read = false;
  int loc = 0;
  bool fence_before = false;  // meaningful for slots after the first
};

using ThreadShape = std::vector<Access>;

/// Enumerates every thread shape within the bounds.
std::vector<ThreadShape> all_thread_shapes(const NaiveOptions& o) {
  std::vector<ThreadShape> out;
  ThreadShape current;
  // Depth-first over slots.
  const int fence_options = o.fences ? 2 : 1;
  auto rec = [&](auto&& self, int depth) -> void {
    if (!current.empty()) out.push_back(current);
    if (depth == o.max_accesses_per_thread) return;
    for (int fence = 0; fence < (current.empty() ? 1 : fence_options);
         ++fence) {
      for (const bool is_read : {false, true}) {
        for (int loc = 0; loc < o.num_locations; ++loc) {
          current.push_back({is_read, loc, fence != 0});
          self(self, depth + 1);
          current.pop_back();
        }
      }
    }
  };
  rec(rec, 0);
  return out;
}

/// Encodes a shape for canonicalization under a location permutation.
std::string encode(const ThreadShape& t, const std::vector<int>& loc_perm) {
  std::string s;
  for (const auto& a : t) {
    if (a.fence_before) s += 'f';
    s += a.is_read ? 'R' : 'W';
    s += static_cast<char>('0' + loc_perm[static_cast<std::size_t>(a.loc)]);
  }
  return s;
}

/// Number of outcome assignments: each read observes one of
/// {initial} + {every write to its location}.
long long outcome_count(const ThreadShape& a, const ThreadShape& b,
                        int num_locations) {
  std::vector<int> writes(static_cast<std::size_t>(num_locations), 0);
  for (const auto* t : {&a, &b}) {
    for (const auto& acc : *t) {
      if (!acc.is_read) ++writes[static_cast<std::size_t>(acc.loc)];
    }
  }
  long long count = 1;
  for (const auto* t : {&a, &b}) {
    for (const auto& acc : *t) {
      if (acc.is_read) count *= 1 + writes[static_cast<std::size_t>(acc.loc)];
    }
  }
  return count;
}

/// True if some location is written by one thread and accessed by the
/// other (without this, the threads cannot observe each other at all).
bool communicates(const ThreadShape& a, const ThreadShape& b) {
  for (const auto& wa : a) {
    if (wa.is_read) continue;
    for (const auto& xb : b) {
      if (xb.loc == wa.loc) return true;
    }
  }
  for (const auto& wb : b) {
    if (wb.is_read) continue;
    for (const auto& xa : a) {
      if (xa.loc == wb.loc) return true;
    }
  }
  return false;
}

std::vector<std::vector<int>> location_permutations(int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<int>> out;
  do {
    out.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

core::Thread materialize(const ThreadShape& shape, std::map<int, int>& values,
                         core::Reg& next_reg) {
  core::Thread t;
  for (const auto& a : shape) {
    if (a.fence_before) t.push_back(core::make_fence());
    if (a.is_read) {
      t.push_back(core::make_read(a.loc, next_reg++));
    } else {
      t.push_back(core::make_write(a.loc, ++values[a.loc]));
    }
  }
  return t;
}

}  // namespace

NaiveCounts count_naive(const NaiveOptions& options) {
  NaiveCounts counts;
  const auto shapes = all_thread_shapes(options);
  const auto perms = location_permutations(options.num_locations);
  std::unordered_set<std::string> canonical;

  for (std::size_t i = 0; i < shapes.size(); ++i) {
    for (std::size_t j = 0; j < shapes.size(); ++j) {
      ++counts.programs;
      const long long outcomes =
          outcome_count(shapes[i], shapes[j], options.num_locations);
      counts.tests += outcomes;

      if (!communicates(shapes[i], shapes[j])) continue;
      // Canonical form: smallest encoding over location permutations and
      // thread exchange.
      std::string best;
      for (const auto& perm : perms) {
        for (const bool swap : {false, true}) {
          const auto& first = swap ? shapes[j] : shapes[i];
          const auto& second = swap ? shapes[i] : shapes[j];
          std::string key = encode(first, perm) + "|" + encode(second, perm);
          if (best.empty() || key < best) best = std::move(key);
        }
      }
      if (canonical.insert(best).second) {
        ++counts.reduced_programs;
        counts.reduced_tests += outcomes;
      }
    }
  }
  return counts;
}

std::vector<litmus::LitmusTest> sample_naive_tests(const NaiveOptions& options,
                                                   int count,
                                                   std::uint64_t seed) {
  const auto shapes = all_thread_shapes(options);
  util::Rng rng(seed);
  std::vector<litmus::LitmusTest> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    const auto& a = shapes[rng.below(shapes.size())];
    const auto& b = shapes[rng.below(shapes.size())];
    std::map<int, int> values;
    core::Reg next_reg = 0;
    core::Program p;
    p.add_thread(materialize(a, values, next_reg));
    p.add_thread(materialize(b, values, next_reg));
    // Sample an outcome: each read gets the initial value or any value
    // written to its location.
    core::Outcome outcome;
    for (const auto& th : p.threads()) {
      for (const auto& instr : th) {
        if (instr.op != core::Op::Read) continue;
        const int num_written = values.count(instr.loc) != 0
                                    ? values.at(instr.loc)
                                    : 0;
        outcome.require(instr.dst,
                        static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(num_written) + 1)));
      }
    }
    out.emplace_back("naive" + std::to_string(n), std::move(p),
                     std::move(outcome));
  }
  return out;
}

}  // namespace mcmc::enumeration
