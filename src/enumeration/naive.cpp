#include "enumeration/naive.h"

#include <map>
#include <string>
#include <unordered_set>

#include "enumeration/exhaustive.h"
#include "enumeration/shapes.h"
#include "util/check.h"
#include "util/rng.h"

namespace mcmc::enumeration {

NaiveCounts count_naive(const NaiveOptions& options) {
  NaiveCounts counts;

  // Full-space totals come from the streaming enumerator's counting
  // walk, so they agree with what ExhaustiveStream materializes by
  // construction.
  ExhaustiveOptions full;
  full.bounds = options;
  const ExhaustiveCounts space = ExhaustiveStream::count(full);
  counts.programs = space.programs;
  counts.tests = space.tests;

  // Shape-level reduction (the CAV'10-style baseline): canonicalize
  // communicating programs under location permutation and thread
  // exchange.  This deliberately stops short of the engine's canonical
  // keys — reduced_tests counts every outcome assignment of each
  // canonical program, without merging outcomes that are images of each
  // other under a program automorphism (measure_reduction in
  // exhaustive.h reports that stronger reduction).
  const auto shapes = shapes::all_thread_shapes(options);
  const auto perms = shapes::location_permutations(options.num_locations);
  std::unordered_set<std::string> canonical;

  for (std::size_t i = 0; i < shapes.size(); ++i) {
    for (std::size_t j = 0; j < shapes.size(); ++j) {
      if (!shapes::communicates(shapes[i], shapes[j])) continue;
      // Canonical form: smallest encoding over location permutations and
      // thread exchange.
      std::string best;
      for (const auto& perm : perms) {
        for (const bool swap : {false, true}) {
          const auto& first = swap ? shapes[j] : shapes[i];
          const auto& second = swap ? shapes[i] : shapes[j];
          std::string key = shapes::encode(first, perm) + "|" +
                            shapes::encode(second, perm);
          if (best.empty() || key < best) best = std::move(key);
        }
      }
      if (canonical.insert(best).second) {
        ++counts.reduced_programs;
        counts.reduced_tests = shapes::checked_add(
            counts.reduced_tests,
            shapes::outcome_count(shapes[i], shapes[j], options.num_locations));
      }
    }
  }
  return counts;
}

std::vector<litmus::LitmusTest> sample_naive_tests(const NaiveOptions& options,
                                                   int count,
                                                   std::uint64_t seed) {
  const auto shapes = shapes::all_thread_shapes(options);
  util::Rng rng(seed);
  std::vector<litmus::LitmusTest> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int n = 0; n < count; ++n) {
    const auto& a = shapes[rng.below(shapes.size())];
    const auto& b = shapes[rng.below(shapes.size())];
    std::map<int, int> values;
    core::Reg next_reg = 0;
    core::Program p;
    p.add_thread(shapes::materialize(a, values, next_reg));
    p.add_thread(shapes::materialize(b, values, next_reg));
    // Sample an outcome: each read gets the initial value or any value
    // written to its location.  Reads resolve through for_each_read so
    // a dep-addressed (register-indirect) read samples from its real
    // target location's domain, not from kNoLoc's.
    core::Outcome outcome;
    for (const auto& th : p.threads()) {
      shapes::for_each_read(th, [&](core::Reg dst, int loc) {
        const auto written = values.find(loc);
        const int num_written = written == values.end() ? 0 : written->second;
        outcome.require(dst,
                        static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(num_written) + 1)));
      });
    }
    out.emplace_back("naive" + std::to_string(n), std::move(p),
                     std::move(outcome));
  }
  return out;
}

}  // namespace mcmc::enumeration
