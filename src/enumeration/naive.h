// Naive bounded enumeration of litmus tests, and a symmetry-reduced
// variant standing in for the prior-work baseline (Mador-Haim et al.,
// CAV 2010), which the paper compares against in Section 3.4:
//
//   "A naive enumeration of all tests within the bounds of Theorem 1
//    results in approximately million tests even without dependencies.
//    Earlier work describes optimizations that reduce the number of tests
//    to several thousands.  This paper improves upon earlier work by more
//    than an order of magnitude."
//
// The naive space: two threads, one to three memory accesses per thread,
// addresses drawn from a small fixed set, an optional fence between
// adjacent accesses, and (for test counting) every syntactically possible
// read outcome.  The reduced variant canonicalizes programs under address
// permutation and thread exchange and keeps only programs where the
// threads communicate.
//
// The counting here shares its generator core (shapes.h) with the
// streaming materializer (exhaustive.h), which additionally measures the
// stronger canonical-key reduction used by the VerdictEngine's cache.
#pragma once

#include <cstdint>
#include <vector>

#include "litmus/test.h"

namespace mcmc::enumeration {

/// Bounds of the naive enumeration.
struct NaiveOptions {
  int max_accesses_per_thread = 3;
  int num_locations = 3;
  bool fences = true;
  /// Extend slots with the paper's dependency idioms (data-dependent
  /// addresses and store values, control-dependent accesses) — the
  /// space Theorem 1 actually quantifies over with the full predicate
  /// set.  Off by default: the dependency-free space (and its exact
  /// historical enumeration order) is unchanged.
  bool deps = false;
};

/// Counting results over the naive space.
struct NaiveCounts {
  long long programs = 0;          ///< ordered two-thread programs
  long long tests = 0;             ///< programs x outcome assignments
  long long reduced_programs = 0;  ///< canonical + communicating programs
  long long reduced_tests = 0;     ///< their outcome assignments
};

/// Exhaustively walks the naive space and counts (never materializes the
/// full test set).
[[nodiscard]] NaiveCounts count_naive(const NaiveOptions& options);

/// Draws `count` pseudo-random naive tests (program + outcome), used by
/// differential and property test suites.  Outcomes are sampled from the
/// syntactically possible read values.
[[nodiscard]] std::vector<litmus::LitmusTest> sample_naive_tests(
    const NaiveOptions& options, int count, std::uint64_t seed);

}  // namespace mcmc::enumeration
