#include "enumeration/segment.h"

#include "util/check.h"

namespace mcmc::enumeration {

std::string Segment::to_string() const {
  std::string out;
  switch (type) {
    case SegType::RR:
      out = "RR";
      break;
    case SegType::RW:
      out = "RW";
      break;
    case SegType::WR:
      out = "WR";
      break;
    case SegType::WW:
      out = "WW";
      break;
  }
  out += same_addr ? "/same" : "/diff";
  switch (interior) {
    case Interior::None:
      break;
    case Interior::Fence:
      out += "/fence";
      break;
    case Interior::Dep:
      out += "/dep";
      break;
  }
  return out;
}

std::vector<Segment> segments_of_type(SegType type, bool with_deps) {
  std::vector<Segment> out;
  const bool read_first = type == SegType::RR || type == SegType::RW;
  for (const bool same : {false, true}) {
    out.push_back({type, same, Interior::None});
    out.push_back({type, same, Interior::Fence});
    if (with_deps && read_first) out.push_back({type, same, Interior::Dep});
  }
  return out;
}

int segment_count(SegType type, bool with_deps) {
  return static_cast<int>(segments_of_type(type, with_deps).size());
}

}  // namespace mcmc::enumeration
