// Local segments (Sections 3.2–3.4).
//
// A segment is a sequence of instructions that starts and ends with a
// memory access and has no other memory access between them.  Segments are
// classified by their end-point kinds (read-read, read-write, write-read,
// write-write), by whether the two accesses hit the same address, and by
// the interior (nothing, a full fence, or a dependency chain — dependency
// only for segments that start with a read, since writes produce no
// values).
//
// With the paper's predicate set {Read, Write, Fence, SameAddr, DataDep}
// the distinct segment counts are N_RR = N_RW = 6 and N_WR = N_WW = 4,
// giving Corollary 1's 230-test bound (124 without DataDep).
#pragma once

#include <string>
#include <vector>

namespace mcmc::enumeration {

/// Segment end-point classification.
enum class SegType { RR, RW, WR, WW };

/// What sits between the two accesses.
enum class Interior {
  None,   ///< accesses are adjacent
  Fence,  ///< a full fence
  Dep,    ///< a data dependency (first access must be a read)
};

/// One local segment shape.
struct Segment {
  SegType type = SegType::RR;
  bool same_addr = false;
  Interior interior = Interior::None;

  [[nodiscard]] bool starts_with_read() const {
    return type == SegType::RR || type == SegType::RW;
  }
  [[nodiscard]] bool ends_with_write() const {
    return type == SegType::RW || type == SegType::WW;
  }
  [[nodiscard]] std::string to_string() const;
};

/// All distinct segments of `type` under the paper's predicate set;
/// `with_deps` controls whether Interior::Dep is available (it is only
/// ever generated for read-first segments).
[[nodiscard]] std::vector<Segment> segments_of_type(SegType type,
                                                    bool with_deps);

/// N_xy for the predicate set (6/6/4/4 with deps; 4/4/4/4 without).
[[nodiscard]] int segment_count(SegType type, bool with_deps);

}  // namespace mcmc::enumeration
