#include "enumeration/shapes.h"

#include <algorithm>

#include "core/instruction.h"

namespace mcmc::enumeration::shapes {

bool well_formed(const ThreadShape& shape) {
  for (std::size_t i = 0; i < shape.size(); ++i) {
    const Sep sep = shape[i].sep;
    if (i == 0) {
      // No predecessor: any separator here would be silently
      // meaningless, so it is rejected outright.
      if (sep != Sep::None) return false;
    } else if ((sep == Sep::DataDep || sep == Sep::CtrlDep) &&
               !shape[i - 1].is_read) {
      return false;  // only a read produces a value to depend on
    }
  }
  return true;
}

std::vector<ThreadShape> all_thread_shapes(const NaiveOptions& o) {
  std::vector<ThreadShape> out;
  ThreadShape current;
  // Depth-first over slots.  Separator candidates are tried in enum
  // order (None, Fence, DataDep, CtrlDep), so with deps off the
  // sequence is byte-identical to the historical fence-only order.
  constexpr Sep kSeps[] = {Sep::None, Sep::Fence, Sep::DataDep, Sep::CtrlDep};
  auto rec = [&](auto&& self, int depth) -> void {
    if (!current.empty()) {
      MCMC_CHECK_MSG(well_formed(current),
                     "generator emitted an ill-formed shape");
      out.push_back(current);
    }
    if (depth == o.max_accesses_per_thread) return;
    for (const Sep sep : kSeps) {
      if (current.empty()) {
        if (sep != Sep::None) continue;  // first slot has no predecessor
      } else if (sep == Sep::Fence) {
        if (!o.fences) continue;
      } else if (sep == Sep::DataDep || sep == Sep::CtrlDep) {
        if (!o.deps || !current.back().is_read) continue;
      }
      for (const bool is_read : {false, true}) {
        for (int loc = 0; loc < o.num_locations; ++loc) {
          current.push_back({is_read, loc, sep});
          self(self, depth + 1);
          current.pop_back();
        }
      }
    }
  };
  rec(rec, 0);
  return out;
}

std::string encode(const ThreadShape& t, const std::vector<int>& loc_perm) {
  MCMC_REQUIRE_MSG(well_formed(t), "encode: ill-formed shape");
  std::string s;
  for (const auto& a : t) {
    switch (a.sep) {
      case Sep::None: break;
      case Sep::Fence: s += 'f'; break;
      case Sep::DataDep: s += 'd'; break;
      case Sep::CtrlDep: s += 'c'; break;
    }
    s += a.is_read ? 'R' : 'W';
    s += static_cast<char>('0' + loc_perm[static_cast<std::size_t>(a.loc)]);
  }
  return s;
}

long long outcome_count(const ThreadShape& a, const ThreadShape& b,
                        int num_locations) {
  std::vector<int> writes(static_cast<std::size_t>(num_locations), 0);
  for (const auto* t : {&a, &b}) {
    for (const auto& acc : *t) {
      if (!acc.is_read) ++writes[static_cast<std::size_t>(acc.loc)];
    }
  }
  long long count = 1;
  for (const auto* t : {&a, &b}) {
    for (const auto& acc : *t) {
      if (acc.is_read) {
        count = checked_mul(count,
                            1 + writes[static_cast<std::size_t>(acc.loc)]);
      }
    }
  }
  return count;
}

bool communicates(const ThreadShape& a, const ThreadShape& b) {
  for (const auto& wa : a) {
    if (wa.is_read) continue;
    for (const auto& xb : b) {
      if (xb.loc == wa.loc) return true;
    }
  }
  for (const auto& wb : b) {
    if (wb.is_read) continue;
    for (const auto& xa : a) {
      if (xa.loc == wb.loc) return true;
    }
  }
  return false;
}

std::vector<std::vector<int>> location_permutations(int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<int>> out;
  do {
    out.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

core::Thread materialize(const ThreadShape& shape, std::map<int, int>& values,
                         core::Reg& next_reg) {
  MCMC_REQUIRE_MSG(well_formed(shape), "materialize: ill-formed shape");
  core::Thread t;
  core::Reg prev_read = core::kNoReg;  // register of the preceding read slot
  for (const auto& a : shape) {
    switch (a.sep) {
      case Sep::None:
      case Sep::DataDep:
        break;
      case Sep::Fence:
        t.push_back(core::make_fence());
        break;
      case Sep::CtrlDep:
        t.push_back(core::make_branch(prev_read));
        break;
    }
    if (a.is_read) {
      if (a.sep == Sep::DataDep) {
        // TestBuilder::dep_read: t = r - r + loc ; Read [t] -> r'
        const core::Reg tmp = next_reg++;
        t.push_back(core::make_dep_const(tmp, prev_read, a.loc));
        t.push_back(core::make_read_indirect(tmp, next_reg));
      } else {
        t.push_back(core::make_read(a.loc, next_reg));
      }
      prev_read = next_reg++;
    } else {
      const int v = ++values[a.loc];
      if (a.sep == Sep::DataDep) {
        // TestBuilder::dep_write: t = r - r + v ; Write loc <- t
        const core::Reg tmp = next_reg++;
        t.push_back(core::make_dep_const(tmp, prev_read, v));
        t.push_back(core::make_write_from_reg(a.loc, tmp));
      } else {
        t.push_back(core::make_write(a.loc, v));
      }
      prev_read = core::kNoReg;  // a write yields no value to depend on
    }
  }
  return t;
}

}  // namespace mcmc::enumeration::shapes
