#include "enumeration/shapes.h"

#include <algorithm>

#include "core/instruction.h"

namespace mcmc::enumeration::shapes {

std::vector<ThreadShape> all_thread_shapes(const NaiveOptions& o) {
  std::vector<ThreadShape> out;
  ThreadShape current;
  // Depth-first over slots.
  const int fence_options = o.fences ? 2 : 1;
  auto rec = [&](auto&& self, int depth) -> void {
    if (!current.empty()) out.push_back(current);
    if (depth == o.max_accesses_per_thread) return;
    for (int fence = 0; fence < (current.empty() ? 1 : fence_options);
         ++fence) {
      for (const bool is_read : {false, true}) {
        for (int loc = 0; loc < o.num_locations; ++loc) {
          current.push_back({is_read, loc, fence != 0});
          self(self, depth + 1);
          current.pop_back();
        }
      }
    }
  };
  rec(rec, 0);
  return out;
}

std::string encode(const ThreadShape& t, const std::vector<int>& loc_perm) {
  std::string s;
  for (const auto& a : t) {
    if (a.fence_before) s += 'f';
    s += a.is_read ? 'R' : 'W';
    s += static_cast<char>('0' + loc_perm[static_cast<std::size_t>(a.loc)]);
  }
  return s;
}

long long outcome_count(const ThreadShape& a, const ThreadShape& b,
                        int num_locations) {
  std::vector<int> writes(static_cast<std::size_t>(num_locations), 0);
  for (const auto* t : {&a, &b}) {
    for (const auto& acc : *t) {
      if (!acc.is_read) ++writes[static_cast<std::size_t>(acc.loc)];
    }
  }
  long long count = 1;
  for (const auto* t : {&a, &b}) {
    for (const auto& acc : *t) {
      if (acc.is_read) count *= 1 + writes[static_cast<std::size_t>(acc.loc)];
    }
  }
  return count;
}

bool communicates(const ThreadShape& a, const ThreadShape& b) {
  for (const auto& wa : a) {
    if (wa.is_read) continue;
    for (const auto& xb : b) {
      if (xb.loc == wa.loc) return true;
    }
  }
  for (const auto& wb : b) {
    if (wb.is_read) continue;
    for (const auto& xa : a) {
      if (xa.loc == wb.loc) return true;
    }
  }
  return false;
}

std::vector<std::vector<int>> location_permutations(int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<int>> out;
  do {
    out.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

core::Thread materialize(const ThreadShape& shape, std::map<int, int>& values,
                         core::Reg& next_reg) {
  core::Thread t;
  for (const auto& a : shape) {
    if (a.fence_before) t.push_back(core::make_fence());
    if (a.is_read) {
      t.push_back(core::make_read(a.loc, next_reg++));
    } else {
      t.push_back(core::make_write(a.loc, ++values[a.loc]));
    }
  }
  return t;
}

}  // namespace mcmc::enumeration::shapes
