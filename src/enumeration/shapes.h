// The shared generator core of the naive bounded space (Section 3.4):
// thread shapes within the NaiveOptions bounds, outcome counting,
// communication tests, shape-level canonical encodings, and shape
// materialization into core::Thread instruction sequences.
//
// Both the counting walk (`count_naive`, naive.h) and the streaming
// materializer (`ExhaustiveStream`, exhaustive.h) consume these one
// definitions, so the counted space and the materialized space cannot
// drift apart.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/program.h"
#include "enumeration/naive.h"

namespace mcmc::enumeration::shapes {

/// One access slot in a thread shape.
struct Access {
  bool is_read = false;
  int loc = 0;
  bool fence_before = false;  // meaningful for slots after the first
};

using ThreadShape = std::vector<Access>;

/// Every thread shape within the bounds, in a fixed deterministic order.
[[nodiscard]] std::vector<ThreadShape> all_thread_shapes(
    const NaiveOptions& options);

/// Encodes a shape for shape-level canonicalization under a location
/// permutation (the CAV'10-style reduced baseline).
[[nodiscard]] std::string encode(const ThreadShape& shape,
                                 const std::vector<int>& loc_perm);

/// Number of outcome assignments of the two-thread program (a, b): each
/// read observes one of {initial} + {every write to its location}.
[[nodiscard]] long long outcome_count(const ThreadShape& a,
                                      const ThreadShape& b,
                                      int num_locations);

/// True if some location is written by one thread and accessed by the
/// other (without this, the threads cannot observe each other at all).
[[nodiscard]] bool communicates(const ThreadShape& a, const ThreadShape& b);

/// All permutations of {0, ..., n-1} in lexicographic order.
[[nodiscard]] std::vector<std::vector<int>> location_permutations(int n);

/// Materializes a shape: writes store 1, 2, ... per location (continuing
/// `values`, which is shared across the program's threads), reads load
/// into fresh registers from `next_reg`.
[[nodiscard]] core::Thread materialize(const ThreadShape& shape,
                                       std::map<int, int>& values,
                                       core::Reg& next_reg);

}  // namespace mcmc::enumeration::shapes
