// The shared generator core of the naive bounded space (Section 3.4):
// thread shapes within the NaiveOptions bounds, outcome counting,
// communication tests, shape-level canonical encodings, and shape
// materialization into core::Thread instruction sequences.
//
// Both the counting walk (`count_naive`, naive.h) and the streaming
// materializer (`ExhaustiveStream`, exhaustive.h) consume these one
// definitions, so the counted space and the materialized space cannot
// drift apart.
//
// With NaiveOptions::deps the slots additionally carry the paper's
// dependency idioms (mirroring enumeration/segment.h's Interior::Dep):
// a read may feed the next access through a data dependency — a
// dependent address for a read, a dependent store value for a write —
// or through a control dependency (a conditional branch on the read's
// value).  Materialization uses exactly the TestBuilder idioms
// (`t = r - r + c` DepConst chains, conditional branches), so the
// dep-extended generated classes and the Corollary-1 suite's dependency
// tests land in the same canonical classes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/program.h"
#include "enumeration/naive.h"
#include "util/check.h"

namespace mcmc::enumeration::shapes {

/// How a slot is separated from the slot before it.  The first slot of
/// a thread has no predecessor, so only Sep::None is well-formed there;
/// DataDep and CtrlDep additionally require the preceding slot to be a
/// read (writes produce no value to depend on — the same restriction
/// segment.h's Interior::Dep encodes).
enum class Sep : std::uint8_t {
  None = 0,     ///< adjacent, no separator
  Fence = 1,    ///< full fence between the two accesses
  DataDep = 2,  ///< this access data-depends on the preceding read
  CtrlDep = 3,  ///< this access is control-dependent on the preceding read
};

/// One access slot in a thread shape.
struct Access {
  bool is_read = false;
  int loc = 0;
  Sep sep = Sep::None;  ///< separator from the previous slot (see Sep)
};

using ThreadShape = std::vector<Access>;

/// Structural validity of a shape: the first slot carries Sep::None,
/// and dependency separators appear only directly after a read.  Every
/// shape all_thread_shapes emits satisfies this; encode and materialize
/// reject anything that does not, so the counted space and the
/// materialized space cannot drift.
[[nodiscard]] bool well_formed(const ThreadShape& shape);

/// Every thread shape within the bounds, in a fixed deterministic order
/// (with deps off, byte-identical to the historical fence-only order —
/// stream cursors and test names depend on it).
[[nodiscard]] std::vector<ThreadShape> all_thread_shapes(
    const NaiveOptions& options);

/// Encodes a shape for shape-level canonicalization under a location
/// permutation (the CAV'10-style reduced baseline).  Separators encode
/// as 'f' / 'd' / 'c' before the access letter.
[[nodiscard]] std::string encode(const ThreadShape& shape,
                                 const std::vector<int>& loc_perm);

/// Checked space-accounting arithmetic: the dep-extended space grows
/// the products by an order of magnitude, so a silent wrap would
/// corrupt every downstream count.  Fails loudly instead.
[[nodiscard]] inline long long checked_mul(long long a, long long b) {
  long long out = 0;
  MCMC_CHECK_MSG(!__builtin_mul_overflow(a, b, &out),
                 "space size product overflows long long");
  return out;
}
[[nodiscard]] inline long long checked_add(long long a, long long b) {
  long long out = 0;
  MCMC_CHECK_MSG(!__builtin_add_overflow(a, b, &out),
                 "space size sum overflows long long");
  return out;
}

/// Number of outcome assignments of the two-thread program (a, b): each
/// read observes one of {initial} + {every write to its location}.  A
/// dep-addressed read still targets its slot's location (the DepConst
/// constant is the location), so the domain is unchanged by separators.
[[nodiscard]] long long outcome_count(const ThreadShape& a,
                                      const ThreadShape& b,
                                      int num_locations);

/// True if some location is written by one thread and accessed by the
/// other (without this, the threads cannot observe each other at all).
[[nodiscard]] bool communicates(const ThreadShape& a, const ThreadShape& b);

/// All permutations of {0, ..., n-1} in lexicographic order.
[[nodiscard]] std::vector<std::vector<int>> location_permutations(int n);

/// Materializes a shape: writes store 1, 2, ... per location (continuing
/// `values`, which is shared across the program's threads), reads load
/// into fresh registers from `next_reg`.  Dep separators materialize the
/// TestBuilder idioms: DataDep emits `t = r - r + c` feeding an indirect
/// read address or a write value, CtrlDep emits a branch on the
/// preceding read's register.
[[nodiscard]] core::Thread materialize(const ThreadShape& shape,
                                       std::map<int, int>& values,
                                       core::Reg& next_reg);

/// Calls fn(dst_reg, loc) for every read of `thread`, in order, with
/// the read's statically resolved target location: a register-indirect
/// address is followed through the DepConst that defines it (the only
/// way materialize and TestBuilder produce one).  Both the stream's
/// outcome-domain computation and the naive sampler resolve reads
/// through this one helper, so dep-addressed reads cannot get a
/// different outcome domain in the counted and sampled spaces.
template <typename Fn>
void for_each_read(const core::Thread& thread, Fn&& fn) {
  for (std::size_t i = 0; i < thread.size(); ++i) {
    const core::Instruction& instr = thread[i];
    if (instr.op != core::Op::Read) continue;
    int loc = instr.loc;
    if (instr.addr_reg >= 0) {
      loc = core::kNoLoc;
      for (std::size_t k = i; k-- > 0;) {
        const core::Instruction& def = thread[k];
        if (def.op == core::Op::DepConst && def.dst == instr.addr_reg) {
          loc = def.value;
          break;
        }
      }
      MCMC_CHECK_MSG(loc != core::kNoLoc,
                     "indirect read address is not DepConst-resolvable");
    }
    fn(instr.dst, loc);
  }
}

}  // namespace mcmc::enumeration::shapes
