#include "enumeration/suite.h"

#include <utility>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/model.h"
#include "enumeration/segment.h"
#include "enumeration/templates.h"

namespace mcmc::enumeration {

long long corollary1_bound(bool with_deps) {
  const long long n_rr = segment_count(SegType::RR, with_deps);
  const long long n_rw = segment_count(SegType::RW, with_deps);
  const long long n_wr = segment_count(SegType::WR, with_deps);
  const long long n_ww = segment_count(SegType::WW, with_deps);
  return n_rw + n_ww + n_rr * (n_ww + n_wr * n_rw) +
         n_wr * (1 + n_rr + n_rw);
}

namespace {

enum class Case { C1, C2, C3a, C3b, C4, C5a, C5b };

/// Every compatible template instantiation, tagged with its case.
std::vector<std::pair<Case, litmus::LitmusTest>> generate_all(bool with_deps) {
  std::vector<std::pair<Case, litmus::LitmusTest>> out;
  const auto rrs = segments_of_type(SegType::RR, with_deps);
  const auto rws = segments_of_type(SegType::RW, with_deps);
  const auto wrs = segments_of_type(SegType::WR, with_deps);
  const auto wws = segments_of_type(SegType::WW, with_deps);

  auto take = [&out](Case c, std::optional<litmus::LitmusTest> t) {
    if (t.has_value()) out.emplace_back(c, std::move(*t));
  };

  for (const auto& rw : rws) take(Case::C1, case1(rw));
  for (const auto& ww : wws) take(Case::C2, case2(ww));
  for (const auto& rr : rrs) {
    for (const auto& ww : wws) take(Case::C3a, case3a(rr, ww));
  }
  for (const auto& rr : rrs) {
    for (const auto& wr : wrs) {
      for (const auto& rw : rws) take(Case::C3b, case3b(rr, wr, rw));
    }
  }
  for (const auto& wr : wrs) take(Case::C4, case4(wr));
  for (const auto& wr : wrs) {
    for (const auto& rr : rrs) take(Case::C5a, case5a(wr, rr));
  }
  for (const auto& wr : wrs) {
    for (const auto& rw : rws) take(Case::C5b, case5b(wr, rw));
  }
  return out;
}

/// A test whose outcome is unreachable even in the weakest model of the
/// class (F = false) is unreachable in every model (strengthening F only
/// removes behaviors), so it can never contrast two models: drop it.
/// This prunes degenerate same-address instantiations whose observer
/// reads force a coherence cycle outright.
bool useful(const litmus::LitmusTest& t) {
  const core::MemoryModel weakest("weakest", core::f_false());
  const core::Analysis an(t.program());
  return core::is_allowed(an, weakest, t.outcome());
}

}  // namespace

std::vector<litmus::LitmusTest> corollary1_suite(bool with_deps) {
  std::vector<litmus::LitmusTest> out;
  for (auto& [c, t] : generate_all(with_deps)) {
    if (useful(t)) out.push_back(std::move(t));
  }
  return out;
}

SuiteBreakdown suite_breakdown(bool with_deps) {
  SuiteBreakdown b;
  for (const auto& [c, t] : generate_all(with_deps)) {
    if (!useful(t)) continue;
    switch (c) {
      case Case::C1:
        ++b.case1;
        break;
      case Case::C2:
        ++b.case2;
        break;
      case Case::C3a:
        ++b.case3a;
        break;
      case Case::C3b:
        ++b.case3b;
        break;
      case Case::C4:
        ++b.case4;
        break;
      case Case::C5a:
        ++b.case5a;
        break;
      case Case::C5b:
        ++b.case5b;
        break;
    }
  }
  return b;
}

}  // namespace mcmc::enumeration
