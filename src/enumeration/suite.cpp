#include "enumeration/suite.h"

#include <utility>

#include "core/model.h"
#include "engine/verdict_engine.h"
#include "enumeration/segment.h"
#include "enumeration/templates.h"

namespace mcmc::enumeration {

long long corollary1_bound(bool with_deps) {
  const long long n_rr = segment_count(SegType::RR, with_deps);
  const long long n_rw = segment_count(SegType::RW, with_deps);
  const long long n_wr = segment_count(SegType::WR, with_deps);
  const long long n_ww = segment_count(SegType::WW, with_deps);
  return n_rw + n_ww + n_rr * (n_ww + n_wr * n_rw) +
         n_wr * (1 + n_rr + n_rw);
}

namespace {

enum class Case { C1, C2, C3a, C3b, C4, C5a, C5b };

/// Every compatible template instantiation, tagged with its case.
std::vector<std::pair<Case, litmus::LitmusTest>> generate_all(bool with_deps) {
  std::vector<std::pair<Case, litmus::LitmusTest>> out;
  const auto rrs = segments_of_type(SegType::RR, with_deps);
  const auto rws = segments_of_type(SegType::RW, with_deps);
  const auto wrs = segments_of_type(SegType::WR, with_deps);
  const auto wws = segments_of_type(SegType::WW, with_deps);

  auto take = [&out](Case c, std::optional<litmus::LitmusTest> t) {
    if (t.has_value()) out.emplace_back(c, std::move(*t));
  };

  for (const auto& rw : rws) take(Case::C1, case1(rw));
  for (const auto& ww : wws) take(Case::C2, case2(ww));
  for (const auto& rr : rrs) {
    for (const auto& ww : wws) take(Case::C3a, case3a(rr, ww));
  }
  for (const auto& rr : rrs) {
    for (const auto& wr : wrs) {
      for (const auto& rw : rws) take(Case::C3b, case3b(rr, wr, rw));
    }
  }
  for (const auto& wr : wrs) take(Case::C4, case4(wr));
  for (const auto& wr : wrs) {
    for (const auto& rr : rrs) take(Case::C5a, case5a(wr, rr));
  }
  for (const auto& wr : wrs) {
    for (const auto& rw : rws) take(Case::C5b, case5b(wr, rw));
  }
  return out;
}

/// A test whose outcome is unreachable even in the weakest model of the
/// class (F = false) is unreachable in every model (strengthening F only
/// removes behaviors), so it can never contrast two models: drop it.
/// This prunes degenerate same-address instantiations whose observer
/// reads force a coherence cycle outright.  All candidates are checked
/// in one batched engine run (one weakest-model row).
std::vector<char> useful_flags(
    const std::vector<std::pair<Case, litmus::LitmusTest>>& all) {
  const std::vector<core::MemoryModel> weakest = {
      core::MemoryModel("weakest", core::f_false())};
  std::vector<litmus::LitmusTest> tests;
  tests.reserve(all.size());
  for (const auto& [c, t] : all) tests.push_back(t);
  std::vector<engine::VerdictRequest> requests;
  requests.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    requests.push_back({0, static_cast<int>(i)});
  }
  engine::VerdictEngine eng;
  return eng.run_batch(weakest, tests, requests);
}

}  // namespace

std::vector<litmus::LitmusTest> corollary1_suite(bool with_deps) {
  auto all = generate_all(with_deps);
  const auto useful = useful_flags(all);
  std::vector<litmus::LitmusTest> out;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (useful[i]) out.push_back(std::move(all[i].second));
  }
  return out;
}

SuiteBreakdown suite_breakdown(bool with_deps) {
  SuiteBreakdown b;
  const auto all = generate_all(with_deps);
  const auto useful = useful_flags(all);
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!useful[i]) continue;
    const Case c = all[i].first;
    switch (c) {
      case Case::C1:
        ++b.case1;
        break;
      case Case::C2:
        ++b.case2;
        break;
      case Case::C3a:
        ++b.case3a;
        break;
      case Case::C3b:
        ++b.case3b;
        break;
      case Case::C4:
        ++b.case4;
        break;
      case Case::C5a:
        ++b.case5a;
        break;
      case Case::C5b:
        ++b.case5b;
        break;
    }
  }
  return b;
}

}  // namespace mcmc::enumeration
