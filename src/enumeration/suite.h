// The Corollary-1 test suite (Section 3.4).
//
// Instantiating the seven templates with all distinct local segments gives
// a suite that suffices to contrast any two models in the paper's class
// (with the chosen predicate set).  Corollary 1's counting formula
//
//   N_RW + N_WW + N_RR (N_WW + N_WR N_RW) + N_WR (1 + N_RR + N_RW)
//
// evaluates to 230 with data dependencies and 124 without; it is an upper
// bound that counts address-incompatible combinations too, so the number
// of materialized tests is smaller (the suite still realizes every
// compatible combination, which is what the Theorem-1 proof needs).
#pragma once

#include <vector>

#include "litmus/test.h"

namespace mcmc::enumeration {

/// Corollary 1's formula value: 230 with dependencies, 124 without.
[[nodiscard]] long long corollary1_bound(bool with_deps);

/// Materializes the template suite (every compatible instantiation of the
/// seven templates).
[[nodiscard]] std::vector<litmus::LitmusTest> corollary1_suite(bool with_deps);

/// Per-template breakdown of the materialized suite.
struct SuiteBreakdown {
  int case1 = 0;
  int case2 = 0;
  int case3a = 0;
  int case3b = 0;
  int case4 = 0;
  int case5a = 0;
  int case5b = 0;
  [[nodiscard]] int total() const {
    return case1 + case2 + case3a + case3b + case4 + case5a + case5b;
  }
};

[[nodiscard]] SuiteBreakdown suite_breakdown(bool with_deps);

}  // namespace mcmc::enumeration
