#include "enumeration/templates.h"

#include "enumeration/builder.h"
#include "util/check.h"

namespace mcmc::enumeration {

namespace {

using core::Loc;
using core::Reg;

constexpr Loc A = 0;
constexpr Loc B = 1;

/// Emits the tail of a read-first segment after its first read: interior
/// plus the closing read.  Returns the closing read's register.
Reg close_with_read(TestBuilder& b, int t, const Segment& seg, Reg first,
                    Loc loc) {
  switch (seg.interior) {
    case Interior::None:
      return b.read(t, loc);
    case Interior::Fence:
      b.fence(t);
      return b.read(t, loc);
    case Interior::Dep:
      return b.dep_read(t, first, loc);
  }
  MCMC_UNREACHABLE("bad interior");
}

/// Emits the tail of a read-first segment after its first read: interior
/// plus the closing write.  Returns the value written.
int close_with_write(TestBuilder& b, int t, const Segment& seg, Reg first,
                     Loc loc) {
  switch (seg.interior) {
    case Interior::None:
      return b.write(t, loc);
    case Interior::Fence:
      b.fence(t);
      return b.write(t, loc);
    case Interior::Dep:
      return b.dep_write(t, first, loc);
  }
  MCMC_UNREACHABLE("bad interior");
}

/// Emits the interior of a write-first segment (no dependency possible).
void write_first_interior(TestBuilder& b, int t, const Segment& seg) {
  MCMC_CHECK(seg.interior != Interior::Dep);
  if (seg.interior == Interior::Fence) b.fence(t);
}

std::string name_of(const char* tmpl, std::initializer_list<Segment> segs) {
  std::string out = tmpl;
  for (const auto& s : segs) out += "[" + s.to_string() + "]";
  return out;
}

}  // namespace

std::optional<litmus::LitmusTest> case1(const Segment& rw) {
  MCMC_REQUIRE(rw.type == SegType::RW);
  // T0: R a -> r0 ; int ; W b      with b == a iff same_addr
  // T1: R b -> r1 ; int ; W a      (mirror)
  // Cycle: r0 reads T1's write, r1 reads T0's write (LB shape).
  const Loc a = A;
  const Loc b = rw.same_addr ? A : B;
  TestBuilder t(2);
  const Reg r0 = t.read(0, a);
  const int v0 = close_with_write(t, 0, rw, r0, b);
  const Reg r1 = t.read(1, b);
  const int v1 = close_with_write(t, 1, rw, r1, a);
  t.expect(r0, v1);
  t.expect(r1, v0);
  return std::move(t).build(name_of("C1", {rw}),
                            "read-write critical segment (Case 1)");
}

std::optional<litmus::LitmusTest> case2(const Segment& ww) {
  MCMC_REQUIRE(ww.type == SegType::WW);
  // T0: W a ; int ; W b ; R b -> r0   expecting T1's first write
  // T1: W b ; int ; W a ; R a -> r1   expecting T0's first write
  const Loc a = A;
  const Loc b = ww.same_addr ? A : B;
  TestBuilder t(2);
  const int v_a0 = t.write(0, a);
  write_first_interior(t, 0, ww);
  t.write(0, b);
  const int v_b1 = t.write(1, b);
  write_first_interior(t, 1, ww);
  t.write(1, a);
  const Reg r0 = t.read(0, b);
  const Reg r1 = t.read(1, a);
  t.expect(r0, v_b1);
  t.expect(r1, v_a0);
  return std::move(t).build(name_of("C2", {ww}),
                            "write-write critical segment (Case 2)");
}

std::optional<litmus::LitmusTest> case3a(const Segment& rr,
                                         const Segment& ww) {
  MCMC_REQUIRE(rr.type == SegType::RR && ww.type == SegType::WW);
  // T0 (writer): W a ; int ; W b
  // T1 (reader): R b -> r0 (sees T0's second write) ; int ; R a -> r1 (0)
  // The reader's addresses are (b, a), so rr.same must match ww.same.
  if (rr.same_addr != ww.same_addr) return std::nullopt;
  const Loc a = A;
  const Loc b = ww.same_addr ? A : B;
  TestBuilder t(2);
  t.write(0, a);
  write_first_interior(t, 0, ww);
  const int v2 = t.write(0, b);
  const Reg r0 = t.read(1, b);
  const Reg r1 = close_with_read(t, 1, rr, r0, a);
  t.expect(r0, v2);
  t.expect(r1, 0);
  return std::move(t).build(name_of("C3a", {rr, ww}),
                            "read-read against write-write (Case 3a)");
}

std::optional<litmus::LitmusTest> case3b(const Segment& rr, const Segment& wr,
                                         const Segment& rw) {
  MCMC_REQUIRE(rr.type == SegType::RR && wr.type == SegType::WR &&
               rw.type == SegType::RW);
  // T0 (merged writer): W a ; wr-int ; R m -> rg ; rw-int ; W b2
  // T1 (reader):        R b2 -> r0 (sees W b2) ; rr-int ; R a -> r1 (0)
  // Address constraints: wr.same <=> m == a; rw.same <=> b2 == m;
  // rr.same <=> b2 == a.  Assign a = A, then m and b2, and reject
  // inconsistent flag combinations.
  const Loc a = A;
  const Loc m = wr.same_addr ? a : B;
  Loc b2 = 0;
  if (rw.same_addr) {
    b2 = m;
  } else if (rr.same_addr) {
    b2 = a;
  } else {
    // b2 must differ from both m and a.
    b2 = (m == B) ? 2 : B;
  }
  const bool consistent = ((m == a) == wr.same_addr) &&
                          ((b2 == m) == rw.same_addr) &&
                          ((b2 == a) == rr.same_addr);
  if (!consistent) return std::nullopt;

  TestBuilder t(2);
  const int v1 = t.write(0, a);
  write_first_interior(t, 0, wr);
  const Reg rg = t.read(0, m);
  const int v2 = close_with_write(t, 0, rw, rg, b2);
  const Reg r0 = t.read(1, b2);
  const Reg r1 = close_with_read(t, 1, rr, r0, a);
  // The glue read sees the local write when m == a, the initial value
  // otherwise (when b2 == m the write to m comes after the glue read).
  t.expect(rg, wr.same_addr ? v1 : 0);
  t.expect(r0, v2);
  t.expect(r1, 0);
  return std::move(t).build(
      name_of("C3b", {rr, wr, rw}),
      "read-read against merged write-read + read-write (Case 3b)");
}

std::optional<litmus::LitmusTest> case4(const Segment& wr) {
  MCMC_REQUIRE(wr.type == SegType::WR);
  // Only the different-address shape (same-address is Case 5).
  if (wr.same_addr) return std::nullopt;
  TestBuilder t(2);
  t.write(0, A);
  write_first_interior(t, 0, wr);
  const Reg r0 = t.read(0, B);
  t.write(1, B);
  write_first_interior(t, 1, wr);
  const Reg r1 = t.read(1, A);
  t.expect(r0, 0);
  t.expect(r1, 0);
  return std::move(t).build(name_of("C4", {wr}),
                            "write-read critical segment, different "
                            "addresses (Case 4, SB)");
}

std::optional<litmus::LitmusTest> case5a(const Segment& wr,
                                         const Segment& rr) {
  MCMC_REQUIRE(wr.type == SegType::WR && rr.type == SegType::RR);
  // Same-address critical segment continued by a read-read segment to a
  // different address, mirrored (the L8 shape).
  if (!wr.same_addr || rr.same_addr) return std::nullopt;
  TestBuilder t(2);
  const int v0 = t.write(0, A);
  write_first_interior(t, 0, wr);
  const Reg r0 = t.read(0, A);
  const Reg r1 = close_with_read(t, 0, rr, r0, B);
  const int v1 = t.write(1, B);
  write_first_interior(t, 1, wr);
  const Reg r2 = t.read(1, B);
  const Reg r3 = close_with_read(t, 1, rr, r2, A);
  t.expect(r0, v0);
  t.expect(r1, 0);
  t.expect(r2, v1);
  t.expect(r3, 0);
  return std::move(t).build(name_of("C5a", {wr, rr}),
                            "same-address write-read continued by "
                            "read-read (Case 5a, L8 shape)");
}

std::optional<litmus::LitmusTest> case5b(const Segment& wr,
                                         const Segment& rw) {
  MCMC_REQUIRE(wr.type == SegType::WR && rw.type == SegType::RW);
  // Same-address critical segment merged with a read-write segment into a
  // write-write chain; the read-write segment is copied to the other
  // thread and an observer read closes the cycle (the L9 shape).
  //
  // A same-address read-write continuation is geometrically useless: the
  // copied segment in T1 is R a ; W a, and the observer read's coherence
  // escape then forces a cycle through T1's own write regardless of the
  // model, so no model pair is ever distinguished.  We skip it.
  if (!wr.same_addr || rw.same_addr) return std::nullopt;
  TestBuilder t(2);
  const int v1 = t.write(0, A);
  write_first_interior(t, 0, wr);
  const Reg r0 = t.read(0, A);
  const int v2 = close_with_write(t, 0, rw, r0, B);
  const Reg r1 = t.read(1, B);
  close_with_write(t, 1, rw, r1, A);
  const Reg r2 = t.read(1, A);
  t.expect(r0, v1);
  t.expect(r1, v2);
  t.expect(r2, v1);  // forces T1's write to A before T0's write to A
  return std::move(t).build(name_of("C5b", {wr, rw}),
                            "same-address write-read continued by "
                            "read-write (Case 5b, L9 shape)");
}

}  // namespace mcmc::enumeration
