// The seven litmus-test templates of Figure 2 (Section 3.2's five cases,
// with Cases 3 and 5 each split in two).
//
// Each template takes local segments and produces a two-thread test with
// at most six memory accesses whose candidate outcome traces exactly the
// conflict cycle of the Theorem-1 proof.  Templates return std::nullopt
// for address-incompatible segment combinations (the Corollary-1 formula
// counts these combinations anyway — it is an upper bound; see suite.h).
//
// Case index -> construction:
//   1  read-write critical segment, mirrored across two threads (LB-like)
//   2  write-write critical segment, mirrored, plus two observer reads
//   3a read-read critical segment against a write-write segment (MP-like)
//   3b read-read critical segment against a merged write-read + read-write
//      segment
//   4  write-read critical segment to different addresses, mirrored (SB)
//   5a write-read critical segment to the same address, continued by a
//      read-read segment to a different address, mirrored (L8)
//   5b write-read critical segment to the same address, continued by a
//      read-write segment, with the read-write segment copied to the other
//      thread and an observer read appended (L9)
#pragma once

#include <optional>
#include <vector>

#include "enumeration/segment.h"
#include "litmus/test.h"

namespace mcmc::enumeration {

[[nodiscard]] std::optional<litmus::LitmusTest> case1(const Segment& rw);
[[nodiscard]] std::optional<litmus::LitmusTest> case2(const Segment& ww);
[[nodiscard]] std::optional<litmus::LitmusTest> case3a(const Segment& rr,
                                                       const Segment& ww);
[[nodiscard]] std::optional<litmus::LitmusTest> case3b(const Segment& rr,
                                                       const Segment& wr,
                                                       const Segment& rw);
[[nodiscard]] std::optional<litmus::LitmusTest> case4(const Segment& wr);
[[nodiscard]] std::optional<litmus::LitmusTest> case5a(const Segment& wr,
                                                       const Segment& rr);
[[nodiscard]] std::optional<litmus::LitmusTest> case5b(const Segment& wr,
                                                       const Segment& rw);

}  // namespace mcmc::enumeration
