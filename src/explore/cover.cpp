#include "explore/cover.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "util/check.h"

namespace mcmc::explore {

namespace {

/// Fixed-size bitset over the pair universe.
class PairSet {
 public:
  explicit PairSet(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  void set(std::size_t i) { words_[i / 64] |= 1ULL << (i % 64); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }
  PairSet& operator|=(const PairSet& o) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
    return *this;
  }
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const auto w : words_) {
      n += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return n;
  }
  [[nodiscard]] std::size_t count_uncovered_in(const PairSet& universe) const {
    std::size_t n = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      n += static_cast<std::size_t>(
          __builtin_popcountll(universe.words_[w] & ~words_[w]));
    }
    return n;
  }
  [[nodiscard]] long long first_uncovered_in(const PairSet& universe) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t missing = universe.words_[w] & ~words_[w];
      if (missing != 0) {
        return static_cast<long long>(
            w * 64 + static_cast<std::size_t>(__builtin_ctzll(missing)));
      }
    }
    return -1;
  }
  friend bool operator==(const PairSet& a, const PairSet& b) {
    return a.words_ == b.words_;
  }
  friend bool operator<(const PairSet& a, const PairSet& b) {
    return a.words_ < b.words_;
  }

 private:
  std::size_t bits_;
  std::vector<std::uint64_t> words_;
};

/// Coverage bitset of each test over `pairs`, read word-wise off the
/// matrix's packed verdict rows (a test covers a pair iff its bit is set
/// in the XOR of the pair's rows).
std::vector<PairSet> coverage_sets(
    const AdmissibilityMatrix& matrix,
    const std::vector<std::pair<int, int>>& pairs) {
  std::vector<PairSet> cov(static_cast<std::size_t>(matrix.num_tests()),
                           PairSet(pairs.size()));
  const auto& bits = matrix.bits();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto [a, b] = pairs[p];
    const std::uint64_t* ra = bits.row(a);
    const std::uint64_t* rb = bits.row(b);
    for (std::size_t w = 0; w < bits.words_per_row(); ++w) {
      std::uint64_t diff = ra[w] ^ rb[w];
      while (diff != 0) {
        const auto t = w * 64 + static_cast<std::size_t>(__builtin_ctzll(diff));
        cov[t].set(p);
        diff &= diff - 1;
      }
    }
  }
  return cov;
}

}  // namespace

std::vector<std::pair<int, int>> distinguishable_pairs(
    const AdmissibilityMatrix& matrix) {
  std::vector<std::pair<int, int>> pairs;
  for (int a = 0; a < matrix.num_models(); ++a) {
    for (int b = a + 1; b < matrix.num_models(); ++b) {
      if (matrix.compare(a, b) != Relation::Equivalent) {
        pairs.emplace_back(a, b);
      }
    }
  }
  return pairs;
}

bool covers_all(const AdmissibilityMatrix& matrix,
                const std::vector<int>& candidate,
                const std::vector<std::pair<int, int>>& pairs) {
  for (const auto& [a, b] : pairs) {
    bool covered = false;
    for (const int t : candidate) {
      if (matrix.allowed(a, t) != matrix.allowed(b, t)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::vector<int> greedy_cover(const AdmissibilityMatrix& matrix) {
  const auto pairs = distinguishable_pairs(matrix);
  const auto cov = coverage_sets(matrix, pairs);
  PairSet universe(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) universe.set(p);

  std::vector<int> chosen;
  PairSet covered(pairs.size());
  while (covered.count_uncovered_in(universe) > 0) {
    int best = -1;
    std::size_t best_gain = 0;
    for (int t = 0; t < matrix.num_tests(); ++t) {
      PairSet merged = covered;
      merged |= cov[static_cast<std::size_t>(t)];
      const std::size_t gain =
          covered.count_uncovered_in(universe) -
          merged.count_uncovered_in(universe);
      if (gain > best_gain) {
        best_gain = gain;
        best = t;
      }
    }
    MCMC_CHECK_MSG(best >= 0, "greedy cover stalled");
    chosen.push_back(best);
    covered |= cov[static_cast<std::size_t>(best)];
  }
  return chosen;
}

namespace {

/// Branch-and-bound exact cover: branch over candidates covering the first
/// uncovered pair.
class ExactCover {
 public:
  ExactCover(std::vector<PairSet> cov, PairSet universe)
      : cov_(std::move(cov)), universe_(std::move(universe)) {}

  /// Searches for a cover strictly smaller than `bound`; returns the best
  /// one found (by pool index), or an empty vector if `bound` is optimal.
  std::vector<int> run(std::size_t bound) {
    best_size_ = bound;
    best_.clear();
    PairSet covered(universe_.count());
    std::vector<int> chosen;
    dfs(covered, chosen);
    return best_;
  }

 private:
  void dfs(const PairSet& covered, std::vector<int>& chosen) {
    const long long pair = covered.first_uncovered_in(universe_);
    if (pair < 0) {
      best_size_ = chosen.size();
      best_ = chosen;
      return;
    }
    if (chosen.size() + 1 >= best_size_) return;  // cannot improve
    for (std::size_t t = 0; t < cov_.size(); ++t) {
      if (!cov_[t].test(static_cast<std::size_t>(pair))) continue;
      PairSet merged = covered;
      merged |= cov_[t];
      chosen.push_back(static_cast<int>(t));
      dfs(merged, chosen);
      chosen.pop_back();
    }
  }

  std::vector<PairSet> cov_;
  PairSet universe_;
  std::size_t best_size_ = 0;
  std::vector<int> best_;
};

}  // namespace

std::vector<int> exact_minimum_cover(const AdmissibilityMatrix& matrix,
                                     int max_pool) {
  const auto pairs = distinguishable_pairs(matrix);
  auto cov = coverage_sets(matrix, pairs);
  PairSet universe(pairs.size());
  for (std::size_t p = 0; p < pairs.size(); ++p) universe.set(p);

  // Deduplicate tests with identical coverage signatures, keeping the
  // first representative of each.
  std::map<PairSet, int> signature_rep;
  std::vector<int> pool;
  std::vector<PairSet> pool_cov;
  for (int t = 0; t < matrix.num_tests(); ++t) {
    auto& sig = cov[static_cast<std::size_t>(t)];
    if (sig.count() == 0) continue;
    if (signature_rep.emplace(sig, t).second) {
      pool.push_back(t);
      pool_cov.push_back(sig);
    }
  }
  // Rank by coverage so the branch explores dense tests first.
  std::vector<std::size_t> order(pool.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pool_cov[a].count() > pool_cov[b].count();
  });
  if (static_cast<int>(order.size()) > max_pool) {
    order.resize(static_cast<std::size_t>(max_pool));
  }
  std::vector<int> ranked_pool;
  std::vector<PairSet> ranked_cov;
  for (const auto i : order) {
    ranked_pool.push_back(pool[i]);
    ranked_cov.push_back(pool_cov[i]);
  }

  // The greedy solution bounds the search; the exact search either finds
  // something strictly smaller within the pool or confirms the greedy size.
  const auto greedy = greedy_cover(matrix);
  ExactCover exact(ranked_cov, universe);
  const auto improved = exact.run(greedy.size());
  if (improved.empty()) return greedy;

  std::vector<int> result;
  result.reserve(improved.size());
  for (const int i : improved) {
    result.push_back(ranked_pool[static_cast<std::size_t>(i)]);
  }
  MCMC_CHECK(covers_all(matrix, result, pairs));
  return result;
}

}  // namespace mcmc::explore
