// Distinguishing-set computation (the "nine litmus tests" result).
//
// Section 4.2: a set of nine tests (Figure 3's L1..L9) suffices to
// contrast any two non-equivalent models in the 90-model space.  Here the
// question is phrased as set cover: the universe is every non-equivalent
// model pair, and a test covers a pair when the two models give different
// verdicts.  We provide:
//
//   * sufficiency checking for a candidate set (do its tests cover every
//     pair the full suite distinguishes?),
//   * a greedy cover over an arbitrary candidate pool,
//   * an exact minimum cover by branch and bound (feasible at this size).
#pragma once

#include <vector>

#include "explore/matrix.h"

namespace mcmc::explore {

/// Model pairs (indices into the matrix) distinguished by the full suite.
[[nodiscard]] std::vector<std::pair<int, int>> distinguishable_pairs(
    const AdmissibilityMatrix& matrix);

/// True if the tests in `candidate` (matrix column indices) distinguish
/// every pair in `pairs`.
[[nodiscard]] bool covers_all(const AdmissibilityMatrix& matrix,
                              const std::vector<int>& candidate,
                              const std::vector<std::pair<int, int>>& pairs);

/// Greedy set cover over all matrix tests; returns column indices.
[[nodiscard]] std::vector<int> greedy_cover(const AdmissibilityMatrix& matrix);

/// Exact minimum cover via branch and bound (uses the greedy result as the
/// initial upper bound).  `max_pool` caps the candidate tests considered
/// (tests are pre-ranked by coverage).
[[nodiscard]] std::vector<int> exact_minimum_cover(
    const AdmissibilityMatrix& matrix, int max_pool = 64);

}  // namespace mcmc::explore
