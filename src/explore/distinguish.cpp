#include "explore/distinguish.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "core/formula.h"
#include "util/check.h"
#include "util/timer.h"

namespace mcmc::explore {

namespace {

std::size_t words_for(int num_models) {
  return (static_cast<std::size_t>(num_models) + 63) / 64;
}

/// Version word of the harness checkpoint-sink payload.  Version 2
/// appended the caller's extra-sink section (length-prefixed, empty
/// when no hook is set); version-1 payloads are rejected, degrading a
/// stale resume to a from-scratch run.
constexpr std::uint64_t kSinkVersion = 2;

}  // namespace

DistinguishMatrix::DistinguishMatrix(int num_models)
    : bits_(num_models, num_models) {}

bool DistinguishMatrix::distinguished(int a, int b) const {
  MCMC_REQUIRE(a >= 0 && a < num_models() && b >= 0 && b < num_models());
  return bits_.get(a, b);
}

long long DistinguishMatrix::distinguished_pairs() const {
  long long count = 0;
  for (int a = 0; a < num_models(); ++a) {
    for (int b = a + 1; b < num_models(); ++b) {
      if (bits_.get(a, b)) ++count;
    }
  }
  return count;
}

long long DistinguishMatrix::total_pairs() const {
  const long long n = num_models();
  return n * (n - 1) / 2;
}

void DistinguishMatrix::fold_column(const std::vector<std::uint64_t>& column) {
  const int n = num_models();
  MCMC_REQUIRE(column.size() == words_for(n));
  for (int a = 0; a < n; ++a) {
    const bool va = (column[static_cast<std::size_t>(a) / 64] >>
                     (static_cast<std::size_t>(a) % 64)) &
                    1ULL;
    for (int b = a + 1; b < n; ++b) {
      const bool vb = (column[static_cast<std::size_t>(b) / 64] >>
                       (static_cast<std::size_t>(b) % 64)) &
                      1ULL;
      if (va != vb) {
        bits_.set(a, b, true);
        bits_.set(b, a, true);
      }
    }
  }
}

bool DistinguishMatrix::subset_of(const DistinguishMatrix& other) const {
  MCMC_REQUIRE(num_models() == other.num_models());
  for (int a = 0; a < num_models(); ++a) {
    const std::uint64_t* mine = bits_.row(a);
    const std::uint64_t* theirs = other.bits_.row(a);
    for (std::size_t w = 0; w < bits_.words_per_row(); ++w) {
      if ((mine[w] & ~theirs[w]) != 0) return false;
    }
  }
  return true;
}

std::vector<std::pair<int, int>> DistinguishMatrix::pairs_beyond(
    const DistinguishMatrix& other) const {
  MCMC_REQUIRE(num_models() == other.num_models());
  std::vector<std::pair<int, int>> out;
  for (int a = 0; a < num_models(); ++a) {
    for (int b = a + 1; b < num_models(); ++b) {
      if (bits_.get(a, b) && !other.bits_.get(a, b)) out.emplace_back(a, b);
    }
  }
  return out;
}

namespace {

/// Folds every test column of a models x tests verdict matrix,
/// deduplicating identical columns across the whole run (only distinct
/// columns pay the quadratic pair sweep).
class ColumnFolder {
 public:
  ColumnFolder(DistinguishMatrix& matrix, int num_models,
               std::size_t& columns_counter)
      : matrix_(matrix),
        num_models_(num_models),
        columns_counter_(columns_counter) {}

  void fold(const engine::BitMatrix& verdicts) {
    MCMC_REQUIRE(verdicts.rows() == num_models_);
    std::vector<std::uint64_t> column(words_for(num_models_));
    for (int t = 0; t < verdicts.cols(); ++t) {
      std::fill(column.begin(), column.end(), 0);
      for (int m = 0; m < num_models_; ++m) {
        if (verdicts.get(m, t)) {
          column[static_cast<std::size_t>(m) / 64] |=
              1ULL << (static_cast<std::size_t>(m) % 64);
        }
      }
      if (seen_.insert(column).second) {
        matrix_.fold_column(column);
        ++columns_counter_;
      }
    }
  }

  /// Appends [count, column words...] — std::set iterates in column
  /// order, so equal fold states export identical words (the
  /// checkpoint file stays bit-for-bit deterministic).
  void export_state(std::vector<std::uint64_t>& out) const {
    out.push_back(seen_.size());
    for (const auto& column : seen_)
      out.insert(out.end(), column.begin(), column.end());
  }

  /// Re-adopts an export_state image starting at data[pos].  The
  /// matrix is a pure function of the folded-column set, so refolding
  /// the columns reconstructs it exactly; no separate matrix
  /// serialization exists to drift out of sync.
  [[nodiscard]] bool restore_state(const std::vector<std::uint64_t>& data,
                                   std::size_t& pos) {
    const std::size_t w = words_for(num_models_);
    if (w == 0 || pos >= data.size()) return false;
    const std::uint64_t count = data[pos];
    if (count > (data.size() - pos - 1) / w) return false;
    ++pos;
    std::vector<std::uint64_t> column(w);
    for (std::uint64_t c = 0; c < count; ++c) {
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos),
                data.begin() + static_cast<std::ptrdiff_t>(pos + w),
                column.begin());
      pos += w;
      if (seen_.insert(column).second) {
        matrix_.fold_column(column);
        ++columns_counter_;
      }
    }
    return true;
  }

 private:
  DistinguishMatrix& matrix_;
  int num_models_;
  std::size_t& columns_counter_;
  std::set<std::vector<std::uint64_t>> seen_;
};

}  // namespace

std::vector<core::MemoryModel> extreme_models() {
  return {core::MemoryModel("weakest-class", core::f_false()),
          core::MemoryModel("strongest-class", core::f_true())};
}

store::StoreMeta harness_store_meta(
    const std::vector<core::MemoryModel>& models) {
  std::vector<core::MemoryModel> all = extreme_models();
  all.insert(all.end(), models.begin(), models.end());
  return store::StoreMeta::from_models(all);
}

DistinguishMatrix distinguishability(
    engine::VerdictEngine& eng, const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests) {
  const int n = static_cast<int>(models.size());
  DistinguishMatrix matrix(n);
  std::size_t columns = 0;
  ColumnFolder folder(matrix, n, columns);
  folder.fold(eng.run_matrix(models, tests));
  return matrix;
}

DistinguishMatrix distinguishability_streamed(
    engine::VerdictEngine& eng, const std::vector<core::MemoryModel>& models,
    engine::TestSource& source, const TheoremHarnessOptions& options,
    TheoremHarnessReport* report, const ChunkProgress& progress) {
  const int n = static_cast<int>(models.size());
  DistinguishMatrix matrix(n);
  TheoremHarnessReport local;
  TheoremHarnessReport& rep = report != nullptr ? *report : local;
  rep = TheoremHarnessReport{};
  ColumnFolder folder(matrix, n, rep.verdict_columns);

  // Checkpoint sink: the harness state a resumed run re-adopts is the
  // distinct-column fold (the matrix is a pure function of it) plus the
  // prefilter counters, plus whatever extra words the caller's
  // extra-sink hook contributes.  Layout: [version, n, candidate_tests,
  // filtered_tests, sweep_seconds bits, count, columns..., extra_len,
  // extra...].  The hooks are installed over the caller's persistence
  // copy — sink state is the harness's, not the caller's, to carry.
  store::StreamPersistence persist;
  const bool persisted =
      options.persistence != nullptr && options.verdict_store != nullptr;
  if (persisted) {
    persist = *options.persistence;
    persist.save_sink = [&rep, &folder, &options,
                         n](std::vector<std::uint64_t>& out) {
      out.clear();
      out.push_back(kSinkVersion);
      out.push_back(static_cast<std::uint64_t>(n));
      out.push_back(rep.candidate_tests);
      out.push_back(rep.filtered_tests);
      std::uint64_t seconds_bits = 0;
      std::memcpy(&seconds_bits, &rep.sweep_seconds, sizeof seconds_bits);
      out.push_back(seconds_bits);
      folder.export_state(out);
      std::vector<std::uint64_t> extra;
      if (options.save_extra_sink) options.save_extra_sink(extra);
      out.push_back(extra.size());
      out.insert(out.end(), extra.begin(), extra.end());
    };
    persist.restore_sink =
        [&rep, &folder, &options, n](const std::vector<std::uint64_t>& data) {
          // Validate the full payload shape before mutating anything,
          // so a rejected sink leaves the harness in its fresh state.
          const std::size_t w = words_for(n);
          if (data.size() < 7 || data[0] != kSinkVersion ||
              data[1] != static_cast<std::uint64_t>(n) || w == 0) {
            return false;
          }
          const std::uint64_t count = data[5];
          if (count > (data.size() - 7) / w) return false;
          const std::size_t extra_pos = 6 + static_cast<std::size_t>(count) * w;
          if (extra_pos >= data.size()) return false;
          const std::uint64_t extra_len = data[extra_pos];
          if (data.size() - extra_pos - 1 != extra_len) return false;
          // The caller's hook is the only remaining failable step; run
          // it before the folder mutates so a rejection leaves the
          // whole harness fresh.  Extra words without a hook (or the
          // reverse, below via the hook's own validation) mean the
          // checkpoint came from a differently-wired run: reject.
          const std::vector<std::uint64_t> extra(
              data.begin() + static_cast<std::ptrdiff_t>(extra_pos) + 1,
              data.end());
          if (options.restore_extra_sink) {
            if (!options.restore_extra_sink(extra)) return false;
          } else if (extra_len != 0) {
            return false;
          }
          std::size_t pos = 5;
          if (!folder.restore_state(data, pos)) return false;
          rep.candidate_tests = static_cast<std::size_t>(data[2]);
          rep.filtered_tests = static_cast<std::size_t>(data[3]);
          std::uint64_t seconds_bits = data[4];
          std::memcpy(&rep.sweep_seconds, &seconds_bits,
                      sizeof seconds_bits);
          return true;
        };
  }

  if (!options.filter_extremes) {
    engine::StreamOptions stream_options = options.stream;
    stream_options.verdict_store = options.verdict_store;
    if (persisted) stream_options.persistence = &persist;
    rep.stream = eng.run_stream(
        models, source,
        [&](const std::vector<litmus::LitmusTest>& novel,
            const engine::BitMatrix& verdicts,
            const engine::StreamChunkStats& cs) {
          if (!novel.empty()) folder.fold(verdicts);
          if (progress) progress(cs);
        },
        stream_options);
    rep.candidate_tests = rep.stream.novel_tests;
    return matrix;
  }

  // Extremes prefilter: the stream itself is evaluated only against the
  // class extremes; the full model sweep runs on the (few) tests that
  // are allowed by F = false yet forbidden by F = true — any other test
  // receives one uniform verdict across the whole class (monotonicity)
  // and cannot distinguish a pair.
  const std::vector<core::MemoryModel> extremes = extreme_models();

  // The stream only sees the (custom-free) extremes, but its survivors
  // are swept with the caller's models: if any of those carries custom
  // predicates, canonical dedup of the stream would be unsound for the
  // sweep, so force structural keys.
  engine::StreamOptions stream_options = options.stream;
  for (const auto& model : models) {
    stream_options.force_structural_keys =
        stream_options.force_structural_keys || model.formula().has_custom();
  }
  stream_options.verdict_store = options.verdict_store;
  if (persisted) stream_options.persistence = &persist;

  // Candidates are canonically unique already (the stream deduped
  // them), and the sweep's verdicts are folded immediately, so the
  // sweep engine runs cache-less: nothing would ever hit, and a
  // million-test stream must not pin |models| x |tests| entries.
  engine::EngineOptions sweep_options = eng.options();
  sweep_options.cache_enabled = false;
  engine::VerdictEngine sweep(sweep_options);
  // The sweep still groups by canonical fingerprint when a store is
  // attached: its verdicts are what a warm rerun serves from disk.
  sweep.set_store(options.verdict_store);

  std::vector<litmus::LitmusTest> candidates;
  rep.stream = eng.run_stream(
      extremes, source,
      [&](const std::vector<litmus::LitmusTest>& novel,
          const engine::BitMatrix& verdicts,
          const engine::StreamChunkStats& cs) {
        candidates.clear();
        for (std::size_t i = 0; i < novel.size(); ++i) {
          const bool weak_allows = verdicts.get(0, static_cast<int>(i));
          const bool strong_allows = verdicts.get(1, static_cast<int>(i));
          if (weak_allows && !strong_allows) {
            candidates.push_back(novel[i]);
          } else {
            ++rep.filtered_tests;
          }
        }
        rep.candidate_tests += candidates.size();
        if (!candidates.empty()) {
          util::Timer sweep_timer;
          folder.fold(sweep.run_matrix(models, candidates));
          rep.sweep_seconds += sweep_timer.seconds();
        }
        if (progress) progress(cs);
      },
      stream_options);
  rep.sweep = sweep.total_stats();
  return matrix;
}

}  // namespace mcmc::explore
