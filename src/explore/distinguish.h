// Pairwise model distinguishability over arbitrary corpora — the
// empirical form of Theorem 1 / Corollary 1.
//
// The paper's central claim is an equivalence of distinguishing power:
// any two models of the class that disagree on *some* test within the
// Theorem-1 bounds disagree on a test of the (tiny) Corollary-1 suite.
// This header makes that claim executable: a DistinguishMatrix records,
// for every model pair, whether ANY test of a corpus separates the
// pair, and two matrices built from different corpora — the ~5-million
// test naive space streamed chunk by chunk, and the 64/124-test
// suite — can be compared bit for bit.
//
// Streamed construction never materializes the corpus: chunks flow
// through engine::VerdictEngine::run_stream — the parallel pipeline
// that overlaps chunk production with consumption, fans canonical-key
// computation across the engine's thread pool, and dedups by 128-bit
// key hash in a sharded set (the report's stream.stages carries the
// produce/keys/dedup/verdict wall breakdown) — each novel test's
// 90-bit verdict column is folded into the pair matrix in chunk order
// (bit-for-bit deterministic under any thread count), and only
// distinct verdict columns pay the quadratic pair sweep.  For
// monotone model classes an extremes prefilter
// evaluates each novel test against the weakest (F = false) and
// strongest (F = true) models of the class first and runs the full
// model sweep only on tests that are allowed by the former and
// forbidden by the latter — every other test receives the same verdict
// from every model in between and cannot distinguish anything.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/model.h"
#include "engine/bit_matrix.h"
#include "engine/test_stream.h"
#include "engine/verdict_engine.h"
#include "litmus/test.h"
#include "store/verdict_store.h"

namespace mcmc::explore {

/// Symmetric model-pair matrix: bit (a, b) is set iff some corpus test
/// received different verdicts from models a and b.
class DistinguishMatrix {
 public:
  DistinguishMatrix() = default;
  explicit DistinguishMatrix(int num_models);

  [[nodiscard]] int num_models() const { return bits_.rows(); }

  [[nodiscard]] bool distinguished(int a, int b) const;

  /// Distinguished pairs over a < b.
  [[nodiscard]] long long distinguished_pairs() const;
  /// All pairs over a < b (n choose 2).
  [[nodiscard]] long long total_pairs() const;

  /// Folds one verdict column (bit m = model m's verdict on one test):
  /// every pair the column splits becomes distinguished.
  void fold_column(const std::vector<std::uint64_t>& column);

  /// True iff every pair distinguished here is distinguished in `other`.
  [[nodiscard]] bool subset_of(const DistinguishMatrix& other) const;

  /// Pairs distinguished here but not in `other` (empty iff subset_of).
  [[nodiscard]] std::vector<std::pair<int, int>> pairs_beyond(
      const DistinguishMatrix& other) const;

  friend bool operator==(const DistinguishMatrix& a,
                         const DistinguishMatrix& b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(const DistinguishMatrix& a,
                         const DistinguishMatrix& b) {
    return !(a == b);
  }

 private:
  engine::BitMatrix bits_;
};

/// Distinguishability of `models` over an in-memory corpus: one batched
/// engine run, then a column fold.
[[nodiscard]] DistinguishMatrix distinguishability(
    engine::VerdictEngine& eng, const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests);

/// The monotone-class extremes the prefilter streams against: the
/// weakest model (F = false, everything SC-or-weaker admissible) and
/// the strongest (F = true, SC).  Exposed so callers can size a
/// verdict store that covers both harness phases.
[[nodiscard]] std::vector<core::MemoryModel> extreme_models();

/// Store metadata covering a full harness run over `models`: one column
/// per extreme (the prefilter stream) plus one per swept model.  A
/// store opened with this meta is shared by both phases, so a warm
/// rerun serves the extremes verdicts AND the candidate sweep from
/// disk.  Models with custom predicates contribute no column (see
/// store::model_store_key) and simply never hit.
[[nodiscard]] store::StoreMeta harness_store_meta(
    const std::vector<core::MemoryModel>& models);

/// Options of the streamed Theorem-1 harness.
struct TheoremHarnessOptions {
  /// Monotone-class extremes prefilter (see the header comment).  The
  /// paper's class is monotone: a pointwise-stronger must-not-reorder
  /// function only adds forced edges, so it only removes admissible
  /// executions; allowed(F=true) <= allowed(F) <= allowed(F=false) for
  /// every F, custom predicates included.  Disable for a direct full
  /// sweep (the differential tests do).
  bool filter_extremes = true;
  /// Stream behavior; dedup on / persist off are the right defaults for
  /// bounded-memory corpus runs.
  engine::StreamOptions stream;
  /// Persistent verdict store shared by the prefilter stream and the
  /// candidate sweep (caller-owned, may be null).  Open it with
  /// harness_store_meta(models) so both phases find their columns.
  store::VerdictStore* verdict_store = nullptr;
  /// Chunk-granular checkpoint/resume of the harness (requires
  /// `verdict_store`; null = off).  The caller sets path / fs /
  /// cadence / resume / kill hooks; the harness installs its own
  /// save_sink and restore_sink (overwriting any caller-set hooks) to
  /// carry the fold state — distinct verdict columns plus the prefilter
  /// counters — alongside the stream cursor, so a killed run resumes
  /// bit-for-bit without re-sweeping sealed chunks.
  const store::StreamPersistence* persistence = nullptr;
  /// Caller-owned extension of the checkpoint sink: the harness
  /// appends `save_extra_sink`'s words after its own payload and hands
  /// them back through `restore_extra_sink` on resume (whose false
  /// return rejects the checkpoint, degrading to a from-scratch run).
  /// This is how side accounting that must survive a kill — e.g. the
  /// bench's program-class tally — rides the harness checkpoint
  /// without the harness knowing its shape.  Both or neither.
  std::function<void(std::vector<std::uint64_t>&)> save_extra_sink;
  std::function<bool(const std::vector<std::uint64_t>&)> restore_extra_sink;
};

/// Accounting of a streamed harness run.
struct TheoremHarnessReport {
  engine::StreamStats stream;       ///< chunks, dedup, per-stage breakdown
  std::size_t candidate_tests = 0;  ///< survived the extremes prefilter
  std::size_t filtered_tests = 0;   ///< pruned by it (cannot distinguish)
  std::size_t verdict_columns = 0;  ///< distinct verdict columns folded
  engine::EngineStats sweep;        ///< the full-model sweep batches
  double sweep_seconds = 0.0;       ///< wall spent in the candidate sweep
};

/// Per-chunk progress callback (chunk stats come from the stream run).
using ChunkProgress = std::function<void(const engine::StreamChunkStats&)>;

/// Streamed distinguishability of `models` over `source`.  Peak memory
/// is O(chunk + unique canonical keys + distinct verdict columns)
/// regardless of corpus size.
[[nodiscard]] DistinguishMatrix distinguishability_streamed(
    engine::VerdictEngine& eng, const std::vector<core::MemoryModel>& models,
    engine::TestSource& source, const TheoremHarnessOptions& options = {},
    TheoremHarnessReport* report = nullptr,
    const ChunkProgress& progress = nullptr);

}  // namespace mcmc::explore
