#include "explore/fingerprint.h"

#include "engine/verdict_engine.h"
#include "enumeration/suite.h"
#include "litmus/catalog.h"

namespace mcmc::explore {

Fingerprint fingerprint_model(const core::MemoryModel& model) {
  Fingerprint result;
  engine::VerdictEngine eng;

  // All nine probes in one batch: the later digit derivations branch on
  // earlier verdicts, but every branch only ever consults L1..L9, so
  // evaluating the full row up front keeps the pipeline batched (and the
  // canonical cache collapses probes that alias under symmetry).
  const auto probes = litmus::figure3_tests();
  const auto verdicts = eng.run_matrix({model}, probes);
  const auto allowed = [&](int probe_index) {
    return verdicts.get(0, probe_index - 1);  // probes are L1..L9 in order
  };

  // Digit derivations (see verdict_prediction_test.cpp for the closed
  // forms these invert).
  const int ww = allowed(1) ? 1 : 4;

  int rr = 0;
  const bool l3_forbidden = !allowed(3);
  const bool l4_forbidden = !allowed(4);
  const bool l2_forbidden = !allowed(2);
  if (l3_forbidden) {
    rr = 4;
  } else if (l4_forbidden) {
    rr = l2_forbidden ? 3 : 2;
  } else {
    rr = l2_forbidden ? 1 : 0;
  }

  int rw = 1;
  if (!allowed(5)) {
    rw = 4;
  } else if (!allowed(6)) {
    rw = 3;
  }

  // Write-read: L7 separates 4 from {0,1}; L8/L9 separate 0 from 1 where
  // a detection route exists.
  std::vector<int> wr_candidates;
  if (!allowed(7)) {
    wr_candidates.push_back(4);
  } else {
    const bool l8_route = rr >= 2;
    const bool l9_route = ww == 1 && rw >= 3;
    if (l8_route) {
      wr_candidates.push_back(allowed(8) ? 0 : 1);
    } else if (l9_route) {
      wr_candidates.push_back(allowed(9) ? 0 : 1);
    } else {
      wr_candidates.push_back(0);
      wr_candidates.push_back(1);
    }
  }

  for (const int wr : wr_candidates) {
    result.candidates.push_back(ModelChoices{ww, wr, rw, rr});
  }

  // Verify the candidates against the full suite: one batched matrix
  // over {model, candidate models} x suite, then word-wise row equality.
  result.verified = !result.candidates.empty();
  if (result.verified) {
    std::vector<core::MemoryModel> row_models{model};
    for (const auto& candidate : result.candidates) {
      row_models.push_back(candidate.to_model());
    }
    const auto suite = enumeration::corollary1_suite(true);
    const auto matrix = eng.run_matrix(row_models, suite);
    for (int c = 1; c < matrix.rows(); ++c) {
      if (!matrix.rows_equal(0, c)) {
        result.verified = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace mcmc::explore
