#include "explore/fingerprint.h"

#include "core/analysis.h"
#include "core/checker.h"
#include "enumeration/suite.h"
#include "litmus/catalog.h"

namespace mcmc::explore {

namespace {

bool allowed(const core::MemoryModel& model, const litmus::LitmusTest& test) {
  const core::Analysis an(test.program());
  return core::is_allowed(an, model, test.outcome());
}

}  // namespace

Fingerprint fingerprint_model(const core::MemoryModel& model) {
  Fingerprint result;

  // Digit derivations (see verdict_prediction_test.cpp for the closed
  // forms these invert).
  const int ww = allowed(model, litmus::l1()) ? 1 : 4;

  int rr = 0;
  const bool l3_forbidden = !allowed(model, litmus::l3());
  const bool l4_forbidden = !allowed(model, litmus::l4());
  const bool l2_forbidden = !allowed(model, litmus::l2());
  if (l3_forbidden) {
    rr = 4;
  } else if (l4_forbidden) {
    rr = l2_forbidden ? 3 : 2;
  } else {
    rr = l2_forbidden ? 1 : 0;
  }

  int rw = 1;
  if (!allowed(model, litmus::l5())) {
    rw = 4;
  } else if (!allowed(model, litmus::l6())) {
    rw = 3;
  }

  // Write-read: L7 separates 4 from {0,1}; L8/L9 separate 0 from 1 where
  // a detection route exists.
  std::vector<int> wr_candidates;
  if (!allowed(model, litmus::l7())) {
    wr_candidates.push_back(4);
  } else {
    const bool l8_route = rr >= 2;
    const bool l9_route = ww == 1 && rw >= 3;
    if (l8_route) {
      wr_candidates.push_back(allowed(model, litmus::l8()) ? 0 : 1);
    } else if (l9_route) {
      wr_candidates.push_back(allowed(model, litmus::l9()) ? 0 : 1);
    } else {
      wr_candidates.push_back(0);
      wr_candidates.push_back(1);
    }
  }

  for (const int wr : wr_candidates) {
    result.candidates.push_back(ModelChoices{ww, wr, rw, rr});
  }

  // Verify each candidate against the full suite.
  result.verified = !result.candidates.empty();
  const auto suite = enumeration::corollary1_suite(true);
  for (const auto& candidate : result.candidates) {
    const auto candidate_model = candidate.to_model();
    for (const auto& t : suite) {
      const core::Analysis an(t.program());
      if (core::is_allowed(an, model, t.outcome()) !=
          core::is_allowed(an, candidate_model, t.outcome())) {
        result.verified = false;
        break;
      }
    }
    if (!result.verified) break;
  }
  return result;
}

}  // namespace mcmc::explore
