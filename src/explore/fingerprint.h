// Model fingerprinting: locate an arbitrary (black-box) memory model in
// the 90-model space from litmus-test verdicts alone.
//
// This inverts Section 4.2's analysis: each digit of M[ww][wr][rw][rr]
// is determined by the verdicts of specific Figure-3 tests,
//
//   ww: L1            rr: L2, L3, L4       rw: L5, L6
//   wr: L7, then L8 / L9 to separate 0 from 1
//
// with the documented caveat that wr = 0 vs wr = 1 is *undetectable*
// when both the L8 route (rr >= 2) and the L9 route (ww = 1 and
// rw >= 3) are closed -- precisely the paper's eight equivalent pairs.
// The fingerprint therefore returns one or two candidates.
#pragma once

#include <vector>

#include "core/model.h"
#include "explore/space.h"

namespace mcmc::explore {

/// Result of fingerprinting: the candidate coordinates (one entry, or two
/// for models in the undetectable write-read-same-address region), plus
/// whether the model matched the space at all.
struct Fingerprint {
  /// Candidates within the explored space, empty if the model's behavior
  /// on the probe tests matches no choice model (cannot happen for
  /// models built from the space's digit semantics, but can for
  /// arbitrary formulas).
  std::vector<ModelChoices> candidates;

  /// True when the model's suite behavior exactly matches each candidate
  /// (verified over the full Corollary-1 suite, not just the probes).
  bool verified = false;
};

/// Probes `model` with the Figure-3 tests, derives candidate digits, and
/// verifies the candidates against the full template suite.
[[nodiscard]] Fingerprint fingerprint_model(const core::MemoryModel& model);

}  // namespace mcmc::explore
