#include "explore/lattice.h"

#include "util/check.h"
#include "util/dot.h"

namespace mcmc::explore {

Lattice build_lattice(const AdmissibilityMatrix& matrix,
                      const std::vector<std::string>& model_names,
                      const std::vector<std::string>& test_names) {
  const int n = matrix.num_models();
  MCMC_REQUIRE(static_cast<int>(model_names.size()) == n);

  Lattice lattice;
  // Group into equivalence classes.
  std::vector<int> node_of(static_cast<std::size_t>(n), -1);
  for (int m = 0; m < n; ++m) {
    if (node_of[static_cast<std::size_t>(m)] >= 0) continue;
    const int id = static_cast<int>(lattice.nodes.size());
    LatticeNode node;
    node.members.push_back(m);
    node.label = model_names[static_cast<std::size_t>(m)];
    node_of[static_cast<std::size_t>(m)] = id;
    for (int other = m + 1; other < n; ++other) {
      if (node_of[static_cast<std::size_t>(other)] >= 0) continue;
      if (matrix.compare(m, other) == Relation::Equivalent) {
        node.members.push_back(other);
        node.label += "=" + model_names[static_cast<std::size_t>(other)];
        node_of[static_cast<std::size_t>(other)] = id;
      }
    }
    lattice.nodes.push_back(std::move(node));
  }

  // Strict order between class representatives.
  const int k = static_cast<int>(lattice.nodes.size());
  std::vector<std::vector<bool>> weaker(
      static_cast<std::size_t>(k),
      std::vector<bool>(static_cast<std::size_t>(k), false));
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      if (a == b) continue;
      const Relation r = matrix.compare(
          lattice.nodes[static_cast<std::size_t>(a)].members[0],
          lattice.nodes[static_cast<std::size_t>(b)].members[0]);
      weaker[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          r == Relation::FirstWeaker;
    }
  }

  // Transitive reduction: keep a->b only if no c with a<c<b.
  for (int a = 0; a < k; ++a) {
    for (int b = 0; b < k; ++b) {
      if (!weaker[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) {
        continue;
      }
      bool covered = false;
      for (int c = 0; c < k && !covered; ++c) {
        if (c == a || c == b) continue;
        covered =
            weaker[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)] &&
            weaker[static_cast<std::size_t>(c)][static_cast<std::size_t>(b)];
      }
      if (covered) continue;
      LatticeEdge edge;
      edge.weaker = a;
      edge.stronger = b;
      const auto witnesses = matrix.allowed_by_first_only(
          lattice.nodes[static_cast<std::size_t>(a)].members[0],
          lattice.nodes[static_cast<std::size_t>(b)].members[0]);
      MCMC_CHECK_MSG(!witnesses.empty(), "strictly weaker without witness");
      edge.witness_test = witnesses.front();
      edge.witness_name =
          test_names[static_cast<std::size_t>(edge.witness_test)];
      lattice.edges.push_back(edge);
    }
  }
  return lattice;
}

std::string Lattice::to_dot() const {
  util::DotGraph g("model_lattice");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    g.add_node("n" + std::to_string(i), nodes[i].label);
  }
  for (const auto& e : edges) {
    g.add_edge("n" + std::to_string(e.weaker),
               "n" + std::to_string(e.stronger), e.witness_name);
  }
  return g.to_string();
}

}  // namespace mcmc::explore
