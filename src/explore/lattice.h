// The weaker-to-stronger model lattice (Figure 4).
//
// Models are grouped into equivalence classes by suite verdicts; classes
// are ordered by strict inclusion of allowed behaviors; edges are the
// transitive reduction (Hasse diagram), each labeled with a distinguishing
// litmus test that the weaker class allows and the stronger forbids.
#pragma once

#include <string>
#include <vector>

#include "explore/matrix.h"
#include "explore/space.h"

namespace mcmc::explore {

/// One node: an equivalence class of models.
struct LatticeNode {
  std::vector<int> members;  ///< model indices, first is the representative
  std::string label;         ///< joined member names, e.g. "M1010=M1110"
};

/// One Hasse edge from a weaker class to a stronger class.
struct LatticeEdge {
  int weaker = 0;
  int stronger = 0;
  int witness_test = -1;      ///< allowed by weaker, forbidden by stronger
  std::string witness_name;   ///< the witness test's display name
};

/// The full diagram.
struct Lattice {
  std::vector<LatticeNode> nodes;
  std::vector<LatticeEdge> edges;

  /// Graphviz rendering (rankdir=BT: weaker at the bottom, like Figure 4).
  [[nodiscard]] std::string to_dot() const;
};

/// Builds the diagram for `models` using matrix verdicts.  `test_names`
/// supplies edge-label names (indexed like the matrix's tests).
[[nodiscard]] Lattice build_lattice(const AdmissibilityMatrix& matrix,
                                    const std::vector<std::string>& model_names,
                                    const std::vector<std::string>& test_names);

}  // namespace mcmc::explore
