#include "explore/matrix.h"

#include "util/check.h"

namespace mcmc::explore {

std::string to_string(Relation r) {
  switch (r) {
    case Relation::Equivalent:
      return "equivalent";
    case Relation::FirstWeaker:
      return "weaker";
    case Relation::FirstStronger:
      return "stronger";
    case Relation::Incomparable:
      return "incomparable";
  }
  MCMC_UNREACHABLE("bad relation");
}

namespace {

engine::Backend to_backend(core::Engine engine) {
  return engine == core::Engine::Sat ? engine::Backend::Sat
                                     : engine::Backend::Explicit;
}

}  // namespace

AdmissibilityMatrix::AdmissibilityMatrix(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests, core::Engine engine) {
  engine::EngineOptions options;
  options.backend = to_backend(engine);
  engine::VerdictEngine eng(options);
  bits_ = eng.run_matrix(models, tests);
  stats_ = eng.last_stats();
}

AdmissibilityMatrix::AdmissibilityMatrix(
    engine::VerdictEngine& eng, const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests) {
  bits_ = eng.run_matrix(models, tests);
  stats_ = eng.last_stats();
}

Relation AdmissibilityMatrix::compare(int a, int b) const {
  MCMC_REQUIRE(a >= 0 && a < num_models());
  MCMC_REQUIRE(b >= 0 && b < num_models());
  const std::uint64_t* ra = bits_.row(a);
  const std::uint64_t* rb = bits_.row(b);
  bool first_extra = false;
  bool second_extra = false;
  for (std::size_t w = 0; w < bits_.words_per_row(); ++w) {
    first_extra |= (ra[w] & ~rb[w]) != 0;
    second_extra |= (rb[w] & ~ra[w]) != 0;
  }
  if (first_extra && second_extra) return Relation::Incomparable;
  if (first_extra) return Relation::FirstWeaker;
  if (second_extra) return Relation::FirstStronger;
  return Relation::Equivalent;
}

std::vector<int> AdmissibilityMatrix::distinguishing_tests(int a,
                                                           int b) const {
  MCMC_REQUIRE(a >= 0 && a < num_models());
  MCMC_REQUIRE(b >= 0 && b < num_models());
  const std::uint64_t* ra = bits_.row(a);
  const std::uint64_t* rb = bits_.row(b);
  std::vector<int> out;
  for (std::size_t w = 0; w < bits_.words_per_row(); ++w) {
    std::uint64_t diff = ra[w] ^ rb[w];
    while (diff != 0) {
      out.push_back(static_cast<int>(w * 64) + __builtin_ctzll(diff));
      diff &= diff - 1;
    }
  }
  return out;
}

std::vector<int> AdmissibilityMatrix::allowed_by_first_only(int a,
                                                            int b) const {
  MCMC_REQUIRE(a >= 0 && a < num_models());
  MCMC_REQUIRE(b >= 0 && b < num_models());
  const std::uint64_t* ra = bits_.row(a);
  const std::uint64_t* rb = bits_.row(b);
  std::vector<int> out;
  for (std::size_t w = 0; w < bits_.words_per_row(); ++w) {
    std::uint64_t extra = ra[w] & ~rb[w];
    while (extra != 0) {
      out.push_back(static_cast<int>(w * 64) + __builtin_ctzll(extra));
      extra &= extra - 1;
    }
  }
  return out;
}

}  // namespace mcmc::explore
