#include "explore/matrix.h"

#include "core/analysis.h"
#include "util/check.h"

namespace mcmc::explore {

std::string to_string(Relation r) {
  switch (r) {
    case Relation::Equivalent:
      return "equivalent";
    case Relation::FirstWeaker:
      return "weaker";
    case Relation::FirstStronger:
      return "stronger";
    case Relation::Incomparable:
      return "incomparable";
  }
  MCMC_UNREACHABLE("bad relation");
}

AdmissibilityMatrix::AdmissibilityMatrix(
    const std::vector<core::MemoryModel>& models,
    const std::vector<litmus::LitmusTest>& tests, core::Engine engine)
    : num_tests_(static_cast<int>(tests.size())) {
  // Analyze each test once; reuse across all models.
  std::vector<core::Analysis> analyses;
  analyses.reserve(tests.size());
  for (const auto& t : tests) analyses.emplace_back(t.program());

  rows_.reserve(models.size());
  for (const auto& model : models) {
    std::vector<bool> row;
    row.reserve(tests.size());
    for (std::size_t t = 0; t < tests.size(); ++t) {
      row.push_back(
          core::is_allowed(analyses[t], model, tests[t].outcome(), engine));
    }
    rows_.push_back(std::move(row));
  }
}

Relation AdmissibilityMatrix::compare(int a, int b) const {
  bool first_extra = false;
  bool second_extra = false;
  for (int t = 0; t < num_tests_; ++t) {
    const bool va = allowed(a, t);
    const bool vb = allowed(b, t);
    if (va && !vb) first_extra = true;
    if (vb && !va) second_extra = true;
  }
  if (first_extra && second_extra) return Relation::Incomparable;
  if (first_extra) return Relation::FirstWeaker;
  if (second_extra) return Relation::FirstStronger;
  return Relation::Equivalent;
}

std::vector<int> AdmissibilityMatrix::distinguishing_tests(int a,
                                                           int b) const {
  std::vector<int> out;
  for (int t = 0; t < num_tests_; ++t) {
    if (allowed(a, t) != allowed(b, t)) out.push_back(t);
  }
  return out;
}

std::vector<int> AdmissibilityMatrix::allowed_by_first_only(int a,
                                                            int b) const {
  std::vector<int> out;
  for (int t = 0; t < num_tests_; ++t) {
    if (allowed(a, t) && !allowed(b, t)) out.push_back(t);
  }
  return out;
}

}  // namespace mcmc::explore
