// Admissibility matrix: model x test -> allowed?
//
// Comparing all 90 models pairwise on the Corollary-1 suite only needs
// each (model, test) verdict once; precomputing the matrix turns the
// quadratic pairwise comparison of Section 4.2 into cheap row operations
// (the paper reports 20 minutes for the pairwise sweep; the matrix method
// finishes in seconds).
#pragma once

#include <string>
#include <vector>

#include "core/checker.h"
#include "core/model.h"
#include "litmus/test.h"

namespace mcmc::explore {

/// How two models relate on a test suite.
enum class Relation {
  Equivalent,     ///< same verdict on every test
  FirstWeaker,    ///< first allows a strict superset
  FirstStronger,  ///< first allows a strict subset
  Incomparable,   ///< each allows a test the other forbids
};

[[nodiscard]] std::string to_string(Relation r);

/// Precomputed verdicts for a set of models over a test suite.
class AdmissibilityMatrix {
 public:
  /// Runs every (model, test) check.  Analyses are shared across models.
  AdmissibilityMatrix(const std::vector<core::MemoryModel>& models,
                      const std::vector<litmus::LitmusTest>& tests,
                      core::Engine engine = core::Engine::Explicit);

  [[nodiscard]] int num_models() const {
    return static_cast<int>(rows_.size());
  }
  [[nodiscard]] int num_tests() const { return num_tests_; }

  /// Verdict of model `m` on test `t`.
  [[nodiscard]] bool allowed(int m, int t) const {
    return rows_[static_cast<std::size_t>(m)][static_cast<std::size_t>(t)];
  }

  /// Relation of models `a` and `b` induced by the suite.
  [[nodiscard]] Relation compare(int a, int b) const;

  /// Indices of tests with different verdicts for `a` and `b`.
  [[nodiscard]] std::vector<int> distinguishing_tests(int a, int b) const;

  /// A test allowed by `a` and forbidden by `b` (first index), if any.
  [[nodiscard]] std::vector<int> allowed_by_first_only(int a, int b) const;

 private:
  int num_tests_ = 0;
  std::vector<std::vector<bool>> rows_;
};

}  // namespace mcmc::explore
