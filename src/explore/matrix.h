// Admissibility matrix: model x test -> allowed?
//
// Comparing all 90 models pairwise on the Corollary-1 suite only needs
// each (model, test) verdict once; precomputing the matrix turns the
// quadratic pairwise comparison of Section 4.2 into cheap row operations
// (the paper reports 20 minutes for the pairwise sweep; the matrix method
// finishes in seconds).
//
// The matrix is a thin wrapper over engine::VerdictEngine: construction
// is one batched, parallel, cached engine run, rows are packed 64-bit
// words, and `compare` / `distinguishing_tests` are word-wise sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/checker.h"
#include "core/model.h"
#include "engine/verdict_engine.h"
#include "litmus/test.h"

namespace mcmc::explore {

/// How two models relate on a test suite.
enum class Relation {
  Equivalent,     ///< same verdict on every test
  FirstWeaker,    ///< first allows a strict superset
  FirstStronger,  ///< first allows a strict subset
  Incomparable,   ///< each allows a test the other forbids
};

[[nodiscard]] std::string to_string(Relation r);

/// Precomputed verdicts for a set of models over a test suite.
class AdmissibilityMatrix {
 public:
  /// Runs every (model, test) check through a private VerdictEngine;
  /// `engine` picks the decision procedure (kept for source
  /// compatibility with pre-engine callers).
  AdmissibilityMatrix(const std::vector<core::MemoryModel>& models,
                      const std::vector<litmus::LitmusTest>& tests,
                      core::Engine engine = core::Engine::Explicit);

  /// Runs every (model, test) check through `eng`, sharing its verdict
  /// cache, thread pool, and backend policy.
  AdmissibilityMatrix(engine::VerdictEngine& eng,
                      const std::vector<core::MemoryModel>& models,
                      const std::vector<litmus::LitmusTest>& tests);

  [[nodiscard]] int num_models() const { return bits_.rows(); }
  [[nodiscard]] int num_tests() const { return bits_.cols(); }

  /// Verdict of model `m` on test `t`.
  [[nodiscard]] bool allowed(int m, int t) const {
    MCMC_REQUIRE(m >= 0 && m < num_models());
    MCMC_REQUIRE(t >= 0 && t < num_tests());
    return bits_.get(m, t);
  }

  /// Relation of models `a` and `b` induced by the suite.
  [[nodiscard]] Relation compare(int a, int b) const;

  /// Indices of tests with different verdicts for `a` and `b`.
  [[nodiscard]] std::vector<int> distinguishing_tests(int a, int b) const;

  /// A test allowed by `a` and forbidden by `b` (first index), if any.
  [[nodiscard]] std::vector<int> allowed_by_first_only(int a, int b) const;

  /// The packed verdict rows (64 verdicts per word).
  [[nodiscard]] const engine::BitMatrix& bits() const { return bits_; }

  /// Engine statistics of the construction batch.
  [[nodiscard]] const engine::EngineStats& build_stats() const {
    return stats_;
  }

 private:
  engine::BitMatrix bits_;
  engine::EngineStats stats_;
};

}  // namespace mcmc::explore
