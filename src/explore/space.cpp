#include "explore/space.h"

#include "util/check.h"

namespace mcmc::explore {

using core::Formula;

std::string ModelChoices::name() const {
  return "M" + std::to_string(ww) + std::to_string(wr) + std::to_string(rw) +
         std::to_string(rr);
}

Formula choice_term(int digit) {
  switch (digit) {
    case 0:
      return core::f_false();
    case 1:
      return core::same_addr();
    case 2:
      return core::data_dep();
    case 3:
      return core::same_addr() || core::data_dep();
    case 4:
      return core::f_true();
    default:
      MCMC_UNREACHABLE("bad choice digit");
  }
}

core::MemoryModel ModelChoices::to_model() const {
  using namespace core;  // NOLINT: formula DSL
  const Formula f =
      fence_x() || fence_y() || (write_x() && write_y() && choice_term(ww)) ||
      (write_x() && read_y() && choice_term(wr)) ||
      (read_x() && write_y() && choice_term(rw)) ||
      (read_x() && read_y() && choice_term(rr));
  return MemoryModel(name(), f);
}

std::vector<ModelChoices> model_space(bool with_deps) {
  std::vector<ModelChoices> out;
  const std::vector<int> ww_opts = {1, 4};
  const std::vector<int> wr_opts = {0, 1, 4};
  const std::vector<int> rw_opts = with_deps ? std::vector<int>{1, 3, 4}
                                             : std::vector<int>{1, 4};
  const std::vector<int> rr_opts = with_deps
                                       ? std::vector<int>{0, 1, 2, 3, 4}
                                       : std::vector<int>{0, 1, 4};
  for (const int ww : ww_opts) {
    for (const int wr : wr_opts) {
      for (const int rw : rw_opts) {
        for (const int rr : rr_opts) {
          out.push_back({ww, wr, rw, rr});
        }
      }
    }
  }
  return out;
}

std::optional<ModelChoices> parse_model_name(const std::string& name) {
  if (name.size() != 5 || name[0] != 'M') return std::nullopt;
  auto digit = [&](std::size_t i) { return name[i] - '0'; };
  const ModelChoices c{digit(1), digit(2), digit(3), digit(4)};
  const bool valid = (c.ww == 1 || c.ww == 4) &&
                     (c.wr == 0 || c.wr == 1 || c.wr == 4) &&
                     (c.rw == 1 || c.rw == 3 || c.rw == 4) && c.rr >= 0 &&
                     c.rr <= 4;
  if (!valid) return std::nullopt;
  return c;
}

ModelChoices sc_choices() { return {4, 4, 4, 4}; }
ModelChoices tso_choices() { return {4, 0, 4, 4}; }
ModelChoices pso_choices() { return {1, 0, 4, 4}; }
ModelChoices ibm370_choices() { return {4, 1, 4, 4}; }
ModelChoices rmo_choices() { return {1, 0, 3, 2}; }
ModelChoices rmo_nodep_choices() { return {1, 0, 1, 0}; }
ModelChoices alpha_choices() { return {1, 1, 1, 0}; }

}  // namespace mcmc::explore
