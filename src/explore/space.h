// The explored model space (Section 4.2).
//
// A model is a choice of reorder-allow option for each of the four ordered
// access-pair types (write-write, write-read, read-write, read-read):
//
//   0  always allowed
//   1  allowed iff the accesses hit different addresses
//   2  allowed iff there is no data dependency
//   3  allowed iff different addresses and no data dependency
//   4  never allowed
//
// The paper eliminates options that violate single-thread consistency
// (same-address write-write and read-write reordering) and options that
// mention dependencies on write-first pairs (writes produce no values):
//
//   WW in {1,4},  WR in {0,1,4},  RW in {1,3,4},  RR in {0,1,2,3,4}
//
// giving 2*3*3*5 = 90 models.  Names follow Figure 4: "M" + the WW, WR,
// RW, RR digits; e.g. SC = M4444, TSO = M4044, PSO = M1044,
// IBM370 = M4144, RMO (without dependencies) = M1010.
//
// The must-not-reorder function of a choice model is
//
//   F(x,y) = Fence(x) | Fence(y)
//          | (Write(x) & Write(y) & term(WW))
//          | (Write(x) & Read(y)  & term(WR))
//          | (Read(x)  & Write(y) & term(RW))
//          | (Read(x)  & Read(y)  & term(RR))
//
// where term(0)=false, term(1)=SameAddr, term(2)=DataDep,
// term(3)=SameAddr|DataDep, term(4)=true (must-not-reorder is the
// negation of the allow condition).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/model.h"

namespace mcmc::explore {

/// One point in the explored space.
struct ModelChoices {
  int ww = 4;
  int wr = 4;
  int rw = 4;
  int rr = 4;

  /// Figure-4 style name, e.g. "M4044".
  [[nodiscard]] std::string name() const;

  /// Builds the must-not-reorder formula model.
  [[nodiscard]] core::MemoryModel to_model() const;

  /// True if no digit mentions data dependencies (options 2 and 3).
  [[nodiscard]] bool dependency_free() const {
    return rw != 2 && rw != 3 && rr != 2 && rr != 3;
  }

  friend bool operator==(const ModelChoices& a, const ModelChoices& b) {
    return a.ww == b.ww && a.wr == b.wr && a.rw == b.rw && a.rr == b.rr;
  }
};

/// The must-not-reorder term for one digit.
[[nodiscard]] core::Formula choice_term(int digit);

/// All 90 models (or the 36 dependency-free ones).
[[nodiscard]] std::vector<ModelChoices> model_space(bool with_deps);

/// Parses "M4044" back into choices; rejects digits outside the space.
[[nodiscard]] std::optional<ModelChoices> parse_model_name(
    const std::string& name);

/// The named hardware models' coordinates in the space.
[[nodiscard]] ModelChoices sc_choices();       ///< M4444
[[nodiscard]] ModelChoices tso_choices();      ///< M4044
[[nodiscard]] ModelChoices pso_choices();      ///< M1044
[[nodiscard]] ModelChoices ibm370_choices();   ///< M4144
[[nodiscard]] ModelChoices rmo_choices();      ///< M1032 (with deps)
[[nodiscard]] ModelChoices rmo_nodep_choices();///< M1010 (Figure 4's RMO)
[[nodiscard]] ModelChoices alpha_choices();    ///< M1110 (Alpha-like)

}  // namespace mcmc::explore
