#include "litmus/catalog.h"

#include "core/instruction.h"

namespace mcmc::litmus {

namespace {

using core::make_branch;
using core::make_dep_const;
using core::make_fence;
using core::make_read;
using core::make_read_indirect;
using core::make_write;
using core::make_write_from_reg;
using core::Outcome;
using core::Program;
using core::Thread;

constexpr core::Loc X = 0;
constexpr core::Loc Y = 1;

}  // namespace

LitmusTest test_a() {
  Program p;
  p.add_thread({make_write(X, 1), make_fence(), make_read(Y, 1)});
  p.add_thread({make_write(Y, 2), make_read(Y, 2), make_read(X, 3)});
  return LitmusTest("TestA", p, Outcome({{1, 0}, {2, 2}, {3, 0}}),
                    "Figure 1: TSO store-buffer forwarding");
}

LitmusTest l1() {
  Program p;
  p.add_thread({make_write(X, 1), make_write(Y, 1)});
  p.add_thread({make_read(Y, 1), make_fence(), make_read(X, 2)});
  return LitmusTest("L1", p, Outcome({{1, 1}, {2, 0}}),
                    "write-write reordering (MP with fenced reader)");
}

LitmusTest l2() {
  Program p;
  p.add_thread({make_write(X, 1), make_write(X, 2)});
  p.add_thread({make_read(X, 1), make_read(X, 2)});
  return LitmusTest("L2", p, Outcome({{1, 2}, {2, 0}}),
                    "same-address read-read reordering (CoRR)");
}

LitmusTest l3() {
  Program p;
  p.add_thread({make_write(X, 1), make_fence(), make_write(Y, 2)});
  p.add_thread({make_read(Y, 1), make_read(X, 2)});
  return LitmusTest("L3", p, Outcome({{1, 2}, {2, 0}}),
                    "independent read-read reordering (MP)");
}

LitmusTest l4() {
  Program p;
  p.add_thread({make_write(X, 1), make_fence(), make_write(Y, 2)});
  // t(r3) = r1 - r1 + X; Read [t] -> r2
  p.add_thread({make_read(Y, 1), make_dep_const(3, 1, X),
                make_read_indirect(3, 2)});
  return LitmusTest("L4", p, Outcome({{1, 2}, {2, 0}}),
                    "dependent read-read reordering (MP with address dep)");
}

LitmusTest l5() {
  Program p;
  p.add_thread({make_read(X, 1), make_write(Y, 1)});
  p.add_thread({make_read(Y, 2), make_write(X, 1)});
  return LitmusTest("L5", p, Outcome({{1, 1}, {2, 1}}),
                    "independent read-write reordering (LB)");
}

LitmusTest l6() {
  Program p;
  // t1(r3) = r1 - r1 + 1; Write Y <- t1
  p.add_thread({make_read(X, 1), make_dep_const(3, 1, 1),
                make_write_from_reg(Y, 3)});
  p.add_thread({make_read(Y, 2), make_dep_const(4, 2, 1),
                make_write_from_reg(X, 4)});
  return LitmusTest("L6", p, Outcome({{1, 1}, {2, 1}}),
                    "dependent read-write reordering (LB with data dep)");
}

LitmusTest l7() {
  Program p;
  p.add_thread({make_write(X, 1), make_read(Y, 1)});
  p.add_thread({make_write(Y, 1), make_read(X, 2)});
  return LitmusTest("L7", p, Outcome({{1, 0}, {2, 0}}),
                    "write-read reordering, different address (SB)");
}

LitmusTest l8() {
  Program p;
  // T1: Write X<-1; Read X->r1; t1(r5)=r1-r1+Y; Read [t1]->r2
  p.add_thread({make_write(X, 1), make_read(X, 1), make_dep_const(5, 1, Y),
                make_read_indirect(5, 2)});
  // T2: Write Y<-1; Read Y->r3; t2(r6)=r3-r3+X; Read [t2]->r4
  p.add_thread({make_write(Y, 1), make_read(Y, 3), make_dep_const(6, 3, X),
                make_read_indirect(6, 4)});
  return LitmusTest("L8", p, Outcome({{1, 1}, {2, 0}, {3, 1}, {4, 0}}),
                    "write-read reordering to the same address, detected "
                    "through dependent reads");
}

LitmusTest l9() {
  Program p;
  // T1: Write X<-1; Read X->r1; t1(r4)=r1-r1+1; Write Y<-t1
  p.add_thread({make_write(X, 1), make_read(X, 1), make_dep_const(4, 1, 1),
                make_write_from_reg(Y, 4)});
  // T2: Read Y->r2; t2(r5)=r2-r2+2; Write X<-t2; Read X->r3
  p.add_thread({make_read(Y, 2), make_dep_const(5, 2, 2),
                make_write_from_reg(X, 5), make_read(X, 3)});
  return LitmusTest("L9", p, Outcome({{1, 1}, {2, 1}, {3, 1}}),
                    "write-read reordering to the same address, detected "
                    "through a dependent write");
}

std::vector<LitmusTest> figure3_tests() {
  return {l1(), l2(), l3(), l4(), l5(), l6(), l7(), l8(), l9()};
}

LitmusTest store_buffering() {
  Program p;
  p.add_thread({make_write(X, 1), make_read(Y, 1)});
  p.add_thread({make_write(Y, 1), make_read(X, 2)});
  return LitmusTest("SB", p, Outcome({{1, 0}, {2, 0}}), "store buffering");
}

LitmusTest message_passing() {
  Program p;
  p.add_thread({make_write(X, 1), make_write(Y, 1)});
  p.add_thread({make_read(Y, 1), make_read(X, 2)});
  return LitmusTest("MP", p, Outcome({{1, 1}, {2, 0}}), "message passing");
}

LitmusTest load_buffering() {
  Program p;
  p.add_thread({make_read(X, 1), make_write(Y, 1)});
  p.add_thread({make_read(Y, 2), make_write(X, 1)});
  return LitmusTest("LB", p, Outcome({{1, 1}, {2, 1}}), "load buffering");
}

LitmusTest corr() {
  Program p;
  p.add_thread({make_write(X, 1)});
  p.add_thread({make_read(X, 1), make_read(X, 2)});
  return LitmusTest("CoRR", p, Outcome({{1, 1}, {2, 0}}),
                    "coherence of same-address reads");
}

LitmusTest two_plus_two_w() {
  Program p;
  p.add_thread({make_write(X, 1), make_write(Y, 1), make_read(Y, 1)});
  p.add_thread({make_write(Y, 2), make_write(X, 2), make_read(X, 2)});
  return LitmusTest("2+2W", p, Outcome({{1, 2}, {2, 1}}),
                    "write-write reordering observed through cross reads");
}

LitmusTest iriw() {
  Program p;
  p.add_thread({make_write(X, 1)});
  p.add_thread({make_write(Y, 1)});
  p.add_thread({make_read(X, 1), make_fence(), make_read(Y, 2)});
  p.add_thread({make_read(Y, 3), make_fence(), make_read(X, 4)});
  return LitmusTest("IRIW", p, Outcome({{1, 1}, {2, 0}, {3, 1}, {4, 0}}),
                    "independent reads of independent writes (forbidden "
                    "throughout the paper's store-atomic class)");
}

LitmusTest ctrl_mp() {
  Program p;
  p.add_thread({make_write(X, 1), make_fence(), make_write(Y, 2)});
  p.add_thread({make_read(Y, 1), make_branch(1), make_read(X, 2)});
  return LitmusTest("MP+ctrl", p, Outcome({{1, 2}, {2, 0}}),
                    "message passing with a control-dependent second read");
}

LitmusTest ctrl_lb() {
  Program p;
  p.add_thread({make_read(X, 1), make_branch(1), make_write(Y, 1)});
  p.add_thread({make_read(Y, 2), make_branch(2), make_write(X, 1)});
  return LitmusTest("LB+ctrl", p, Outcome({{1, 1}, {2, 1}}),
                    "load buffering with branch-guarded writes");
}

std::vector<LitmusTest> full_catalog() {
  std::vector<LitmusTest> out = figure3_tests();
  out.insert(out.begin(), test_a());
  out.push_back(store_buffering());
  out.push_back(message_passing());
  out.push_back(load_buffering());
  out.push_back(corr());
  out.push_back(two_plus_two_w());
  out.push_back(iriw());
  out.push_back(ctrl_mp());
  out.push_back(ctrl_lb());
  return out;
}

}  // namespace mcmc::litmus
