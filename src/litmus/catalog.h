// Catalog of named litmus tests:
//
//   * Test A            — Figure 1 (the TSO store-buffer example),
//   * L1 .. L9          — Figure 3, the nine contrasting tests that
//                         suffice to distinguish the explored model space,
//   * classic shapes    — SB, MP, LB, CoRR, 2+2W, IRIW — used by the
//                         examples and cross-validation suites.
//
// All programs follow the paper's value conventions: locations start at 0
// and each write stores a distinct nonzero constant, so outcomes pin the
// read-from map (up to initial-value reads).
#pragma once

#include <vector>

#include "litmus/test.h"

namespace mcmc::litmus {

/// Figure 1's "Test A" (allowed under TSO via store-buffer forwarding,
/// forbidden under SC).
[[nodiscard]] LitmusTest test_a();

/// Figure 3's tests, in paper order (index 1..9).
[[nodiscard]] LitmusTest l1();
[[nodiscard]] LitmusTest l2();
[[nodiscard]] LitmusTest l3();
[[nodiscard]] LitmusTest l4();
[[nodiscard]] LitmusTest l5();
[[nodiscard]] LitmusTest l6();
[[nodiscard]] LitmusTest l7();
[[nodiscard]] LitmusTest l8();
[[nodiscard]] LitmusTest l9();

/// All nine Figure-3 tests in order L1..L9.
[[nodiscard]] std::vector<LitmusTest> figure3_tests();

// Classic shapes (named per the community convention).
[[nodiscard]] LitmusTest store_buffering();   ///< SB; same shape as L7
[[nodiscard]] LitmusTest message_passing();   ///< MP
[[nodiscard]] LitmusTest load_buffering();    ///< LB; same shape as L5
[[nodiscard]] LitmusTest corr();              ///< coherence of read-read
[[nodiscard]] LitmusTest two_plus_two_w();    ///< 2+2W with observer reads
[[nodiscard]] LitmusTest iriw();              ///< 4-thread IRIW with fences

// Control-dependency variants (the paper notes full RMO/Alpha need
// ControlDep; these tests exercise that extension of the framework).
[[nodiscard]] LitmusTest ctrl_mp();  ///< MP with a branch between reads
[[nodiscard]] LitmusTest ctrl_lb();  ///< LB with branch-guarded writes

/// The full catalog (Test A + L1..L9 + classics + control-dep variants).
[[nodiscard]] std::vector<LitmusTest> full_catalog();

}  // namespace mcmc::litmus
