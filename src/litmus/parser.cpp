#include "litmus/parser.h"

#include <sstream>
#include <stdexcept>

#include "util/check.h"
#include "util/strings.h"

namespace mcmc::litmus {

namespace {

using core::Instruction;
using core::Loc;
using core::Reg;

// Hard bounds on parsed indices and values: far above anything a
// legitimate test uses, low enough that hostile input ("r999999999999")
// can neither overflow the integer parse nor coax downstream layers
// into absurd allocations.  Every violation is a line-tagged
// std::invalid_argument, never an internal-invariant logic_error.
constexpr long long kMaxRegisterIndex = 255;
constexpr long long kMaxLocationIndex = 15;
constexpr long long kMaxValueMagnitude = 1 << 20;

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw std::invalid_argument("litmus parse error (line " +
                              std::to_string(line_no) + "): " + msg);
}

/// util::parse_int with the parse error re-tagged to the input line.
long long parse_integer(const std::string& tok, int line_no) {
  try {
    return util::parse_int(tok);
  } catch (const std::exception& e) {
    fail(line_no, std::string("bad integer '") + tok + "': " + e.what());
  }
}

bool is_register(const std::string& tok) {
  if (tok.size() < 2 || tok[0] != 'r') return false;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return false;
  }
  return true;
}

Reg parse_register(const std::string& tok, int line_no) {
  if (!is_register(tok)) fail(line_no, "expected register, got '" + tok + "'");
  const long long index = parse_integer(tok.substr(1), line_no);
  if (index > kMaxRegisterIndex) {
    fail(line_no, "register index out of range: '" + tok + "' (max r" +
                      std::to_string(kMaxRegisterIndex) + ")");
  }
  return static_cast<Reg>(index);
}

bool is_location(const std::string& tok) {
  if (tok == "X" || tok == "Y" || tok == "Z" || tok == "W") return true;
  if (tok.size() >= 2 && tok[0] == 'A') {
    for (std::size_t i = 1; i < tok.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return false;
    }
    return true;
  }
  return false;
}

Loc parse_location(const std::string& tok, int line_no) {
  if (tok == "X") return 0;
  if (tok == "Y") return 1;
  if (tok == "Z") return 2;
  if (tok == "W") return 3;
  if (is_location(tok)) {
    const long long index = parse_integer(tok.substr(1), line_no);
    if (index > kMaxLocationIndex) {
      fail(line_no, "location index out of range: '" + tok + "' (max A" +
                        std::to_string(kMaxLocationIndex) + ")");
    }
    return static_cast<Loc>(index);
  }
  fail(line_no, "expected location, got '" + tok + "'");
}

bool is_integer(const std::string& tok) {
  if (tok.empty()) return false;
  std::size_t i = (tok[0] == '-') ? 1 : 0;
  if (i == tok.size()) return false;
  for (; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return false;
  }
  return true;
}

/// Parses a bounded integer literal (store values, dependency
/// constants, outcome values).
int parse_value(const std::string& tok, int line_no) {
  if (!is_integer(tok)) fail(line_no, "bad value '" + tok + "'");
  const long long v = parse_integer(tok, line_no);
  if (v < -kMaxValueMagnitude || v > kMaxValueMagnitude) {
    fail(line_no, "value out of range: '" + tok + "'");
  }
  return static_cast<int>(v);
}

/// Parses "[rN]" or a location name; returns (loc, addr_reg).
std::pair<Loc, Reg> parse_address(const std::string& tok, int line_no) {
  if (tok.size() >= 3 && tok.front() == '[' && tok.back() == ']') {
    const Reg r = parse_register(tok.substr(1, tok.size() - 2), line_no);
    return {core::kNoLoc, r};
  }
  return {parse_location(tok, line_no), core::kNoReg};
}

/// Parses `rD = rS - rS + C` where C is an integer or a location name.
Instruction parse_dep_const(const std::string& line, int line_no) {
  const auto eq = line.find('=');
  MCMC_CHECK(eq != std::string::npos);
  const Reg dst = parse_register(util::trim(line.substr(0, eq)), line_no);
  std::string rhs;
  for (char c : line.substr(eq + 1)) {
    if (!std::isspace(static_cast<unsigned char>(c))) rhs += c;
  }
  const auto minus = rhs.find('-');
  const auto plus = rhs.find('+');
  if (minus == std::string::npos || plus == std::string::npos || plus < minus) {
    fail(line_no, "usage: rD = rS - rS + <const>");
  }
  const std::string s1 = rhs.substr(0, minus);
  const std::string s2 = rhs.substr(minus + 1, plus - minus - 1);
  const std::string c = rhs.substr(plus + 1);
  if (s1 != s2) fail(line_no, "dependency idiom needs rS - rS (same register)");
  const Reg src = parse_register(s1, line_no);
  int value = 0;
  if (is_integer(c)) {
    value = parse_value(c, line_no);
  } else if (is_location(c)) {
    value = parse_location(c, line_no);
  } else {
    fail(line_no, "bad constant '" + c + "'");
  }
  return core::make_dep_const(dst, src, value);
}

Instruction parse_instruction(const std::string& line, int line_no) {
  auto toks = util::split_ws(line);
  MCMC_CHECK(!toks.empty());

  if (toks[0] == "Fence") {
    if (toks.size() != 1) fail(line_no, "Fence takes no operands");
    return core::make_fence();
  }
  if (toks[0] == "Branch") {
    if (toks.size() != 2) fail(line_no, "usage: Branch rN");
    return core::make_branch(parse_register(toks[1], line_no));
  }
  if (toks[0] == "Read") {
    if (toks.size() != 4 || toks[2] != "->") {
      fail(line_no, "usage: Read <addr> -> rN");
    }
    const auto [loc, areg] = parse_address(toks[1], line_no);
    const Reg dst = parse_register(toks[3], line_no);
    return (areg >= 0) ? core::make_read_indirect(areg, dst)
                       : core::make_read(loc, dst);
  }
  if (toks[0] == "Write") {
    if (toks.size() != 4 || toks[2] != "<-") {
      fail(line_no, "usage: Write <addr> <- <value>");
    }
    const auto [loc, areg] = parse_address(toks[1], line_no);
    if (is_register(toks[3])) {
      if (areg >= 0) fail(line_no, "indirect store with register value");
      return core::make_write_from_reg(loc, parse_register(toks[3], line_no));
    }
    if (!is_integer(toks[3])) {
      fail(line_no, "bad store value '" + toks[3] + "'");
    }
    const int value = parse_value(toks[3], line_no);
    return (areg >= 0) ? core::make_write_indirect(areg, value)
                       : core::make_write(loc, value);
  }
  // DepConst: rD = rS - rS + C (and the line contains no <- or ->).
  if (is_register(toks[0]) && line.find('=') != std::string::npos &&
      line.find("<-") == std::string::npos &&
      line.find("->") == std::string::npos) {
    return parse_dep_const(line, line_no);
  }
  fail(line_no, "unrecognized instruction '" + line + "'");
}

}  // namespace

LitmusTest parse_test(const std::string& text) {
  std::string name = "unnamed";
  std::vector<core::Thread> threads;
  core::Outcome outcome;
  bool saw_outcome = false;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = util::trim(raw);
    if (line.empty()) continue;

    if (util::starts_with(line, "name:")) {
      name = util::trim(line.substr(5));
      continue;
    }
    if (util::starts_with(line, "thread:")) {
      threads.emplace_back();
      continue;
    }
    if (util::starts_with(line, "outcome:")) {
      for (const auto& item : util::split_ws(line.substr(8))) {
        const auto eq = item.find('=');
        if (eq == std::string::npos) fail(line_no, "bad outcome item " + item);
        const Reg reg = parse_register(util::trim(item.substr(0, eq)), line_no);
        if (outcome.required(reg).has_value()) {
          fail(line_no, "outcome constrains " + core::reg_name(reg) +
                            " more than once");
        }
        outcome.require(reg, parse_value(item.substr(eq + 1), line_no));
      }
      saw_outcome = true;
      continue;
    }
    if (threads.empty()) fail(line_no, "instruction before any 'thread:'");
    threads.back().push_back(parse_instruction(line, line_no));
  }
  if (threads.empty()) {
    throw std::invalid_argument("litmus test has no threads");
  }
  if (!saw_outcome) throw std::invalid_argument("litmus test has no outcome");
  try {
    return LitmusTest(name, core::Program(std::move(threads)), outcome);
  } catch (const std::exception& e) {
    // Whatever semantic validation Program/LitmusTest construction runs,
    // malformed *input* must surface as a parse error with the test's
    // name attached, not as an internal-invariant failure.
    throw std::invalid_argument("litmus test '" + name +
                                "' rejected: " + e.what());
  }
}

std::vector<LitmusTest> parse_corpus(const std::string& text) {
  // Split on 'name:' boundaries; comment-only or blank material before
  // the first test is ignored.
  auto content = [](const std::string& line) {
    const auto hash = line.find('#');
    return util::trim(hash == std::string::npos ? line
                                                : line.substr(0, hash));
  };
  std::vector<std::string> chunks;
  std::string current;
  bool in_test = false;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    const std::string meaningful = content(raw);
    if (util::starts_with(meaningful, "name:")) {
      if (in_test) chunks.push_back(current);
      current.clear();
      in_test = true;
    }
    if (in_test) {
      current += raw;
      current += '\n';
    } else if (!meaningful.empty()) {
      throw std::invalid_argument(
          "litmus corpus: content before the first 'name:' line");
    }
  }
  if (in_test) chunks.push_back(current);

  std::vector<LitmusTest> out;
  for (const auto& chunk : chunks) out.push_back(parse_test(chunk));
  if (out.empty()) throw std::invalid_argument("empty litmus corpus");
  return out;
}

std::string write_test(const LitmusTest& test) {
  std::string out = "name: " + test.name() + "\n";
  const auto& prog = test.program();
  for (int t = 0; t < prog.num_threads(); ++t) {
    out += "thread:\n";
    const auto& th = prog.thread(t);
    // Mark DepConst registers feeding addresses (see Program::to_string).
    std::vector<bool> feeds_addr(th.size(), false);
    for (std::size_t i = 0; i < th.size(); ++i) {
      if (th[i].addr_reg < 0) continue;
      for (std::size_t j = 0; j < i; ++j) {
        if (th[j].op == core::Op::DepConst && th[j].dst == th[i].addr_reg) {
          feeds_addr[j] = true;
        }
      }
    }
    for (std::size_t i = 0; i < th.size(); ++i) {
      out += "  " + core::to_string(th[i], feeds_addr[i]) + "\n";
    }
  }
  out += "outcome:";
  for (const auto& [reg, value] : test.outcome().constraints()) {
    out += " " + core::reg_name(reg) + "=" + std::to_string(value);
  }
  out += "\n";
  return out;
}

std::string write_corpus(const std::vector<LitmusTest>& tests) {
  std::string out;
  for (const auto& t : tests) {
    if (!out.empty()) out += "\n";
    out += write_test(t);
  }
  return out;
}

}  // namespace mcmc::litmus
