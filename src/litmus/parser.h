// Text format for litmus tests.
//
// Grammar (line oriented; '#' starts a comment):
//
//   name: TestA
//   thread:
//     Write X <- 1
//     Fence
//     Read Y -> r1
//   thread:
//     Write Y <- 2
//     Read Y -> r2
//     Read X -> r3
//   outcome: r1=0 r2=2 r3=0
//
// Instructions:
//   Read X -> r1        direct-address load
//   Read [r1] -> r2     register-indirect load
//   Write X <- 1        immediate store
//   Write X <- r1       register-value store (register must be DepConst)
//   Write [r1] <- 1     register-indirect store
//   Fence               full fence
//   r2 = r1 - r1 + 1    dependency constant (value may be a location name)
//   Branch r1           control-dependency marker
//
// Locations are X, Y, Z, W, A4, A5, ...; registers are r0, r1, ...
#pragma once

#include <string>

#include "litmus/test.h"

namespace mcmc::litmus {

/// Parses one litmus test; throws std::invalid_argument with a line-tagged
/// diagnostic on malformed input.
[[nodiscard]] LitmusTest parse_test(const std::string& text);

/// Parses a corpus: multiple tests in one document, each starting at a
/// `name:` line.  Throws on malformed input or an empty corpus.
[[nodiscard]] std::vector<LitmusTest> parse_corpus(const std::string& text);

/// Serializes a test in the format `parse_test` accepts (round-trips).
[[nodiscard]] std::string write_test(const LitmusTest& test);

/// Serializes many tests as a corpus (round-trips through parse_corpus).
[[nodiscard]] std::string write_corpus(const std::vector<LitmusTest>& tests);

}  // namespace mcmc::litmus
