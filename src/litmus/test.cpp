#include "litmus/test.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace mcmc::litmus {

std::string LitmusTest::to_string() const {
  std::string out = "Test " + name_;
  if (!description_.empty()) out += " (" + description_ + ")";
  out += "\n";
  out += program_.to_string();
  out += "Outcome: " + outcome_.to_string() + "\n";
  return out;
}

std::string structural_key(const LitmusTest& test) {
  std::string key;
  structural_key(test, key);
  return key;
}

void structural_key(const LitmusTest& test, std::string& key) {
  key.clear();
  for (const auto& thread : test.program().threads()) {
    key += '|';
    for (const auto& instr : thread) {
      key += ';';
      key += std::to_string(static_cast<int>(instr.op));
      key += ',' + std::to_string(instr.loc);
      key += ',' + std::to_string(instr.addr_reg);
      key += ',' + std::to_string(instr.dst);
      key += ',' + std::to_string(instr.src);
      key += ',' + std::to_string(instr.value);
      key += ',' + std::to_string(static_cast<int>(instr.value_from_reg));
    }
  }
  key += '#';
  for (const auto& [reg, value] : test.outcome().constraints()) {
    key += std::to_string(reg) + '=' + std::to_string(value) + ';';
  }
}

namespace {

/// Serializes the resolved events with threads taken in `perm` order,
/// relabeling locations by first appearance and memory values by first
/// appearance per location.
///
/// Value canonicalization: verdicts see store values only through the
/// read-from matching "a read constrained to v observes a write of v to
/// the same location, or the initial value when v == 0".  Any
/// per-location bijection on the nonzero values (with 0, the initial
/// value, held fixed) therefore maps admissible executions to admissible
/// executions, so writes' values and reads' required values are
/// serialized through a per-location first-appearance relabeling: equal
/// keys mean the tests differ by exactly such a bijection (composed with
/// a thread permutation and a location renaming).  DepConst register
/// constants that reach verdicts directly (an outcome constraint on the
/// defined register) are *not* memory values and stay raw.
void serialize_permuted(const core::Analysis& an, const core::Outcome& outcome,
                        const std::vector<int>& perm, std::string& key) {
  key.clear();
  std::map<core::Loc, int> loc_id;
  auto canon_loc_id = [&](core::Loc loc) {
    const auto [it, _] = loc_id.emplace(loc, static_cast<int>(loc_id.size()));
    return it->second;
  };
  // (canonical location, raw value) -> canonical value; 0 is pinned so
  // "reads the initial value" stays distinguishable from every write.
  std::map<std::pair<int, int>, int> value_id;
  auto canon_value = [&](int loc, int value) -> std::string {
    if (value == 0) return "0";
    const auto [it, _] = value_id.emplace(
        std::make_pair(loc, value), static_cast<int>(value_id.size()) + 1);
    return std::to_string(it->second);
  };
  auto required = [&](core::Reg reg, int loc) -> std::string {
    if (reg < 0) return "*";
    const auto v = outcome.required(reg);
    return v ? canon_value(loc, *v) : "*";
  };

  for (const int t : perm) {
    key += '|';
    const int len = static_cast<int>(an.program().thread(t).size());
    for (int i = 0; i < len; ++i) {
      const auto& ev = an.event(an.event_id(t, i));
      key += ';';
      switch (ev.op) {
        case core::Op::Read: {
          const int loc = canon_loc_id(ev.loc);
          key += 'R' + std::to_string(loc) + '=' + required(ev.dst, loc);
          break;
        }
        case core::Op::Write: {
          const int loc = canon_loc_id(ev.loc);
          key += 'W' + std::to_string(loc) + '<' + canon_value(loc, ev.value);
          break;
        }
        case core::Op::Fence:
          key += 'F';
          break;
        case core::Op::Branch:
          key += 'B';
          break;
        case core::Op::DepConst:
          // The constant only reaches verdicts through resolved
          // addresses, store values, and the dependency matrices (all
          // serialized elsewhere) — except when the outcome constrains
          // the defined register directly.
          key += 'D';
          if (ev.dst >= 0 && outcome.required(ev.dst)) {
            key += 'v' + std::to_string(ev.value) + 'q' +
                   std::to_string(*outcome.required(ev.dst));
          }
          break;
      }
    }
  }

  // Within-thread dependency matrices, in the same permuted order.
  key += '#';
  for (const int t : perm) {
    key += '|';
    const int len = static_cast<int>(an.program().thread(t).size());
    for (int i = 0; i < len; ++i) {
      for (int j = i + 1; j < len; ++j) {
        const core::EventId a = an.event_id(t, i);
        const core::EventId b = an.event_id(t, j);
        key += static_cast<char>('0' + (an.data_dep(a, b) ? 1 : 0) +
                                 (an.ctrl_dep(a, b) ? 2 : 0));
      }
    }
  }

  // Outcome constraints on registers no event defines (pathological, but
  // they make outcomes unsatisfiable and so must stay part of the key).
  std::set<core::Reg> defined;
  for (const auto& ev : an.events()) {
    if (ev.dst >= 0) defined.insert(ev.dst);
  }
  for (const auto& [reg, value] : outcome.constraints()) {
    if (defined.count(reg) == 0) {
      key += '!' + std::to_string(reg) + '=' + std::to_string(value);
    }
  }
}

}  // namespace

const std::string& canonical_key(const core::Analysis& analysis,
                                 const core::Outcome& outcome,
                                 KeyScratch& scratch) {
  const int num_threads = analysis.program().num_threads();
  std::vector<int> perm(static_cast<std::size_t>(num_threads));
  std::iota(perm.begin(), perm.end(), 0);

  serialize_permuted(analysis, outcome, perm, scratch.best);
  // Minimize over thread permutations; beyond 6 threads the factorial
  // sweep stops paying for itself, and the identity order is still a
  // sound (just less deduplicating) key.
  if (num_threads > 6) return scratch.best;

  while (std::next_permutation(perm.begin(), perm.end())) {
    serialize_permuted(analysis, outcome, perm, scratch.candidate);
    if (scratch.candidate < scratch.best) {
      std::swap(scratch.best, scratch.candidate);
    }
  }
  return scratch.best;
}

std::string canonical_key(const core::Analysis& analysis,
                          const core::Outcome& outcome) {
  KeyScratch scratch;
  return canonical_key(analysis, outcome, scratch);
}

std::string canonical_key(const LitmusTest& test) {
  const core::Analysis analysis(test.program());
  return canonical_key(analysis, test.outcome());
}

}  // namespace mcmc::litmus
