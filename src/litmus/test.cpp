#include "litmus/test.h"

namespace mcmc::litmus {

std::string LitmusTest::to_string() const {
  std::string out = "Test " + name_;
  if (!description_.empty()) out += " (" + description_ + ")";
  out += "\n";
  out += program_.to_string();
  out += "Outcome: " + outcome_.to_string() + "\n";
  return out;
}

}  // namespace mcmc::litmus
