#include "litmus/test.h"

#include <algorithm>
#include <charconv>
#include <map>
#include <numeric>
#include <set>

namespace mcmc::litmus {

namespace {

/// Appends the decimal rendering of `v` in place — no intermediate
/// std::string (the keys below are computed millions of times per
/// streamed run).
void append_int(std::string& out, long long v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

std::string LitmusTest::to_string() const {
  std::string out = "Test " + name_;
  if (!description_.empty()) out += " (" + description_ + ")";
  out += "\n";
  out += program_.to_string();
  out += "Outcome: " + outcome_.to_string() + "\n";
  return out;
}

std::string structural_key(const LitmusTest& test) {
  std::string key;
  structural_key(test, key);
  return key;
}

void structural_key(const LitmusTest& test, std::string& key) {
  key.clear();
  for (const auto& thread : test.program().threads()) {
    key += '|';
    for (const auto& instr : thread) {
      key += ';';
      append_int(key, static_cast<int>(instr.op));
      key += ',';
      append_int(key, instr.loc);
      key += ',';
      append_int(key, instr.addr_reg);
      key += ',';
      append_int(key, instr.dst);
      key += ',';
      append_int(key, instr.src);
      key += ',';
      append_int(key, instr.value);
      key += ',';
      append_int(key, static_cast<int>(instr.value_from_reg));
    }
  }
  key += '#';
  for (const auto& [reg, value] : test.outcome().constraints()) {
    append_int(key, reg);
    key += '=';
    append_int(key, value);
    key += ';';
  }
}

namespace {

/// Serializes the resolved events with threads taken in `perm` order,
/// relabeling locations by first appearance and memory values by first
/// appearance per location.
///
/// Value canonicalization: verdicts see store values only through the
/// read-from matching "a read constrained to v observes a write of v to
/// the same location, or the initial value when v == 0".  Any
/// per-location bijection on the nonzero values (with 0, the initial
/// value, held fixed) therefore maps admissible executions to admissible
/// executions, so writes' values and reads' required values are
/// serialized through a per-location first-appearance relabeling: equal
/// keys mean the tests differ by exactly such a bijection (composed with
/// a thread permutation and a location renaming).  DepConst register
/// constants that reach verdicts directly (an outcome constraint on the
/// defined register) are *not* memory values and stay raw.
void serialize_permuted(const core::Analysis& an, const core::Outcome& outcome,
                        const std::vector<int>& perm, std::string& key) {
  key.clear();
  std::map<core::Loc, int> loc_id;
  auto canon_loc_id = [&](core::Loc loc) {
    const auto [it, _] = loc_id.emplace(loc, static_cast<int>(loc_id.size()));
    return it->second;
  };
  // (canonical location, raw value) -> canonical value; 0 is pinned so
  // "reads the initial value" stays distinguishable from every write.
  std::map<std::pair<int, int>, int> value_id;
  auto canon_value = [&](int loc, int value) -> std::string {
    if (value == 0) return "0";
    const auto [it, _] = value_id.emplace(
        std::make_pair(loc, value), static_cast<int>(value_id.size()) + 1);
    return std::to_string(it->second);
  };
  auto required = [&](core::Reg reg, int loc) -> std::string {
    if (reg < 0) return "*";
    const auto v = outcome.required(reg);
    return v ? canon_value(loc, *v) : "*";
  };

  for (const int t : perm) {
    key += '|';
    const int len = static_cast<int>(an.program().thread(t).size());
    for (int i = 0; i < len; ++i) {
      const auto& ev = an.event(an.event_id(t, i));
      key += ';';
      switch (ev.op) {
        case core::Op::Read: {
          const int loc = canon_loc_id(ev.loc);
          key += 'R' + std::to_string(loc) + '=' + required(ev.dst, loc);
          break;
        }
        case core::Op::Write: {
          const int loc = canon_loc_id(ev.loc);
          key += 'W' + std::to_string(loc) + '<' + canon_value(loc, ev.value);
          break;
        }
        case core::Op::Fence:
          key += 'F';
          break;
        case core::Op::Branch:
          key += 'B';
          break;
        case core::Op::DepConst:
          // The constant only reaches verdicts through resolved
          // addresses, store values, and the dependency matrices (all
          // serialized elsewhere) — except when the outcome constrains
          // the defined register directly.
          key += 'D';
          if (ev.dst >= 0 && outcome.required(ev.dst)) {
            key += 'v' + std::to_string(ev.value) + 'q' +
                   std::to_string(*outcome.required(ev.dst));
          }
          break;
      }
    }
  }

  // Within-thread dependency matrices, in the same permuted order.
  key += '#';
  for (const int t : perm) {
    key += '|';
    const int len = static_cast<int>(an.program().thread(t).size());
    for (int i = 0; i < len; ++i) {
      for (int j = i + 1; j < len; ++j) {
        const core::EventId a = an.event_id(t, i);
        const core::EventId b = an.event_id(t, j);
        key += static_cast<char>('0' + (an.data_dep(a, b) ? 1 : 0) +
                                 (an.ctrl_dep(a, b) ? 2 : 0));
      }
    }
  }

  // Outcome constraints on registers no event defines (pathological, but
  // they make outcomes unsatisfiable and so must stay part of the key).
  std::set<core::Reg> defined;
  for (const auto& ev : an.events()) {
    if (ev.dst >= 0) defined.insert(ev.dst);
  }
  for (const auto& [reg, value] : outcome.constraints()) {
    if (defined.count(reg) == 0) {
      key += '!' + std::to_string(reg) + '=' + std::to_string(value);
    }
  }
}

}  // namespace

const std::string& canonical_key(const core::Analysis& analysis,
                                 const core::Outcome& outcome,
                                 KeyScratch& scratch) {
  const int num_threads = analysis.program().num_threads();
  auto& perm = scratch.perm;
  perm.resize(static_cast<std::size_t>(num_threads));
  std::iota(perm.begin(), perm.end(), 0);

  serialize_permuted(analysis, outcome, perm, scratch.best);
  // Minimize over thread permutations; beyond 6 threads the factorial
  // sweep stops paying for itself, and the identity order is still a
  // sound (just less deduplicating) key.
  if (num_threads > 6) return scratch.best;

  while (std::next_permutation(perm.begin(), perm.end())) {
    serialize_permuted(analysis, outcome, perm, scratch.candidate);
    if (scratch.candidate < scratch.best) {
      std::swap(scratch.best, scratch.candidate);
    }
  }
  return scratch.best;
}

std::string canonical_key(const core::Analysis& analysis,
                          const core::Outcome& outcome) {
  KeyScratch scratch;
  return canonical_key(analysis, outcome, scratch);
}

std::string canonical_key(const LitmusTest& test) {
  const core::Analysis analysis(test.program());
  return canonical_key(analysis, test.outcome());
}

namespace {

// Word tags of the fingerprint serialization (low byte of each event
// word).  Distinct tags frame the stream exactly as serialize_permuted's
// punctuation does, so the word sequence is an injective encoding of
// the same canonicalized content: equal sequences <=> equal legacy
// serializations.
constexpr std::uint64_t kFpThread = 1;      // + thread length << 8
constexpr std::uint64_t kFpRead = 2;        // + loc << 8, value << 32
constexpr std::uint64_t kFpWrite = 3;       // + loc << 8, value << 32
constexpr std::uint64_t kFpFence = 4;
constexpr std::uint64_t kFpBranch = 5;
constexpr std::uint64_t kFpDep = 6;         // unconstrained DepConst
constexpr std::uint64_t kFpDepConstrained = 7;  // + 2 raw value words
constexpr std::uint64_t kFpUndefReg = 8;    // + 2 raw tail words
/// Sentinel for "unconstrained read" in the 32-bit value field — never
/// collides with canonical value ids, which are bounded by the event
/// count.
constexpr std::uint64_t kFpNoValue = 0xFFFFFFFFULL;

std::uint64_t raw_word(long long v) { return static_cast<std::uint64_t>(v); }

/// Hashes the resolved events with threads taken in `perm` order —
/// the word-stream image of serialize_permuted: same walk, same
/// first-appearance location relabeling, same per-location value
/// relabeling with 0 pinned (see serialize_permuted's commentary for
/// why that canonicalization is verdict-preserving).
util::Key128 fingerprint_permuted(const core::KeyFacts& facts,
                                  const core::Outcome& outcome,
                                  const std::vector<int>& perm,
                                  KeyScratch& scratch) {
  ++scratch.generation;
  scratch.values.clear();
  int next_loc = 0;
  const auto canon_loc = [&](core::Loc loc) -> std::uint64_t {
    const auto s = static_cast<std::size_t>(loc);
    if (s >= scratch.loc_gen.size()) {
      scratch.loc_gen.resize(s + 1, 0);
      scratch.loc_id.resize(s + 1, 0);
    }
    if (scratch.loc_gen[s] != scratch.generation) {
      scratch.loc_gen[s] = scratch.generation;
      scratch.loc_id[s] = next_loc++;
    }
    return static_cast<std::uint64_t>(scratch.loc_id[s]);
  };
  // (canonical location, raw value) -> id in first-appearance order,
  // 1-based with 0 pinned.  Linear scan: a test touches a handful of
  // distinct (loc, value) pairs, and the list reuses its capacity.
  const auto canon_value = [&](std::uint64_t loc, int value) -> std::uint64_t {
    if (value == 0) return 0;
    for (std::size_t k = 0; k < scratch.values.size(); ++k) {
      if (scratch.values[k].loc == loc && scratch.values[k].value == value) {
        return k + 1;
      }
    }
    scratch.values.push_back({loc, value});
    return scratch.values.size();
  };

  util::Hash128Stream h;
  for (const int t : perm) {
    const int len = facts.thread_len(t);
    h.absorb(kFpThread | (static_cast<std::uint64_t>(len) << 8));
    for (int i = 0; i < len; ++i) {
      const auto& ev = facts.event(t, i);
      switch (ev.op) {
        case core::Op::Read: {
          const std::uint64_t loc = canon_loc(ev.loc);
          std::uint64_t val = kFpNoValue;
          if (ev.dst >= 0) {
            if (const auto req = outcome.required(ev.dst)) {
              val = canon_value(loc, *req);
            }
          }
          h.absorb(kFpRead | (loc << 8) | (val << 32));
          break;
        }
        case core::Op::Write: {
          const std::uint64_t loc = canon_loc(ev.loc);
          h.absorb(kFpWrite | (loc << 8) | (canon_value(loc, ev.value) << 32));
          break;
        }
        case core::Op::Fence:
          h.absorb(kFpFence);
          break;
        case core::Op::Branch:
          h.absorb(kFpBranch);
          break;
        case core::Op::DepConst:
          // Raw constant and required value, exactly when the outcome
          // constrains the defined register (serialize_permuted's
          // 'v...q...' suffix); otherwise the constant is invisible.
          if (ev.dst >= 0 && outcome.required(ev.dst)) {
            h.absorb(kFpDepConstrained);
            h.absorb(raw_word(ev.value));
            h.absorb(raw_word(*outcome.required(ev.dst)));
          } else {
            h.absorb(kFpDep);
          }
          break;
      }
    }
  }

  // Within-thread dependency matrices in the same permuted order: per
  // position, its data- and control-dependency source bits (the column
  // serialize_permuted walks pair by pair).  Packing depends only on
  // the thread length, which the kFpThread words already frame.
  for (const int t : perm) {
    const int len = facts.thread_len(t);
    for (int j = 0; j < len; ++j) {
      if (len <= 32) {
        h.absorb(facts.data_dep_bits(t, j) |
                 (facts.ctrl_dep_bits(t, j) << 32));
      } else {
        h.absorb(facts.data_dep_bits(t, j));
        h.absorb(facts.ctrl_dep_bits(t, j));
      }
    }
  }

  // Outcome constraints on registers no event defines (raw, like the
  // legacy '!' tail — they make the outcome unsatisfiable).
  for (const auto& [reg, value] : outcome.constraints()) {
    if (!facts.defines(reg)) {
      h.absorb(kFpUndefReg);
      h.absorb(raw_word(reg));
      h.absorb(raw_word(value));
    }
  }
  return h.finish();
}

}  // namespace

util::Key128 canonical_fingerprint(const core::Program& program,
                                   const core::Outcome& outcome,
                                   KeyScratch& scratch) {
  if (!scratch.facts.build(program)) {
    // Outside the fast path (a thread longer than the 64-bit dependency
    // masks).  The bail-out condition is invariant under thread
    // permutation and renaming, so a canonical class lands entirely in
    // one hash domain or the other — never split across both.
    const core::Analysis analysis(program);
    return util::hash128(canonical_key(analysis, outcome, scratch));
  }
  const int num_threads = scratch.facts.num_threads();
  auto& perm = scratch.perm;
  perm.resize(static_cast<std::size_t>(num_threads));
  std::iota(perm.begin(), perm.end(), 0);

  util::Key128 best =
      fingerprint_permuted(scratch.facts, outcome, perm, scratch);
  // Minimum digest over the same permutation sweep as canonical_key
  // (identity-only beyond 6 threads): the digest *set* is an orbit
  // invariant, so min-equality decides class equality regardless of
  // which permutation attains it.
  if (num_threads <= 6) {
    while (std::next_permutation(perm.begin(), perm.end())) {
      const util::Key128 candidate =
          fingerprint_permuted(scratch.facts, outcome, perm, scratch);
      if (candidate < best) best = candidate;
    }
  }
  return best;
}

util::Key128 canonical_fingerprint(const LitmusTest& test,
                                   KeyScratch& scratch) {
  return canonical_fingerprint(test.program(), test.outcome(), scratch);
}

util::Key128 structural_fingerprint(const LitmusTest& test) {
  util::Hash128Stream h;
  for (const auto& thread : test.program().threads()) {
    h.absorb(kFpThread | (static_cast<std::uint64_t>(thread.size()) << 8));
    for (const auto& instr : thread) {
      h.absorb(static_cast<std::uint64_t>(static_cast<int>(instr.op)) |
               (instr.value_from_reg ? 1ULL << 8 : 0));
      h.absorb(raw_word(instr.loc));
      h.absorb(raw_word(instr.addr_reg));
      h.absorb(raw_word(instr.dst));
      h.absorb(raw_word(instr.src));
      h.absorb(raw_word(instr.value));
    }
  }
  for (const auto& [reg, value] : test.outcome().constraints()) {
    h.absorb(kFpUndefReg);
    h.absorb(raw_word(reg));
    h.absorb(raw_word(value));
  }
  return h.finish();
}

}  // namespace mcmc::litmus
