#include "litmus/test.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace mcmc::litmus {

std::string LitmusTest::to_string() const {
  std::string out = "Test " + name_;
  if (!description_.empty()) out += " (" + description_ + ")";
  out += "\n";
  out += program_.to_string();
  out += "Outcome: " + outcome_.to_string() + "\n";
  return out;
}

std::string structural_key(const LitmusTest& test) {
  std::string key;
  for (const auto& thread : test.program().threads()) {
    key += '|';
    for (const auto& instr : thread) {
      key += ';';
      key += std::to_string(static_cast<int>(instr.op));
      key += ',' + std::to_string(instr.loc);
      key += ',' + std::to_string(instr.addr_reg);
      key += ',' + std::to_string(instr.dst);
      key += ',' + std::to_string(instr.src);
      key += ',' + std::to_string(instr.value);
      key += ',' + std::to_string(static_cast<int>(instr.value_from_reg));
    }
  }
  key += '#';
  for (const auto& [reg, value] : test.outcome().constraints()) {
    key += std::to_string(reg) + '=' + std::to_string(value) + ';';
  }
  return key;
}

namespace {

/// Serializes the resolved events with threads taken in `perm` order,
/// relabeling locations by first appearance.
std::string serialize_permuted(const core::Analysis& an,
                               const core::Outcome& outcome,
                               const std::vector<int>& perm) {
  std::map<core::Loc, int> loc_id;
  auto canon_loc = [&](core::Loc loc) {
    const auto [it, _] = loc_id.emplace(loc, static_cast<int>(loc_id.size()));
    return std::to_string(it->second);
  };
  auto required = [&](core::Reg reg) -> std::string {
    if (reg < 0) return "*";
    const auto v = outcome.required(reg);
    return v ? std::to_string(*v) : "*";
  };

  std::string key;
  for (const int t : perm) {
    key += '|';
    const int len = static_cast<int>(an.program().thread(t).size());
    for (int i = 0; i < len; ++i) {
      const auto& ev = an.event(an.event_id(t, i));
      key += ';';
      switch (ev.op) {
        case core::Op::Read:
          key += 'R' + canon_loc(ev.loc) + '=' + required(ev.dst);
          break;
        case core::Op::Write:
          key += 'W' + canon_loc(ev.loc) + '<' + std::to_string(ev.value);
          break;
        case core::Op::Fence:
          key += 'F';
          break;
        case core::Op::Branch:
          key += 'B';
          break;
        case core::Op::DepConst:
          // The constant only reaches verdicts through resolved
          // addresses, store values, and the dependency matrices (all
          // serialized elsewhere) — except when the outcome constrains
          // the defined register directly.
          key += 'D';
          if (ev.dst >= 0 && outcome.required(ev.dst)) {
            key += 'v' + std::to_string(ev.value) + 'q' + required(ev.dst);
          }
          break;
      }
    }
  }

  // Within-thread dependency matrices, in the same permuted order.
  key += '#';
  for (const int t : perm) {
    key += '|';
    const int len = static_cast<int>(an.program().thread(t).size());
    for (int i = 0; i < len; ++i) {
      for (int j = i + 1; j < len; ++j) {
        const core::EventId a = an.event_id(t, i);
        const core::EventId b = an.event_id(t, j);
        key += static_cast<char>('0' + (an.data_dep(a, b) ? 1 : 0) +
                                 (an.ctrl_dep(a, b) ? 2 : 0));
      }
    }
  }

  // Outcome constraints on registers no event defines (pathological, but
  // they make outcomes unsatisfiable and so must stay part of the key).
  std::set<core::Reg> defined;
  for (const auto& ev : an.events()) {
    if (ev.dst >= 0) defined.insert(ev.dst);
  }
  for (const auto& [reg, value] : outcome.constraints()) {
    if (defined.count(reg) == 0) {
      key += '!' + std::to_string(reg) + '=' + std::to_string(value);
    }
  }
  return key;
}

}  // namespace

std::string canonical_key(const core::Analysis& analysis,
                          const core::Outcome& outcome) {
  const int num_threads = analysis.program().num_threads();
  std::vector<int> perm(static_cast<std::size_t>(num_threads));
  std::iota(perm.begin(), perm.end(), 0);

  // Minimize over thread permutations; beyond 6 threads the factorial
  // sweep stops paying for itself, and the identity order is still a
  // sound (just less deduplicating) key.
  if (num_threads > 6) return serialize_permuted(analysis, outcome, perm);

  std::string best = serialize_permuted(analysis, outcome, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    std::string candidate = serialize_permuted(analysis, outcome, perm);
    if (candidate < best) best = std::move(candidate);
  }
  return best;
}

std::string canonical_key(const LitmusTest& test) {
  const core::Analysis analysis(test.program());
  return canonical_key(analysis, test.outcome());
}

}  // namespace mcmc::litmus
