// A litmus test: a named program with a candidate outcome.
//
// The question a litmus test poses is "can this program finish with these
// register values?"  A model that answers yes is *weaker* on this test; a
// model that answers no *forbids* the relaxation the test probes.
#pragma once

#include <string>
#include <utility>

#include "core/analysis.h"
#include "core/outcome.h"
#include "core/program.h"

namespace mcmc::litmus {

/// A named litmus test.
class LitmusTest {
 public:
  LitmusTest(std::string name, core::Program program, core::Outcome outcome,
             std::string description = "")
      : name_(std::move(name)),
        description_(std::move(description)),
        program_(std::move(program)),
        outcome_(std::move(outcome)) {
    program_.validate();
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const { return description_; }
  [[nodiscard]] const core::Program& program() const { return program_; }
  [[nodiscard]] const core::Outcome& outcome() const { return outcome_; }

  /// Renders the program table plus the outcome line.
  [[nodiscard]] std::string to_string() const;

 private:
  std::string name_;
  std::string description_;
  core::Program program_;
  core::Outcome outcome_;
};

}  // namespace mcmc::litmus
