// A litmus test: a named program with a candidate outcome.
//
// The question a litmus test poses is "can this program finish with these
// register values?"  A model that answers yes is *weaker* on this test; a
// model that answers no *forbids* the relaxation the test probes.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis.h"
#include "core/key_facts.h"
#include "core/outcome.h"
#include "core/program.h"
#include "util/hash128.h"

namespace mcmc::litmus {

/// A named litmus test.
class LitmusTest {
 public:
  LitmusTest(std::string name, core::Program program, core::Outcome outcome,
             std::string description = "")
      : name_(std::move(name)),
        description_(std::move(description)),
        program_(std::move(program)),
        outcome_(std::move(outcome)) {
    program_.validate();
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const { return description_; }
  [[nodiscard]] const core::Program& program() const { return program_; }
  [[nodiscard]] const core::Outcome& outcome() const { return outcome_; }

  /// Renders the program table plus the outcome line.
  [[nodiscard]] std::string to_string() const;

 private:
  std::string name_;
  std::string description_;
  core::Program program_;
  core::Outcome outcome_;
};

/// Syntactic identity key: equal keys mean the programs match
/// instruction-for-instruction (same thread order, locations, registers)
/// and the outcomes constrain the same registers to the same values.
/// Safe for deduplicating verdicts under *any* model.
[[nodiscard]] std::string structural_key(const LitmusTest& test);

/// Allocation-reusing variant: clears `out` and writes the key into it,
/// keeping its capacity across calls.  The streaming pipeline computes
/// one key per streamed test (millions per run), so each worker thread
/// holds one buffer instead of allocating per test.
void structural_key(const LitmusTest& test, std::string& out);

/// Reusable buffers for repeated canonical-key / canonical-fingerprint
/// computation.  One KeyScratch per worker thread; the reference
/// returned by the scratch-taking `canonical_key` overload points into
/// it and is valid until the next call with the same scratch.
struct KeyScratch {
  // Legacy string-key path (canonical_key).
  std::string best;
  std::string candidate;
  std::vector<int> perm;

  // Fingerprint path (canonical_fingerprint): resolved facts plus flat
  // first-appearance relabeling tables, reset per permutation by
  // generation counter so steady state performs no heap allocation.
  core::KeyFacts facts;
  std::vector<std::uint64_t> loc_gen;  // raw location -> stamp
  std::vector<int> loc_id;             // raw location -> canonical id
  struct LocValue {
    std::uint64_t loc = 0;  // canonical location id
    int value = 0;          // raw value
  };
  std::vector<LocValue> values;  // insertion-ordered (loc, value) pairs
  std::uint64_t generation = 0;
};

/// Canonical semantic key over the *resolved* event structure: threads
/// are serialized in the lexicographically least order, locations are
/// relabeled by first appearance per candidate order, store values (and
/// reads' required values) are relabeled by first appearance per
/// location with the initial value 0 pinned, and registers are erased
/// entirely (they only reach verdicts through the dependency matrices
/// and outcome constraints, both of which are serialized directly).
/// Two tests with equal canonical keys receive the same verdict from
/// every model whose must-not-reorder formula uses only the built-in
/// predicates — the atoms (Read/Write/Fence, SameAddr, DataDep,
/// ControlDep) are invariant under exactly these renamings, and
/// read-from matching is preserved by any per-location value bijection
/// that fixes 0.  Formulas with custom predicates may inspect raw
/// thread/location/value identity, so callers must fall back to
/// `structural_key` for those models.
[[nodiscard]] std::string canonical_key(const core::Analysis& analysis,
                                        const core::Outcome& outcome);

/// Allocation-reusing variant (see KeyScratch): the returned reference
/// aliases `scratch.best`.
[[nodiscard]] const std::string& canonical_key(const core::Analysis& analysis,
                                               const core::Outcome& outcome,
                                               KeyScratch& scratch);

/// Convenience overload that analyzes `test.program()` internally.
[[nodiscard]] std::string canonical_key(const LitmusTest& test);

/// 128-bit canonical fingerprint: hashes the same serialization walk as
/// `canonical_key` — permuted threads, locations relabeled by first
/// appearance, values relabeled per location with 0 pinned, dependency
/// matrices, undefined-register outcome tail — as fixed-width 64-bit
/// words through util::Hash128Stream, taking the minimum digest over
/// the same thread permutations, with no Analysis, no string, and (in
/// steady state) no heap allocation.
///
/// Equality of fingerprints decides equality of canonical classes: for
/// any injective serialization, the *set* of per-permutation digests is
/// an orbit invariant, so two tests share a minimum digest iff they
/// share an orbit (iff their canonical_key strings are equal) — up to
/// 128-bit hash collisions, which StreamOptions::audit_dedup_keys
/// cross-checks against the strings over the full streamed space.
/// Programs outside core::KeyFacts' fast path (threads longer than 64
/// instructions — a class-invariant condition) fall back to hashing the
/// legacy string key.
[[nodiscard]] util::Key128 canonical_fingerprint(const core::Program& program,
                                                 const core::Outcome& outcome,
                                                 KeyScratch& scratch);

/// Convenience overload over a test's program and outcome.
[[nodiscard]] util::Key128 canonical_fingerprint(const LitmusTest& test,
                                                 KeyScratch& scratch);

/// 128-bit digest of the structural identity (same equality classes as
/// `structural_key`, up to hash collisions): raw instruction fields and
/// outcome constraints, no canonicalization, no allocation.
[[nodiscard]] util::Key128 structural_fingerprint(const LitmusTest& test);

}  // namespace mcmc::litmus
