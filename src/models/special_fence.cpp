#include "models/special_fence.h"

#include "core/formula.h"

namespace mcmc::models {

namespace {

using core::Analysis;
using core::EventId;

/// 1-based index of a fence within its thread; 0 for non-fences.
int fence_index(const Analysis& an, EventId e) {
  if (!an.is_fence(e)) return 0;
  int k = 0;
  for (int i = 0; i <= an.event(e).index; ++i) {
    if (an.is_fence(an.event_id(an.event(e).thread, i))) ++k;
  }
  return k;
}

}  // namespace

core::MemoryModel special_fence_chain(int n) {
  const core::Formula special = core::Formula::custom(
      "special", [n](const Analysis& an, EventId x, EventId y) {
        const int fx = fence_index(an, x);
        const int fy = fence_index(an, y);
        if (an.is_memory_access(x) && fy == 1) return true;
        if (fx == n && an.is_memory_access(y)) return true;
        return fx > 0 && fy == fx + 1;
      });
  return core::MemoryModel("special-chain-" + std::to_string(n),
                           core::same_addr() || special);
}

core::MemoryModel same_addr_only() {
  return core::MemoryModel("same-addr-only", core::same_addr());
}

litmus::LitmusTest lb_with_fence_chain(int fences) {
  core::Program p;
  core::Thread t1;
  t1.push_back(core::make_read(0, 1));
  for (int i = 0; i < fences; ++i) t1.push_back(core::make_fence());
  t1.push_back(core::make_write(1, 1));
  core::Thread t2;
  t2.push_back(core::make_read(1, 2));
  for (int i = 0; i < fences; ++i) t2.push_back(core::make_fence());
  t2.push_back(core::make_write(0, 1));
  p.add_thread(std::move(t1));
  p.add_thread(std::move(t2));
  return litmus::LitmusTest("LB+" + std::to_string(fences) + "fences", p,
                            core::Outcome({{1, 1}, {2, 1}}));
}

}  // namespace mcmc::models
