// The Section 3.3 special-fence construction.
//
// A hypothetical model with n distinct fence instructions f1..fn and the
// predicate special(x, y), true when (1) x is a memory access and y is
// f1, (2) x is fn and y is a memory access, or (3) x = fi and y = fi+1.
// F1 = SameAddr | special orders a read before a later write only through
// a complete chain  Read, f1, ..., fn, Write;  contrasting F1 from
// F2 = SameAddr therefore needs a local segment of n+2 instructions.
// The paper uses this to show the local-segment length bound depends on
// the number of instruction equivalence classes of the predicate set.
//
// Fence identity is positional here: fence #k is the k-th fence of its
// thread (the IR has a single Fence opcode; the equivalence classes come
// from the predicate, exactly as Section 3.3 prescribes).
#pragma once

#include "core/model.h"
#include "litmus/test.h"

namespace mcmc::models {

/// F1 = SameAddr | special(f1..fn chain).
[[nodiscard]] core::MemoryModel special_fence_chain(int n);

/// F2 = SameAddr (the model F1 is contrasted against).
[[nodiscard]] core::MemoryModel same_addr_only();

/// The LB-shaped probe whose read->write segments carry `fences` full
/// fences in each thread; contrasts the two models above iff
/// fences >= n.
[[nodiscard]] litmus::LitmusTest lb_with_fence_chain(int fences);

}  // namespace mcmc::models
