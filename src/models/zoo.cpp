#include "models/zoo.h"

using namespace mcmc::core;  // NOLINT: formula-building DSL

namespace mcmc::models {

MemoryModel sc() { return MemoryModel("SC", f_true()); }

namespace {

Formula tso_formula() {
  return (write_x() && write_y()) || read_x() || fence_x() || fence_y();
}

}  // namespace

MemoryModel tso() { return MemoryModel("TSO", tso_formula()); }

MemoryModel x86() { return MemoryModel("x86", tso_formula()); }

MemoryModel pso() {
  // Writes stay ordered only to the same address; reads stay ordered with
  // everything after them; fences order all.
  return MemoryModel("PSO", (write_x() && write_y() && same_addr()) ||
                                read_x() || fence_x() || fence_y());
}

MemoryModel ibm370() {
  return MemoryModel("IBM370",
                     (write_x() && read_y() && same_addr()) ||
                         (write_x() && write_y()) || read_x() || fence_x() ||
                         fence_y());
}

MemoryModel rmo() {
  return MemoryModel("RMO", (write_y() && same_addr()) || fence_x() ||
                                fence_y() || data_dep() || ctrl_dep());
}

MemoryModel rmo_no_ctrl() {
  return MemoryModel("RMO-noctrl", (write_y() && same_addr()) || fence_x() ||
                                       fence_y() || data_dep());
}

MemoryModel alpha_variant() {
  return MemoryModel("Alpha-like",
                     (same_addr() && (write_x() || write_y())) || fence_x() ||
                         fence_y());
}

std::vector<MemoryModel> all_named_models() {
  return {sc(),  tso(),          pso(),          ibm370(),
          rmo(), rmo_no_ctrl(), alpha_variant()};
}

}  // namespace mcmc::models
