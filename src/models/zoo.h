// Named hardware memory models, written as must-not-reorder formulas
// exactly as in Section 2.4 of the paper.
//
// Note: the paper's Section 2.4 states "F_SC = False"; since F is the
// must-not-reorder function and SC never reorders, that is a typo for
// F_SC = True (every other example in the section is consistent with
// F = must-not-reorder).  We use True.
#pragma once

#include <vector>

#include "core/model.h"

namespace mcmc::models {

/// Sequential consistency: nothing may be reordered.  F = true.
[[nodiscard]] core::MemoryModel sc();

/// SPARC TSO (= Intel x86 in this framework): writes may be delayed past
/// later reads, including reads of the same address (store-buffer
/// forwarding).  F = (W(x) & W(y)) | R(x) | Fence(x) | Fence(y).
[[nodiscard]] core::MemoryModel tso();

/// Intel x86: same formula as TSO.
[[nodiscard]] core::MemoryModel x86();

/// SPARC PSO: TSO plus write-write reordering to different addresses.
[[nodiscard]] core::MemoryModel pso();

/// IBM System/370: like TSO, but a write may not be reordered with a later
/// read of the same address (no store forwarding).
/// F = (W(x) & R(y) & SameAddr) | (W(x) & W(y)) | R(x) | Fence | Fence.
[[nodiscard]] core::MemoryModel ibm370();

/// SPARC RMO (paper variant): everything may reorder except fences,
/// data/control-dependent pairs, and accesses where the second is a write
/// to the same address.
/// F = (W(y) & SameAddr) | Fence(x) | Fence(y) | DataDep | ControlDep.
[[nodiscard]] core::MemoryModel rmo();

/// RMO restricted to the paper's explored predicate set (no control
/// dependencies): F = (W(y) & SameAddr) | Fence | Fence | DataDep.
[[nodiscard]] core::MemoryModel rmo_no_ctrl();

/// An Alpha-like variant: reorders everything (even dependent loads)
/// except fences and same-address pairs.  The paper notes a faithful Alpha
/// needs control dependencies; this is the commonly used approximation
/// within the explored predicate set (choice digits M1110).
[[nodiscard]] core::MemoryModel alpha_variant();

/// All named models above (each once; x86 omitted as an alias of TSO).
[[nodiscard]] std::vector<core::MemoryModel> all_named_models();

}  // namespace mcmc::models
