#include "sat/brute.h"

#include "util/check.h"

namespace mcmc::sat {

std::optional<std::vector<bool>> brute_force_solve(const Cnf& cnf) {
  MCMC_REQUIRE_MSG(cnf.num_vars <= 24, "brute force capped at 24 variables");
  const std::uint64_t limit = 1ULL << cnf.num_vars;
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    bool all_satisfied = true;
    for (const auto& clause : cnf.clauses) {
      bool satisfied = false;
      for (const Lit l : clause) {
        const bool v = ((bits >> l.var()) & 1) != 0;
        if (v != l.negated()) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        all_satisfied = false;
        break;
      }
    }
    if (all_satisfied) {
      std::vector<bool> model(static_cast<std::size_t>(cnf.num_vars));
      for (int v = 0; v < cnf.num_vars; ++v) model[v] = ((bits >> v) & 1) != 0;
      return model;
    }
  }
  return std::nullopt;
}

}  // namespace mcmc::sat
