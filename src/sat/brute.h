// Brute-force SAT reference used to differential-test the CDCL solver.
#pragma once

#include <optional>
#include <vector>

#include "sat/dimacs.h"
#include "sat/types.h"

namespace mcmc::sat {

/// Decides satisfiability by exhaustive enumeration (feasible up to ~24
/// variables).  Returns a model if satisfiable, std::nullopt otherwise.
[[nodiscard]] std::optional<std::vector<bool>> brute_force_solve(
    const Cnf& cnf);

}  // namespace mcmc::sat
