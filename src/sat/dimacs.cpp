#include "sat/dimacs.h"

#include <sstream>
#include <stdexcept>

#include "util/check.h"
#include "util/strings.h"

namespace mcmc::sat {

Cnf parse_dimacs(const std::string& text) {
  Cnf cnf;
  bool seen_header = false;
  int declared_clauses = 0;
  Clause current;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = util::trim(line);
    if (t.empty() || t[0] == 'c') continue;
    if (t[0] == 'p') {
      const auto fields = util::split_ws(t);
      if (fields.size() != 4 || fields[1] != "cnf") {
        throw std::invalid_argument("dimacs: bad problem line: " + t);
      }
      cnf.num_vars = static_cast<int>(util::parse_int(fields[2]));
      declared_clauses = static_cast<int>(util::parse_int(fields[3]));
      seen_header = true;
      continue;
    }
    if (!seen_header) {
      throw std::invalid_argument("dimacs: clause before problem line");
    }
    for (const auto& tok : util::split_ws(t)) {
      const long long v = util::parse_int(tok);
      if (v == 0) {
        cnf.clauses.push_back(current);
        current.clear();
        continue;
      }
      const auto var = static_cast<Var>(std::llabs(v) - 1);
      if (var >= cnf.num_vars) {
        throw std::invalid_argument("dimacs: variable out of range: " + tok);
      }
      current.push_back(Lit(var, v < 0));
    }
  }
  if (!current.empty()) {
    throw std::invalid_argument("dimacs: unterminated clause");
  }
  if (declared_clauses != static_cast<int>(cnf.clauses.size())) {
    throw std::invalid_argument("dimacs: clause count mismatch");
  }
  return cnf;
}

std::string to_dimacs(const Cnf& cnf) {
  std::ostringstream out;
  out << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (const Lit l : clause) {
      MCMC_REQUIRE(l.var() < cnf.num_vars);
      out << (l.negated() ? -(l.var() + 1) : (l.var() + 1)) << ' ';
    }
    out << "0\n";
  }
  return out.str();
}

}  // namespace mcmc::sat
