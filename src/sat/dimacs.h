// DIMACS CNF serialization, for debugging and for regression corpora.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.h"

namespace mcmc::sat {

/// A CNF formula in portable form: `num_vars` variables (0-based) and a
/// list of clauses.
struct Cnf {
  int num_vars = 0;
  std::vector<Clause> clauses;
};

/// Parses DIMACS CNF text ("p cnf V C" header, clauses terminated by 0).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Cnf parse_dimacs(const std::string& text);

/// Renders a formula as DIMACS CNF text.
[[nodiscard]] std::string to_dimacs(const Cnf& cnf);

}  // namespace mcmc::sat
