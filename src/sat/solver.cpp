#include "sat/solver.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mcmc::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kActivityRescale = 1e100;
constexpr std::uint64_t kRestartBase = 64;
}  // namespace

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(LBool::Undef);
  var_info_.push_back({});
  saved_phase_.push_back(false);
  activity_.push_back(0.0);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

bool Solver::add_clause(Clause clause) {
  MCMC_REQUIRE_MSG(current_level() == 0, "clauses must be added at level 0");
  if (!ok_) return false;

  // Simplify: sort, drop duplicates, detect tautologies and false literals.
  std::sort(clause.begin(), clause.end());
  Clause out;
  Lit prev = Lit::from_code(-2);
  for (const Lit l : clause) {
    MCMC_REQUIRE_MSG(l.var() < num_vars(), "literal references unknown var");
    if (l == prev) continue;
    if (prev.code() >= 0 && l == ~prev) return true;  // tautology: x | ~x
    const LBool v = value(l);
    if (v == LBool::True) return true;  // already satisfied at level 0
    if (v == LBool::False) {
      prev = l;
      continue;  // literal permanently false; drop it
    }
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kNoReason) ok_ = false;
    return ok_;
  }
  clauses_.push_back({std::move(out), /*learned=*/false, 0.0});
  attach_clause(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

void Solver::attach_clause(ClauseRef cref) {
  const auto& c = clauses_[static_cast<std::size_t>(cref)].lits;
  MCMC_CHECK(c.size() >= 2);
  watches_[static_cast<std::size_t>((~c[0]).code())].push_back({cref});
  watches_[static_cast<std::size_t>((~c[1]).code())].push_back({cref});
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  MCMC_CHECK(value(l) == LBool::Undef);
  assign_[static_cast<std::size_t>(l.var())] = lbool_from(!l.negated());
  var_info_[static_cast<std::size_t>(l.var())] = {reason, current_level()};
  saved_phase_[static_cast<std::size_t>(l.var())] = !l.negated();
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& watch_list = watches_[static_cast<std::size_t>(p.code())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const ClauseRef cref = watch_list[i].cref;
      auto& lits = clauses_[static_cast<std::size_t>(cref)].lits;
      // Normalize so lits[0] is the other watched literal.
      if (lits[0] == ~p) std::swap(lits[0], lits[1]);
      MCMC_CHECK(lits[1] == ~p);
      if (value(lits[0]) == LBool::True) {
        watch_list[keep++] = watch_list[i];
        continue;
      }
      // Find a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>((~lits[1]).code())].push_back(
              {cref});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      watch_list[keep++] = watch_list[i];
      if (value(lits[0]) == LBool::False) {
        // Conflict: restore remaining watchers and bail out.
        for (std::size_t k = i + 1; k < watch_list.size(); ++k) {
          watch_list[keep++] = watch_list[k];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return cref;
      }
      enqueue(lits[0], cref);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::bump_var(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > kActivityRescale) {
    for (auto& a : activity_) a /= kActivityRescale;
    var_inc_ /= kActivityRescale;
  }
  const std::int32_t pos = heap_pos_[static_cast<std::size_t>(v)];
  if (pos >= 0) heap_sift_up(static_cast<std::size_t>(pos));
}

void Solver::decay_var_activity() { var_inc_ /= kVarDecay; }

void Solver::analyze(ClauseRef conflict, Clause& learnt, int& backtrack_level) {
  learnt.clear();
  learnt.push_back(Lit::from_code(-2));  // slot for the asserting literal
  int counter = 0;
  Lit p = Lit::from_code(-2);
  std::size_t trail_index = trail_.size();
  ClauseRef reason = conflict;

  for (;;) {
    MCMC_CHECK(reason != kNoReason);
    const auto& c = clauses_[static_cast<std::size_t>(reason)].lits;
    const std::size_t start = (p.code() < 0) ? 0 : 1;
    for (std::size_t i = start; i < c.size(); ++i) {
      const Lit q = c[i];
      const auto vi = static_cast<std::size_t>(q.var());
      const int lvl = var_info_[vi].level;
      if (!seen_[vi] && lvl > 0) {
        seen_[vi] = true;
        analyze_clear_.push_back(q);
        bump_var(q.var());
        if (lvl >= current_level()) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Walk back the trail to the next marked literal.
    do {
      MCMC_CHECK(trail_index > 0);
      p = trail_[--trail_index];
    } while (!seen_[static_cast<std::size_t>(p.var())]);
    seen_[static_cast<std::size_t>(p.var())] = false;
    --counter;
    if (counter == 0) break;
    reason = var_info_[static_cast<std::size_t>(p.var())].reason;
    // Re-normalize reason clause so the propagated literal is first.
    if (reason != kNoReason) {
      auto& rc = clauses_[static_cast<std::size_t>(reason)].lits;
      if (rc[0] != p) {
        const auto it = std::find(rc.begin(), rc.end(), p);
        MCMC_CHECK(it != rc.end());
        std::swap(rc[0], *it);
      }
    }
  }
  learnt[0] = ~p;

  // Clause minimization: delete literals implied by the rest of the clause.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const int lvl = var_info_[static_cast<std::size_t>(learnt[i].var())].level;
    abstract_levels |= 1u << (lvl & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const auto vi = static_cast<std::size_t>(learnt[i].var());
    if (var_info_[vi].reason == kNoReason ||
        !lit_redundant(learnt[i], abstract_levels)) {
      learnt[keep++] = learnt[i];
    }
  }
  learnt.resize(keep);

  // Compute the backtrack level: second-highest level in the clause.
  if (learnt.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (var_info_[static_cast<std::size_t>(learnt[i].var())].level >
          var_info_[static_cast<std::size_t>(learnt[max_i].var())].level) {
        max_i = i;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level =
        var_info_[static_cast<std::size_t>(learnt[1].var())].level;
  }

  for (const Lit l : analyze_clear_) {
    seen_[static_cast<std::size_t>(l.var())] = false;
  }
  analyze_clear_.clear();
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const auto vi = static_cast<std::size_t>(q.var());
    const ClauseRef reason = var_info_[vi].reason;
    MCMC_CHECK(reason != kNoReason);
    const auto& c = clauses_[static_cast<std::size_t>(reason)].lits;
    for (std::size_t i = 1; i < c.size(); ++i) {
      const Lit r = c[i];
      const auto ri = static_cast<std::size_t>(r.var());
      const int lvl = var_info_[ri].level;
      if (seen_[ri] || lvl == 0) continue;
      if (var_info_[ri].reason == kNoReason ||
          ((1u << (lvl & 31)) & abstract_levels) == 0) {
        // Not removable: undo marks made during this probe.
        for (std::size_t k = top; k < analyze_clear_.size(); ++k) {
          seen_[static_cast<std::size_t>(analyze_clear_[k].var())] = false;
        }
        analyze_clear_.resize(top);
        return false;
      }
      seen_[ri] = true;
      analyze_clear_.push_back(r);
      analyze_stack_.push_back(r);
    }
  }
  return true;
}

void Solver::backtrack(int level) {
  if (current_level() <= level) return;
  const std::size_t bound = static_cast<std::size_t>(trail_lim_[level]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    assign_[static_cast<std::size_t>(v)] = LBool::Undef;
    var_info_[static_cast<std::size_t>(v)].reason = kNoReason;
    if (heap_pos_[static_cast<std::size_t>(v)] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(level));
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  for (;;) {
    const auto v = heap_pop();
    if (!v.has_value()) return Lit::from_code(-2);
    if (value(*v) == LBool::Undef) {
      return Lit(*v, !saved_phase_[static_cast<std::size_t>(*v)]);
    }
  }
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Finite-subsequence trick: find k with 2^(k-1) <= i+1 < 2^k.
  std::uint64_t k = 1;
  while ((1ULL << k) < i + 2) ++k;
  for (;;) {
    if (i + 2 == (1ULL << k)) return 1ULL << (k - 1);
    // Recurse into the prefix.
    i -= (1ULL << (k - 1)) - 1;
    k = 1;
    while ((1ULL << k) < i + 2) ++k;
  }
}

bool Solver::solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return false;
  backtrack(0);
  rebuild_order_heap();

  std::uint64_t conflicts_until_restart = kRestartBase * luby(stats_.restarts);
  std::uint64_t conflicts_this_restart = 0;

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (current_level() == 0) {
        ok_ = false;
        return false;
      }
      Clause learnt;
      int backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
      backtrack(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        clauses_.push_back({learnt, /*learned=*/true, 0.0});
        const auto cref = static_cast<ClauseRef>(clauses_.size() - 1);
        attach_clause(cref);
        enqueue(learnt[0], cref);
      }
      ++stats_.learned_clauses;
      stats_.learned_literals += learnt.size();
      decay_var_activity();
      continue;
    }

    if (conflicts_this_restart >= conflicts_until_restart) {
      ++stats_.restarts;
      conflicts_this_restart = 0;
      conflicts_until_restart = kRestartBase * luby(stats_.restarts);
      backtrack(0);
      continue;
    }

    // Apply any assumptions that are not yet decided.
    bool assumption_pending = false;
    for (const Lit a : assumptions) {
      const LBool v = value(a);
      if (v == LBool::True) continue;
      if (v == LBool::False) {
        // Assumption contradicts the formula under previous assumptions.
        backtrack(0);
        return false;
      }
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      enqueue(a, kNoReason);
      ++stats_.decisions;
      assumption_pending = true;
      break;
    }
    if (assumption_pending) continue;

    const Lit next = pick_branch_lit();
    if (next.code() < 0) {
      // All variables assigned: record the model.
      model_ = assign_;
      backtrack(0);
      return true;
    }
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, kNoReason);
  }
}

bool Solver::model_value(Var v) const {
  MCMC_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < model_.size());
  MCMC_REQUIRE_MSG(model_[static_cast<std::size_t>(v)] != LBool::Undef,
                   "no model available");
  return model_[static_cast<std::size_t>(v)] == LBool::True;
}

void Solver::rebuild_order_heap() {
  heap_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), -1);
  for (Var v = 0; v < num_vars(); ++v) {
    if (value(v) == LBool::Undef) heap_insert(v);
  }
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0) return;
  heap_pos_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  const double act = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >= act) break;
    heap_[i] = heap_[parent];
    heap_pos_[static_cast<std::size_t>(heap_[i])] =
        static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  const double act = activity_[static_cast<std::size_t>(v)];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[static_cast<std::size_t>(heap_[child + 1])] >
            activity_[static_cast<std::size_t>(heap_[child])]) {
      ++child;
    }
    if (activity_[static_cast<std::size_t>(heap_[child])] <= act) break;
    heap_[i] = heap_[child];
    heap_pos_[static_cast<std::size_t>(heap_[i])] =
        static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(i);
}

std::optional<Var> Solver::heap_pop() {
  if (heap_.empty()) return std::nullopt;
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_.pop_back();
    heap_sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

}  // namespace mcmc::sat
