// A conflict-driven clause-learning (CDCL) SAT solver.
//
// This is the library's from-scratch replacement for MiniSat (the paper's
// Section 4.1 uses MiniSat to test litmus-test admissibility).  It
// implements the standard architecture:
//
//   * two-watched-literal unit propagation,
//   * first-UIP conflict analysis with clause minimization,
//   * VSIDS-style exponential variable activities,
//   * Luby-sequence restarts with phase saving,
//   * incremental solving under assumptions.
//
// The solver is deliberately compact: the happens-before instances produced
// by the checker have tens of variables and a few thousand clauses, so
// engineering for millions of clauses (garbage collection, clause database
// reduction, blocking literals) would be dead weight.  It is nevertheless a
// complete general-purpose solver and is differential-tested against a
// brute-force reference on random CNF.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sat/types.h"

namespace mcmc::sat {

/// Aggregate statistics of one solver lifetime.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
};

/// CDCL SAT solver over variables created with `new_var`.
class Solver {
 public:
  Solver() = default;

  /// Creates a fresh variable and returns its index.
  Var new_var();

  /// Number of variables created so far.
  [[nodiscard]] int num_vars() const {
    return static_cast<int>(assign_.size());
  }

  /// Adds a clause (disjunction of literals).  Returns false if the clause
  /// makes the formula trivially unsatisfiable (empty after simplification
  /// at level 0).  All referenced variables must already exist.
  bool add_clause(Clause clause);

  /// Convenience overloads for short clauses.
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Decides satisfiability of the clauses added so far, under optional
  /// assumptions.  May be called repeatedly; clauses persist between calls.
  [[nodiscard]] bool solve(const std::vector<Lit>& assumptions = {});

  /// Value of `v` in the satisfying assignment found by the last successful
  /// `solve` call.
  [[nodiscard]] bool model_value(Var v) const;

  /// The full model of the last successful solve.
  [[nodiscard]] const std::vector<LBool>& model() const { return model_; }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// True if the formula was proven unsatisfiable at level 0 (no future
  /// solve can succeed regardless of assumptions).
  [[nodiscard]] bool conflicting() const { return !ok_; }

 private:
  // A clause stored in the arena; learned clauses carry an activity.
  struct StoredClause {
    std::vector<Lit> lits;
    bool learned = false;
    double activity = 0.0;
  };
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct Watcher {
    ClauseRef cref;
  };

  struct VarInfo {
    ClauseRef reason = kNoReason;
    int level = 0;
  };

  [[nodiscard]] LBool value(Lit l) const {
    const LBool v = assign_[static_cast<std::size_t>(l.var())];
    return l.negated() ? -v : v;
  }
  [[nodiscard]] LBool value(Var v) const {
    return assign_[static_cast<std::size_t>(v)];
  }

  void attach_clause(ClauseRef cref);
  void enqueue(Lit l, ClauseRef reason);
  [[nodiscard]] ClauseRef propagate();
  void analyze(ClauseRef conflict, Clause& learnt, int& backtrack_level);
  [[nodiscard]] bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  [[nodiscard]] Lit pick_branch_lit();
  void bump_var(Var v);
  void decay_var_activity();
  void rebuild_order_heap();

  // Order heap (binary max-heap on activity).
  void heap_insert(Var v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  std::optional<Var> heap_pop();

  [[nodiscard]] int current_level() const {
    return static_cast<int>(trail_lim_.size());
  }

  static std::uint64_t luby(std::uint64_t i);

  std::vector<StoredClause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal code
  std::vector<LBool> assign_;
  std::vector<VarInfo> var_info_;
  std::vector<bool> saved_phase_;
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  // Branching heap.
  std::vector<Var> heap_;
  std::vector<std::int32_t> heap_pos_;  // -1 if not in heap

  // Conflict-analysis scratch.
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  std::vector<LBool> model_;
  SolverStats stats_;
  double var_inc_ = 1.0;
  bool ok_ = true;
};

}  // namespace mcmc::sat
