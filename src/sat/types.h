// Core SAT types: variables, literals, and the three-valued assignment.
//
// The solver in this directory is the library's stand-in for MiniSat, which
// the paper uses to decide whether a litmus test admits an acyclic
// happens-before order.  Conventions follow the MiniSat lineage:
// a variable is a dense non-negative index, a literal is `2*var + sign`
// with sign 1 meaning negated.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mcmc::sat {

using Var = std::int32_t;

/// A literal: a variable together with a polarity.
class Lit {
 public:
  Lit() = default;
  Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {
    MCMC_REQUIRE(v >= 0);
  }

  /// Positive literal of `v`.
  static Lit pos(Var v) { return Lit(v, false); }
  /// Negative literal of `v`.
  static Lit neg(Var v) { return Lit(v, true); }
  /// Reconstructs a literal from its dense code.
  static Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  [[nodiscard]] Var var() const { return code_ >> 1; }
  [[nodiscard]] bool negated() const { return (code_ & 1) != 0; }
  [[nodiscard]] std::int32_t code() const { return code_; }
  [[nodiscard]] Lit operator~() const { return from_code(code_ ^ 1); }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator!=(Lit a, Lit b) { return a.code_ != b.code_; }
  friend bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

 private:
  std::int32_t code_ = -2;  // invalid until assigned
};

/// Three-valued logic for partial assignments.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::True : LBool::False; }

/// Negation that keeps Undef fixed.
inline LBool operator-(LBool v) {
  if (v == LBool::Undef) return v;
  return v == LBool::True ? LBool::False : LBool::True;
}

using Clause = std::vector<Lit>;

}  // namespace mcmc::sat
