#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mcmc::serve {

namespace {

void set_error(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
}

[[nodiscard]] bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect_unix(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    set_error(error, "socket path too long");
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_error(error, "socket(AF_UNIX) failed");
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    set_error(error, "connect to " + socket_path + " failed: " +
                         std::strerror(errno));
    close();
    return false;
  }
  use_tcp_ = false;
  socket_path_ = socket_path;
  return true;
}

bool Client::connect_tcp(int port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_error(error, "socket(AF_INET) failed");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    set_error(error, std::string("tcp connect failed: ") +
                         std::strerror(errno));
    close();
    return false;
  }
  use_tcp_ = true;
  tcp_port_ = port;
  return true;
}

bool Client::reconnect(std::string* error) {
  return use_tcp_ ? connect_tcp(tcp_port_, error)
                  : connect_unix(socket_path_, error);
}

bool Client::send_and_receive(const std::string& frame, Response& response,
                              std::string* error) {
  if (!write_all(fd_, frame)) {
    set_error(error, std::string("send failed: ") + std::strerror(errno));
    return false;
  }
  std::string buffer;
  std::string payload;
  char chunk[4096];
  for (;;) {
    std::size_t consumed = 0;
    switch (extract_frame(buffer, consumed, payload)) {
      case FrameStatus::kFrame:
        if (!decode_response(payload, response)) {
          set_error(error, "undecodable response payload");
          return false;
        }
        return true;
      case FrameStatus::kBad:
        set_error(error, "bad response frame");
        return false;
      case FrameStatus::kNeedMore:
        break;
    }
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // Mid-reply EOF/reset: reported as a dropped connection so
      // call() can retry.
      set_error(error, "connection dropped");
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::call(const Request& request, Response& response,
                  std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  Request numbered = request;
  numbered.id = next_id_++;
  std::string frame;
  append_frame(frame, encode_request(numbered));

  std::string attempt_error;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0 && !reconnect(&attempt_error)) break;
    if (send_and_receive(frame, response, &attempt_error)) {
      if (response.id != numbered.id) {
        set_error(error, "response id mismatch");
        return false;
      }
      return true;
    }
    // Only a torn connection is safely retryable; a decode failure on
    // a live link means a protocol bug, not a flaky transport.
    if (attempt_error != "connection dropped" &&
        attempt_error.rfind("send failed", 0) != 0) {
      break;
    }
  }
  set_error(error, attempt_error);
  return false;
}

bool Client::typed_call(const Request& request, MsgType expect,
                        Response& response, std::string* error) {
  if (!call(request, response, error)) return false;
  if (response.type == MsgType::kError) {
    set_error(error, "server error " +
                         std::to_string(static_cast<std::uint32_t>(
                             response.error_code)) +
                         ": " + response.error_message);
    return false;
  }
  if (response.type != expect) {
    set_error(error, "unexpected response type");
    return false;
  }
  return true;
}

bool Client::probe(const util::Key128& key, VerdictRowWire& row,
                   std::string* error) {
  Request request;
  request.type = MsgType::kProbe;
  request.key = key;
  Response response;
  if (!typed_call(request, MsgType::kVerdictRow, response, error)) return false;
  row = std::move(response.row);
  return true;
}

bool Client::check(const std::string& litmus_text, VerdictRowWire& row,
                   std::string* error) {
  Request request;
  request.type = MsgType::kCheck;
  request.text = litmus_text;
  Response response;
  if (!typed_call(request, MsgType::kVerdictRow, response, error)) return false;
  row = std::move(response.row);
  return true;
}

bool Client::batch_check(const std::string& corpus_text,
                         std::vector<VerdictRowWire>& rows,
                         std::string* error) {
  Request request;
  request.type = MsgType::kBatchCheck;
  request.text = corpus_text;
  Response response;
  if (!typed_call(request, MsgType::kVerdictRows, response, error)) {
    return false;
  }
  rows = std::move(response.rows);
  return true;
}

bool Client::stats(std::vector<std::uint64_t>& fields, std::string* error) {
  Request request;
  request.type = MsgType::kStats;
  Response response;
  if (!typed_call(request, MsgType::kStatsReply, response, error)) {
    return false;
  }
  fields = std::move(response.stats);
  return true;
}

bool Client::models(std::vector<std::string>& names, std::string* error) {
  Request request;
  request.type = MsgType::kModels;
  Response response;
  if (!typed_call(request, MsgType::kModelsReply, response, error)) {
    return false;
  }
  names = std::move(response.model_names);
  return true;
}

}  // namespace mcmc::serve
