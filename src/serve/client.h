// Blocking litmusd client.
//
// One connection, one outstanding request at a time, request-id
// correlation checked on every reply.  Every protocol request is
// idempotent (probes and checks are pure lookups/computations; the
// server dedups store writes by fingerprint), so the client retries
// exactly once on a connection torn down mid-request — ECONNRESET,
// EPIPE, or a short read — by reconnecting and resending.  Anything
// else (malformed reply, server-side kError) is surfaced, not retried.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.h"

namespace mcmc::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
      next_id_ = other.next_id_;
      use_tcp_ = other.use_tcp_;
      socket_path_ = std::move(other.socket_path_);
      tcp_port_ = other.tcp_port_;
    }
    return *this;
  }

  /// Connects to a Unix-domain litmusd socket.  False (with `error`
  /// set) on failure.
  [[nodiscard]] bool connect_unix(const std::string& socket_path,
                                  std::string* error = nullptr);

  /// Connects to a loopback TCP litmusd listener.
  [[nodiscard]] bool connect_tcp(int port, std::string* error = nullptr);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request and blocks for its reply (retrying once on a
  /// dropped connection).  False on transport failure — `error` says
  /// why; a server-side kError is a *successful* call whose response
  /// has type kError.
  [[nodiscard]] bool call(const Request& request, Response& response,
                          std::string* error = nullptr);

  // Typed conveniences over call(); each returns false on transport
  // failure OR a kError reply (kError details land in `error`).
  [[nodiscard]] bool probe(const util::Key128& key, VerdictRowWire& row,
                           std::string* error = nullptr);
  [[nodiscard]] bool check(const std::string& litmus_text, VerdictRowWire& row,
                           std::string* error = nullptr);
  [[nodiscard]] bool batch_check(const std::string& corpus_text,
                                 std::vector<VerdictRowWire>& rows,
                                 std::string* error = nullptr);
  [[nodiscard]] bool stats(std::vector<std::uint64_t>& fields,
                           std::string* error = nullptr);
  [[nodiscard]] bool models(std::vector<std::string>& names,
                            std::string* error = nullptr);

 private:
  [[nodiscard]] bool reconnect(std::string* error);
  [[nodiscard]] bool send_and_receive(const std::string& frame,
                                      Response& response, std::string* error);
  [[nodiscard]] bool typed_call(const Request& request, MsgType expect,
                                Response& response, std::string* error);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  // Remembered endpoint for the retry reconnect.
  bool use_tcp_ = false;
  std::string socket_path_;
  int tcp_port_ = -1;
};

}  // namespace mcmc::serve
