// litmusd: long-lived verdict-serving daemon.
//
//   litmusd --socket /tmp/litmusd.sock --store verdicts.bin
//
// Serves the serve/protocol.h request types over a Unix-domain socket
// (and optionally loopback TCP) until SIGTERM/SIGINT, then drains:
// in-flight requests are answered, the store is committed, and the
// exit status reports a clean shutdown.  See serve/server.h for the
// serving semantics and README "Serving verdicts" for usage.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "serve/server.h"

namespace {

// Signals land on a self-pipe so all shutdown work runs on the main
// thread, not in a handler.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int) {
  const char byte = 1;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcmc;

  serve::ServerOptions options;
  options.socket_path = "/tmp/litmusd.sock";
  // A serving daemon keeps its memory bounded by the store, not by an
  // ever-growing in-process cache; the store is the cache.
  options.engine.cache_enabled = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_arg = [&](long lo, long hi, long& out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      const long v = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || v < lo || v > hi) return false;
      out = v;
      return true;
    };
    long v = 0;
    if (arg == "--socket" && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (arg == "--no-socket") {
      options.socket_path.clear();
    } else if (arg == "--tcp" && int_arg(0, 65535, v)) {
      options.tcp_port = static_cast<int>(v);
    } else if (arg == "--store" && i + 1 < argc) {
      options.store_path = argv[++i];
    } else if (arg == "--no-deps") {
      options.with_deps = false;
    } else if (arg == "--threads" && int_arg(0, 4096, v)) {
      options.engine.num_threads = static_cast<int>(v);
    } else if (arg == "--queue" && int_arg(1, 1 << 20, v)) {
      options.max_queue_tests = static_cast<std::size_t>(v);
    } else if (arg == "--batch" && int_arg(1, 1 << 20, v)) {
      options.max_batch_tests = static_cast<std::size_t>(v);
    } else if (arg == "--save-every" && int_arg(0, 1 << 20, v)) {
      options.save_every = static_cast<std::size_t>(v);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--socket PATH | --no-socket] [--tcp PORT]\n"
                   "          [--store PATH] [--no-deps] [--threads N]\n"
                   "          [--queue TESTS] [--batch TESTS] "
                   "[--save-every ROWS]\n",
                   argv[0]);
      return 2;
    }
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "litmusd: %s\n", error.c_str());
    return 1;
  }
  std::printf("litmusd: serving %zu models", server.model_names().size());
  if (!options.socket_path.empty()) {
    std::printf(" on %s", options.socket_path.c_str());
  }
  if (server.tcp_port() >= 0) std::printf(" (tcp %d)", server.tcp_port());
  if (!options.store_path.empty()) {
    std::printf(", store %s", options.store_path.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);

  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("litmusd: draining\n");
  std::fflush(stdout);
  server.request_stop();
  server.wait();
  std::printf("litmusd: clean shutdown\n");
  return 0;
}
