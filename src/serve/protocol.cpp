#include "serve/protocol.h"

#include <cstddef>

namespace mcmc::serve {

namespace {

constexpr std::size_t kHeaderBytes = 8;  // magic + length

[[nodiscard]] std::size_t row_words(std::uint32_t num_models) {
  return (static_cast<std::size_t>(num_models) + 63) / 64;
}

void append_row(std::string& out, const VerdictRowWire& row) {
  out.push_back(static_cast<char>(row.source));
  util::append_u32(out, row.num_models);
  for (std::uint64_t w : row.valid) util::append_u64(out, w);
  for (std::uint64_t w : row.bits) util::append_u64(out, w);
}

[[nodiscard]] bool read_row(util::ByteReader& reader, VerdictRowWire& row) {
  const char* src = reader.read_bytes(1);
  if (src == nullptr) return false;
  const auto raw = static_cast<std::uint8_t>(*src);
  if (raw > static_cast<std::uint8_t>(VerdictSource::kComputed)) return false;
  row.source = static_cast<VerdictSource>(raw);
  row.num_models = reader.read_u32();
  const std::size_t words = row_words(row.num_models);
  // Two word blocks follow; reject a count the payload cannot hold
  // before allocating for it.
  if (reader.remaining() < words * 16) return false;
  row.valid.resize(words);
  row.bits.resize(words);
  for (auto& w : row.valid) w = reader.read_u64();
  for (auto& w : row.bits) w = reader.read_u64();
  return reader.ok();
}

void append_string(std::string& out, const std::string& s) {
  util::append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

[[nodiscard]] bool read_string(util::ByteReader& reader, std::string& s) {
  const std::uint32_t len = reader.read_u32();
  if (len > reader.remaining()) return false;
  const char* data = reader.read_bytes(len);
  if (data == nullptr) return false;
  s.assign(data, len);
  return true;
}

void append_header(std::string& out, MsgType type, std::uint64_t id) {
  util::append_u32(out, kProtocolVersion);
  util::append_u32(out, static_cast<std::uint32_t>(type));
  util::append_u64(out, id);
}

}  // namespace

void append_frame(std::string& out, const std::string& payload) {
  util::append_u32(out, kFrameMagic);
  util::append_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
}

FrameStatus extract_frame(const std::string& buffer, std::size_t& consumed,
                          std::string& payload) {
  consumed = 0;
  if (buffer.size() < kHeaderBytes) return FrameStatus::kNeedMore;
  util::ByteReader reader(buffer);
  const std::uint32_t magic = reader.read_u32();
  const std::uint32_t length = reader.read_u32();
  if (magic != kFrameMagic || length > kMaxFramePayload) {
    return FrameStatus::kBad;
  }
  if (buffer.size() < kHeaderBytes + length) return FrameStatus::kNeedMore;
  payload.assign(buffer, kHeaderBytes, length);
  consumed = kHeaderBytes + length;
  return FrameStatus::kFrame;
}

std::string encode_request(const Request& request) {
  std::string out;
  append_header(out, request.type, request.id);
  switch (request.type) {
    case MsgType::kProbe:
      util::append_key128(out, request.key);
      break;
    case MsgType::kBatchProbe:
      util::append_u32(out, static_cast<std::uint32_t>(request.keys.size()));
      for (const auto& key : request.keys) util::append_key128(out, key);
      break;
    case MsgType::kCheck:
    case MsgType::kBatchCheck:
      append_string(out, request.text);
      break;
    case MsgType::kStats:
    case MsgType::kModels:
      break;
    default:
      break;  // encoding an unknown type yields an empty body
  }
  return out;
}

std::string encode_response(const Response& response) {
  std::string out;
  append_header(out, response.type, response.id);
  switch (response.type) {
    case MsgType::kVerdictRow:
      append_row(out, response.row);
      break;
    case MsgType::kVerdictRows:
      util::append_u32(out, static_cast<std::uint32_t>(response.rows.size()));
      for (const auto& row : response.rows) append_row(out, row);
      break;
    case MsgType::kStatsReply:
      util::append_u32(out, static_cast<std::uint32_t>(response.stats.size()));
      for (std::uint64_t v : response.stats) util::append_u64(out, v);
      break;
    case MsgType::kModelsReply:
      util::append_u32(out,
                       static_cast<std::uint32_t>(response.model_names.size()));
      for (const auto& name : response.model_names) append_string(out, name);
      break;
    case MsgType::kError:
      util::append_u32(out, static_cast<std::uint32_t>(response.error_code));
      append_string(out, response.error_message);
      break;
    default:
      break;
  }
  return out;
}

bool decode_request(const std::string& payload, Request& out,
                    std::uint32_t* version_out) {
  util::ByteReader reader(payload);
  const std::uint32_t version = reader.read_u32();
  if (version_out != nullptr) *version_out = version;
  const std::uint32_t type = reader.read_u32();
  out.id = reader.read_u64();
  if (!reader.ok() || version != kProtocolVersion) return false;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kProbe:
      out.type = MsgType::kProbe;
      out.key = reader.read_key128();
      break;
    case MsgType::kBatchProbe: {
      out.type = MsgType::kBatchProbe;
      const std::uint32_t n = reader.read_u32();
      if (!reader.ok() ||
          static_cast<std::size_t>(n) * 16 > reader.remaining()) {
        return false;
      }
      out.keys.resize(n);
      for (auto& key : out.keys) key = reader.read_key128();
      break;
    }
    case MsgType::kCheck:
      out.type = MsgType::kCheck;
      if (!read_string(reader, out.text)) return false;
      break;
    case MsgType::kBatchCheck:
      out.type = MsgType::kBatchCheck;
      if (!read_string(reader, out.text)) return false;
      break;
    case MsgType::kStats:
      out.type = MsgType::kStats;
      break;
    case MsgType::kModels:
      out.type = MsgType::kModels;
      break;
    default:
      return false;  // unknown or response-typed: not a request
  }
  // Trailing bytes mean the sender framed something we don't
  // understand; refuse rather than silently ignore.
  return reader.ok() && reader.remaining() == 0;
}

bool decode_response(const std::string& payload, Response& out) {
  util::ByteReader reader(payload);
  const std::uint32_t version = reader.read_u32();
  const std::uint32_t type = reader.read_u32();
  out.id = reader.read_u64();
  if (!reader.ok() || version != kProtocolVersion) return false;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kVerdictRow:
      out.type = MsgType::kVerdictRow;
      if (!read_row(reader, out.row)) return false;
      break;
    case MsgType::kVerdictRows: {
      out.type = MsgType::kVerdictRows;
      const std::uint32_t n = reader.read_u32();
      // Each row is at least source + num_models bytes.
      if (!reader.ok() ||
          static_cast<std::size_t>(n) * 5 > reader.remaining()) {
        return false;
      }
      out.rows.resize(n);
      for (auto& row : out.rows) {
        if (!read_row(reader, row)) return false;
      }
      break;
    }
    case MsgType::kStatsReply: {
      out.type = MsgType::kStatsReply;
      const std::uint32_t n = reader.read_u32();
      if (!reader.ok() ||
          static_cast<std::size_t>(n) * 8 > reader.remaining()) {
        return false;
      }
      out.stats.resize(n);
      for (auto& v : out.stats) v = reader.read_u64();
      break;
    }
    case MsgType::kModelsReply: {
      out.type = MsgType::kModelsReply;
      const std::uint32_t n = reader.read_u32();
      // Each name is at least its 4-byte length word.
      if (!reader.ok() ||
          static_cast<std::size_t>(n) * 4 > reader.remaining()) {
        return false;
      }
      out.model_names.resize(n);
      for (auto& name : out.model_names) {
        if (!read_string(reader, name)) return false;
      }
      break;
    }
    case MsgType::kError: {
      out.type = MsgType::kError;
      const std::uint32_t code = reader.read_u32();
      if (code < static_cast<std::uint32_t>(ErrorCode::kMalformed) ||
          code > static_cast<std::uint32_t>(ErrorCode::kInternal)) {
        return false;
      }
      out.error_code = static_cast<ErrorCode>(code);
      if (!read_string(reader, out.error_message)) return false;
      break;
    }
    default:
      return false;
  }
  return reader.ok() && reader.remaining() == 0;
}

}  // namespace mcmc::serve
