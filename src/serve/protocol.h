// Wire protocol of the litmusd verdict service.
//
// A long-lived litmusd daemon answers admissibility queries over a
// stream socket; this header is the complete wire contract shared by
// server and client.  Everything is length-prefixed, fixed-width
// little-endian (util/bytes.h codecs — the same discipline as the
// on-disk store), and versioned, so the two ends can disagree about
// build age without ever disagreeing about byte meaning.
//
// Framing:
//
//   u32 magic   ("MCLS")     sanity word; anything else is garbage
//   u32 length  (payload bytes; at most kMaxFramePayload)
//   payload
//
// Payload (request and response alike):
//
//   u32 protocol_version (kProtocolVersion)
//   u32 message type     (MsgType)
//   u64 request id       (echoed verbatim in the response)
//   body                 (per-type; see the encode functions)
//
// Request bodies:
//
//   kProbe       key128 — canonical test fingerprint.  Answered from
//                the store only (kUnknown on a miss): a fingerprint
//                alone cannot be computed.
//   kCheck       u32 len + litmus text (parser.h grammar, one test).
//                Store hit answered without the engine; a miss is
//                computed, answered, and appended to the store.
//   kBatchProbe  u32 n + n x key128.
//   kBatchCheck  u32 len + corpus text (multiple `name:` tests).
//   kStats       empty; answers with the StatsField vector.
//   kModels      empty; answers with the served model names, in
//                verdict-row column order.
//
// Response bodies:
//
//   kVerdictRow   u8 source (VerdictSource) + u32 num_models +
//                 ceil(n/64) valid words + ceil(n/64) bit words.
//                 Bit i of `bits` is model i's verdict where bit i of
//                 `valid` is set; a kUnknown row has no valid bits.
//   kVerdictRows  u32 n + n rows (kBatch* replies, item order).
//   kStatsReply   u32 count + count x u64 (StatsField order; a newer
//                 server may append fields, never reorder).
//   kModelsReply  u32 n + n x (u32 len + bytes).
//   kError        u32 code (ErrorCode) + u32 len + message bytes.
//
// Malformed input is an expected case, not a logic error: every decode
// path bounds-checks before it allocates and returns false instead of
// throwing, so a server fed garbage rejects the frame and stays up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/hash128.h"

namespace mcmc::serve {

inline constexpr std::uint32_t kFrameMagic = 0x534c434d;  // "MCLS"
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Largest accepted payload.  Generous for batch corpora, small
/// enough that a hostile length word cannot balloon server memory.
inline constexpr std::uint32_t kMaxFramePayload = 4u << 20;

enum class MsgType : std::uint32_t {
  kProbe = 1,
  kCheck = 2,
  kBatchProbe = 3,
  kBatchCheck = 4,
  kStats = 5,
  kModels = 6,

  kVerdictRow = 65,
  kVerdictRows = 66,
  kStatsReply = 67,
  kModelsReply = 68,
  kError = 69,
};

enum class ErrorCode : std::uint32_t {
  kMalformed = 1,      ///< unframeable/undecodable payload
  kBadVersion = 2,     ///< protocol_version mismatch
  kBadRequest = 3,     ///< well-framed but unusable (e.g. parse error)
  kOverloaded = 4,     ///< admission queue full; retry later
  kShuttingDown = 5,   ///< server draining; novel work refused
  kInternal = 6,       ///< server-side failure
};

/// Where a verdict row came from.
enum class VerdictSource : std::uint8_t {
  kUnknown = 0,   ///< probe miss: nothing stored under that fingerprint
  kStore = 1,     ///< answered from the persistent store, engine untouched
  kComputed = 2,  ///< computed by the engine this request
};

/// One packed per-model verdict row as it travels the wire.
struct VerdictRowWire {
  VerdictSource source = VerdictSource::kUnknown;
  std::uint32_t num_models = 0;
  std::vector<std::uint64_t> valid;  ///< ceil(num_models/64) words
  std::vector<std::uint64_t> bits;   ///< same shape as `valid`

  [[nodiscard]] bool known(int model) const {
    return model >= 0 && static_cast<std::uint32_t>(model) < num_models &&
           ((valid[static_cast<std::size_t>(model) / 64] >>
             (static_cast<std::size_t>(model) % 64)) &
            1ULL) != 0;
  }
  [[nodiscard]] bool allowed(int model) const {
    return ((bits[static_cast<std::size_t>(model) / 64] >>
             (static_cast<std::size_t>(model) % 64)) &
            1ULL) != 0;
  }
};

/// Index of every field of a kStatsReply, in wire order.  The final
/// two are per-client (the connection that asked); the rest are
/// global since server start.
enum StatsField : std::size_t {
  kStatProbes = 0,          ///< probe cells asked (batch items count singly)
  kStatProbeStoreHits,      ///< probes answered from the store
  kStatProbeUnknown,        ///< probes with no stored row
  kStatChecks,              ///< check tests asked
  kStatCheckStoreHits,      ///< checks served from the store, engine untouched
  kStatCheckComputed,       ///< checks that went through the engine
  kStatBatchesCoalesced,    ///< engine runs (coalesced admission batches)
  kStatMaxCoalesced,        ///< largest single coalesced batch (tests)
  kStatQueueDepth,          ///< tests queued for the engine right now
  kStatQueueRejected,       ///< requests refused with kOverloaded
  kStatConnectionsOpened,   ///< connections accepted since start
  kStatConnectionsActive,   ///< connections open right now
  kStatLatencyP50Ns,        ///< request service time, 50th percentile
  kStatLatencyP99Ns,        ///< request service time, 99th percentile
  kStatStoreEntries,        ///< rows in the verdict store
  kStatStoreSaves,          ///< store commits since start
  kStatClientRequests,      ///< THIS connection's requests
  kStatClientStoreHits,     ///< THIS connection's store-served rows
  kStatFieldCount
};

/// A decoded request.  `type` selects which payload fields mean
/// anything (the others stay default-constructed).
struct Request {
  MsgType type = MsgType::kStats;
  std::uint64_t id = 0;
  util::Key128 key;                // kProbe
  std::vector<util::Key128> keys;  // kBatchProbe
  std::string text;                // kCheck / kBatchCheck litmus source
};

/// A decoded response; `type` selects the meaningful fields.
struct Response {
  MsgType type = MsgType::kError;
  std::uint64_t id = 0;
  VerdictRowWire row;                     // kVerdictRow
  std::vector<VerdictRowWire> rows;       // kVerdictRows
  std::vector<std::uint64_t> stats;       // kStatsReply
  std::vector<std::string> model_names;   // kModelsReply
  ErrorCode error_code = ErrorCode::kInternal;  // kError
  std::string error_message;                    // kError
};

// ---- Framing ----

/// Appends magic + length + payload to `out` (the only way bytes ever
/// reach a socket).
void append_frame(std::string& out, const std::string& payload);

enum class FrameStatus {
  kNeedMore,  ///< buffer holds a frame prefix; read more bytes
  kFrame,     ///< one payload extracted; `consumed` bytes are done
  kBad,       ///< not a frame (bad magic or oversized length): drop link
};

/// Extracts the first complete frame from `buffer`, writing its
/// payload and the total bytes consumed (header + payload).  Never
/// reads past the buffer and never allocates more than a declared —
/// and bounds-checked — payload.
[[nodiscard]] FrameStatus extract_frame(const std::string& buffer,
                                        std::size_t& consumed,
                                        std::string& payload);

// ---- Payload codecs ----

[[nodiscard]] std::string encode_request(const Request& request);
[[nodiscard]] std::string encode_response(const Response& response);

/// Decodes a request payload; false on anything malformed (wrong
/// version included — the caller distinguishes via `version_out` to
/// answer kBadVersion instead of kMalformed).
[[nodiscard]] bool decode_request(const std::string& payload, Request& out,
                                  std::uint32_t* version_out = nullptr);

[[nodiscard]] bool decode_response(const std::string& payload, Response& out);

}  // namespace mcmc::serve
