#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "explore/distinguish.h"
#include "explore/space.h"
#include "litmus/parser.h"

namespace mcmc::serve {

namespace {

/// Writes the whole buffer, riding out EINTR and partial sends;
/// MSG_NOSIGNAL turns a dead peer into an error instead of SIGPIPE.
[[nodiscard]] bool write_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

[[nodiscard]] Response error_response(std::uint64_t id, ErrorCode code,
                                      std::string message) {
  Response response;
  response.type = MsgType::kError;
  response.id = id;
  response.error_code = code;
  response.error_message = std::move(message);
  return response;
}

[[nodiscard]] std::size_t row_words(std::size_t num_models) {
  return (num_models + 63) / 64;
}

/// A validity mask with the low `num_models` bits set.
[[nodiscard]] std::vector<std::uint64_t> full_valid(std::size_t num_models) {
  std::vector<std::uint64_t> words(row_words(num_models), ~0ULL);
  if (const std::size_t tail = num_models % 64; tail != 0 && !words.empty()) {
    words.back() = (1ULL << tail) - 1;
  }
  return words;
}

}  // namespace

struct Server::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> store_rows{0};
};

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() {
  request_stop();
  wait();
}

bool Server::start(std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (options_.socket_path.empty() && options_.tcp_port < 0) {
    return fail("no listener configured (socket_path empty, tcp disabled)");
  }
  if (options_.max_batch_tests == 0 || options_.max_queue_tests == 0) {
    return fail("max_batch_tests and max_queue_tests must be positive");
  }

  for (const auto& choices : explore::model_space(options_.with_deps)) {
    models_.push_back(choices.to_model());
    model_names_.push_back(choices.name());
  }

  // The store meta matches the Theorem-1 harness layout, so a store
  // warmed by a nightly exhaustive run is directly servable here.
  const store::StoreMeta meta = explore::harness_store_meta(models_);
  if (options_.store_path.empty()) {
    store_ = std::make_unique<store::VerdictStore>(meta);
  } else {
    auto opened = store::VerdictStore::open(options_.store_path, meta);
    store_ = std::move(opened.store);
  }
  for (const auto& model : models_) {
    const int col = store_->column_of(store::model_store_key(model));
    if (col < 0) return fail("served model has no store column");
    store_cols_.push_back(col);
  }
  rows_at_last_save_ = store_->size();

  // The store holds canonical fingerprints exclusively, so serving
  // through it requires canonical dedup whatever the caller asked.
  engine::EngineOptions engine_options = options_.engine;
  engine_options.canonical_dedup = true;
  engine_ = std::make_unique<engine::VerdictEngine>(engine_options);
  engine_->set_store(store_.get());

  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return fail("socket path too long");
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) return fail("socket(AF_UNIX) failed");
    ::unlink(options_.socket_path.c_str());
    if (::bind(unix_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(unix_fd_, 64) != 0) {
      ::close(unix_fd_);
      unix_fd_ = -1;
      return fail("bind/listen on " + options_.socket_path + " failed: " +
                  std::strerror(errno));
    }
  }
  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) return fail("socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(tcp_fd_, 64) != 0) {
      ::close(tcp_fd_);
      tcp_fd_ = -1;
      return fail(std::string("tcp bind/listen failed: ") +
                  std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }
  if (::pipe(wake_pipe_) != 0) return fail("pipe() failed");

  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  batcher_thread_ = std::thread([this] { batcher_loop(); });
  return true;
}

void Server::request_stop() {
  if (!started_.load()) return;
  {
    util::MutexLock lock(queue_mu_);
    if (draining_.load()) return;
    draining_.store(true);
  }
  queue_cv_.notify_all();
  const char byte = 1;
  (void)!::write(wake_pipe_[1], &byte, 1);
}

void Server::wait() {
  if (!started_.load() || joined_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Join readers WITHOUT holding conns_mu_ — their exit path closes
  // the fd under that lock.  The accept thread is gone, so the list
  // this copy sees is complete.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    util::MutexLock lock(conns_mu_);
    conns = conns_;
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  if (batcher_thread_.joinable()) batcher_thread_.join();
  maybe_save(/*force=*/true);
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  for (int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

void Server::accept_loop() {
  while (!draining_.load()) {
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_pipe_[0], POLLIN, 0};
    if (unix_fd_ >= 0) fds[n++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n++] = {tcp_fd_, POLLIN, 0};
    if (::poll(fds, n, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // drain requested
    for (nfds_t i = 1; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      handle_connection(fd);
    }
  }
  // Drain: readers see EOF after their in-flight request; their fds
  // stay valid (and owned by them) until they close.
  util::MutexLock lock(conns_mu_);
  for (auto& conn : conns_) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
}

void Server::handle_connection(int fd) {
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  connections_opened_.fetch_add(1, std::memory_order_relaxed);
  connections_active_.fetch_add(1, std::memory_order_relaxed);
  util::MutexLock lock(conns_mu_);
  conns_.push_back(conn);
  conn->thread = std::thread([this, conn] { reader_loop(conn); });
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  std::string payload;
  char chunk[4096];
  bool alive = true;
  while (alive) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t consumed = 0;
    FrameStatus status;
    while ((status = extract_frame(buffer, consumed, payload)) ==
           FrameStatus::kFrame) {
      buffer.erase(0, consumed);
      const auto t0 = std::chrono::steady_clock::now();
      Request request;
      std::uint32_t version = 0;
      Response response;
      if (!decode_request(payload, request, &version)) {
        // A frame that parsed as a frame but not as a request keeps
        // the stream in sync, so answer and carry on.
        response = error_response(
            0, version != kProtocolVersion ? ErrorCode::kBadVersion
                                           : ErrorCode::kMalformed,
            version != kProtocolVersion ? "unsupported protocol version"
                                        : "undecodable request payload");
      } else {
        conn->requests.fetch_add(1, std::memory_order_relaxed);
        try {
          response = handle_request(*conn, request);
        } catch (const std::exception& e) {
          response =
              error_response(request.id, ErrorCode::kInternal, e.what());
        }
      }
      std::string out;
      append_frame(out, encode_response(response));
      const auto t1 = std::chrono::steady_clock::now();
      record_latency(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
      if (!write_all(conn->fd, out)) {
        alive = false;
        break;
      }
    }
    if (status == FrameStatus::kBad) {
      // Bytes that are not a frame leave no way to resynchronize;
      // tell the peer (best effort) and drop the link.
      std::string out;
      append_frame(out, encode_response(error_response(
                            0, ErrorCode::kMalformed, "bad frame")));
      (void)write_all(conn->fd, out);
      break;
    }
  }
  {
    // The drain path shutdowns fds under the same lock, so it can
    // never touch a closed (possibly reused) descriptor.
    util::MutexLock lock(conns_mu_);
    ::close(conn->fd);
    conn->fd = -1;
  }
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

Response Server::handle_request(Connection& conn, const Request& request) {
  switch (request.type) {
    case MsgType::kProbe:
    case MsgType::kBatchProbe:
      return handle_probe(conn, request);
    case MsgType::kCheck:
    case MsgType::kBatchCheck:
      return handle_check(conn, request);
    case MsgType::kStats:
      return handle_stats(conn, request.id);
    case MsgType::kModels: {
      Response response;
      response.type = MsgType::kModelsReply;
      response.id = request.id;
      response.model_names = model_names_;
      return response;
    }
    default:
      return error_response(request.id, ErrorCode::kBadRequest,
                            "not a request type");
  }
}

bool Server::store_row(const util::Key128& key, VerdictRowWire& row) {
  row.num_models = static_cast<std::uint32_t>(models_.size());
  std::vector<std::uint64_t> bits;
  if (!store_->probe_row(key, store_cols_, bits)) {
    row.source = VerdictSource::kUnknown;
    row.valid.assign(row_words(models_.size()), 0);
    row.bits.assign(row_words(models_.size()), 0);
    return false;
  }
  row.source = VerdictSource::kStore;
  row.valid = full_valid(models_.size());
  row.bits = std::move(bits);
  return true;
}

Response Server::handle_probe(Connection& conn, const Request& request) {
  const std::vector<util::Key128> single{request.key};
  const auto& keys =
      request.type == MsgType::kProbe ? single : request.keys;
  Response response;
  response.id = request.id;
  std::uint64_t hits = 0;
  std::vector<VerdictRowWire> rows(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (store_row(keys[i], rows[i])) ++hits;
  }
  probes_.fetch_add(keys.size(), std::memory_order_relaxed);
  probe_store_hits_.fetch_add(hits, std::memory_order_relaxed);
  probe_unknown_.fetch_add(keys.size() - hits, std::memory_order_relaxed);
  conn.store_rows.fetch_add(hits, std::memory_order_relaxed);
  if (request.type == MsgType::kProbe) {
    response.type = MsgType::kVerdictRow;
    response.row = std::move(rows.front());
  } else {
    response.type = MsgType::kVerdictRows;
    response.rows = std::move(rows);
  }
  return response;
}

Response Server::handle_check(Connection& conn, const Request& request) {
  std::vector<litmus::LitmusTest> tests;
  try {
    if (request.type == MsgType::kCheck) {
      tests.push_back(litmus::parse_test(request.text));
    } else {
      tests = litmus::parse_corpus(request.text);
    }
  } catch (const std::invalid_argument& e) {
    return error_response(request.id, ErrorCode::kBadRequest, e.what());
  }

  checks_.fetch_add(tests.size(), std::memory_order_relaxed);
  std::vector<VerdictRowWire> rows(tests.size());
  litmus::KeyScratch scratch;
  WorkItem item;
  std::vector<std::size_t> miss_at;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < tests.size(); ++i) {
    const util::Key128 key = litmus::canonical_fingerprint(tests[i], scratch);
    if (store_row(key, rows[i])) {
      ++hits;
    } else {
      miss_at.push_back(i);
      item.tests.push_back(tests[i]);
    }
  }
  check_store_hits_.fetch_add(hits, std::memory_order_relaxed);
  conn.store_rows.fetch_add(hits, std::memory_order_relaxed);

  if (!item.tests.empty()) {
    auto future = item.promise.get_future();
    const std::size_t queued = item.tests.size();
    ErrorCode code = ErrorCode::kInternal;
    if (!enqueue(std::move(item), code)) {
      return error_response(request.id, code,
                            code == ErrorCode::kOverloaded
                                ? "admission queue full"
                                : "server draining");
    }
    std::vector<VerdictRowWire> computed = future.get();
    check_computed_.fetch_add(queued, std::memory_order_relaxed);
    for (std::size_t j = 0; j < miss_at.size(); ++j) {
      rows[miss_at[j]] = std::move(computed[j]);
    }
  }

  Response response;
  response.id = request.id;
  if (request.type == MsgType::kCheck) {
    response.type = MsgType::kVerdictRow;
    response.row = std::move(rows.front());
  } else {
    response.type = MsgType::kVerdictRows;
    response.rows = std::move(rows);
  }
  return response;
}

Response Server::handle_stats(const Connection& conn, std::uint64_t id) {
  Response response;
  response.type = MsgType::kStatsReply;
  response.id = id;
  auto& s = response.stats;
  s.resize(kStatFieldCount, 0);
  const auto relaxed = [](const std::atomic<std::uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  s[kStatProbes] = relaxed(probes_);
  s[kStatProbeStoreHits] = relaxed(probe_store_hits_);
  s[kStatProbeUnknown] = relaxed(probe_unknown_);
  s[kStatChecks] = relaxed(checks_);
  s[kStatCheckStoreHits] = relaxed(check_store_hits_);
  s[kStatCheckComputed] = relaxed(check_computed_);
  s[kStatBatchesCoalesced] = relaxed(batches_coalesced_);
  s[kStatMaxCoalesced] = relaxed(max_coalesced_);
  {
    util::MutexLock lock(queue_mu_);
    s[kStatQueueDepth] = queued_tests_;
  }
  s[kStatQueueRejected] = relaxed(queue_rejected_);
  s[kStatConnectionsOpened] = relaxed(connections_opened_);
  s[kStatConnectionsActive] = relaxed(connections_active_);
  s[kStatLatencyP50Ns] = latency_quantile(0.50);
  s[kStatLatencyP99Ns] = latency_quantile(0.99);
  s[kStatStoreEntries] = store_->size();
  s[kStatStoreSaves] = relaxed(store_saves_);
  s[kStatClientRequests] = conn.requests.load(std::memory_order_relaxed);
  s[kStatClientStoreHits] = conn.store_rows.load(std::memory_order_relaxed);
  return response;
}

bool Server::enqueue(WorkItem&& item, ErrorCode& code) {
  {
    util::MutexLock lock(queue_mu_);
    if (draining_.load()) {
      code = ErrorCode::kShuttingDown;
      return false;
    }
    if (queued_tests_ + item.tests.size() > options_.max_queue_tests) {
      code = ErrorCode::kOverloaded;
      queue_rejected_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queued_tests_ += item.tests.size();
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
  return true;
}

void Server::batcher_loop() {
  for (;;) {
    std::vector<WorkItem> batch;
    std::size_t batch_tests = 0;
    {
      util::MutexLock lock(queue_mu_);
      while (queue_.empty() && !draining_.load()) queue_cv_.wait(queue_mu_);
      if (queue_.empty() && draining_.load()) return;
      // Coalesce: take queued items (novel tests from ANY connection)
      // into one engine run, up to the batch bound — but always at
      // least one item, or an oversized single request would starve.
      std::size_t taken = 0;
      while (taken < queue_.size() &&
             (taken == 0 ||
              batch_tests + queue_[taken].tests.size() <=
                  options_.max_batch_tests)) {
        batch_tests += queue_[taken].tests.size();
        ++taken;
      }
      batch.insert(batch.end(), std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.begin() +
                                           static_cast<std::ptrdiff_t>(taken)));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(taken));
      queued_tests_ -= batch_tests;
    }

    std::vector<litmus::LitmusTest> tests;
    tests.reserve(batch_tests);
    for (const auto& item : batch) {
      tests.insert(tests.end(), item.tests.begin(), item.tests.end());
    }
    batches_coalesced_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t prev = max_coalesced_.load(std::memory_order_relaxed);
    while (prev < batch_tests &&
           !max_coalesced_.compare_exchange_weak(prev, batch_tests,
                                                 std::memory_order_relaxed)) {
    }

    try {
      // One run over the coalesced tests; the engine probes the store
      // for anything another batch computed meanwhile and writes novel
      // rows back, which is what warms the store under live traffic.
      const engine::BitMatrix verdicts = engine_->run_matrix(models_, tests);
      std::size_t offset = 0;
      for (auto& item : batch) {
        std::vector<VerdictRowWire> rows(item.tests.size());
        for (std::size_t j = 0; j < item.tests.size(); ++j) {
          auto& row = rows[j];
          row.source = VerdictSource::kComputed;
          row.num_models = static_cast<std::uint32_t>(models_.size());
          row.valid = full_valid(models_.size());
          row.bits.assign(row_words(models_.size()), 0);
          for (std::size_t m = 0; m < models_.size(); ++m) {
            if (verdicts.get(static_cast<int>(m),
                             static_cast<int>(offset + j))) {
              row.bits[m / 64] |= 1ULL << (m % 64);
            }
          }
        }
        offset += item.tests.size();
        item.promise.set_value(std::move(rows));
      }
    } catch (...) {
      for (auto& item : batch) {
        item.promise.set_exception(std::current_exception());
      }
    }
    maybe_save(/*force=*/false);
  }
}

void Server::maybe_save(bool force) {
  if (options_.store_path.empty()) return;
  const std::size_t rows = store_->size();
  if (!force && (options_.save_every == 0 ||
                 rows < rows_at_last_save_ + options_.save_every)) {
    return;
  }
  if (rows == rows_at_last_save_ && !force) return;
  if (store_->save(options_.store_path)) {
    rows_at_last_save_ = rows;
    store_saves_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::record_latency(std::uint64_t nanos) {
  int bucket = 0;
  for (std::uint64_t v = nanos; v > 1; v >>= 1) ++bucket;
  latency_buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Server::latency_quantile(double q) const {
  std::uint64_t total = 0;
  for (const auto& bucket : latency_buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  if (total == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int i = 0; i < 64; ++i) {
    seen += latency_buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      // Bucket i holds [2^i, 2^(i+1)); report the midpoint.
      return (1ULL << i) + (i < 63 ? (1ULL << i) / 2 : 0);
    }
  }
  return 0;
}

}  // namespace mcmc::serve
