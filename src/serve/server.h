// litmusd server core: an async verdict-serving tier over the
// persistent store.
//
// A Server owns one VerdictEngine, one VerdictStore, and a set of
// stream-socket listeners (Unix-domain always; loopback TCP behind a
// flag), and answers the serve/protocol.h request types:
//
//   * probe (by canonical fingerprint) — answered straight from the
//     store under its shared-read contract, engine untouched; a miss
//     is kUnknown, never computed (a fingerprint is not a test).
//   * check (litmus source) — store hit answered without the engine;
//     novel tests go through a bounded admission queue to a single
//     batcher thread, which coalesces concurrently queued tests from
//     ALL connections into one run_matrix call.  The engine writes
//     computed rows back to the store, so the store warms under live
//     traffic and the second ask is a store hit.
//
// Threading: one accept thread (poll over the listeners and a self-
// pipe), one reader thread per connection (decodes requests, serves
// store hits inline, blocks on a future for queued work, writes its
// own socket — single writer per fd), one batcher thread (the only
// engine user and the only store appender).  Store probes from reader
// threads and appends from the batcher ride the VerdictStore
// reader-writer contract with no extra locking.
//
// Shutdown: request_stop() (SIGTERM in litmusd) closes the listeners,
// lets queued work finish (novel requests arriving after the flag get
// kShuttingDown), shuts down connection reads so readers drain and
// exit, commits the store, and joins everything.  In-flight requests
// are answered, never dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "engine/verdict_engine.h"
#include "litmus/test.h"
#include "serve/protocol.h"
#include "store/verdict_store.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcmc::serve {

struct ServerOptions {
  /// Unix-domain listener path; empty disables (then tcp_port must be
  /// enabled).  An existing socket file is replaced.
  std::string socket_path;
  /// Loopback TCP listener: -1 disabled, 0 ephemeral (read the bound
  /// port back via Server::tcp_port()), else the port to bind.
  int tcp_port = -1;
  /// Verdict store file; empty serves from a memory-only store (warm
  /// starts and periodic commits are then no-ops).
  std::string store_path;
  /// Serve the dependency-extended model space (90 models) or the
  /// dependency-free 36.
  bool with_deps = true;
  /// Admission bound: total tests queued for the engine across all
  /// connections; requests that would exceed it get kOverloaded.
  std::size_t max_queue_tests = 4096;
  /// Most tests one coalesced run_matrix call takes off the queue.
  std::size_t max_batch_tests = 1024;
  /// Commit the store after this many newly computed rows (0 = only on
  /// shutdown).
  std::size_t save_every = 256;
  engine::EngineOptions engine;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  ///< stops and joins if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens the store, builds the model space, binds the listeners, and
  /// spawns the service threads.  False (with `error` set) on any
  /// setup failure; the server is then inert.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Begins a graceful drain (idempotent, signal-safe is NOT required
  /// — litmusd forwards signals through a self-pipe first).
  void request_stop();

  /// Blocks until the drain completes and all threads are joined.
  void wait();

  /// The TCP port actually bound (ephemeral resolution), -1 if TCP is
  /// disabled.
  [[nodiscard]] int tcp_port() const { return bound_tcp_port_; }

  /// Served model names, in verdict-row column order.
  [[nodiscard]] const std::vector<std::string>& model_names() const {
    return model_names_;
  }

 private:
  struct Connection;

  /// One admission-queue entry: novel tests from one request, answered
  /// through the promise once the batcher has run them.
  struct WorkItem {
    std::vector<litmus::LitmusTest> tests;
    std::promise<std::vector<VerdictRowWire>> promise;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void batcher_loop();

  void handle_connection(int fd);
  [[nodiscard]] Response handle_request(Connection& conn,
                                        const Request& request);
  [[nodiscard]] Response handle_probe(Connection& conn,
                                      const Request& request);
  [[nodiscard]] Response handle_check(Connection& conn,
                                      const Request& request);
  [[nodiscard]] Response handle_stats(const Connection& conn,
                                      std::uint64_t id);

  /// Store lookup of one fingerprint across the served model columns.
  [[nodiscard]] bool store_row(const util::Key128& key, VerdictRowWire& row);

  /// Enqueues novel tests; false leaves `code` at the refusal reason.
  [[nodiscard]] bool enqueue(WorkItem&& item, ErrorCode& code);

  void record_latency(std::uint64_t nanos);
  [[nodiscard]] std::uint64_t latency_quantile(double q) const;
  void maybe_save(bool force);

  ServerOptions options_;
  std::vector<core::MemoryModel> models_;
  std::vector<std::string> model_names_;
  std::vector<int> store_cols_;  ///< store column per served model
  std::unique_ptr<store::VerdictStore> store_;
  std::unique_ptr<engine::VerdictEngine> engine_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::thread accept_thread_;
  std::thread batcher_thread_;
  util::Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);

  util::Mutex queue_mu_;
  util::CondVar queue_cv_;  // batcher waits for work or drain
  std::vector<WorkItem> queue_ GUARDED_BY(queue_mu_);
  std::size_t queued_tests_ GUARDED_BY(queue_mu_) = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> joined_{false};

  // Global counters (StatsField); relaxed — they are diagnostics, and
  // each is owned by whichever thread does the counted thing.
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> probe_store_hits_{0};
  std::atomic<std::uint64_t> probe_unknown_{0};
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> check_store_hits_{0};
  std::atomic<std::uint64_t> check_computed_{0};
  std::atomic<std::uint64_t> batches_coalesced_{0};
  std::atomic<std::uint64_t> max_coalesced_{0};
  std::atomic<std::uint64_t> queue_rejected_{0};
  std::atomic<std::uint64_t> connections_opened_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> store_saves_{0};
  std::size_t rows_at_last_save_ = 0;  ///< batcher thread only

  /// log2-bucketed request service times (ns); quantiles are bucket
  /// midpoints, which is plenty for a p50/p99 health read.
  std::atomic<std::uint64_t> latency_buckets_[64] = {};
};

}  // namespace mcmc::serve
