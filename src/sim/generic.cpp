#include "sim/generic.h"

#include <map>
#include <sstream>

#include "core/analysis.h"
#include "util/check.h"

namespace mcmc::sim {

namespace {

using core::Analysis;
using core::EventId;
using core::Loc;
using core::Op;

class GenericMachine final : public Machine {
 public:
  explicit GenericMachine(core::MemoryModel model)
      : model_(std::move(model)) {}

  [[nodiscard]] std::string name() const override {
    return "generic(" + model_.name() + ")";
  }

  [[nodiscard]] std::set<RegValuation> reachable_outcomes(
      const core::Program& program) const override {
    const Analysis an(program);
    State init;
    init.executed.assign(static_cast<std::size_t>(an.num_events()), false);
    std::set<RegValuation> outcomes;
    std::set<std::string> visited;
    explore(an, init, visited, outcomes);
    return outcomes;
  }

 private:
  struct State {
    std::vector<bool> executed;
    std::map<Loc, int> memory;
    std::map<core::Reg, int> regs;

    [[nodiscard]] std::string key() const {
      std::ostringstream os;
      for (const bool b : executed) os << (b ? '1' : '0');
      os << ';';
      for (const auto& [l, v] : memory) os << l << ':' << v << ',';
      os << ';';
      for (const auto& [r, v] : regs) os << r << ':' << v << ',';
      return os.str();
    }
  };

  /// An event may issue once every F-ordered predecessor in its thread
  /// has executed.
  [[nodiscard]] bool can_issue(const Analysis& an, const State& s,
                               EventId e) const {
    if (s.executed[static_cast<std::size_t>(e)]) return false;
    for (EventId p = 0; p < an.num_events(); ++p) {
      if (p == e || !an.po(p, e)) continue;
      if (s.executed[static_cast<std::size_t>(p)]) continue;
      if (model_.must_not_reorder(an, p, e)) return false;
    }
    // Register inputs must be available (their defining instruction
    // executed); this keeps dependent instructions data-ready even under
    // formulas that do not order them.
    const auto& instr = *an.event(e).instr;
    auto ready = [&](core::Reg r) {
      if (r < 0) return true;
      for (EventId p = 0; p < an.num_events(); ++p) {
        if (an.event(p).dst == r) {
          return static_cast<bool>(s.executed[static_cast<std::size_t>(p)]);
        }
      }
      return false;
    };
    if (!ready(instr.addr_reg)) return false;
    if ((instr.op == Op::DepConst || instr.op == Op::Branch ||
         (instr.op == Op::Write && instr.value_from_reg)) &&
        !ready(instr.src)) {
      return false;
    }
    return true;
  }

  void execute(const Analysis& an, State& s, EventId e) const {
    const auto& ev = an.event(e);
    s.executed[static_cast<std::size_t>(e)] = true;
    switch (ev.op) {
      case Op::Write:
        s.memory[ev.loc] = ev.value;
        break;
      case Op::Read: {
        // Forward from the nearest program-order-earlier local write to
        // the same address that has not executed yet; otherwise read the
        // global memory.
        int value = 0;
        bool forwarded = false;
        for (int i = ev.index - 1; i >= 0 && !forwarded; --i) {
          const EventId p = an.event_id(ev.thread, i);
          const auto& pe = an.event(p);
          if (pe.op != Op::Write || pe.loc != ev.loc) continue;
          if (!s.executed[static_cast<std::size_t>(p)]) {
            value = pe.value;
            forwarded = true;
          }
          break;  // nearest same-address write decides either way
        }
        if (!forwarded) {
          const auto it = s.memory.find(ev.loc);
          value = it == s.memory.end() ? 0 : it->second;
        }
        s.regs[ev.instr->dst] = value;
        break;
      }
      case Op::DepConst:
        s.regs[ev.instr->dst] = ev.value;
        break;
      case Op::Fence:
      case Op::Branch:
        break;
    }
  }

  void explore(const Analysis& an, const State& s,
               std::set<std::string>& visited,
               std::set<RegValuation>& outcomes) const {
    if (!visited.insert(s.key()).second) return;
    bool terminal = true;
    for (EventId e = 0; e < an.num_events(); ++e) {
      if (!can_issue(an, s, e)) continue;
      terminal = false;
      State next = s;
      execute(an, next, e);
      explore(an, next, visited, outcomes);
    }
    if (terminal) {
      RegValuation valuation;
      for (const auto& [r, v] : s.regs) valuation[r] = v;
      outcomes.insert(valuation);
    }
  }

  core::MemoryModel model_;
};

}  // namespace

std::unique_ptr<Machine> make_generic_machine(core::MemoryModel model) {
  return std::make_unique<GenericMachine>(std::move(model));
}

}  // namespace mcmc::sim
