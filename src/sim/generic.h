// Generic F-guided reorder machine.
//
// An operational under-approximation for ANY model in the paper's class:
// each thread may execute any pending instruction whose must-not-reorder
// predecessors (program-order-earlier instructions x with F(x, i)) have
// all executed; writes become globally visible immediately (store
// atomicity); a read whose nearest program-order-earlier same-address
// local write has not yet executed forwards that write's value.
//
// Soundness (every machine-reachable outcome is axiomatically allowed) is
// established empirically by the property suite in
// tests/generic_machine_test.cpp across all 90 explored models; the
// machine is intentionally conservative and may under-approximate models
// whose relaxations cannot be explained by in-order-visible reordering
// plus forwarding (it is a validation oracle for the "allowed" direction,
// not a complete semantics).
#pragma once

#include <memory>

#include "core/model.h"
#include "sim/machine.h"

namespace mcmc::sim {

/// Builds the F-guided machine for `model`.  The model is copied.
[[nodiscard]] std::unique_ptr<Machine> make_generic_machine(
    core::MemoryModel model);

}  // namespace mcmc::sim
