#include "sim/machine.h"

namespace mcmc::sim {

bool satisfies(const RegValuation& valuation, const core::Outcome& outcome) {
  for (const auto& [reg, value] : outcome.constraints()) {
    const auto it = valuation.find(reg);
    if (it == valuation.end() || it->second != value) return false;
  }
  return true;
}

bool Machine::outcome_reachable(const core::Program& program,
                                const core::Outcome& outcome) const {
  for (const auto& valuation : reachable_outcomes(program)) {
    if (satisfies(valuation, outcome)) return true;
  }
  return false;
}

}  // namespace mcmc::sim
