// Operational machine interface.
//
// The axiomatic checker (src/core) is validated against independent
// operational models: textbook machines for SC, TSO, PSO and IBM370 whose
// semantics are not derived from the paper's axioms.  A machine
// exhaustively explores its state space and reports every reachable final
// register valuation; the differential test compares those sets with the
// axiomatic allowed-outcome sets.
#pragma once

#include <map>
#include <set>
#include <string>

#include "core/outcome.h"
#include "core/program.h"

namespace mcmc::sim {

/// Final register valuation (only registers written by reads or DepConst).
using RegValuation = std::map<core::Reg, int>;

/// An operational memory model with exhaustive exploration.
class Machine {
 public:
  virtual ~Machine() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Every final register valuation some execution can produce.
  [[nodiscard]] virtual std::set<RegValuation> reachable_outcomes(
      const core::Program& program) const = 0;

  /// True if some reachable valuation satisfies `outcome`.
  [[nodiscard]] bool outcome_reachable(const core::Program& program,
                                       const core::Outcome& outcome) const;
};

/// True if `valuation` satisfies every constraint in `outcome`.
[[nodiscard]] bool satisfies(const RegValuation& valuation,
                             const core::Outcome& outcome);

}  // namespace mcmc::sim
