#include "sim/storebuffer.h"

#include <map>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace mcmc::sim {

namespace {

using core::Loc;
using core::Op;
using core::Reg;

/// One buffered store.
struct BufferedStore {
  Loc loc;
  int value;
};

/// Full machine configuration.
struct State {
  std::vector<int> pc;                             // per thread
  std::vector<std::vector<BufferedStore>> buffer;  // per thread
  std::map<Loc, int> memory;
  std::map<Reg, int> regs;

  [[nodiscard]] std::string key() const {
    std::ostringstream os;
    for (const int p : pc) os << p << ',';
    os << ';';
    for (const auto& b : buffer) {
      for (const auto& s : b) os << s.loc << ':' << s.value << ',';
      os << '|';
    }
    os << ';';
    for (const auto& [l, v] : memory) os << l << ':' << v << ',';
    os << ';';
    for (const auto& [r, v] : regs) os << r << ':' << v << ',';
    return os.str();
  }
};

class StoreBufferMachine final : public Machine {
 public:
  StoreBufferMachine(std::string name, BufferKind kind, bool forwarding)
      : name_(std::move(name)), kind_(kind), forwarding_(forwarding) {}

  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] std::set<RegValuation> reachable_outcomes(
      const core::Program& program) const override {
    program.validate();
    std::set<RegValuation> outcomes;
    std::set<std::string> visited;
    State init;
    init.pc.assign(static_cast<std::size_t>(program.num_threads()), 0);
    init.buffer.assign(static_cast<std::size_t>(program.num_threads()), {});
    explore(program, init, visited, outcomes);
    return outcomes;
  }

 private:
  [[nodiscard]] int load_value(const State& s, int thread, Loc loc,
                               bool& blocked) const {
    blocked = false;
    const auto& buf = s.buffer[static_cast<std::size_t>(thread)];
    // Latest own buffered store to this location, if any.
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      if (it->loc != loc) continue;
      if (forwarding_) return it->value;
      blocked = true;  // IBM370: wait until the store commits
      return 0;
    }
    const auto it = s.memory.find(loc);
    return it == s.memory.end() ? 0 : it->second;
  }

  [[nodiscard]] static Loc resolve_addr(const State& s,
                                        const core::Instruction& instr) {
    if (instr.addr_reg < 0) return instr.loc;
    const auto it = s.regs.find(instr.addr_reg);
    MCMC_CHECK_MSG(it != s.regs.end(), "unresolved address register");
    return it->second;
  }

  [[nodiscard]] static int resolve_store_value(
      const State& s, const core::Instruction& instr) {
    if (!instr.value_from_reg) return instr.value;
    const auto it = s.regs.find(instr.src);
    MCMC_CHECK_MSG(it != s.regs.end(), "unresolved value register");
    return it->second;
  }

  /// Which buffer positions may commit next.
  [[nodiscard]] std::vector<std::size_t> committable(
      const std::vector<BufferedStore>& buf) const {
    std::vector<std::size_t> out;
    if (buf.empty()) return out;
    if (kind_ == BufferKind::Fifo) {
      out.push_back(0);
      return out;
    }
    // PerLocation: the first entry of each location.
    std::map<Loc, bool> seen;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (!seen[buf[i].loc]) {
        seen[buf[i].loc] = true;
        out.push_back(i);
      }
    }
    return out;
  }

  void explore(const core::Program& program, const State& s,
               std::set<std::string>& visited,
               std::set<RegValuation>& outcomes) const {
    if (!visited.insert(s.key()).second) return;

    bool terminal = true;
    // Instruction steps.
    for (int t = 0; t < program.num_threads(); ++t) {
      const auto& th = program.thread(t);
      const int pc = s.pc[static_cast<std::size_t>(t)];
      if (pc >= static_cast<int>(th.size())) continue;
      terminal = false;
      const auto& instr = th[static_cast<std::size_t>(pc)];
      State next = s;
      ++next.pc[static_cast<std::size_t>(t)];
      switch (instr.op) {
        case Op::Read: {
          bool blocked = false;
          const Loc loc = resolve_addr(s, instr);
          const int v = load_value(s, t, loc, blocked);
          if (blocked) continue;
          next.regs[instr.dst] = v;
          break;
        }
        case Op::Write: {
          const Loc loc = resolve_addr(s, instr);
          const int v = resolve_store_value(s, instr);
          if (kind_ == BufferKind::None) {
            next.memory[loc] = v;
          } else {
            next.buffer[static_cast<std::size_t>(t)].push_back({loc, v});
          }
          break;
        }
        case Op::Fence:
          if (!s.buffer[static_cast<std::size_t>(t)].empty()) continue;
          break;
        case Op::DepConst:
          next.regs[instr.dst] = instr.value;
          break;
        case Op::Branch:
          // Straight-line litmus programs: the branch is a marker only.
          break;
      }
      explore(program, next, visited, outcomes);
    }

    // Commit steps.
    for (int t = 0; t < program.num_threads(); ++t) {
      const auto& buf = s.buffer[static_cast<std::size_t>(t)];
      for (const std::size_t i : committable(buf)) {
        terminal = false;
        State next = s;
        auto& nbuf = next.buffer[static_cast<std::size_t>(t)];
        next.memory[buf[i].loc] = buf[i].value;
        nbuf.erase(nbuf.begin() + static_cast<std::ptrdiff_t>(i));
        explore(program, next, visited, outcomes);
      }
    }

    if (terminal) {
      RegValuation valuation;
      for (const auto& [r, v] : s.regs) valuation[r] = v;
      outcomes.insert(valuation);
    }
  }

  std::string name_;
  BufferKind kind_;
  bool forwarding_;
};

}  // namespace

std::unique_ptr<Machine> make_store_buffer_machine(std::string name,
                                                   BufferKind kind,
                                                   bool forwarding) {
  return std::make_unique<StoreBufferMachine>(std::move(name), kind,
                                              forwarding);
}

std::unique_ptr<Machine> sc_machine() {
  return make_store_buffer_machine("SC-interleaving", BufferKind::None, false);
}

std::unique_ptr<Machine> tso_machine() {
  return make_store_buffer_machine("TSO-storebuffer", BufferKind::Fifo, true);
}

std::unique_ptr<Machine> ibm370_machine() {
  return make_store_buffer_machine("IBM370-storebuffer", BufferKind::Fifo,
                                   false);
}

std::unique_ptr<Machine> pso_machine() {
  return make_store_buffer_machine("PSO-storebuffer", BufferKind::PerLocation,
                                   true);
}

}  // namespace mcmc::sim
