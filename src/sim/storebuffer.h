// Parametric store-buffer machine: the textbook operational semantics of
// SC, TSO, PSO and IBM370.
//
//   SC      no store buffer; writes hit memory immediately
//   TSO     per-thread FIFO store buffer with load forwarding
//   IBM370  per-thread FIFO store buffer, NO forwarding: a load of a
//           location buffered by its own thread blocks until the store
//           commits (this is the paper's distinction between IBM370 and
//           TSO/x86 — Figure 1's Test A)
//   PSO     per-thread buffer that keeps FIFO order only per location
//           (stores to different locations commit in any order), with
//           forwarding
//
// A full fence blocks until the thread's buffer drains.  The machine
// explores all interleavings and commit schedules exhaustively with
// memoization, so `reachable_outcomes` is exact.
#pragma once

#include <memory>

#include "sim/machine.h"

namespace mcmc::sim {

/// How buffered stores may commit.
enum class BufferKind {
  None,         ///< no buffering (SC)
  Fifo,         ///< strictly in store order (TSO, IBM370)
  PerLocation,  ///< in order per location only (PSO)
};

/// Builds a store-buffer machine.
[[nodiscard]] std::unique_ptr<Machine> make_store_buffer_machine(
    std::string name, BufferKind kind, bool forwarding);

[[nodiscard]] std::unique_ptr<Machine> sc_machine();
[[nodiscard]] std::unique_ptr<Machine> tso_machine();
[[nodiscard]] std::unique_ptr<Machine> ibm370_machine();
[[nodiscard]] std::unique_ptr<Machine> pso_machine();

}  // namespace mcmc::sim
