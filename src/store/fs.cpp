#include "store/fs.h"

#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

namespace mcmc::store {

namespace {

/// stdio-backed writer with explicit fsync.
class RealWriter final : public FileWriter {
 public:
  explicit RealWriter(std::FILE* f) : f_(f) {}
  ~RealWriter() override { close(); }

  bool write(const char* data, std::size_t len) override {
    if (f_ == nullptr) return false;
    return std::fwrite(data, 1, len, f_) == len;
  }

  bool sync() override {
    if (f_ == nullptr) return false;
    if (std::fflush(f_) != 0) return false;
    return ::fsync(fileno(f_)) == 0;
  }

  bool close() override {
    if (f_ == nullptr) return true;
    std::FILE* f = f_;
    f_ = nullptr;
    return std::fclose(f) == 0;
  }

 private:
  std::FILE* f_;
};

}  // namespace

bool RealFs::read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::unique_ptr<FileWriter> RealFs::create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return nullptr;
  return std::make_unique<RealWriter>(f);
}

bool RealFs::rename(const std::string& from, const std::string& to) {
  return std::rename(from.c_str(), to.c_str()) == 0;
}

bool RealFs::remove(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

bool RealFs::exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

RealFs& RealFs::instance() {
  static RealFs fs;
  return fs;
}

// ---------------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------------

/// Writer wrapper enforcing FaultFs's byte budget and sync plan.  A
/// torn write passes the accepted prefix through to the inner writer —
/// the partial bytes really land, exactly like a crashed process or a
/// full disk.  (Namespace-scoped: it is FaultFs's friend.)
class FaultWriter final : public FileWriter {
 public:
  FaultWriter(std::unique_ptr<FileWriter> inner, FaultFs& fs)
      : inner_(std::move(inner)), fs_(fs) {}

  bool write(const char* data, std::size_t len) override {
    const long budget = fs_.write_budget(len);
    if (budget < 0) return inner_->write(data, len);
    if (budget > 0) {
      (void)inner_->write(data, static_cast<std::size_t>(budget));
    }
    return false;  // short write: only `budget` of `len` bytes landed
  }

  bool sync() override {
    long counter = fs_.sync_calls_;
    const bool fault = fs_.fire(fs_.fail_sync_at, counter);
    fs_.sync_calls_ = counter;
    if (fault) return false;
    return inner_->sync();
  }

  bool close() override { return inner_->close(); }

 private:
  std::unique_ptr<FileWriter> inner_;
  FaultFs& fs_;
};

bool FaultFs::fire(long& plan, long& counter) {
  const long call = counter++;
  if (plan < 0) return false;
  if (call == plan) return true;
  return sticky && call > plan;
}

long FaultFs::write_budget(std::size_t len) {
  if (fail_write_after_bytes < 0) {
    bytes_written_ += static_cast<long>(len);
    return -1;
  }
  if (fired_write_ && sticky) return 0;
  const long before = bytes_written_;
  bytes_written_ += static_cast<long>(len);
  if (bytes_written_ <= fail_write_after_bytes) return fired_write_ ? 0 : -1;
  fired_write_ = true;
  const long budget = fail_write_after_bytes - before;
  return budget > 0 ? budget : 0;
}

bool FaultFs::read_file(const std::string& path, std::string& out) {
  long counter = read_calls_;
  const bool fault = fire(fail_read_at, counter);
  read_calls_ = counter;
  if (fault) return false;
  return inner_.read_file(path, out);
}

std::unique_ptr<FileWriter> FaultFs::create(const std::string& path) {
  long counter = create_calls_;
  const bool fault = fire(fail_create_at, counter);
  create_calls_ = counter;
  if (fault) return nullptr;
  auto inner = inner_.create(path);
  if (inner == nullptr) return nullptr;
  return std::make_unique<FaultWriter>(std::move(inner), *this);
}

bool FaultFs::rename(const std::string& from, const std::string& to) {
  long counter = rename_calls_;
  const bool fault = fire(fail_rename_at, counter);
  rename_calls_ = counter;
  if (fault) return false;
  return inner_.rename(from, to);
}

bool FaultFs::remove(const std::string& path) { return inner_.remove(path); }

bool FaultFs::exists(const std::string& path) { return inner_.exists(path); }

}  // namespace mcmc::store
