// Injectable filesystem layer for the persistent verdict store.
//
// Every byte the store reads or writes goes through this interface, so
// the failure modes that matter for crash safety — short writes, a
// full disk, a failing fsync, a rename that never lands, a process
// killed between any two syscalls — can be injected deterministically
// by tests instead of hoped-for in production.  RealFs is the thin
// POSIX implementation; FaultFs wraps any Fs and fails operation N of
// a class on demand, leaving exactly the partial state a real fault
// would (a torn write really does leave the prefix on disk).
//
// The contract is error-code-shaped, not exception-shaped: filesystem
// failure is an expected input to the recovery logic, and callers
// (store::VerdictStore) must degrade gracefully on every `false`.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace mcmc::store {

/// A write handle: append bytes, optionally fsync, then close.  Any
/// method returning false means the data's durability is unknown —
/// callers must treat the file as garbage (and the store's atomic
/// commit protocol guarantees such garbage never carries the final
/// name).
class FileWriter {
 public:
  virtual ~FileWriter() = default;
  [[nodiscard]] virtual bool write(const char* data, std::size_t len) = 0;
  [[nodiscard]] virtual bool sync() = 0;
  /// Flushes and closes; returns false if either fails.  Idempotent.
  virtual bool close() = 0;
};

/// Minimal filesystem surface the store needs.  All operations return
/// success flags; none throw.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Reads the whole file into `out`; false if absent or unreadable.
  [[nodiscard]] virtual bool read_file(const std::string& path,
                                       std::string& out) = 0;
  /// Creates (truncates) `path` for writing; null on failure.
  [[nodiscard]] virtual std::unique_ptr<FileWriter> create(
      const std::string& path) = 0;
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  [[nodiscard]] virtual bool rename(const std::string& from,
                                    const std::string& to) = 0;
  [[nodiscard]] virtual bool remove(const std::string& path) = 0;
  [[nodiscard]] virtual bool exists(const std::string& path) = 0;
};

/// The real POSIX filesystem.
class RealFs final : public Fs {
 public:
  [[nodiscard]] bool read_file(const std::string& path,
                               std::string& out) override;
  [[nodiscard]] std::unique_ptr<FileWriter> create(
      const std::string& path) override;
  [[nodiscard]] bool rename(const std::string& from,
                            const std::string& to) override;
  [[nodiscard]] bool remove(const std::string& path) override;
  [[nodiscard]] bool exists(const std::string& path) override;

  /// Process-wide instance (the default when callers pass no Fs).
  static RealFs& instance();
};

/// Deterministic fault injection over a wrapped Fs.
///
/// Each operation class has a countdown: `fail_write_after_bytes`
/// accepts that many bytes and then fails (the accepted prefix IS
/// written through — a torn write), `fail_sync_at` / `fail_rename_at` /
/// `fail_create_at` / `fail_read_at` fail the Nth call (0-based) of
/// that class.  Countdowns at -1 never fire.  Counters keep advancing
/// after a fault, so "every sync fails from now on" is sync_at=0 with
/// `sticky` set.
class FaultFs final : public Fs {
 public:
  explicit FaultFs(Fs& inner) : inner_(inner) {}

  // ---- Fault plan (set before exercising the store). ----
  long fail_write_after_bytes = -1;  ///< short/torn write, ENOSPC-style
  long fail_sync_at = -1;            ///< Nth sync() call fails
  long fail_create_at = -1;          ///< Nth create() returns null
  long fail_rename_at = -1;          ///< Nth rename() fails (no replace)
  long fail_read_at = -1;            ///< Nth read_file() fails
  bool sticky = false;               ///< once fired, keep failing

  // ---- Accounting (reads for assertions). ----
  [[nodiscard]] long writes_accepted_bytes() const { return bytes_written_; }
  [[nodiscard]] long syncs() const { return sync_calls_; }
  [[nodiscard]] long creates() const { return create_calls_; }
  [[nodiscard]] long renames() const { return rename_calls_; }

  [[nodiscard]] bool read_file(const std::string& path,
                               std::string& out) override;
  [[nodiscard]] std::unique_ptr<FileWriter> create(
      const std::string& path) override;
  [[nodiscard]] bool rename(const std::string& from,
                            const std::string& to) override;
  [[nodiscard]] bool remove(const std::string& path) override;
  [[nodiscard]] bool exists(const std::string& path) override;

 private:
  friend class FaultWriter;

  [[nodiscard]] bool fire(long& plan, long& counter);
  /// Byte-granular write budget: how many of `len` bytes to accept
  /// (the rest are dropped — torn); negative means accept all.
  [[nodiscard]] long write_budget(std::size_t len);

  Fs& inner_;
  long bytes_written_ = 0;
  long sync_calls_ = 0;
  long create_calls_ = 0;
  long rename_calls_ = 0;
  long read_calls_ = 0;
  bool fired_write_ = false;
};

}  // namespace mcmc::store
