#include "store/verdict_store.h"

#include <cstring>
#include <utility>

#include "util/bytes.h"
#include "util/check.h"

namespace mcmc::store {

namespace {

constexpr char kMagic[8] = {'M', 'C', 'V', 'S', 'T', 'O', 'R', '1'};
constexpr std::size_t kHeaderBytes = 40;  // checksummed prefix, see save()
constexpr std::uint32_t kTagVerdicts = 0x44524556;    // "VERD"
constexpr std::uint32_t kTagCheckpoint = 0x54504b43;  // "CKPT"

Fs& resolve(Fs* fs) { return fs != nullptr ? *fs : RealFs::instance(); }

void append_section(std::string& out, std::uint32_t tag,
                    const std::string& payload) {
  util::append_u32(out, tag);
  util::append_u32(out, 0);
  util::append_u64(out, payload.size());
  util::append_key128(out, util::hash128(payload));
  out += payload;
}

std::vector<std::uint64_t> read_words(util::ByteReader& r) {
  const std::uint64_t count = r.read_u64();
  if (count > r.remaining() / 8) {
    r.fail();
    return {};
  }
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) w = r.read_u64();
  return words;
}

void append_words(std::string& out, const std::vector<std::uint64_t>& words) {
  util::append_u64(out, words.size());
  for (std::uint64_t w : words) util::append_u64(out, w);
}

}  // namespace

std::string model_store_key(const core::MemoryModel& model) {
  if (model.formula().has_custom()) return {};
  return "F:" + model.formula().to_string();
}

StoreMeta StoreMeta::from_models(const std::vector<core::MemoryModel>& models) {
  StoreMeta meta;
  meta.model_keys.reserve(models.size());
  for (const auto& m : models) meta.model_keys.push_back(model_store_key(m));
  return meta;
}

util::Key128 StoreMeta::zoo_fingerprint() const {
  // Hash the ordered keys with their lengths so no two key lists share
  // a byte serialization (keys may contain any byte, so a separator
  // alone would be ambiguous).
  std::string bytes;
  util::append_u64(bytes, model_keys.size());
  for (const auto& key : model_keys) {
    util::append_u64(bytes, key.size());
    bytes += key;
  }
  return util::hash128(bytes);
}

std::string to_string(OpenOutcome outcome) {
  switch (outcome) {
    case OpenOutcome::Fresh: return "fresh";
    case OpenOutcome::Loaded: return "loaded";
    case OpenOutcome::VersionMismatch: return "version-mismatch";
    case OpenOutcome::SchemaMismatch: return "schema-mismatch";
    case OpenOutcome::ZooMismatch: return "zoo-mismatch";
    case OpenOutcome::Corrupt: return "corrupt";
  }
  MCMC_UNREACHABLE("bad OpenOutcome");
}

VerdictStore::VerdictStore(StoreMeta meta) : meta_(std::move(meta)) {
  words_ = (static_cast<std::size_t>(meta_.num_models()) + 63) / 64;
  for (int i = 0; i < meta_.num_models(); ++i) {
    const std::string& key = meta_.model_keys[static_cast<std::size_t>(i)];
    if (!key.empty()) column_.emplace(key, i);
  }
}

int VerdictStore::column_of(const std::string& model_key) const {
  if (model_key.empty()) return -1;
  auto it = column_.find(model_key);
  return it == column_.end() ? -1 : it->second;
}

std::uint32_t VerdictStore::row_of(util::Key128 test) {
  auto [it, inserted] = index_.emplace(
      test, static_cast<std::uint32_t>(index_.size()));
  if (inserted) {
    valid_.resize(valid_.size() + words_, 0);
    bits_.resize(bits_.size() + words_, 0);
  }
  return it->second;
}

std::optional<bool> VerdictStore::probe_bit_locked(util::Key128 test,
                                                   int col) const {
  MCMC_CHECK_MSG(col >= 0 && col < num_models(), "store column out of range");
  auto it = index_.find(test);
  if (it != index_.end()) {
    const std::size_t base = static_cast<std::size_t>(it->second) * words_;
    const std::size_t word = static_cast<std::size_t>(col) / 64;
    const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(col) % 64);
    if ((valid_[base + word] & mask) != 0) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return (bits_[base + word] & mask) != 0;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

bool VerdictStore::probe_row_locked(util::Key128 test,
                                    const std::vector<int>& cols,
                                    std::vector<std::uint64_t>& out) const {
  out.assign((cols.size() + 63) / 64, 0);
  auto it = index_.find(test);
  if (it != index_.end()) {
    const std::size_t base = static_cast<std::size_t>(it->second) * words_;
    bool all = true;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const int col = cols[i];
      MCMC_CHECK_MSG(col >= 0 && col < num_models(),
                     "store column out of range");
      const std::size_t word = static_cast<std::size_t>(col) / 64;
      const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(col) % 64);
      if ((valid_[base + word] & mask) == 0) {
        all = false;
        break;
      }
      if ((bits_[base + word] & mask) != 0) out[i / 64] |= 1ULL << (i % 64);
    }
    if (all) {
      hits_.fetch_add(cols.size(), std::memory_order_relaxed);
      return true;
    }
  }
  misses_.fetch_add(cols.size(), std::memory_order_relaxed);
  return false;
}

void VerdictStore::set_bit_locked(util::Key128 test, int col, bool verdict) {
  MCMC_CHECK_MSG(col >= 0 && col < num_models(), "store column out of range");
  const std::size_t base = static_cast<std::size_t>(row_of(test)) * words_;
  const std::size_t word = static_cast<std::size_t>(col) / 64;
  const std::uint64_t mask = 1ULL << (static_cast<std::size_t>(col) % 64);
  valid_[base + word] |= mask;
  if (verdict) {
    bits_[base + word] |= mask;
  } else {
    bits_[base + word] &= ~mask;
  }
}

std::string VerdictStore::serialize() const {
  std::string verd;
  util::append_u64(verd, index_.size());
  util::append_u32(verd, static_cast<std::uint32_t>(words_));
  util::append_u32(verd, 0);
  // Rows in index order so equal stores serialize identically
  // regardless of hash-map iteration order (the recovery tests compare
  // files bit for bit).
  std::vector<const std::pair<const util::Key128, std::uint32_t>*> rows(
      index_.size());
  for (const auto& entry : index_) rows[entry.second] = &entry;
  for (const auto* entry : rows) {
    util::append_key128(verd, entry->first);
    const std::size_t base = static_cast<std::size_t>(entry->second) * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      util::append_u64(verd, valid_[base + w]);
    }
    for (std::size_t w = 0; w < words_; ++w) {
      util::append_u64(verd, bits_[base + w]);
    }
  }

  std::string out;
  out.append(kMagic, sizeof kMagic);
  util::append_u32(out, kStoreFormatVersion);
  util::append_u32(out, static_cast<std::uint32_t>(meta_.num_models()));
  util::append_key128(out, meta_.zoo_fingerprint());
  util::append_u32(out, checkpoint_.has_value() ? 2u : 1u);  // section count
  util::append_u32(out, meta_.schema);  // was reserved-as-0 before schema v2
  MCMC_CHECK_MSG(out.size() == kHeaderBytes, "store header layout drifted");
  util::append_key128(out, util::hash128(out.data(), kHeaderBytes));

  append_section(out, kTagVerdicts, verd);
  if (checkpoint_.has_value()) {
    const StreamCheckpoint& ck = *checkpoint_;
    std::string ckpt;
    util::append_u64(ckpt, ck.chunks);
    util::append_u64(ckpt, ck.tests_streamed);
    util::append_u64(ckpt, ck.novel_tests);
    util::append_u64(ckpt, ck.duplicate_tests);
    util::append_u64(ckpt, ck.seen_keys.size());
    for (const auto& k : ck.seen_keys) util::append_key128(ckpt, k);
    append_words(ckpt, ck.source_cursor);
    append_words(ckpt, ck.sink_state);
    append_section(out, kTagCheckpoint, ckpt);
  }
  return out;
}

bool VerdictStore::save(const std::string& path, Fs* fs, std::string* error) {
  Fs& f = resolve(fs);
  const std::string tmp = path + ".tmp";
  // Serialize under the shared view: concurrent probes proceed, but an
  // appender is excluded, so the committed bytes are one consistent
  // snapshot (never a half-written row).
  std::string bytes;
  {
    util::SharedLock lock(mu_);
    bytes = serialize();
  }

  auto set_error = [&](const char* what) {
    if (error != nullptr) *error = std::string(what) + ": " + tmp;
  };

  auto writer = f.create(tmp);
  if (writer == nullptr) {
    set_error("store save: create failed");
    return false;
  }
  // Any failure below leaves a partial temp file; remove it so a later
  // reader never sees it and a later save starts clean.  `path` itself
  // is only ever touched by the atomic rename at the end.
  if (!writer->write(bytes.data(), bytes.size()) || !writer->sync() ||
      !writer->close()) {
    set_error("store save: write failed");
    (void)f.remove(tmp);
    return false;
  }
  if (!f.rename(tmp, path)) {
    set_error("store save: rename failed");
    (void)f.remove(tmp);
    return false;
  }
  return true;
}

OpenResult VerdictStore::open(const std::string& path, StoreMeta meta,
                              Fs* fs) {
  Fs& f = resolve(fs);
  OpenResult result;
  result.store = std::make_unique<VerdictStore>(std::move(meta));
  VerdictStore& store = *result.store;

  if (!f.exists(path)) {
    result.outcome = OpenOutcome::Fresh;
    result.detail = "no store file";
    return result;
  }
  std::string bytes;
  if (!f.read_file(path, bytes)) {
    result.outcome = OpenOutcome::Fresh;
    result.detail = "store file unreadable";
    return result;
  }

  // Every reject below that indicates damage (rather than a legitimate
  // other-version or other-zoo file) quarantines the file so the next
  // save starts from a clean slate and the evidence survives for
  // inspection.
  auto corrupt = [&](const std::string& why) {
    result.outcome = OpenOutcome::Corrupt;
    result.detail = why;
    if (!f.rename(path, path + ".corrupt")) (void)f.remove(path);
    return std::move(result);
  };

  util::ByteReader r(bytes);
  const char* magic = r.read_bytes(sizeof kMagic);
  if (magic == nullptr || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return corrupt("bad magic");
  }
  const std::uint32_t version = r.read_u32();
  const std::uint32_t num_models = r.read_u32();
  const util::Key128 zoo = r.read_key128();
  const std::uint32_t section_count = r.read_u32();
  const std::uint32_t schema = r.read_u32();
  const util::Key128 header_sum = r.read_key128();
  if (!r.ok()) return corrupt("truncated header");
  if (header_sum != util::hash128(bytes.data(), kHeaderBytes)) {
    return corrupt("header checksum mismatch");
  }
  if (version != kStoreFormatVersion) {
    result.outcome = OpenOutcome::VersionMismatch;
    result.detail = "store format version " + std::to_string(version);
    return result;
  }
  if (schema != store.meta_.schema) {
    // The entries were keyed by an older generator/canonicalization
    // (pre-schema files wrote 0 here): every fingerprint and cursor in
    // them may mean something else now, so none of it is adopted.
    result.outcome = OpenOutcome::SchemaMismatch;
    result.detail = "generator schema " + std::to_string(schema) + " (want " +
                    std::to_string(store.meta_.schema) + ")";
    return result;
  }
  if (num_models != static_cast<std::uint32_t>(store.num_models()) ||
      zoo != store.meta_.zoo_fingerprint()) {
    result.outcome = OpenOutcome::ZooMismatch;
    result.detail = "model zoo fingerprint differs";
    return result;
  }

  // Population touches the guarded maps/slabs; this store is freshly
  // constructed and unshared, but the annotations don't know that, so
  // hold the writer lock (uncontended) for the section loop.
  {
    util::ExclusiveLock lock(store.mu_);
    for (std::uint32_t s = 0; s < section_count; ++s) {
      const std::uint32_t tag = r.read_u32();
      (void)r.read_u32();  // reserved
      const std::uint64_t payload_len = r.read_u64();
      const util::Key128 payload_sum = r.read_key128();
      if (!r.ok() || payload_len > r.remaining()) {
        return corrupt("truncated section header");
      }
      const char* payload = r.read_bytes(static_cast<std::size_t>(payload_len));
      if (payload == nullptr ||
          payload_sum !=
              util::hash128(payload, static_cast<std::size_t>(payload_len))) {
        return corrupt("section checksum mismatch");
      }
      util::ByteReader p(payload, static_cast<std::size_t>(payload_len));
      if (tag == kTagVerdicts) {
        const std::uint64_t entry_count = p.read_u64();
        const std::uint32_t words = p.read_u32();
        (void)p.read_u32();  // reserved
        if (words != store.words_ ||
            entry_count > p.remaining() / (16 + 16 * store.words_)) {
          return corrupt("verdict section geometry");
        }
        store.index_.reserve(static_cast<std::size_t>(entry_count));
        store.valid_.reserve(static_cast<std::size_t>(entry_count) *
                             store.words_);
        store.bits_.reserve(static_cast<std::size_t>(entry_count) *
                            store.words_);
        for (std::uint64_t i = 0; i < entry_count; ++i) {
          const util::Key128 key = p.read_key128();
          const std::size_t base =
              static_cast<std::size_t>(store.row_of(key)) * store.words_;
          for (std::size_t w = 0; w < store.words_; ++w) {
            store.valid_[base + w] = p.read_u64();
          }
          for (std::size_t w = 0; w < store.words_; ++w) {
            store.bits_[base + w] = p.read_u64();
          }
        }
        if (store.index_.size() != entry_count) p.fail();  // duplicate keys
      } else if (tag == kTagCheckpoint) {
        StreamCheckpoint ck;
        ck.chunks = p.read_u64();
        ck.tests_streamed = p.read_u64();
        ck.novel_tests = p.read_u64();
        ck.duplicate_tests = p.read_u64();
        const std::uint64_t seen = p.read_u64();
        if (seen > p.remaining() / 16) {
          p.fail();
        } else {
          ck.seen_keys.resize(static_cast<std::size_t>(seen));
          for (auto& k : ck.seen_keys) k = p.read_key128();
        }
        ck.source_cursor = read_words(p);
        ck.sink_state = read_words(p);
        if (p.ok()) store.checkpoint_ = std::move(ck);
      }
      // Unknown tags are impossible at a matching format version; treat
      // them as damage rather than skipping silently.
      if (tag != kTagVerdicts && tag != kTagCheckpoint) p.fail();
      if (!p.ok() || p.remaining() != 0) {
        store.index_.clear();
        store.valid_.clear();
        store.bits_.clear();
        store.checkpoint_.reset();
        return corrupt("malformed section payload");
      }
    }
    if (r.remaining() != 0) {
      store.index_.clear();
      store.valid_.clear();
      store.bits_.clear();
      store.checkpoint_.reset();
      return corrupt("trailing bytes after sections");
    }
  }

  result.outcome = OpenOutcome::Loaded;
  result.detail = std::to_string(store.size()) + " entries";
  return result;
}

}  // namespace mcmc::store
