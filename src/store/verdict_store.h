// Crash-safe persistent verdict store.
//
// The engine's canonical-key verdict cache dies with the process, so
// every run re-derives all ~445k canonical-class verdicts and an
// interrupted full-space stream restarts from zero.  This subsystem is
// the cache that outlives the process: a versioned, checksummed file
// mapping 128-bit canonical test fingerprints (util::Key128) to packed
// per-model verdict words, plus an optional stream checkpoint so an
// exhaustive run can resume from its last sealed chunk.
//
// Durability model (see README "Persistence guarantees"):
//
//   * Atomic commit: save() writes `path + ".tmp"`, fsyncs, and
//     renames over `path`.  A crash at ANY point leaves either the old
//     complete file or the new complete file at `path` — never a
//     partial one (a leftover .tmp is inert and overwritten next save).
//   * Checksums: the header and every section payload carry a 128-bit
//     content hash; load verifies all of them before using any byte,
//     so truncation, torn writes, and bit flips are detected, not
//     propagated into verdicts.
//   * Invalidation: the header carries a fingerprint of the model zoo
//     the verdict columns were computed against AND the
//     generator/canonicalization schema version they were keyed under
//     (kSpaceSchemaVersion).  Open with a different zoo or schema and
//     the file self-invalidates (ignored, rebuilt on next save) — a
//     stale cache can never serve a verdict for the wrong model, and a
//     cache written under an older fingerprint/space schema can never
//     mix its rows into a newer run.
//   * Graceful degradation: a corrupt file is quarantined (renamed to
//     `path + ".corrupt"`) and open() returns an empty store; callers
//     recompute and repopulate.  Recovery never throws, never crashes,
//     and never yields a wrong verdict — the worst case is doing the
//     work the cache would have saved.
//
// All filesystem access goes through store::Fs, so every recovery path
// above is exercised by fault injection (store/fs.h) in the dedicated
// store test suites.
//
// Thread-safety: shared read, serialized append/commit — and the
// contract is compile-time checked.  The store's reader-writer lock is
// exposed as mu(); the `_locked` methods carry REQUIRES_SHARED (probes)
// or REQUIRES (appends) on it, so Clang Thread Safety Analysis rejects
// a probe without at least a shared hold and an append without the
// exclusive hold.  The convenience wrappers (probe_bit, probe_row,
// set_bit, checkpoint accessors) are EXCLUDES(mu()): they take the
// right lock themselves, one call at a time.  Batch writers (the
// engine's chunk write-back) hold one util::ExclusiveLock over
// mu() and call set_bit_locked per cell — one acquisition per batch.
//
// Any number of threads may probe concurrently — litmusd's
// per-connection readers do exactly that — while appends serialize
// through the exclusive lock; save() may run concurrently with probes
// (it serializes under the same shared view) but excludes appends, so
// a commit is always a consistent snapshot.  Hit/miss counters are
// relaxed atomics outside the lock.  open() constructs fresh state
// (populating it under the exclusive lock it has sole access to);
// column_of reads post-construction immutable state and needs no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.h"
#include "store/fs.h"
#include "util/hash128.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace mcmc::store {

/// On-disk format version; bumped on any layout change.  A file with a
/// different version is ignored (not quarantined — it belongs to a
/// different build, not to bit rot).
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// Generator/canonicalization schema the verdict rows were computed
/// under; bumped whenever the meaning of a canonical fingerprint or of
/// a stream cursor changes (new space dimensions, fingerprint layout
/// changes) even though the file layout itself does not.  The zoo
/// fingerprint alone cannot catch that drift — the models may be
/// identical while every key means something else.  Files written
/// before this field existed carry 0 in the (then reserved) header
/// slot, so they self-invalidate against any real version.
///   2 = dependency-extended generator (data/ctrl dep slots, digest-
///       pinned stream cursors); pre-dep stores wrote 0.
inline constexpr std::uint32_t kSpaceSchemaVersion = 2;

/// The engine-compatible cache key of a model: the same string the
/// VerdictEngine keys its persistent cache by, so store columns and
/// engine model classes match by string equality.  Empty for formulas
/// with custom predicates — their semantics may observe raw identity,
/// so their verdicts are never persisted.
[[nodiscard]] std::string model_store_key(const core::MemoryModel& model);

/// Identity of a store: the ordered model list its verdict columns are
/// computed against.  Two stores are interchangeable iff their zoo
/// fingerprints match (the fingerprint hashes the ordered keys, so
/// reordering, renaming a formula, or resizing the zoo all invalidate).
struct StoreMeta {
  std::vector<std::string> model_keys;
  /// Schema the entries are valid under (see kSpaceSchemaVersion);
  /// callers normally leave the default.
  std::uint32_t schema = kSpaceSchemaVersion;

  [[nodiscard]] static StoreMeta from_models(
      const std::vector<core::MemoryModel>& models);

  [[nodiscard]] int num_models() const {
    return static_cast<int>(model_keys.size());
  }
  [[nodiscard]] util::Key128 zoo_fingerprint() const;
};

/// Resume state of an interrupted stream: everything run_stream needs
/// to continue from the first unsealed chunk — cumulative counters,
/// the cross-chunk dedup set, the source's serialized cursor, and an
/// opaque sink blob (the Theorem harness stores its fold state there).
struct StreamCheckpoint {
  std::uint64_t chunks = 0;
  std::uint64_t tests_streamed = 0;
  std::uint64_t novel_tests = 0;
  std::uint64_t duplicate_tests = 0;
  std::vector<util::Key128> seen_keys;
  std::vector<std::uint64_t> source_cursor;
  std::vector<std::uint64_t> sink_state;
};

/// Checkpoint/resume configuration for VerdictEngine::run_stream (see
/// StreamOptions::persistence).  The engine seals every
/// `checkpoint_every_chunks` chunks: it snapshots the source cursor
/// and dedup set, asks the sink for its state, and commits the whole
/// store file atomically.  With `resume`, a checkpoint present in the
/// attached store restores all of that before the first chunk.
struct StreamPersistence {
  std::string path;                   ///< store file (empty = disabled)
  Fs* fs = nullptr;                   ///< null = the real filesystem
  int checkpoint_every_chunks = 64;
  bool resume = false;
  /// Serializes the sink's fold state into the checkpoint.
  std::function<void(std::vector<std::uint64_t>&)> save_sink;
  /// Restores sink state from a checkpoint; returning false aborts the
  /// resume (the run restarts from scratch instead of diverging).
  std::function<bool(const std::vector<std::uint64_t>&)> restore_sink;
  /// Test hook: after this many successful seals, throw
  /// StreamInterrupted — the file is then bit-for-bit what a SIGKILL
  /// right after the atomic rename leaves behind.  -1 never fires.
  int kill_after_seals = -1;
};

/// Thrown by the kill_after_seals test hook (and nothing else): lets
/// recovery tests produce a mid-stream interruption whose on-disk
/// state is exactly a kill's.
struct StreamInterrupted : std::runtime_error {
  explicit StreamInterrupted(const std::string& what)
      : std::runtime_error(what) {}
};

/// How open() classified the file it found.
enum class OpenOutcome {
  Fresh,            ///< no file (or unreadable): empty store
  Loaded,           ///< parsed, verified, adopted
  VersionMismatch,  ///< other format version: ignored, not quarantined
  SchemaMismatch,   ///< other generator/fingerprint schema: self-invalidated
  ZooMismatch,      ///< different model zoo: self-invalidated
  Corrupt,          ///< checksum/structure failure: quarantined
};

[[nodiscard]] std::string to_string(OpenOutcome outcome);

class VerdictStore;

struct OpenResult {
  std::unique_ptr<VerdictStore> store;  ///< never null (empty on failure)
  OpenOutcome outcome = OpenOutcome::Fresh;
  std::string detail;                   ///< human-readable diagnosis
};

/// The in-memory store: canonical test fingerprint -> one packed row
/// of per-model verdict bits plus a validity mask (rows fill in
/// model-subset order: the extremes stream contributes 2 columns, the
/// full sweep the rest).
class VerdictStore {
 public:
  explicit VerdictStore(StoreMeta meta);

  /// Loads `path` (verifying version, zoo fingerprint, and every
  /// checksum) or returns an empty store, per the durability model in
  /// the header comment.  Never throws on bad input.
  [[nodiscard]] static OpenResult open(const std::string& path,
                                       StoreMeta meta, Fs* fs = nullptr);

  /// Atomically commits the store (entries + checkpoint, if any) to
  /// `path`.  False on any filesystem failure; `path` then still holds
  /// whatever complete file it held before.
  [[nodiscard]] bool save(const std::string& path, Fs* fs = nullptr,
                          std::string* error = nullptr) EXCLUDES(mu_);

  [[nodiscard]] const StoreMeta& meta() const { return meta_; }
  [[nodiscard]] int num_models() const { return meta_.num_models(); }
  [[nodiscard]] std::size_t size() const EXCLUDES(mu_) {
    util::SharedLock lock(mu_);
    return index_.size();
  }
  [[nodiscard]] std::size_t words_per_row() const { return words_; }

  /// Column of the model with this engine cache key; -1 if absent
  /// (unknown model, or the empty custom-predicate key).
  [[nodiscard]] int column_of(const std::string& model_key) const;

  /// The store's reader-writer lock, for callers batching many
  /// `_locked` calls under one acquisition (util::SharedLock for
  /// probes, util::ExclusiveLock for appends).
  [[nodiscard]] util::SharedMutex& mu() const RETURN_CAPABILITY(mu_) {
    return mu_;
  }

  // ---- The locking contract, in the types: probes require at least a
  // shared hold of mu(), appends require the exclusive hold. ----

  /// The verdict bit of (test, column), if present.  Counts one cell
  /// hit or miss.
  [[nodiscard]] std::optional<bool> probe_bit_locked(util::Key128 test,
                                                     int col) const
      REQUIRES_SHARED(mu_);

  /// Full-row probe: true iff every column in `cols` is present, in
  /// which case bit i of `out` (indexed like `cols`) is column
  /// cols[i]'s verdict.  Counts |cols| hits on success, |cols| misses
  /// otherwise.
  [[nodiscard]] bool probe_row_locked(util::Key128 test,
                                      const std::vector<int>& cols,
                                      std::vector<std::uint64_t>& out) const
      REQUIRES_SHARED(mu_);

  /// Appends (or overwrites) one verdict bit.
  void set_bit_locked(util::Key128 test, int col, bool verdict) REQUIRES(mu_);

  // ---- Lock-taking wrappers: one acquisition per call. ----

  [[nodiscard]] std::optional<bool> probe_bit(util::Key128 test, int col) const
      EXCLUDES(mu_) {
    util::SharedLock lock(mu_);
    return probe_bit_locked(test, col);
  }

  [[nodiscard]] bool probe_row(util::Key128 test, const std::vector<int>& cols,
                               std::vector<std::uint64_t>& out) const
      EXCLUDES(mu_) {
    util::SharedLock lock(mu_);
    return probe_row_locked(test, cols, out);
  }

  void set_bit(util::Key128 test, int col, bool verdict) EXCLUDES(mu_) {
    util::ExclusiveLock lock(mu_);
    set_bit_locked(test, col, verdict);
  }

  /// Cell-level accounting since construction (or reset_counters):
  /// the store hit rate bench_exhaustive reports is
  /// hits / (hits + misses).  Counted with relaxed atomics, so
  /// concurrent probes race only on who counts first, never on the
  /// totals.
  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  void reset_counters() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  // ---- Stream checkpoint (persisted alongside the entries).  The
  // getter hands out a copy: the stored value lives under mu_, so a
  // reference would dangle the moment an appender ran. ----
  [[nodiscard]] std::optional<StreamCheckpoint> checkpoint() const
      EXCLUDES(mu_) {
    util::SharedLock lock(mu_);
    return checkpoint_;
  }
  void set_checkpoint(StreamCheckpoint ck) EXCLUDES(mu_) {
    util::ExclusiveLock lock(mu_);
    checkpoint_ = std::move(ck);
  }
  void clear_checkpoint() EXCLUDES(mu_) {
    util::ExclusiveLock lock(mu_);
    checkpoint_.reset();
  }

 private:
  [[nodiscard]] std::uint32_t row_of(util::Key128 test) REQUIRES(mu_);
  [[nodiscard]] std::string serialize() const REQUIRES_SHARED(mu_);

  StoreMeta meta_;
  std::size_t words_ = 0;  ///< words per row (and per validity mask)
  /// Readers-writer lock implementing the header contract: probes,
  /// size(), and save()'s serialization hold it shared; appends and
  /// the checkpoint setters hold it exclusive.
  mutable util::SharedMutex mu_;
  std::unordered_map<util::Key128, std::uint32_t, util::Key128Hash> index_
      GUARDED_BY(mu_);
  std::vector<std::uint64_t> valid_ GUARDED_BY(mu_);  ///< size() x words_
  std::vector<std::uint64_t> bits_ GUARDED_BY(mu_);   ///< size() x words_
  std::unordered_map<std::string, int> column_;  // immutable post-ctor
  std::optional<StreamCheckpoint> checkpoint_ GUARDED_BY(mu_);
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace mcmc::store
