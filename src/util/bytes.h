// Fixed-layout byte serialization for the on-disk store formats.
//
// Everything the persistence layer writes is a sequence of fixed-width
// little-endian integers: explicit width, explicit byte order, no
// padding, no in-memory struct images — so a file written on one
// machine parses identically on any other, and a parser can
// bounds-check every field before touching it.  ByteReader is the
// load-side half: it never reads past the buffer, and instead of
// throwing it latches a failure flag the caller checks once at the end
// (corrupted input is an expected case for the store, not a logic
// error).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/hash128.h"

namespace mcmc::util {

inline void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(buf, 4);
}

inline void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(buf, 8);
}

inline void append_key128(std::string& out, const Key128& k) {
  append_u64(out, k.hi);
  append_u64(out, k.lo);
}

/// Bounds-checked sequential reader over an immutable byte buffer.
/// Every accessor returns a value (zero on failure) and any
/// out-of-bounds read marks the reader failed; callers validate with
/// ok() after parsing a section instead of checking every field.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint32_t read_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ - 4 + i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t read_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ - 8 + i]))
           << (8 * i);
    }
    return v;
  }

  Key128 read_key128() {
    Key128 k;
    k.hi = read_u64();
    k.lo = read_u64();
    return k;
  }

  /// Pointer to `n` raw bytes at the cursor, or nullptr (and failure)
  /// when fewer remain.
  const char* read_bytes(std::size_t n) {
    if (!take(n)) return nullptr;
    return data_ + (pos_ - n);
  }

  /// Marks the reader failed (a caller-detected semantic error, e.g. a
  /// count field that implies more bytes than the section holds).
  void fail() { ok_ = false; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mcmc::util
