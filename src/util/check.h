// Contract-checking helpers (C++ Core Guidelines I.6/I.8 style).
//
// MCMC_REQUIRE  -- precondition on a public API; throws std::invalid_argument.
// MCMC_CHECK    -- internal invariant; throws std::logic_error.
// MCMC_UNREACHABLE -- marks impossible control flow.
//
// These are always-on (not asserts): the library is a verification tool, so
// a silently-wrong answer is strictly worse than an exception.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcmc::util {

[[noreturn]] inline void fail_require(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_check(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace mcmc::util

#define MCMC_REQUIRE(expr)                                              \
  do {                                                                  \
    if (!(expr)) ::mcmc::util::fail_require(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MCMC_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) ::mcmc::util::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define MCMC_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) ::mcmc::util::fail_check(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define MCMC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) ::mcmc::util::fail_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define MCMC_UNREACHABLE(msg) \
  ::mcmc::util::fail_check("unreachable", __FILE__, __LINE__, (msg))
