#include "util/dot.h"

namespace mcmc::util {

DotGraph::DotGraph(std::string name) : name_(std::move(name)) {}

std::string DotGraph::quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void DotGraph::add_node(const std::string& id, const std::string& label) {
  std::string line = "  " + quote(id);
  if (!label.empty()) line += " [label=" + quote(label) + "]";
  lines_.push_back(line + ";");
}

void DotGraph::add_edge(const std::string& from, const std::string& to,
                        const std::string& label) {
  std::string line = "  " + quote(from) + " -> " + quote(to);
  if (!label.empty()) line += " [label=" + quote(label) + "]";
  lines_.push_back(line + ";");
}

std::string DotGraph::to_string() const {
  std::string out = "digraph " + quote(name_) + " {\n";
  out += "  rankdir=BT;\n";
  for (const auto& line : lines_) {
    out += line;
    out += '\n';
  }
  out += "}\n";
  return out;
}

}  // namespace mcmc::util
