// Minimal Graphviz DOT writer, used to emit the Figure-4 model lattice.
#pragma once

#include <string>
#include <vector>

namespace mcmc::util {

/// Accumulates nodes and edges and renders a `digraph`.
class DotGraph {
 public:
  explicit DotGraph(std::string name);

  /// Adds a node with an optional display label.
  void add_node(const std::string& id, const std::string& label = "");

  /// Adds a directed edge with an optional edge label.
  void add_edge(const std::string& from, const std::string& to,
                const std::string& label = "");

  /// Renders DOT source.
  [[nodiscard]] std::string to_string() const;

 private:
  static std::string quote(const std::string& s);

  std::string name_;
  std::vector<std::string> lines_;
};

}  // namespace mcmc::util
