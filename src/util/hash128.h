// 128-bit non-cryptographic content hashing for dedup keys.
//
// The streaming pipeline deduplicates millions of litmus tests by
// canonical key.  Retaining the key strings themselves costs ~200 bytes
// per class (the ~100 MB peak RSS of the full naive-space run); a
// 128-bit digest costs 16, and at the corpus sizes here (~half a
// million classes) the collision probability of a well-mixed 128-bit
// hash is ~1e-27 — far below any hardware error rate.  run_stream's
// audit mode (StreamOptions::audit_dedup_keys) re-verifies the
// no-collision assumption against the full strings on demand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace mcmc::util {

/// A 128-bit hash value.
struct Key128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Key128& a, const Key128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Key128& a, const Key128& b) {
    return !(a == b);
  }
  /// Lexicographic (hi, lo) order, so "minimum over thread
  /// permutations" is well defined for fingerprints just as it is for
  /// key strings.
  friend bool operator<(const Key128& a, const Key128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Hash functor for unordered containers keyed by Key128 (the value is
/// already mixed, so folding the halves is enough).
struct Key128Hash {
  std::size_t operator()(const Key128& k) const noexcept {
    return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// splitmix64 finalizer: full-avalanche 64-bit mix.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hashes `len` bytes into a Key128: two independently seeded 64-bit
/// lanes, each fed every 8-byte word through the splitmix64 finalizer,
/// cross-mixed at the end so the halves never collide in tandem.
inline Key128 hash128(const char* data, std::size_t len) {
  std::uint64_t h1 = 0x9e3779b97f4a7c15ULL ^ len;
  std::uint64_t h2 = 0xc2b2ae3d27d4eb4fULL ^ (len * 0xff51afd7ed558ccdULL);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, 8);
    h1 = mix64(h1 ^ w);
    h2 = mix64(h2 + w + 0x165667b19e3779f9ULL);
  }
  if (i < len) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, len - i);
    h1 = mix64(h1 ^ w);
    h2 = mix64(h2 + w + 0x165667b19e3779f9ULL);
  }
  Key128 out;
  out.hi = mix64(h1 ^ h2);
  out.lo = mix64(h2 ^ out.hi);
  return out;
}

inline Key128 hash128(const std::string& s) {
  return hash128(s.data(), s.size());
}

/// Incremental word-at-a-time variant of hash128 for callers that
/// produce their content as a stream of 64-bit words instead of a
/// byte buffer (litmus::canonical_fingerprint): same two-lane
/// splitmix64 construction, no intermediate string.  Equal word
/// sequences (length included — it is folded into the finish) give
/// equal keys; this is a distinct domain from the byte-oriented
/// hash128 overloads, which is fine because fingerprints and string
/// hashes are never mixed in one dedup set.
class Hash128Stream {
 public:
  void absorb(std::uint64_t w) {
    h1_ = mix64(h1_ ^ w);
    h2_ = mix64(h2_ + w + 0x165667b19e3779f9ULL);
    ++words_;
  }

  [[nodiscard]] Key128 finish() const {
    const std::uint64_t a = mix64(h1_ ^ (words_ * 0xff51afd7ed558ccdULL));
    const std::uint64_t b = mix64(h2_ + words_);
    Key128 out;
    out.hi = mix64(a ^ b);
    out.lo = mix64(b ^ out.hi);
    return out;
  }

 private:
  std::uint64_t h1_ = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h2_ = 0xc2b2ae3d27d4eb4fULL;
  std::uint64_t words_ = 0;
};

}  // namespace mcmc::util
