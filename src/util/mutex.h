// Annotated synchronization primitives.
//
// Thin zero-cost wrappers over std::mutex / std::shared_mutex /
// std::condition_variable_any carrying the util/thread_annotations.h
// capability attributes, so Clang Thread Safety Analysis can check
// every acquire, release, and guarded access at compile time.  All
// concurrent subsystems (engine, store, serve, enumeration) use these
// instead of the raw std types; off clang the annotations vanish and
// the wrappers inline to the std calls.
//
// Condition-variable style: the analysis cannot see through predicate
// lambdas (a lambda body is analyzed as its own unannotated function,
// so guarded reads inside it would warn), so waits are written as
// explicit loops in the function that holds the lock:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);   // ready_ GUARDED_BY(mu_)
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace mcmc::util {

/// Annotated std::mutex.  Satisfies BasicLockable/Lockable, so it
/// composes with std::condition_variable_any (see CondVar).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::shared_mutex: exclusive lock/unlock plus the
/// lock_shared/unlock_shared flavor (many readers xor one writer).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  [[nodiscard]] bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock of a Mutex (std::lock_guard with annotations).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock of a SharedMutex (the writer side).
class SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ExclusiveLock() RELEASE() { mu_.unlock(); }

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock of a SharedMutex (the reader side).
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() RELEASE() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over util::Mutex.  wait() REQUIRES the mutex:
/// the caller holds it, the wait round-trips it (release, block,
/// reacquire), and it is held again on return — the analysis cannot
/// express a mid-function round trip, so the body is exempted while
/// the REQUIRES contract still checks every caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mcmc::util
