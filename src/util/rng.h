// Deterministic pseudo-random number generator (xoshiro256**).
//
// The library's property tests and randomized differential tests need a
// reproducible source of randomness that is identical across platforms and
// standard-library implementations; std::mt19937 seeded the same way is
// portable, but distributions are not.  We therefore implement both the
// generator and the few distributions we need.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace mcmc::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using rejection sampling (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    MCMC_REQUIRE(bound > 0);
    const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  long long range(long long lo, long long hi) {
    MCMC_REQUIRE(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<long long>(below(span));
  }

  /// Bernoulli trial with probability `num`/`den`.
  bool chance(std::uint64_t num, std::uint64_t den) {
    MCMC_REQUIRE(den > 0 && num <= den);
    return below(den) < num;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mcmc::util
