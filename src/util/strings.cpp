#include "util/strings.h"

#include <cctype>
#include <stdexcept>

#include "util/check.h"

namespace mcmc::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

long long parse_int(std::string_view s) {
  const std::string t = trim(s);
  MCMC_REQUIRE_MSG(!t.empty(), "parse_int: empty string");
  std::size_t pos = 0;
  long long v = 0;
  try {
    v = std::stoll(t, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_int: not an integer: '" + t + "'");
  }
  if (pos != t.size()) {
    throw std::invalid_argument("parse_int: trailing junk in '" + t + "'");
  }
  return v;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(s.begin(), width - s.size(), ' ');
  return s;
}

}  // namespace mcmc::util
