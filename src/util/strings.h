// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcmc::util {

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on runs of whitespace, dropping empty fields.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Joins `parts` with `sep` between elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Removes leading and trailing whitespace.
[[nodiscard]] std::string trim(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a (possibly signed) decimal integer; throws on malformed input.
[[nodiscard]] long long parse_int(std::string_view s);

/// Pads `s` with spaces on the right to at least `width` characters.
[[nodiscard]] std::string pad_right(std::string s, std::size_t width);

/// Pads `s` with spaces on the left to at least `width` characters.
[[nodiscard]] std::string pad_left(std::string s, std::size_t width);

}  // namespace mcmc::util
