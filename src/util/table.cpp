#include "util/table.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace mcmc::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MCMC_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  MCMC_REQUIRE_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      out += pad_right(row[c], width[c]);
    }
    out += " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += (c == 0) ? "|-" : "-|-";
    out += std::string(width[c], '-');
  }
  out += "-|\n";
  for (const auto& row : rows_) emit(row);
  return out;
}

}  // namespace mcmc::util
