// Plain-text table formatter used by the benchmark harnesses to print the
// paper's tables and figure data in aligned columns.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace mcmc::util {

/// Builds an aligned, pipe-separated text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a header underline and aligned columns.
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t) {
    return os << t.to_string();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mcmc::util
