// Clang Thread Safety Analysis annotation macros.
//
// These attach the locking discipline to the code itself: which mutex
// guards which field (GUARDED_BY), which methods must be called with a
// capability held exclusively (REQUIRES) or shared (REQUIRES_SHARED),
// which acquire or release it (ACQUIRE/RELEASE and the _SHARED
// flavors), and which must be called with it NOT held (EXCLUDES).
// Under clang with `-Wthread-safety` every violation — an unlocked
// guarded-field read, an append under a shared lock, a double acquire —
// is a compile error, not a comment someone forgot to read; CI's
// `thread-safety` job builds the tree that way with -Werror, and
// tests/static_analysis/ keeps the gate honest by asserting that
// seeded violations fail to compile.  On every other compiler (the
// default local gcc build included) all macros expand to nothing.
//
// The annotated capability types these macros are meant to be used
// with live in util/mutex.h.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define MCMC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MCMC_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a capability (a lockable resource); `x` names it in
/// diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) MCMC_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY MCMC_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a field or variable is protected by the given
/// capability: reads require it held (shared suffices), writes require
/// it held exclusively.
#define GUARDED_BY(x) MCMC_THREAD_ANNOTATION(guarded_by(x))

/// Like GUARDED_BY, for the data a pointer points to.
#define PT_GUARDED_BY(x) MCMC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares a required acquisition order between capabilities.
#define ACQUIRED_BEFORE(...) \
  MCMC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) MCMC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The caller must hold the capability exclusively (REQUIRES) or at
/// least shared (REQUIRES_SHARED) for the call; the function neither
/// acquires nor releases it.
#define REQUIRES(...) \
  MCMC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  MCMC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (must not be held on entry,
/// held on exit).
#define ACQUIRE(...) MCMC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  MCMC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (held on entry, not on exit).
#define RELEASE(...) MCMC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  MCMC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  MCMC_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  MCMC_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
#define TRY_ACQUIRE_SHARED(ret, ...) \
  MCMC_THREAD_ANNOTATION(try_acquire_shared_capability(ret, __VA_ARGS__))

/// The caller must NOT hold the capability (the function acquires it
/// internally; calling with it held would deadlock a non-reentrant
/// lock).
#define EXCLUDES(...) MCMC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (for code the
/// analysis cannot follow into).
#define ASSERT_CAPABILITY(x) MCMC_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  MCMC_THREAD_ANNOTATION(assert_shared_capability(x))

/// The function returns a reference to the given capability — lets an
/// accessor like `mu()` stand for the private member in callers'
/// REQUIRES clauses.
#define RETURN_CAPABILITY(x) MCMC_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function body (used only where a
/// correct protocol is inexpressible, e.g. a condition variable's
/// unlock/relock round trip; say why at each use).
#define NO_THREAD_SAFETY_ANALYSIS \
  MCMC_THREAD_ANNOTATION(no_thread_safety_analysis)
