// Wall-clock timer for the experiment harnesses.
#pragma once

#include <chrono>

namespace mcmc::util {

/// Measures elapsed wall-clock time since construction or last reset.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds as a double.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds as a double.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mcmc::util
