// Properties of the canonical-key machinery (litmus/test.h): keys and
// their 128-bit fingerprints are invariant under the full symmetry
// group of a test — thread exchange, location permutation, and
// per-location value renaming (fixing the initial value 0) — the
// fingerprint induces exactly the same equivalence classes as the
// legacy string key, and the canonical reduction pass over the naive
// space agrees exactly with the shape-level reduction of count_naive on
// the program level.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "enumeration/exhaustive.h"
#include "enumeration/naive.h"
#include "enumeration/shapes.h"
#include "enumeration/suite.h"
#include "litmus/catalog.h"
#include "litmus/test.h"
#include "util/hash128.h"
#include "util/rng.h"

namespace mcmc {
namespace {

using litmus::LitmusTest;

/// Applies a location permutation to every direct-address access.
LitmusTest permute_locations(const LitmusTest& test,
                             const std::vector<int>& perm) {
  std::vector<core::Thread> threads = test.program().threads();
  for (auto& thread : threads) {
    for (auto& instr : thread) {
      if (instr.is_memory_access() && instr.addr_reg < 0) {
        instr.loc = perm[static_cast<std::size_t>(instr.loc)];
      }
    }
  }
  return LitmusTest(test.name(), core::Program(std::move(threads)),
                    test.outcome());
}

/// Swaps the two threads (registers are program-unique, so the swapped
/// program is still valid).
LitmusTest swap_threads(const LitmusTest& test) {
  std::vector<core::Thread> threads = test.program().threads();
  std::reverse(threads.begin(), threads.end());
  return LitmusTest(test.name(), core::Program(std::move(threads)),
                    test.outcome());
}

/// Renames write values per location with the bijection v -> k + 1 - v
/// over each location's written values 1..k (0, the initial value, is
/// fixed), remapping outcome constraints of reads consistently.
LitmusTest reverse_values(const LitmusTest& test) {
  std::map<core::Loc, int> writes;
  for (const auto& thread : test.program().threads()) {
    for (const auto& instr : thread) {
      if (instr.op == core::Op::Write) ++writes[instr.loc];
    }
  }
  auto remap = [&](core::Loc loc, int value) {
    return value == 0 ? 0 : writes[loc] + 1 - value;
  };

  std::vector<core::Thread> threads = test.program().threads();
  std::map<core::Reg, core::Loc> read_loc;
  for (auto& thread : threads) {
    for (auto& instr : thread) {
      if (instr.op == core::Op::Write && !instr.value_from_reg) {
        instr.value = remap(instr.loc, instr.value);
      } else if (instr.op == core::Op::Read) {
        read_loc[instr.dst] = instr.loc;
      }
    }
  }
  core::Outcome outcome;
  for (const auto& [reg, value] : test.outcome().constraints()) {
    const auto it = read_loc.find(reg);
    outcome.require(reg, it == read_loc.end() ? value
                                              : remap(it->second, value));
  }
  return LitmusTest(test.name(), core::Program(std::move(threads)),
                    std::move(outcome));
}

/// Dep-aware location permutation: direct addresses plus the DepConst
/// constants that encode a read's indirect address (dep_read idiom).
LitmusTest permute_locations_dep(const LitmusTest& test,
                                 const std::vector<int>& perm) {
  std::vector<core::Thread> threads = test.program().threads();
  for (auto& thread : threads) {
    std::set<core::Reg> addr_regs;
    for (const auto& instr : thread) {
      if (instr.op == core::Op::Read && instr.addr_reg >= 0) {
        addr_regs.insert(instr.addr_reg);
      }
    }
    for (auto& instr : thread) {
      if (instr.is_memory_access() && instr.addr_reg < 0) {
        instr.loc = perm[static_cast<std::size_t>(instr.loc)];
      } else if (instr.op == core::Op::DepConst &&
                 addr_regs.count(instr.dst) != 0) {
        instr.value = perm[static_cast<std::size_t>(instr.value)];
      }
    }
  }
  return LitmusTest(test.name(), core::Program(std::move(threads)),
                    test.outcome());
}

/// Dep-aware value renaming: like reverse_values, but register-valued
/// writes (dep_write idiom) are renamed through their defining DepConst,
/// and outcome constraints of dep-addressed reads resolve their real
/// location first.
LitmusTest reverse_values_dep(const LitmusTest& test) {
  std::map<core::Loc, int> writes;
  for (const auto& thread : test.program().threads()) {
    for (const auto& instr : thread) {
      if (instr.op == core::Op::Write) ++writes[instr.loc];
    }
  }
  auto remap = [&](core::Loc loc, int value) {
    return value == 0 ? 0 : writes[loc] + 1 - value;
  };

  std::vector<core::Thread> threads = test.program().threads();
  std::map<core::Reg, core::Loc> read_loc;
  for (auto& thread : threads) {
    for (std::size_t i = 0; i < thread.size(); ++i) {
      auto& instr = thread[i];
      if (instr.op != core::Op::Write) continue;
      if (!instr.value_from_reg) {
        instr.value = remap(instr.loc, instr.value);
        continue;
      }
      for (std::size_t k = i; k-- > 0;) {
        auto& def = thread[k];
        if (def.op == core::Op::DepConst && def.dst == instr.src) {
          def.value = remap(instr.loc, def.value);
          break;
        }
      }
    }
    enumeration::shapes::for_each_read(
        thread, [&](core::Reg dst, int loc) { read_loc[dst] = loc; });
  }
  core::Outcome outcome;
  for (const auto& [reg, value] : test.outcome().constraints()) {
    const auto it = read_loc.find(reg);
    outcome.require(reg, it == read_loc.end() ? value
                                              : remap(it->second, value));
  }
  return LitmusTest(test.name(), core::Program(std::move(threads)),
                    std::move(outcome));
}

TEST(CanonicalProperty, KeyInvariantUnderRandomSymmetryChains) {
  enumeration::NaiveOptions bounds;
  const auto tests = enumeration::sample_naive_tests(bounds, 150, 4242);
  util::Rng rng(99);
  std::vector<int> perm = {0, 1, 2};
  for (const auto& test : tests) {
    const std::string key = litmus::canonical_key(test);
    LitmusTest current = test;
    for (int step = 0; step < 4; ++step) {
      switch (rng.below(3)) {
        case 0: {
          std::vector<int> p = perm;
          for (std::size_t i = p.size(); i > 1; --i) {
            std::swap(p[i - 1], p[rng.below(i)]);
          }
          current = permute_locations(current, p);
          break;
        }
        case 1:
          current = swap_threads(current);
          break;
        default:
          current = reverse_values(current);
          break;
      }
      EXPECT_EQ(litmus::canonical_key(current), key)
          << "after step " << step << "\noriginal:\n" << test.to_string()
          << "transformed:\n" << current.to_string();
    }
  }
}

TEST(CanonicalProperty, KeyIsStableAndSymmetricPairsActuallyMerge) {
  // Determinism plus a positive control: a thread-swapped, location-
  // permuted, value-renamed twin is structurally different yet
  // canonically identical.
  const auto tests =
      enumeration::sample_naive_tests(enumeration::NaiveOptions{}, 40, 7);
  for (const auto& test : tests) {
    EXPECT_EQ(litmus::canonical_key(test), litmus::canonical_key(test));
    const auto twin =
        reverse_values(swap_threads(permute_locations(test, {2, 0, 1})));
    EXPECT_EQ(litmus::canonical_key(twin), litmus::canonical_key(test));
  }
}

TEST(CanonicalProperty, FingerprintInvariantUnderRandomSymmetryChains) {
  // The fingerprint must absorb the same symmetry group as the string
  // key: thread exchange, location permutation, per-location value
  // renaming.
  enumeration::NaiveOptions bounds;
  const auto tests = enumeration::sample_naive_tests(bounds, 150, 4242);
  util::Rng rng(99);
  litmus::KeyScratch scratch;
  std::vector<int> perm = {0, 1, 2};
  for (const auto& test : tests) {
    const util::Key128 fp = litmus::canonical_fingerprint(test, scratch);
    LitmusTest current = test;
    for (int step = 0; step < 4; ++step) {
      switch (rng.below(3)) {
        case 0: {
          std::vector<int> p = perm;
          for (std::size_t i = p.size(); i > 1; --i) {
            std::swap(p[i - 1], p[rng.below(i)]);
          }
          current = permute_locations(current, p);
          break;
        }
        case 1:
          current = swap_threads(current);
          break;
        default:
          current = reverse_values(current);
          break;
      }
      EXPECT_EQ(litmus::canonical_fingerprint(current, scratch), fp)
          << "after step " << step << "\noriginal:\n" << test.to_string()
          << "transformed:\n" << current.to_string();
    }
  }
}

TEST(CanonicalProperty, DepKeyAndFingerprintInvariantUnderSymmetryChains) {
  // The same symmetry-group invariance over a dependency-carrying
  // corpus: samples from the dep-extended naive space (DepConst chains,
  // indirect reads, register-valued writes, branches), transformed with
  // the dep-aware permutation and renaming above.
  enumeration::NaiveOptions bounds;
  bounds.deps = true;
  const auto tests = enumeration::sample_naive_tests(bounds, 150, 0xD095);
  util::Rng rng(17);
  litmus::KeyScratch scratch;
  std::vector<int> perm = {0, 1, 2};
  bool saw_dep = false;
  for (const auto& test : tests) {
    for (const auto& thread : test.program().threads()) {
      for (const auto& instr : thread) {
        saw_dep = saw_dep || instr.op == core::Op::DepConst ||
                  instr.op == core::Op::Branch;
      }
    }
    const std::string key = litmus::canonical_key(test);
    const util::Key128 fp = litmus::canonical_fingerprint(test, scratch);
    LitmusTest current = test;
    for (int step = 0; step < 4; ++step) {
      switch (rng.below(3)) {
        case 0: {
          std::vector<int> p = perm;
          for (std::size_t i = p.size(); i > 1; --i) {
            std::swap(p[i - 1], p[rng.below(i)]);
          }
          current = permute_locations_dep(current, p);
          break;
        }
        case 1:
          current = swap_threads(current);
          break;
        default:
          current = reverse_values_dep(current);
          break;
      }
      EXPECT_EQ(litmus::canonical_key(current), key)
          << "after step " << step << "\noriginal:\n" << test.to_string()
          << "transformed:\n" << current.to_string();
      EXPECT_EQ(litmus::canonical_fingerprint(current, scratch), fp)
          << "after step " << step << "\noriginal:\n" << test.to_string()
          << "transformed:\n" << current.to_string();
    }
  }
  // The sample must actually contain dependency idioms.
  EXPECT_TRUE(saw_dep);
}

TEST(CanonicalProperty, FingerprintClassesMatchLegacyKeyClasses) {
  // The differential heart of the fingerprint: over a corpus mixing
  // naive-space samples (duplicate-rich tiny bounds included), the
  // dependency-idiom suite, and the full hand-written catalog, the
  // fingerprint partition must be exactly the canonical_key partition —
  // same-key pairs share a fingerprint AND distinct-key pairs get
  // distinct fingerprints.
  std::vector<LitmusTest> corpus;
  {
    enumeration::NaiveOptions bounds;
    for (auto& t : enumeration::sample_naive_tests(bounds, 250, 0xFACE)) {
      corpus.push_back(std::move(t));
    }
    enumeration::NaiveOptions tiny;
    tiny.num_locations = 1;
    tiny.max_accesses_per_thread = 2;
    tiny.fences = false;
    for (auto& t : enumeration::sample_naive_tests(tiny, 150, 31337)) {
      corpus.push_back(std::move(t));  // plenty of symmetric duplicates
    }
    enumeration::NaiveOptions dep_bounds;
    dep_bounds.deps = true;
    for (auto& t : enumeration::sample_naive_tests(dep_bounds, 200, 0xDEED)) {
      corpus.push_back(std::move(t));  // generated dep idioms
    }
    for (auto& t : enumeration::corollary1_suite(true)) {
      corpus.push_back(std::move(t));  // data/ctrl deps, indirect addresses
    }
    for (auto& t : litmus::full_catalog()) {
      corpus.push_back(std::move(t));
    }
    // Twins of everything so far (thread swap + location rotation +
    // value renaming), so the merge direction is exercised on every
    // shape, not only where sampling happened to collide.  The rotation
    // is sized to the test's own direct locations; tests with indirect
    // addressing keep those resolved locations fixed, which merely
    // makes the twin a different member of the corpus — the bijection
    // check below does not depend on twins being symmetric images.
    const std::size_t base = corpus.size();
    for (std::size_t i = 0; i < base; ++i) {
      int max_loc = 2;
      for (const auto& thread : corpus[i].program().threads()) {
        for (const auto& instr : thread) {
          if (instr.is_memory_access() && instr.addr_reg < 0) {
            max_loc = std::max(max_loc, instr.loc);
          }
        }
      }
      std::vector<int> rotation(static_cast<std::size_t>(max_loc) + 1);
      for (std::size_t l = 0; l < rotation.size(); ++l) {
        rotation[l] = static_cast<int>((l + 1) % rotation.size());
      }
      corpus.push_back(
          reverse_values(swap_threads(permute_locations(corpus[i], rotation))));
    }
  }

  litmus::KeyScratch scratch;
  std::unordered_map<std::string, util::Key128> key_to_fp;
  std::unordered_map<util::Key128, std::string, util::Key128Hash> fp_to_key;
  for (const auto& test : corpus) {
    const std::string key = litmus::canonical_key(test);
    const util::Key128 fp = litmus::canonical_fingerprint(test, scratch);
    // A reused scratch and a fresh one must agree (generation-counter
    // reset correctness).
    litmus::KeyScratch fresh;
    EXPECT_EQ(litmus::canonical_fingerprint(test, fresh), fp)
        << test.to_string();

    const auto [k_it, k_new] = key_to_fp.emplace(key, fp);
    EXPECT_EQ(k_it->second, fp)
        << "equal keys, distinct fingerprints (class split):\n"
        << test.to_string();
    const auto [f_it, f_new] = fp_to_key.emplace(fp, key);
    EXPECT_EQ(f_it->second, key)
        << "distinct keys, equal fingerprints (class merge):\n"
        << test.to_string();
    EXPECT_EQ(k_new, f_new);
  }
  // The corpus must actually exercise both directions: many classes,
  // and strictly fewer classes than tests (real merges happened).
  EXPECT_GT(key_to_fp.size(), 100u);
  EXPECT_LT(key_to_fp.size(), corpus.size());
}

TEST(CanonicalProperty, StructuralFingerprintMatchesStructuralKeyClasses) {
  // structural_fingerprint must separate exactly what structural_key
  // separates — in particular canonically-identical twins (thread
  // swaps) stay structurally distinct.
  enumeration::NaiveOptions bounds;
  auto corpus = enumeration::sample_naive_tests(bounds, 200, 777);
  const std::size_t base = corpus.size();
  for (std::size_t i = 0; i < base; ++i) {
    corpus.push_back(swap_threads(corpus[i]));
  }
  std::unordered_map<std::string, util::Key128> key_to_fp;
  std::unordered_map<util::Key128, std::string, util::Key128Hash> fp_to_key;
  for (const auto& test : corpus) {
    const std::string key = litmus::structural_key(test);
    const util::Key128 fp = litmus::structural_fingerprint(test);
    const auto k_it = key_to_fp.emplace(key, fp).first;
    EXPECT_EQ(k_it->second, fp) << test.to_string();
    const auto f_it = fp_to_key.emplace(fp, key).first;
    EXPECT_EQ(f_it->second, key) << test.to_string();
  }
}

TEST(CanonicalProperty, ReducedProgramClassesMatchNaiveCountsExactly) {
  // The canonical-key pass over communicating programs must reproduce
  // count_naive's shape-level reduction (location permutation x thread
  // exchange) program for program: the key's extra power (value
  // renaming) is exactly what makes material programs with symmetric
  // shapes collapse the same way the shape encoding does.
  enumeration::ExhaustiveOptions configs[4];
  configs[0].bounds = {2, 1, false};  // the hand-counted tiny space
  configs[1].bounds = {2, 2, true};
  configs[2].bounds = {2, 3, true};
  configs[3].bounds = {2, 2, true};
  configs[3].bounds.deps = true;  // dependency-extended slice
  for (const auto& base : configs) {
    enumeration::ExhaustiveOptions options = base;
    options.communicating_only = true;
    const auto reduced = enumeration::measure_reduction(options);
    const auto naive = enumeration::count_naive(options.bounds);
    EXPECT_EQ(reduced.canonical_programs, naive.reduced_programs)
        << "bounds: " << options.bounds.max_accesses_per_thread << " accesses, "
        << options.bounds.num_locations << " locations, fences="
        << options.bounds.fences;
    // Outcome classes merge further: outcome assignments that are images
    // of each other under a program automorphism share a canonical key
    // (e.g. the two single-read outcomes of W X | W X; R X that read the
    // one write of either thread), so the canonical count is a lower
    // bound of the shape-level one.
    EXPECT_LE(reduced.canonical_tests, naive.reduced_tests);
    EXPECT_GT(reduced.canonical_tests, 0);
  }
}

TEST(CanonicalProperty, TinySpaceClassCountsAreExact) {
  // 1 location, <= 2 accesses, no fences: 18 canonical communicating
  // programs (hand-counted in enumeration_test.cpp) carrying 80
  // canonical tests (86 shape-level outcome assignments, 6 of which are
  // automorphism images).
  enumeration::ExhaustiveOptions tiny;
  tiny.bounds = {2, 1, false};
  tiny.communicating_only = true;
  const auto reduced = enumeration::measure_reduction(tiny);
  EXPECT_EQ(reduced.canonical_programs, 18);
  EXPECT_EQ(reduced.canonical_tests, 80);
  const auto naive = enumeration::count_naive(tiny.bounds);
  EXPECT_EQ(naive.reduced_programs, 18);
  EXPECT_EQ(naive.reduced_tests, 86);
}

}  // namespace
}  // namespace mcmc
