// Properties of the canonical-key machinery (litmus/test.h): keys are
// invariant under the full symmetry group of a test — thread exchange,
// location permutation, and per-location value renaming (fixing the
// initial value 0) — and the canonical reduction pass over the naive
// space agrees exactly with the shape-level reduction of count_naive on
// the program level.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "enumeration/exhaustive.h"
#include "enumeration/naive.h"
#include "litmus/test.h"
#include "util/rng.h"

namespace mcmc {
namespace {

using litmus::LitmusTest;

/// Applies a location permutation to every direct-address access.
LitmusTest permute_locations(const LitmusTest& test,
                             const std::vector<int>& perm) {
  std::vector<core::Thread> threads = test.program().threads();
  for (auto& thread : threads) {
    for (auto& instr : thread) {
      if (instr.is_memory_access() && instr.addr_reg < 0) {
        instr.loc = perm[static_cast<std::size_t>(instr.loc)];
      }
    }
  }
  return LitmusTest(test.name(), core::Program(std::move(threads)),
                    test.outcome());
}

/// Swaps the two threads (registers are program-unique, so the swapped
/// program is still valid).
LitmusTest swap_threads(const LitmusTest& test) {
  std::vector<core::Thread> threads = test.program().threads();
  std::reverse(threads.begin(), threads.end());
  return LitmusTest(test.name(), core::Program(std::move(threads)),
                    test.outcome());
}

/// Renames write values per location with the bijection v -> k + 1 - v
/// over each location's written values 1..k (0, the initial value, is
/// fixed), remapping outcome constraints of reads consistently.
LitmusTest reverse_values(const LitmusTest& test) {
  std::map<core::Loc, int> writes;
  for (const auto& thread : test.program().threads()) {
    for (const auto& instr : thread) {
      if (instr.op == core::Op::Write) ++writes[instr.loc];
    }
  }
  auto remap = [&](core::Loc loc, int value) {
    return value == 0 ? 0 : writes[loc] + 1 - value;
  };

  std::vector<core::Thread> threads = test.program().threads();
  std::map<core::Reg, core::Loc> read_loc;
  for (auto& thread : threads) {
    for (auto& instr : thread) {
      if (instr.op == core::Op::Write && !instr.value_from_reg) {
        instr.value = remap(instr.loc, instr.value);
      } else if (instr.op == core::Op::Read) {
        read_loc[instr.dst] = instr.loc;
      }
    }
  }
  core::Outcome outcome;
  for (const auto& [reg, value] : test.outcome().constraints()) {
    const auto it = read_loc.find(reg);
    outcome.require(reg, it == read_loc.end() ? value
                                              : remap(it->second, value));
  }
  return LitmusTest(test.name(), core::Program(std::move(threads)),
                    std::move(outcome));
}

TEST(CanonicalProperty, KeyInvariantUnderRandomSymmetryChains) {
  enumeration::NaiveOptions bounds;
  const auto tests = enumeration::sample_naive_tests(bounds, 150, 4242);
  util::Rng rng(99);
  std::vector<int> perm = {0, 1, 2};
  for (const auto& test : tests) {
    const std::string key = litmus::canonical_key(test);
    LitmusTest current = test;
    for (int step = 0; step < 4; ++step) {
      switch (rng.below(3)) {
        case 0: {
          std::vector<int> p = perm;
          for (std::size_t i = p.size(); i > 1; --i) {
            std::swap(p[i - 1], p[rng.below(i)]);
          }
          current = permute_locations(current, p);
          break;
        }
        case 1:
          current = swap_threads(current);
          break;
        default:
          current = reverse_values(current);
          break;
      }
      EXPECT_EQ(litmus::canonical_key(current), key)
          << "after step " << step << "\noriginal:\n" << test.to_string()
          << "transformed:\n" << current.to_string();
    }
  }
}

TEST(CanonicalProperty, KeyIsStableAndSymmetricPairsActuallyMerge) {
  // Determinism plus a positive control: a thread-swapped, location-
  // permuted, value-renamed twin is structurally different yet
  // canonically identical.
  const auto tests =
      enumeration::sample_naive_tests(enumeration::NaiveOptions{}, 40, 7);
  for (const auto& test : tests) {
    EXPECT_EQ(litmus::canonical_key(test), litmus::canonical_key(test));
    const auto twin =
        reverse_values(swap_threads(permute_locations(test, {2, 0, 1})));
    EXPECT_EQ(litmus::canonical_key(twin), litmus::canonical_key(test));
  }
}

TEST(CanonicalProperty, ReducedProgramClassesMatchNaiveCountsExactly) {
  // The canonical-key pass over communicating programs must reproduce
  // count_naive's shape-level reduction (location permutation x thread
  // exchange) program for program: the key's extra power (value
  // renaming) is exactly what makes material programs with symmetric
  // shapes collapse the same way the shape encoding does.
  enumeration::ExhaustiveOptions configs[3];
  configs[0].bounds = {2, 1, false};  // the hand-counted tiny space
  configs[1].bounds = {2, 2, true};
  configs[2].bounds = {2, 3, true};
  for (const auto& base : configs) {
    enumeration::ExhaustiveOptions options = base;
    options.communicating_only = true;
    const auto reduced = enumeration::measure_reduction(options);
    const auto naive = enumeration::count_naive(options.bounds);
    EXPECT_EQ(reduced.canonical_programs, naive.reduced_programs)
        << "bounds: " << options.bounds.max_accesses_per_thread << " accesses, "
        << options.bounds.num_locations << " locations, fences="
        << options.bounds.fences;
    // Outcome classes merge further: outcome assignments that are images
    // of each other under a program automorphism share a canonical key
    // (e.g. the two single-read outcomes of W X | W X; R X that read the
    // one write of either thread), so the canonical count is a lower
    // bound of the shape-level one.
    EXPECT_LE(reduced.canonical_tests, naive.reduced_tests);
    EXPECT_GT(reduced.canonical_tests, 0);
  }
}

TEST(CanonicalProperty, TinySpaceClassCountsAreExact) {
  // 1 location, <= 2 accesses, no fences: 18 canonical communicating
  // programs (hand-counted in enumeration_test.cpp) carrying 80
  // canonical tests (86 shape-level outcome assignments, 6 of which are
  // automorphism images).
  enumeration::ExhaustiveOptions tiny;
  tiny.bounds = {2, 1, false};
  tiny.communicating_only = true;
  const auto reduced = enumeration::measure_reduction(tiny);
  EXPECT_EQ(reduced.canonical_programs, 18);
  EXPECT_EQ(reduced.canonical_tests, 80);
  const auto naive = enumeration::count_naive(tiny.bounds);
  EXPECT_EQ(naive.reduced_programs, 18);
  EXPECT_EQ(naive.reduced_tests, 86);
}

}  // namespace
}  // namespace mcmc
