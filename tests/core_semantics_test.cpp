// Tests for the core axiomatic semantics: analysis, read-from enumeration,
// happens-before construction, and the admissibility checker, validated
// against the paper's known verdicts (Figures 1 and 3) on the named
// hardware models.  Every verdict is checked with both engines.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/formula.h"
#include "core/model.h"
#include "core/outcome.h"
#include "core/readfrom.h"
#include "litmus/catalog.h"
#include "models/zoo.h"

namespace mcmc {
namespace {

using core::Analysis;
using core::Engine;
using core::MemoryModel;
using core::Outcome;
using core::Program;

class BothEngines : public ::testing::TestWithParam<Engine> {
 protected:
  [[nodiscard]] bool allowed(const litmus::LitmusTest& test,
                             const MemoryModel& model) const {
    const Analysis an(test.program());
    return core::is_allowed(an, model, test.outcome(), GetParam());
  }
};

INSTANTIATE_TEST_SUITE_P(Engines, BothEngines,
                         ::testing::Values(Engine::Sat, Engine::Explicit),
                         [](const auto& param_info) {
                           return param_info.param == Engine::Sat ? "Sat"
                                                                  : "Explicit";
                         });

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

TEST(Analysis, ResolvesIndirectAddressesAndStoreValues) {
  const auto t = litmus::l8();
  const Analysis an(t.program());
  // T1: Write X; Read X; DepConst; Read [t1] where t1 points at Y.
  EXPECT_EQ(an.event(0).loc, 0);
  EXPECT_EQ(an.event(1).loc, 0);
  EXPECT_EQ(an.event(3).loc, 1);  // resolved to Y
  EXPECT_TRUE(an.same_addr(0, 1));
  EXPECT_FALSE(an.same_addr(1, 3));
}

TEST(Analysis, DataDependencyThroughDepConst) {
  const auto t = litmus::l4();
  const Analysis an(t.program());
  const auto r_y = an.event_id(1, 0);   // Read Y -> r1
  const auto dep = an.event_id(1, 1);   // t1 = r1-r1+X
  const auto r_x = an.event_id(1, 2);   // Read [t1] -> r2
  EXPECT_TRUE(an.data_dep(r_y, dep));
  EXPECT_TRUE(an.data_dep(r_y, r_x));   // transitive through the DepConst
  EXPECT_TRUE(an.data_dep(dep, r_x));
  EXPECT_FALSE(an.data_dep(r_y, an.event_id(0, 0)));  // cross-thread: never
}

TEST(Analysis, DataDependencyOnStoreValue) {
  const auto t = litmus::l6();
  const Analysis an(t.program());
  const auto r_x = an.event_id(0, 0);
  const auto w_y = an.event_id(0, 2);
  EXPECT_TRUE(an.data_dep(r_x, w_y));
}

TEST(Analysis, ControlDependencyThroughBranch) {
  Program p;
  p.add_thread({core::make_read(0, 1), core::make_branch(1),
                core::make_write(1, 1), core::make_read(2, 2)});
  const Analysis an(p);
  EXPECT_TRUE(an.ctrl_dep(0, 2));   // read -> branch -> write
  EXPECT_TRUE(an.ctrl_dep(0, 3));   // and everything after the branch
  EXPECT_FALSE(an.ctrl_dep(0, 1));  // the branch itself: data, not control
  EXPECT_TRUE(an.data_dep(0, 1));
  EXPECT_FALSE(an.ctrl_dep(2, 3));  // the write does not feed the branch
}

TEST(Analysis, NoFalseDependencies) {
  const auto t = litmus::l3();
  const Analysis an(t.program());
  const auto r_y = an.event_id(1, 0);
  const auto r_x = an.event_id(1, 1);
  EXPECT_FALSE(an.data_dep(r_y, r_x));
}

// ---------------------------------------------------------------------------
// Program validation
// ---------------------------------------------------------------------------

TEST(ProgramValidation, RejectsDoubleDefinition) {
  Program p;
  p.add_thread({core::make_read(0, 1), core::make_read(1, 1)});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramValidation, RejectsUseBeforeDefinition) {
  Program p;
  p.add_thread({core::make_read_indirect(1, 2), core::make_dep_const(1, 2, 0)});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramValidation, RejectsCrossThreadRegisterUse) {
  Program p;
  p.add_thread({core::make_read(0, 1)});
  p.add_thread({core::make_branch(1)});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramValidation, RejectsDynamicAddressRegister) {
  Program p;
  // Address register defined by a Read: not statically resolvable.
  p.add_thread({core::make_read(0, 1), core::make_read_indirect(1, 2)});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramValidation, AcceptsCatalog) {
  for (const auto& t : litmus::full_catalog()) {
    EXPECT_NO_THROW(t.program().validate()) << t.name();
  }
}

// ---------------------------------------------------------------------------
// Read-from enumeration
// ---------------------------------------------------------------------------

TEST(ReadFrom, OutcomePinsSourcesForStoreBuffering) {
  const auto t = litmus::store_buffering();
  const Analysis an(t.program());
  const auto rfs = core::enumerate_read_from(an, t.outcome());
  // Both reads must read the initial value: exactly one map.
  ASSERT_EQ(rfs.size(), 1u);
  for (const auto r : an.reads()) {
    EXPECT_EQ(rfs[0][static_cast<std::size_t>(r)], core::kReadsInitial);
  }
}

TEST(ReadFrom, UnconstrainedOutcomeEnumeratesAllSources) {
  const auto t = litmus::store_buffering();
  const Analysis an(t.program());
  // No constraints: each read has {initial, the other thread's write}.
  const auto rfs = core::enumerate_read_from(an, Outcome{});
  EXPECT_EQ(rfs.size(), 4u);
}

TEST(ReadFrom, ImpossibleValueYieldsNoMaps) {
  const auto t = litmus::store_buffering();
  const Analysis an(t.program());
  Outcome o;
  o.require(1, 42);  // nobody writes 42
  EXPECT_TRUE(core::enumerate_read_from(an, o).empty());
}

TEST(ReadFrom, ForbidsFutureLocalWriteAsSource) {
  Program p;
  p.add_thread({core::make_read(0, 1), core::make_write(0, 7)});
  const Analysis an(p);
  Outcome o;
  o.require(1, 7);
  EXPECT_TRUE(core::enumerate_read_from(an, o).empty());
}

TEST(ReadFrom, ConstraintOnDepConstRegisterCheckedStatically) {
  const auto t = litmus::l6();
  const Analysis an(t.program());
  Outcome o;
  o.require(3, 1);  // t1 = r1-r1+1 is statically 1
  EXPECT_FALSE(core::enumerate_read_from(an, o).empty());
  Outcome bad;
  bad.require(3, 2);
  EXPECT_TRUE(core::enumerate_read_from(an, bad).empty());
}

// ---------------------------------------------------------------------------
// Single-thread sanity: coherence falls out of the axioms even for the
// weakest model (F = false).
// ---------------------------------------------------------------------------

TEST_P(BothEngines, ReadOwnWriteIsVisibleEvenInWeakestModel) {
  const MemoryModel weakest("weakest", core::f_false());
  Program p;
  p.add_thread({core::make_write(0, 1), core::make_read(0, 1)});
  const Analysis an(p);
  Outcome sees_write;
  sees_write.require(1, 1);
  EXPECT_TRUE(core::is_allowed(an, weakest, sees_write, GetParam()));
  Outcome sees_initial;
  sees_initial.require(1, 0);
  EXPECT_FALSE(core::is_allowed(an, weakest, sees_initial, GetParam()));
}

TEST_P(BothEngines, LocalWritesToOneAddressStayOrdered) {
  const MemoryModel weakest("weakest", core::f_false());
  Program p;
  p.add_thread({core::make_write(0, 1), core::make_write(0, 2),
                core::make_read(0, 1)});
  const Analysis an(p);
  Outcome stale;
  stale.require(1, 1);  // reading the first write after the second: no
  EXPECT_FALSE(core::is_allowed(an, weakest, stale, GetParam()));
  Outcome fresh;
  fresh.require(1, 2);
  EXPECT_TRUE(core::is_allowed(an, weakest, fresh, GetParam()));
}

// ---------------------------------------------------------------------------
// Paper verdicts: Figure 1
// ---------------------------------------------------------------------------

TEST_P(BothEngines, TestA_AllowedUnderTsoForbiddenUnderScAndIbm370) {
  const auto t = litmus::test_a();
  EXPECT_TRUE(allowed(t, models::tso()));
  EXPECT_TRUE(allowed(t, models::x86()));
  EXPECT_FALSE(allowed(t, models::sc()));
  EXPECT_FALSE(allowed(t, models::ibm370()));
}

// ---------------------------------------------------------------------------
// Paper verdicts: SC forbids everything in the catalog
// ---------------------------------------------------------------------------

TEST_P(BothEngines, ScForbidsEveryCatalogRelaxation) {
  const auto sc = models::sc();
  for (const auto& t : litmus::full_catalog()) {
    EXPECT_FALSE(allowed(t, sc)) << t.name();
  }
}

// ---------------------------------------------------------------------------
// Paper verdicts: TSO
// ---------------------------------------------------------------------------

TEST_P(BothEngines, TsoVerdictsMatchThePaper) {
  const auto tso = models::tso();
  EXPECT_TRUE(allowed(litmus::l7(), tso));   // SB relaxation
  EXPECT_TRUE(allowed(litmus::l8(), tso));   // store forwarding
  // L9 is forbidden under TSO even with forwarding: the cycle closes
  // through TSO's write-write program-order edge (L9 only detects
  // same-address write-read reordering in models that relax write-write,
  // cf. Case 5 of Theorem 1).
  EXPECT_FALSE(allowed(litmus::l9(), tso));
  EXPECT_FALSE(allowed(litmus::l1(), tso));
  EXPECT_FALSE(allowed(litmus::l2(), tso));
  EXPECT_FALSE(allowed(litmus::l3(), tso));
  EXPECT_FALSE(allowed(litmus::l4(), tso));
  EXPECT_FALSE(allowed(litmus::l5(), tso));
  EXPECT_FALSE(allowed(litmus::l6(), tso));
  EXPECT_FALSE(allowed(litmus::message_passing(), tso));
  EXPECT_FALSE(allowed(litmus::load_buffering(), tso));
  EXPECT_FALSE(allowed(litmus::corr(), tso));
  EXPECT_FALSE(allowed(litmus::two_plus_two_w(), tso));
}

// ---------------------------------------------------------------------------
// Paper verdicts: PSO = TSO + write-write relaxation
// ---------------------------------------------------------------------------

TEST_P(BothEngines, PsoVerdictsMatchThePaper) {
  const auto pso = models::pso();
  EXPECT_TRUE(allowed(litmus::l1(), pso));
  EXPECT_TRUE(allowed(litmus::l7(), pso));
  EXPECT_TRUE(allowed(litmus::l8(), pso));  // forwarding, as in TSO
  EXPECT_TRUE(allowed(litmus::l9(), pso));  // write-write relaxed: L9 opens
  EXPECT_TRUE(allowed(litmus::two_plus_two_w(), pso));
  EXPECT_FALSE(allowed(litmus::l2(), pso));
  EXPECT_FALSE(allowed(litmus::l3(), pso));  // fence pins the writes
  EXPECT_FALSE(allowed(litmus::l4(), pso));
  EXPECT_FALSE(allowed(litmus::l5(), pso));
  EXPECT_FALSE(allowed(litmus::l6(), pso));
}

// ---------------------------------------------------------------------------
// Paper verdicts: IBM370 = TSO minus store forwarding
// ---------------------------------------------------------------------------

TEST_P(BothEngines, Ibm370ForbidsForwardingButAllowsSb) {
  const auto ibm = models::ibm370();
  EXPECT_TRUE(allowed(litmus::l7(), ibm));
  EXPECT_FALSE(allowed(litmus::l8(), ibm));
  EXPECT_FALSE(allowed(litmus::l9(), ibm));
  EXPECT_FALSE(allowed(litmus::test_a(), ibm));
}

// ---------------------------------------------------------------------------
// Paper verdicts: RMO relaxes everything but dependencies
// ---------------------------------------------------------------------------

TEST_P(BothEngines, RmoVerdictsMatchThePaper) {
  const auto rmo = models::rmo_no_ctrl();
  EXPECT_TRUE(allowed(litmus::l1(), rmo));
  EXPECT_TRUE(allowed(litmus::l2(), rmo));  // same-address reads reorder
  EXPECT_TRUE(allowed(litmus::l3(), rmo));
  EXPECT_TRUE(allowed(litmus::l5(), rmo));
  EXPECT_TRUE(allowed(litmus::l7(), rmo));
  EXPECT_TRUE(allowed(litmus::l8(), rmo));
  EXPECT_TRUE(allowed(litmus::l9(), rmo));
  EXPECT_FALSE(allowed(litmus::l4(), rmo));  // address dependency holds
  EXPECT_FALSE(allowed(litmus::l6(), rmo));  // data dependency holds
}

// ---------------------------------------------------------------------------
// Store atomicity: IRIW is forbidden across the entire class (fenced).
// ---------------------------------------------------------------------------

TEST_P(BothEngines, IriwForbiddenForAllNamedModels) {
  for (const auto& m : models::all_named_models()) {
    EXPECT_FALSE(allowed(litmus::iriw(), m)) << m.name();
  }
}

// ---------------------------------------------------------------------------
// Fences restore SC for the named models on the catalog shapes
// ---------------------------------------------------------------------------

TEST_P(BothEngines, FullyFencedSbIsForbiddenEverywhere) {
  Program p;
  p.add_thread({core::make_write(0, 1), core::make_fence(),
                core::make_read(1, 1)});
  p.add_thread({core::make_write(1, 1), core::make_fence(),
                core::make_read(0, 2)});
  const Analysis an(p);
  Outcome o;
  o.require(1, 0);
  o.require(2, 0);
  for (const auto& m : models::all_named_models()) {
    EXPECT_FALSE(core::is_allowed(an, m, o, GetParam())) << m.name();
  }
}

// ---------------------------------------------------------------------------
// Witness extraction
// ---------------------------------------------------------------------------

TEST_P(BothEngines, WitnessOrderIsConsistentLinearization) {
  const auto t = litmus::test_a();
  const Analysis an(t.program());
  const auto result = core::check(an, models::tso(), t.outcome(), GetParam());
  ASSERT_TRUE(result.allowed);
  EXPECT_EQ(result.order.size(), static_cast<std::size_t>(an.num_events()));
  // The order must embed the forced program-order edges of TSO.
  const auto model = models::tso();
  std::vector<int> position(result.order.size());
  for (std::size_t i = 0; i < result.order.size(); ++i) {
    position[static_cast<std::size_t>(result.order[i])] = static_cast<int>(i);
  }
  for (core::EventId x = 0; x < an.num_events(); ++x) {
    for (core::EventId y = 0; y < an.num_events(); ++y) {
      if (x != y && an.po(x, y) && model.must_not_reorder(an, x, y)) {
        EXPECT_LT(position[static_cast<std::size_t>(x)],
                  position[static_cast<std::size_t>(y)]);
      }
    }
  }
}

}  // namespace
}  // namespace mcmc
