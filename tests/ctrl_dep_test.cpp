// Control-dependency extension tests.
//
// The paper's exploration omits ControlDep ("not implemented but
// supported by our framework"); here we exercise the framework support:
// RMO with control dependencies must forbid branch-guarded relaxations
// that RMO-without-control-dependencies allows.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "litmus/catalog.h"
#include "models/zoo.h"

namespace mcmc {
namespace {

bool allowed(const litmus::LitmusTest& t, const core::MemoryModel& m) {
  const core::Analysis an(t.program());
  return core::is_allowed(an, m, t.outcome());
}

TEST(ControlDeps, CtrlLbSeparatesRmoFromRmoNoCtrl) {
  // LB with branch-guarded writes: the write is control-dependent on the
  // read, so full RMO orders the pair and forbids the outcome.
  EXPECT_FALSE(allowed(litmus::ctrl_lb(), models::rmo()));
  EXPECT_TRUE(allowed(litmus::ctrl_lb(), models::rmo_no_ctrl()));
}

TEST(ControlDeps, CtrlMpSeparatesRmoFromRmoNoCtrl) {
  EXPECT_FALSE(allowed(litmus::ctrl_mp(), models::rmo()));
  EXPECT_TRUE(allowed(litmus::ctrl_mp(), models::rmo_no_ctrl()));
}

TEST(ControlDeps, PlainVariantsDoNotSeparateThem) {
  // Without branches the two RMO variants agree.
  EXPECT_EQ(allowed(litmus::load_buffering(), models::rmo()),
            allowed(litmus::load_buffering(), models::rmo_no_ctrl()));
  EXPECT_EQ(allowed(litmus::message_passing(), models::rmo()),
            allowed(litmus::message_passing(), models::rmo_no_ctrl()));
}

TEST(ControlDeps, BranchDoesNotOrderUnrelatedInstructions) {
  // A branch whose condition does not depend on the first read creates no
  // control dependency between the reads.
  core::Program p;
  p.add_thread({core::make_write(0, 1), core::make_fence(),
                core::make_write(1, 2)});
  p.add_thread({core::make_read(1, 1), core::make_read(2, 3),
                core::make_branch(3), core::make_read(0, 2)});
  const core::Analysis an(p);
  // r2's read is control-dependent on r3's read, not on r1's.
  EXPECT_FALSE(an.ctrl_dep(an.event_id(1, 0), an.event_id(1, 3)));
  EXPECT_TRUE(an.ctrl_dep(an.event_id(1, 1), an.event_id(1, 3)));
  // So RMO still allows the MP relaxation through r1.
  core::Outcome o;
  o.require(1, 2);
  o.require(2, 0);
  EXPECT_TRUE(core::is_allowed(an, models::rmo(), o));
}

TEST(ControlDeps, StrongModelsForbidCtrlTestsRegardless) {
  for (const auto& t : {litmus::ctrl_lb(), litmus::ctrl_mp()}) {
    EXPECT_FALSE(allowed(t, models::sc())) << t.name();
    EXPECT_FALSE(allowed(t, models::tso())) << t.name();
  }
}

TEST(ControlDeps, AlphaLikeAllowsBothCtrlTests) {
  // The Alpha-like variant has no dependency terms at all.
  EXPECT_TRUE(allowed(litmus::ctrl_lb(), models::alpha_variant()));
  EXPECT_TRUE(allowed(litmus::ctrl_mp(), models::alpha_variant()));
}

}  // namespace
}  // namespace mcmc
