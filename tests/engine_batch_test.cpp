// VerdictEngine batch semantics: batched verdicts must equal per-call
// core::is_allowed, symmetric duplicate tests must share verdicts through
// the canonical-key cache, and results must not depend on the thread
// count.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/analysis.h"
#include "core/checker.h"
#include "engine/verdict_engine.h"
#include "enumeration/naive.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "models/special_fence.h"
#include "models/zoo.h"

namespace mcmc {
namespace {

std::vector<core::MemoryModel> mixed_models() {
  std::vector<core::MemoryModel> models = {models::sc(), models::tso(),
                                           models::pso(), models::rmo()};
  models.push_back(explore::ModelChoices{1, 1, 1, 0}.to_model());
  models.push_back(explore::ModelChoices{1, 0, 3, 2}.to_model());
  return models;
}

TEST(VerdictEngineBatch, MatchesPerCallVerdicts) {
  enumeration::NaiveOptions options;
  options.num_locations = 2;
  const auto tests = enumeration::sample_naive_tests(options, 30, 2024);
  const auto models = mixed_models();

  engine::VerdictEngine eng;
  const auto matrix = eng.run_matrix(models, tests);

  for (std::size_t m = 0; m < models.size(); ++m) {
    for (std::size_t t = 0; t < tests.size(); ++t) {
      const core::Analysis an(tests[t].program());
      EXPECT_EQ(matrix.get(static_cast<int>(m), static_cast<int>(t)),
                core::is_allowed(an, models[m], tests[t].outcome()))
          << models[m].name() << " on test " << t;
    }
  }
  EXPECT_EQ(eng.last_stats().cells, models.size() * tests.size());
  // Analyses are built lazily, only for tests that reach evaluation:
  // one per canonical class of the sample, never more than the batch.
  EXPECT_GT(eng.last_stats().unique_analyses, 0u);
  EXPECT_LE(eng.last_stats().unique_analyses, tests.size());
}

TEST(VerdictEngineBatch, SymmetricDuplicatesHitTheCache) {
  // Store buffering, and its image under thread exchange + location
  // renaming: canonically identical, so one evaluation serves both.
  core::Program sb({{core::make_write(0, 1), core::make_read(1, 0)},
                    {core::make_write(1, 1), core::make_read(0, 1)}});
  core::Program sb_twin({{core::make_write(1, 1), core::make_read(0, 0)},
                         {core::make_write(0, 1), core::make_read(1, 1)}});
  core::Outcome both_stale({{0, 0}, {1, 0}});
  const std::vector<litmus::LitmusTest> tests = {
      litmus::LitmusTest("sb", sb, both_stale),
      litmus::LitmusTest("sb-twin", sb_twin, both_stale)};

  ASSERT_EQ(litmus::canonical_key(tests[0]), litmus::canonical_key(tests[1]));
  ASSERT_NE(litmus::structural_key(tests[0]), litmus::structural_key(tests[1]));

  const std::vector<core::MemoryModel> models = {models::tso()};
  engine::VerdictEngine eng;
  const auto matrix = eng.run_matrix(models, tests);
  EXPECT_EQ(matrix.get(0, 0), matrix.get(0, 1));
  EXPECT_TRUE(matrix.get(0, 0));  // TSO allows SB's stale outcome
  EXPECT_EQ(eng.last_stats().checks_run, 1u);
  EXPECT_GT(eng.last_stats().dedup_hits, 0u);

  // A later batch is served entirely from the persistent cache.
  const auto again = eng.run_matrix(models, tests);
  EXPECT_EQ(again, matrix);
  EXPECT_EQ(eng.last_stats().checks_run, 0u);
  EXPECT_EQ(eng.last_stats().cache_hits, 2u);
}

TEST(VerdictEngineBatch, CustomPredicateModelsSkipCanonicalSharing) {
  // Thread-swapped twins must NOT share verdicts under a model whose
  // formula carries an opaque custom predicate: the engine falls back to
  // structural keys, so the twins evaluate separately.
  core::Program sb({{core::make_write(0, 1), core::make_read(1, 0)},
                    {core::make_write(1, 1), core::make_read(0, 1)}});
  core::Program sb_twin({{core::make_write(1, 1), core::make_read(0, 0)},
                         {core::make_write(0, 1), core::make_read(1, 1)}});
  core::Outcome both_stale({{0, 0}, {1, 0}});
  const std::vector<litmus::LitmusTest> tests = {
      litmus::LitmusTest("sb", sb, both_stale),
      litmus::LitmusTest("sb-twin", sb_twin, both_stale)};

  const std::vector<core::MemoryModel> models = {
      models::special_fence_chain(1)};
  ASSERT_TRUE(models[0].formula().has_custom());
  engine::VerdictEngine eng;
  const auto matrix = eng.run_matrix(models, tests);
  EXPECT_EQ(eng.last_stats().checks_run, 2u);
  EXPECT_EQ(eng.last_stats().dedup_hits, 0u);
  // The twins are still semantically symmetric for this model's built-in
  // axioms, so the verdicts agree even though they were not shared.
  EXPECT_EQ(matrix.get(0, 0), matrix.get(0, 1));
}

TEST(VerdictEngineBatch, ResultsIdenticalAcrossThreadCounts) {
  enumeration::NaiveOptions options;
  const auto tests = enumeration::sample_naive_tests(options, 25, 7);
  const auto models = mixed_models();

  engine::EngineOptions serial;
  serial.num_threads = 1;
  engine::EngineOptions wide;
  wide.num_threads = 8;

  engine::VerdictEngine eng1(serial);
  engine::VerdictEngine engN(wide);
  const auto bits1 = eng1.run_matrix(models, tests);
  const auto bitsN = engN.run_matrix(models, tests);
  EXPECT_EQ(bits1, bitsN);
  EXPECT_EQ(eng1.last_stats().threads_used, 1);
  EXPECT_EQ(eng1.last_stats().checks_run, engN.last_stats().checks_run);

  // And with the cache off (every cell its own job).
  engine::EngineOptions raw_serial = serial;
  raw_serial.cache_enabled = false;
  engine::EngineOptions raw_wide = wide;
  raw_wide.cache_enabled = false;
  engine::VerdictEngine raw1(raw_serial);
  engine::VerdictEngine rawN(raw_wide);
  EXPECT_EQ(raw1.run_matrix(models, tests), bits1);
  EXPECT_EQ(rawN.run_matrix(models, tests), bits1);
  EXPECT_EQ(rawN.last_stats().checks_run, models.size() * tests.size());
}

TEST(VerdictEngineBatch, SatAndExplicitBackendsAgree) {
  enumeration::NaiveOptions options;
  options.num_locations = 2;
  options.max_accesses_per_thread = 2;
  const auto tests = enumeration::sample_naive_tests(options, 10, 99);
  const auto models = mixed_models();

  engine::EngineOptions sat;
  sat.backend = engine::Backend::Sat;
  engine::EngineOptions explicit_opts;
  explicit_opts.backend = engine::Backend::Explicit;

  engine::VerdictEngine sat_eng(sat);
  engine::VerdictEngine explicit_eng(explicit_opts);
  EXPECT_EQ(sat_eng.run_matrix(models, tests),
            explicit_eng.run_matrix(models, tests));
  EXPECT_GT(sat_eng.last_stats().sat_checks, 0u);
  EXPECT_EQ(sat_eng.last_stats().explicit_checks, 0u);
  EXPECT_GT(explicit_eng.last_stats().explicit_checks, 0u);
  EXPECT_EQ(explicit_eng.last_stats().sat_checks, 0u);
}

TEST(VerdictEngineBatch, RequestIndicesAreValidated) {
  const std::vector<core::MemoryModel> models = {models::sc()};
  const std::vector<litmus::LitmusTest> tests = {litmus::store_buffering()};
  engine::VerdictEngine eng;
  EXPECT_THROW((void)eng.run_batch(models, tests, {{0, 1}}),
               std::invalid_argument);
  EXPECT_THROW((void)eng.run_batch(models, tests, {{-1, 0}}),
               std::invalid_argument);
}

TEST(AdmissibilityMatrixBounds, AllowedRejectsOutOfRangeIndices) {
  const std::vector<core::MemoryModel> models = {models::sc(), models::tso()};
  const auto tests = litmus::figure3_tests();
  const explore::AdmissibilityMatrix matrix(models, tests);
  EXPECT_TRUE(matrix.allowed(1, 6));  // TSO allows L7 (store buffering)
  EXPECT_THROW((void)matrix.allowed(-1, 0), std::invalid_argument);
  EXPECT_THROW((void)matrix.allowed(0, -1), std::invalid_argument);
  EXPECT_THROW((void)matrix.allowed(2, 0), std::invalid_argument);
  EXPECT_THROW((void)matrix.allowed(0, 9), std::invalid_argument);
  EXPECT_THROW((void)matrix.compare(0, 2), std::invalid_argument);
  EXPECT_THROW((void)matrix.distinguishing_tests(-1, 0),
               std::invalid_argument);
}

TEST(AdmissibilityMatrixBounds, WordWiseOpsMatchPerCellLoops) {
  const auto space = explore::model_space(false);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());
  const auto tests = litmus::figure3_tests();
  const explore::AdmissibilityMatrix matrix(models, tests);

  for (int a = 0; a < matrix.num_models(); a += 5) {
    for (int b = a + 1; b < matrix.num_models(); b += 7) {
      bool first_extra = false;
      bool second_extra = false;
      std::vector<int> expected_diff;
      std::vector<int> expected_first_only;
      for (int t = 0; t < matrix.num_tests(); ++t) {
        const bool va = matrix.allowed(a, t);
        const bool vb = matrix.allowed(b, t);
        if (va && !vb) first_extra = true;
        if (vb && !va) second_extra = true;
        if (va != vb) expected_diff.push_back(t);
        if (va && !vb) expected_first_only.push_back(t);
      }
      explore::Relation expected = explore::Relation::Equivalent;
      if (first_extra && second_extra) {
        expected = explore::Relation::Incomparable;
      } else if (first_extra) {
        expected = explore::Relation::FirstWeaker;
      } else if (second_extra) {
        expected = explore::Relation::FirstStronger;
      }
      EXPECT_EQ(matrix.compare(a, b), expected);
      EXPECT_EQ(matrix.distinguishing_tests(a, b), expected_diff);
      EXPECT_EQ(matrix.allowed_by_first_only(a, b), expected_first_only);
    }
  }
}

}  // namespace
}  // namespace mcmc
