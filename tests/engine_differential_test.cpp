// Cross-engine differential sweep: the SAT-based and explicit-closure
// admissibility engines must agree on every (program, outcome, model)
// triple.  This suite drives them across randomized programs, the full
// syntactic outcome space, and randomized choice models -- thousands of
// verdict comparisons per seed.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "enumeration/naive.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "models/special_fence.h"
#include "models/zoo.h"
#include "util/rng.h"

namespace mcmc {
namespace {

using core::Analysis;
using core::Engine;

class EngineSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineSweep, RandomProgramsRandomModels) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  util::Rng rng(seed * 7919 + 101);
  enumeration::NaiveOptions options;
  options.num_locations = 2;
  const auto tests = enumeration::sample_naive_tests(options, 10, seed + 1);
  const auto space = explore::model_space(true);
  for (const auto& t : tests) {
    const Analysis an(t.program());
    // Two random models per program, full outcome space for each.
    for (int m = 0; m < 2; ++m) {
      const auto& choices = space[rng.below(space.size())];
      const auto model = choices.to_model();
      for (const auto& outcome : core::outcome_space(an)) {
        ASSERT_EQ(core::is_allowed(an, model, outcome, Engine::Sat),
                  core::is_allowed(an, model, outcome, Engine::Explicit))
            << choices.name() << "\n"
            << t.program().to_string() << "outcome: " << outcome.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSweep, ::testing::Range(0, 6));

TEST(EngineSweep, FullCatalogTimesAllNamedModels) {
  for (const auto& t : litmus::full_catalog()) {
    const Analysis an(t.program());
    for (const auto& model : models::all_named_models()) {
      for (const auto& outcome : core::outcome_space(an)) {
        ASSERT_EQ(core::is_allowed(an, model, outcome, Engine::Sat),
                  core::is_allowed(an, model, outcome, Engine::Explicit))
            << t.name() << " under " << model.name() << " outcome "
            << outcome.to_string();
      }
    }
  }
}

TEST(EngineSweep, SpecialFenceModelsAgreeAcrossEngines) {
  // Custom-predicate formulas go through the same engine paths.
  for (int n = 1; n <= 3; ++n) {
    const auto model = models::special_fence_chain(n);
    for (int k = 0; k <= 3; ++k) {
      const auto t = models::lb_with_fence_chain(k);
      const Analysis an(t.program());
      EXPECT_EQ(core::is_allowed(an, model, t.outcome(), Engine::Sat),
                core::is_allowed(an, model, t.outcome(), Engine::Explicit))
          << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace mcmc
