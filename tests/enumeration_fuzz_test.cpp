// Randomized differential fuzzing of the check pipelines over generated
// tests: the prepared-explicit fast path, the per-cell (PR-1) path, and
// the SAT backend must agree bit for bit on a seeded sample of the
// naive space, for a cross-section of the model zoo.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/analysis.h"
#include "core/checker.h"
#include "engine/test_stream.h"
#include "engine/verdict_engine.h"
#include "enumeration/naive.h"
#include "explore/space.h"
#include "models/zoo.h"

namespace mcmc {
namespace {

std::vector<core::MemoryModel> model_sample() {
  std::vector<core::MemoryModel> models = {models::sc(), models::tso(),
                                           models::pso(), models::ibm370(),
                                           models::rmo(),
                                           models::alpha_variant()};
  // Choice models exercising every digit kind, dependency digits
  // included (they are inert on the dependency-free naive space, which
  // is itself worth differential coverage).
  for (const auto& c :
       {explore::ModelChoices{1, 0, 1, 0}, explore::ModelChoices{1, 1, 3, 2},
        explore::ModelChoices{4, 1, 4, 3}, explore::ModelChoices{1, 0, 4, 2}}) {
    models.push_back(c.to_model());
  }
  return models;
}

TEST(EnumerationFuzz, BackendsAgreeBitForBitOnSampledTests) {
  // ~500 seeded naive-space tests through three independent pipelines.
  enumeration::NaiveOptions bounds;
  const auto tests = enumeration::sample_naive_tests(bounds, 500, 0xF00DF00D);
  const auto models = model_sample();

  engine::EngineOptions prepared_explicit;
  prepared_explicit.backend = engine::Backend::Explicit;

  engine::EngineOptions per_cell = prepared_explicit;
  per_cell.prepared = false;

  engine::EngineOptions sat;
  sat.backend = engine::Backend::Sat;

  engine::VerdictEngine eng_prepared(prepared_explicit);
  engine::VerdictEngine eng_per_cell(per_cell);
  engine::VerdictEngine eng_sat(sat);

  const auto bits_prepared = eng_prepared.run_matrix(models, tests);
  const auto bits_per_cell = eng_per_cell.run_matrix(models, tests);
  const auto bits_sat = eng_sat.run_matrix(models, tests);

  EXPECT_EQ(bits_prepared, bits_per_cell);
  EXPECT_EQ(bits_prepared, bits_sat);
  EXPECT_GT(eng_sat.last_stats().sat_checks, 0u);
  EXPECT_GT(eng_prepared.last_stats().explicit_checks, 0u);

  // Spot-check a diagonal stripe against the unbatched reference.
  for (std::size_t i = 0; i < tests.size(); i += 37) {
    const std::size_t m = i % models.size();
    const core::Analysis an(tests[i].program());
    EXPECT_EQ(bits_prepared.get(static_cast<int>(m), static_cast<int>(i)),
              core::is_allowed(an, models[m], tests[i].outcome()))
        << models[m].name() << " on " << tests[i].name();
  }
}

TEST(EnumerationFuzz, BackendsAgreeBitForBitOnDepSampledTests) {
  // The same three-pipeline differential, over the dependency-extended
  // sample space: DepConst chains, indirect reads, register-valued
  // writes, and branches flow through analysis, preparation, and SAT
  // encoding — and here the models' dependency digits are live, not
  // inert.
  enumeration::NaiveOptions bounds;
  bounds.deps = true;
  const auto tests = enumeration::sample_naive_tests(bounds, 300, 0x0DD5EED5);
  const auto models = model_sample();

  bool saw_dep = false;
  for (const auto& test : tests) {
    for (const auto& thread : test.program().threads()) {
      for (const auto& instr : thread) {
        saw_dep = saw_dep || instr.op == core::Op::DepConst ||
                  instr.op == core::Op::Branch;
      }
    }
  }
  EXPECT_TRUE(saw_dep);

  engine::EngineOptions prepared_explicit;
  prepared_explicit.backend = engine::Backend::Explicit;
  engine::EngineOptions per_cell = prepared_explicit;
  per_cell.prepared = false;
  engine::EngineOptions sat;
  sat.backend = engine::Backend::Sat;

  engine::VerdictEngine eng_prepared(prepared_explicit);
  engine::VerdictEngine eng_per_cell(per_cell);
  engine::VerdictEngine eng_sat(sat);

  const auto bits_prepared = eng_prepared.run_matrix(models, tests);
  EXPECT_EQ(bits_prepared, eng_per_cell.run_matrix(models, tests));
  EXPECT_EQ(bits_prepared, eng_sat.run_matrix(models, tests));

  for (std::size_t i = 0; i < tests.size(); i += 29) {
    const std::size_t m = i % models.size();
    const core::Analysis an(tests[i].program());
    EXPECT_EQ(bits_prepared.get(static_cast<int>(m), static_cast<int>(i)),
              core::is_allowed(an, models[m], tests[i].outcome()))
        << models[m].name() << " on " << tests[i].name();
  }
}

TEST(EnumerationFuzz, CacheAndDedupDoNotChangeVerdicts) {
  // A deliberately tiny sample space (36 programs), so the sample is
  // full of canonically symmetric duplicates.
  enumeration::NaiveOptions bounds;
  bounds.num_locations = 1;
  bounds.max_accesses_per_thread = 2;
  bounds.fences = false;
  const auto tests = enumeration::sample_naive_tests(bounds, 200, 20260729);
  const auto models = model_sample();

  engine::VerdictEngine cached{engine::EngineOptions{}};
  engine::EngineOptions raw_options;
  raw_options.cache_enabled = false;
  engine::VerdictEngine raw(raw_options);

  const auto bits_cached = cached.run_matrix(models, tests);
  EXPECT_EQ(bits_cached, raw.run_matrix(models, tests));
  // The duplicate-rich 2-location sample must actually exercise dedup.
  EXPECT_GT(cached.last_stats().dedup_hits, 0u);
  // A rerun on the same engine is served by the persistent cache.
  EXPECT_EQ(bits_cached, cached.run_matrix(models, tests));
  EXPECT_EQ(cached.last_stats().checks_run, 0u);
}

TEST(EnumerationFuzz, StreamFingerprintDedupMatchesLegacyKeyClasses) {
  // The streamed dedup filter now runs on 128-bit canonical
  // fingerprints with no Analysis and no key string; on a
  // duplicate-rich sample its novel count must equal the number of
  // distinct legacy canonical_key strings, and the built-in audit
  // (which recomputes the strings and cross-checks both directions)
  // must pass throughout.
  enumeration::NaiveOptions bounds;
  bounds.num_locations = 2;
  bounds.max_accesses_per_thread = 2;
  auto tests = enumeration::sample_naive_tests(bounds, 400, 0xBEEF);

  std::set<std::string> legacy_classes;
  for (const auto& test : tests) {
    legacy_classes.insert(litmus::canonical_key(test));
  }

  const std::vector<core::MemoryModel> models = {models::sc(), models::tso()};
  engine::VectorSource source(std::move(tests), 64);
  engine::VerdictEngine eng;
  engine::StreamOptions stream_options;
  stream_options.audit_dedup_keys = true;
  const auto stats = eng.run_stream(models, source, nullptr, stream_options);

  EXPECT_EQ(stats.novel_tests, legacy_classes.size());
  EXPECT_GT(stats.duplicate_tests, 0u);
}

TEST(EnumerationFuzz, StreamFingerprintDedupMatchesLegacyKeyClassesWithDeps) {
  // The fingerprint/string-key audit over a dependency-carrying sample:
  // KeyFacts' dep bitmasks, DepConst constants, and indirect-address
  // resolution all feed canonical_fingerprint, so the novel count must
  // still equal the number of distinct legacy canonical_key strings,
  // with the two-direction audit on throughout.
  enumeration::NaiveOptions bounds;
  bounds.num_locations = 2;
  bounds.max_accesses_per_thread = 2;
  bounds.deps = true;
  auto tests = enumeration::sample_naive_tests(bounds, 400, 0xDE9C0DE);

  std::set<std::string> legacy_classes;
  for (const auto& test : tests) {
    legacy_classes.insert(litmus::canonical_key(test));
  }

  const std::vector<core::MemoryModel> models = {models::sc(), models::tso()};
  engine::VectorSource source(std::move(tests), 64);
  engine::VerdictEngine eng;
  engine::StreamOptions stream_options;
  stream_options.audit_dedup_keys = true;
  const auto stats = eng.run_stream(models, source, nullptr, stream_options);

  EXPECT_EQ(stats.novel_tests, legacy_classes.size());
  EXPECT_GT(stats.duplicate_tests, 0u);
}

}  // namespace
}  // namespace mcmc
