// Tests for segments, templates, the Corollary-1 suite, and the naive
// enumeration baselines (paper Sections 3.2-3.4).
#include <gtest/gtest.h>

#include <set>

#include "core/analysis.h"
#include "core/checker.h"
#include "enumeration/naive.h"
#include "enumeration/segment.h"
#include "enumeration/suite.h"
#include "enumeration/templates.h"
#include "litmus/parser.h"
#include "models/zoo.h"

namespace mcmc::enumeration {
namespace {

TEST(Segments, CountsMatchSection34) {
  // With data dependencies: N_RR = N_RW = 6, N_WR = N_WW = 4.
  EXPECT_EQ(segment_count(SegType::RR, true), 6);
  EXPECT_EQ(segment_count(SegType::RW, true), 6);
  EXPECT_EQ(segment_count(SegType::WR, true), 4);
  EXPECT_EQ(segment_count(SegType::WW, true), 4);
  // Without: all 4.
  for (const auto t : {SegType::RR, SegType::RW, SegType::WR, SegType::WW}) {
    EXPECT_EQ(segment_count(t, false), 4);
  }
}

TEST(Segments, DepInteriorOnlyOnReadFirstSegments) {
  for (const auto t : {SegType::WR, SegType::WW}) {
    for (const auto& s : segments_of_type(t, true)) {
      EXPECT_NE(s.interior, Interior::Dep) << s.to_string();
    }
  }
}

TEST(Corollary1, BoundIs230WithDepsAnd124Without) {
  EXPECT_EQ(corollary1_bound(true), 230);
  EXPECT_EQ(corollary1_bound(false), 124);
}

TEST(Corollary1, SuiteRespectsTheoremBounds) {
  for (const bool deps : {false, true}) {
    for (const auto& t : corollary1_suite(deps)) {
      EXPECT_EQ(t.program().num_threads(), 2) << t.name();
      EXPECT_LE(t.program().num_memory_accesses(), 6) << t.name();
      // Each thread holds at most three memory accesses (Theorem 1).
      for (int th = 0; th < 2; ++th) {
        int accesses = 0;
        for (const auto& i : t.program().thread(th)) {
          accesses += i.is_memory_access();
        }
        EXPECT_LE(accesses, 3) << t.name();
      }
      EXPECT_NO_THROW(t.program().validate()) << t.name();
    }
  }
}

TEST(Corollary1, SuiteTestsHaveDistinctNamesAndPrograms) {
  const auto suite = corollary1_suite(true);
  std::set<std::string> names;
  std::set<std::string> bodies;
  for (const auto& t : suite) {
    EXPECT_TRUE(names.insert(t.name()).second) << t.name();
    bodies.insert(litmus::write_test(t));
  }
  // Distinct names; the bodies may collide only for name-distinct
  // instantiations that degenerate to the same program, which we forbid.
  EXPECT_EQ(bodies.size(), suite.size());
}

TEST(Corollary1, EveryOutcomeIsSatisfiableInTheWeakestModel) {
  // The suite filters degenerate instantiations: every remaining test's
  // outcome must be admissible in the weakest model of the class
  // (F = false), otherwise the test could never distinguish anything.
  const core::MemoryModel weakest("weakest", core::f_false());
  for (const auto& t : corollary1_suite(true)) {
    const core::Analysis an(t.program());
    EXPECT_TRUE(core::is_allowed(an, weakest, t.outcome())) << t.to_string();
  }
}

TEST(Corollary1, EveryOutcomeIsForbiddenUnderSC) {
  for (const auto& t : corollary1_suite(true)) {
    const core::Analysis an(t.program());
    EXPECT_FALSE(core::is_allowed(an, models::sc(), t.outcome()))
        << t.to_string();
  }
}

TEST(Templates, Case1RealizesLoadBufferingShape) {
  const Segment rw{SegType::RW, false, Interior::None};
  const auto t = case1(rw);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->program().num_memory_accesses(), 4);
}

TEST(Templates, Case2AppendsObserverReads) {
  const Segment ww{SegType::WW, false, Interior::None};
  const auto t = case2(ww);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->program().num_memory_accesses(), 6);
}

TEST(Templates, Case3aRequiresMatchingAddressShape) {
  const Segment rr_same{SegType::RR, true, Interior::None};
  const Segment ww_diff{SegType::WW, false, Interior::None};
  EXPECT_FALSE(case3a(rr_same, ww_diff).has_value());
  const Segment ww_same{SegType::WW, true, Interior::None};
  EXPECT_TRUE(case3a(rr_same, ww_same).has_value());
}

TEST(Templates, Case4OnlyDifferentAddress) {
  EXPECT_FALSE(case4({SegType::WR, true, Interior::None}).has_value());
  EXPECT_TRUE(case4({SegType::WR, false, Interior::None}).has_value());
}

TEST(Templates, Case5RequiresSameAddressCriticalSegment) {
  const Segment wr_diff{SegType::WR, false, Interior::None};
  const Segment wr_same{SegType::WR, true, Interior::None};
  const Segment rr_diff{SegType::RR, false, Interior::Dep};
  const Segment rw_diff{SegType::RW, false, Interior::Dep};
  EXPECT_FALSE(case5a(wr_diff, rr_diff).has_value());
  EXPECT_TRUE(case5a(wr_same, rr_diff).has_value());
  EXPECT_FALSE(case5b(wr_diff, rw_diff).has_value());
  EXPECT_TRUE(case5b(wr_same, rw_diff).has_value());
}

TEST(Templates, SuiteRealizesTheNineFigure3Shapes) {
  // Figure 3's tests arise from template instantiations (Section 4.2):
  // spot-check the characteristic ones by verdict signature below; here
  // just confirm the breakdown covers all seven templates.
  const auto b = suite_breakdown(true);
  EXPECT_GT(b.case1, 0);
  EXPECT_GT(b.case2, 0);
  EXPECT_GT(b.case3a, 0);
  EXPECT_GT(b.case3b, 0);
  EXPECT_GT(b.case4, 0);
  EXPECT_GT(b.case5a, 0);
  EXPECT_GT(b.case5b, 0);
  EXPECT_EQ(b.total(),
            static_cast<int>(corollary1_suite(true).size()));
  EXPECT_LE(b.total(), corollary1_bound(true));
}

TEST(Naive, ProgramCountIsAboutAMillion) {
  const NaiveCounts c = count_naive(NaiveOptions{});
  // 942 thread shapes (6 + 72 + 864), paired: 887k programs.
  EXPECT_EQ(c.programs, 942LL * 942LL);
  EXPECT_GT(c.tests, c.programs);
  EXPECT_GT(c.reduced_programs, 0);
  EXPECT_LT(c.reduced_programs, c.programs / 10);
}

TEST(Naive, ReductionIsCanonicalUnderSymmetry) {
  // With one location and no fences the space is tiny; verify the
  // canonical count by hand: thread shapes over {R,W} of length 1..2 are
  // 2 + 4 = 6, pairs 36; communicating pairs require a write; canonical
  // classes merge thread order.
  NaiveOptions o;
  o.max_accesses_per_thread = 2;
  o.num_locations = 1;
  o.fences = false;
  const NaiveCounts c = count_naive(o);
  EXPECT_EQ(c.programs, 36);
  // Unordered communicating pairs: 21 unordered pairs total minus the
  // read-only combinations over {R, RR}: 3.
  EXPECT_EQ(c.reduced_programs, 18);
}

TEST(Naive, SamplesAreValidAndDeterministic) {
  const auto a = sample_naive_tests(NaiveOptions{}, 25, 42);
  const auto b = sample_naive_tests(NaiveOptions{}, 25, 42);
  ASSERT_EQ(a.size(), 25u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NO_THROW(a[i].program().validate());
    EXPECT_TRUE(a[i].program() == b[i].program());
  }
}

}  // namespace
}  // namespace mcmc::enumeration
