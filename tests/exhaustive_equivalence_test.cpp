// Tier-1 slice of the empirical Theorem-1 harness: a bounded 2-access
// sub-space of the naive enumeration is streamed through the
// VerdictEngine and its model-pair distinguishability matrix is checked
// against the Corollary-1 suite's.  A strict sub-space cannot reach the
// suite's full distinguishing power, so the tier-1 assertion is
// containment; the full-space bit-for-bit equality lives in
// exhaustive_full_test.cpp under the ctest label `slow`.
#include <gtest/gtest.h>

#include "engine/test_stream.h"
#include "engine/verdict_engine.h"
#include "enumeration/exhaustive.h"
#include "enumeration/suite.h"
#include "explore/distinguish.h"
#include "explore/space.h"
#include "models/special_fence.h"
#include "models/zoo.h"

namespace mcmc {
namespace {

enumeration::ExhaustiveOptions slice_options() {
  enumeration::ExhaustiveOptions options;
  options.bounds.max_accesses_per_thread = 2;
  options.chunk_size = 1024;
  return options;
}

enumeration::ExhaustiveOptions dep_slice_options() {
  enumeration::ExhaustiveOptions options = slice_options();
  options.bounds.deps = true;
  return options;
}

std::vector<core::MemoryModel> ninety_models() {
  std::vector<core::MemoryModel> models;
  for (const auto& c : explore::model_space(true)) {
    models.push_back(c.to_model());
  }
  return models;
}

TEST(ExhaustiveStream, MaterializationMatchesCountingWalk) {
  const auto options = slice_options();
  const auto counted = enumeration::ExhaustiveStream::count(options);
  enumeration::ExhaustiveStream stream(options);
  std::vector<litmus::LitmusTest> chunk;
  long long chunks = 0;
  bool more = true;
  while (more) {
    chunk.clear();
    more = stream.next_chunk(chunk);
    EXPECT_LE(chunk.size(),
              static_cast<std::size_t>(options.chunk_size));
    for (const auto& test : chunk) {
      EXPECT_NO_THROW(test.program().validate());
      EXPECT_EQ(test.program().num_threads(), 2);
    }
    ++chunks;
  }
  EXPECT_TRUE(stream.done());
  EXPECT_EQ(stream.emitted().programs, counted.programs);
  EXPECT_EQ(stream.emitted().tests, counted.tests);
  // 78 shapes of length <= 2 -> 6084 programs; outcome products on top.
  EXPECT_EQ(counted.programs, 78LL * 78LL);
  EXPECT_EQ(counted.tests, 13086);
  EXPECT_GE(chunks, counted.tests / options.chunk_size);
}

TEST(ExhaustiveStream, FullSpaceCountsMatchNaiveCounts) {
  // The counting walk and count_naive share the generator core; the
  // full-space totals are the paper's "approximately a million tests".
  const enumeration::ExhaustiveCounts counts =
      enumeration::ExhaustiveStream::count(enumeration::ExhaustiveOptions{});
  const auto naive = enumeration::count_naive(enumeration::NaiveOptions{});
  EXPECT_EQ(counts.programs, naive.programs);
  EXPECT_EQ(counts.tests, naive.tests);
  EXPECT_EQ(counts.programs, 887364);
  EXPECT_EQ(counts.tests, 5160270);
}

TEST(ExhaustiveStream, DepSliceMaterializationMatchesCountingWalk) {
  // The dependency-extended 2-access sub-space: 114 shapes (78 no-dep
  // plus 36 carrying a data/ctrl dep after a leading read).
  const auto options = dep_slice_options();
  const auto counted = enumeration::ExhaustiveStream::count(options);
  EXPECT_EQ(counted.programs, 114LL * 114LL);
  EXPECT_EQ(counted.tests, 28470);

  enumeration::ExhaustiveStream stream(options);
  std::vector<litmus::LitmusTest> chunk;
  bool more = true;
  while (more) {
    chunk.clear();
    more = stream.next_chunk(chunk);
    for (const auto& test : chunk) {
      EXPECT_NO_THROW(test.program().validate());
      EXPECT_EQ(test.program().num_threads(), 2);
    }
  }
  EXPECT_TRUE(stream.done());
  EXPECT_EQ(stream.emitted().programs, counted.programs);
  EXPECT_EQ(stream.emitted().tests, counted.tests);
}

TEST(ExhaustiveStream, DepFullSpaceCountsMatchNaiveCounts) {
  // The with-dep Theorem-1 space: ~25.4M tests, a ~5x blow-up over the
  // no-dep 5,160,270 (streamed end to end in the nightly slow suite).
  enumeration::ExhaustiveOptions options;
  options.bounds.deps = true;
  const auto counts = enumeration::ExhaustiveStream::count(options);
  enumeration::NaiveOptions naive_bounds;
  naive_bounds.deps = true;
  const auto naive = enumeration::count_naive(naive_bounds);
  EXPECT_EQ(counts.programs, naive.programs);
  EXPECT_EQ(counts.tests, naive.tests);
  EXPECT_EQ(counts.programs, 4235364);
  EXPECT_EQ(counts.tests, 25435926);
}

TEST(ExhaustiveStream, CursorIsRejectedAcrossDepBoundaryChanges) {
  // A checkpoint cursor saved against one enumeration space must never
  // be adopted by a stream over a different one: the same (i, j,
  // odometer) coordinates name a different program there, so a resume
  // would silently skip part of the space.  The cursor carries an
  // options digest; restore must fail cleanly in both directions and
  // leave the stream in a usable from-scratch state.
  enumeration::ExhaustiveStream nodep(slice_options());
  enumeration::ExhaustiveStream dep(dep_slice_options());
  std::vector<litmus::LitmusTest> chunk;
  (void)nodep.next_chunk(chunk);
  chunk.clear();
  (void)dep.next_chunk(chunk);

  std::vector<std::uint64_t> nodep_cursor;
  std::vector<std::uint64_t> dep_cursor;
  ASSERT_TRUE(nodep.snapshot_cursor(nodep_cursor));
  ASSERT_TRUE(dep.snapshot_cursor(dep_cursor));

  enumeration::ExhaustiveStream dep_restored(dep_slice_options());
  EXPECT_FALSE(dep_restored.restore_cursor(nodep_cursor));
  enumeration::ExhaustiveStream nodep_restored(slice_options());
  EXPECT_FALSE(nodep_restored.restore_cursor(dep_cursor));
  // Matching spaces still round-trip.
  EXPECT_TRUE(dep_restored.restore_cursor(dep_cursor));
  EXPECT_TRUE(nodep_restored.restore_cursor(nodep_cursor));

  // The rejected stream is reset, not wedged: draining it yields the
  // full slice.
  enumeration::ExhaustiveStream fresh(dep_slice_options());
  EXPECT_FALSE(fresh.restore_cursor(nodep_cursor));
  chunk.clear();
  while (fresh.next_chunk(chunk)) chunk.clear();
  EXPECT_EQ(fresh.emitted().tests, 28470);
}

TEST(RunStream, ChunkAccountingAndCrossChunkDedup) {
  const auto options = slice_options();
  enumeration::ExhaustiveStream stream(options);
  engine::VerdictEngine eng;
  const std::vector<core::MemoryModel> models = {
      explore::ModelChoices{4, 4, 4, 4}.to_model(),
      explore::ModelChoices{1, 0, 1, 0}.to_model()};

  std::size_t chunk_streamed = 0;
  std::size_t chunk_novel = 0;
  std::size_t delivered_tests = 0;
  const auto stats = eng.run_stream(
      models, stream,
      [&](const std::vector<litmus::LitmusTest>& novel,
          const engine::BitMatrix& verdicts,
          const engine::StreamChunkStats& cs) {
        EXPECT_EQ(cs.streamed, cs.novel + cs.duplicates);
        EXPECT_EQ(novel.size(), cs.novel);
        EXPECT_EQ(verdicts.cols(), static_cast<int>(novel.size()));
        EXPECT_EQ(verdicts.rows(), 2);
        chunk_streamed += cs.streamed;
        chunk_novel += cs.novel;
        delivered_tests += novel.size();
      });

  EXPECT_EQ(stats.tests_streamed, chunk_streamed);
  EXPECT_EQ(stats.novel_tests, chunk_novel);
  EXPECT_EQ(stats.tests_streamed,
            static_cast<std::size_t>(stream.emitted().tests));
  EXPECT_EQ(stats.novel_tests + stats.duplicate_tests, stats.tests_streamed);
  EXPECT_EQ(delivered_tests, stats.novel_tests);
  // The slice is symmetry-rich: the canonical filter must absorb most
  // of it (measured: 1253 of 13086 survive).
  EXPECT_GT(stats.dedup_rate(), 0.85);
  EXPECT_GT(stats.novel_tests, 1000u);
  // Without cross-chunk dedup every test is delivered.
  enumeration::ExhaustiveStream stream2(options);
  engine::StreamOptions raw;
  raw.dedup_across_chunks = false;
  const auto raw_stats = eng.run_stream(models, stream2, nullptr, raw);
  EXPECT_EQ(raw_stats.novel_tests, raw_stats.tests_streamed);
  EXPECT_EQ(raw_stats.duplicate_tests, 0u);
}

TEST(RunStream, StreamedVerdictsMatchMaterializedBatch) {
  // One suite corpus through VectorSource chunks vs one run_matrix call.
  const auto suite = enumeration::corollary1_suite(true);
  const auto models = ninety_models();

  engine::VerdictEngine eng_batch;
  const auto batch = eng_batch.run_matrix(models, suite);

  engine::VectorSource source(suite, 17);
  engine::VerdictEngine eng_stream;
  std::vector<std::pair<std::string, std::vector<bool>>> streamed;
  (void)eng_stream.run_stream(
      models, source,
      [&](const std::vector<litmus::LitmusTest>& novel,
          const engine::BitMatrix& verdicts, const engine::StreamChunkStats&) {
        for (std::size_t i = 0; i < novel.size(); ++i) {
          std::vector<bool> column;
          for (int m = 0; m < verdicts.rows(); ++m) {
            column.push_back(verdicts.get(m, static_cast<int>(i)));
          }
          streamed.emplace_back(novel[i].name(), std::move(column));
        }
      });

  // The suite is already symmetry-reduced: nothing deduplicates, so
  // every suite test arrives with its batch verdict column.
  ASSERT_EQ(streamed.size(), suite.size());
  for (std::size_t t = 0; t < suite.size(); ++t) {
    EXPECT_EQ(streamed[t].first, suite[t].name());
    for (std::size_t m = 0; m < models.size(); ++m) {
      EXPECT_EQ(streamed[t].second[m],
                batch.get(static_cast<int>(m), static_cast<int>(t)))
          << suite[t].name() << " under model " << m;
    }
  }
}

TEST(TheoremSlice, DistinguishabilityContainedInSuiteMatrices) {
  const auto models = ninety_models();
  engine::VerdictEngine eng;
  const auto by_suite_nodep = explore::distinguishability(
      eng, models, enumeration::corollary1_suite(false));
  const auto by_suite_dep = explore::distinguishability(
      eng, models, enumeration::corollary1_suite(true));

  enumeration::ExhaustiveStream stream(slice_options());
  explore::TheoremHarnessReport report;
  const auto by_slice = explore::distinguishability_streamed(
      eng, models, stream, explore::TheoremHarnessOptions{}, &report);

  // Theorem 1: anything a bounded test separates, the suite separates.
  EXPECT_TRUE(by_slice.subset_of(by_suite_nodep));
  EXPECT_TRUE(by_slice.subset_of(by_suite_dep));
  EXPECT_TRUE(by_slice.pairs_beyond(by_suite_nodep).empty());
  // The 2-access slice already separates most pairs (measured: 3825 of
  // the suite's 3843).
  EXPECT_GT(by_slice.distinguished_pairs(), 3700);
  EXPECT_LT(by_slice.distinguished_pairs(),
            by_suite_nodep.distinguished_pairs());
  // With-dep suite: every pair except the paper's eight equivalent ones.
  EXPECT_EQ(by_suite_dep.distinguished_pairs(), 4005 - 8);
  // Harness accounting.
  EXPECT_EQ(report.stream.tests_streamed, 13086u);
  EXPECT_GT(report.candidate_tests, 0u);
  EXPECT_EQ(report.candidate_tests + report.filtered_tests,
            report.stream.novel_tests);
}

TEST(TheoremSlice, DepSliceDistinguishabilityContainedInDepSuite) {
  // The dependency-extended 2-access slice: still Theorem-1 bounded, so
  // its matrix must be contained in the with-dep suite's; and since its
  // space strictly includes the no-dep slice's, it separates at least
  // as many pairs (measured: 3,825 from the no-dep slice).
  const auto models = ninety_models();
  engine::VerdictEngine eng;
  const auto by_suite_dep = explore::distinguishability(
      eng, models, enumeration::corollary1_suite(true));

  enumeration::ExhaustiveStream stream(dep_slice_options());
  explore::TheoremHarnessReport report;
  const auto by_slice = explore::distinguishability_streamed(
      eng, models, stream, explore::TheoremHarnessOptions{}, &report);

  EXPECT_TRUE(by_slice.subset_of(by_suite_dep));
  EXPECT_TRUE(by_slice.pairs_beyond(by_suite_dep).empty());
  EXPECT_GE(by_slice.distinguished_pairs(), 3825);
  EXPECT_LE(by_slice.distinguished_pairs(),
            by_suite_dep.distinguished_pairs());
  EXPECT_EQ(report.stream.tests_streamed, 28470u);
  EXPECT_EQ(report.candidate_tests + report.filtered_tests,
            report.stream.novel_tests);
}

TEST(TheoremSlice, ExtremesPrefilterIsLossless) {
  // The monotone-class prefilter must not change the matrix: run the
  // same slice with and without it, and against the materialized-corpus
  // builder.
  const auto models = ninety_models();
  engine::VerdictEngine eng;

  enumeration::ExhaustiveStream filtered_stream(slice_options());
  explore::TheoremHarnessOptions with_filter;
  const auto filtered = explore::distinguishability_streamed(
      eng, models, filtered_stream, with_filter);

  enumeration::ExhaustiveStream direct_stream(slice_options());
  explore::TheoremHarnessOptions without_filter;
  without_filter.filter_extremes = false;
  const auto direct = explore::distinguishability_streamed(
      eng, models, direct_stream, without_filter);

  EXPECT_TRUE(filtered == direct);

  // And the fully materialized corpus agrees.
  enumeration::ExhaustiveStream all(slice_options());
  std::vector<litmus::LitmusTest> corpus;
  engine::for_each_test(
      all, [&](litmus::LitmusTest& t) { corpus.push_back(std::move(t)); });
  engine::VerdictEngine eng2;
  EXPECT_TRUE(explore::distinguishability(eng2, models, corpus) == filtered);
}

TEST(TheoremSlice, FilteredHarnessStaysSoundForCustomPredicateModels) {
  // A custom-predicate model may judge canonically-equal tests
  // differently, so the filtered harness must fall back to structural
  // stream dedup when such a model is swept — filtered and unfiltered
  // paths must still agree.
  std::vector<core::MemoryModel> models = {models::special_fence_chain(1),
                                           models::sc(), models::tso(),
                                           models::pso()};
  ASSERT_TRUE(models[0].formula().has_custom());

  enumeration::ExhaustiveOptions tiny = slice_options();
  tiny.bounds.num_locations = 2;  // keep the custom sweep small
  engine::VerdictEngine eng;

  enumeration::ExhaustiveStream filtered_stream(tiny);
  const auto filtered = explore::distinguishability_streamed(
      eng, models, filtered_stream, explore::TheoremHarnessOptions{});

  enumeration::ExhaustiveStream direct_stream(tiny);
  explore::TheoremHarnessOptions no_filter;
  no_filter.filter_extremes = false;
  const auto direct = explore::distinguishability_streamed(
      eng, models, direct_stream, no_filter);

  EXPECT_TRUE(filtered == direct);
}

}  // namespace
}  // namespace mcmc
