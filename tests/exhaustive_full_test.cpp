// The full empirical Theorem-1 / Corollary-1 equivalence runs, labeled
// `slow` in ctest (tier-1 runs the bounded slices in
// exhaustive_equivalence_test.cpp instead; CI runs these nightly and on
// workflow_dispatch):
//
//   1. stream all 5,160,270 naive-space tests through the VerdictEngine
//      in chunks, build the 90x90 model-pair distinguishability matrix,
//      and require it to be bit-for-bit identical to the matrix induced
//      by the 64-test no-dependency Corollary-1 suite;
//   2. stream all 25,435,926 dependency-extended naive-space tests the
//      same way and require the matrix to be bit-for-bit identical to
//      the 124-test with-dependency suite (3,997 of 4,005 pairs — every
//      pair except the paper's eight equivalent ones).
//
// The no-dep comparison uses the no-dependency suite because that space
// carries no dependency idioms: on such corpora the dependency digits
// collapse (option 2 behaves like 0, 3 like 1), identically on both
// sides of the comparison.  The dep-extended space makes the dependency
// digits live, which is exactly what closes the remaining
// 3,997 - 3,843 = 154 pairs.
#include <gtest/gtest.h>

#include "engine/verdict_engine.h"
#include "enumeration/exhaustive.h"
#include "enumeration/suite.h"
#include "explore/distinguish.h"
#include "explore/space.h"

namespace mcmc {
namespace {

TEST(ExhaustiveFull, NaiveSpaceDistinguishabilityEqualsCorollary1Suite) {
  const auto space = explore::model_space(true);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());

  engine::VerdictEngine eng;
  const auto by_suite_nodep = explore::distinguishability(
      eng, models, enumeration::corollary1_suite(false));
  const auto by_suite_dep = explore::distinguishability(
      eng, models, enumeration::corollary1_suite(true));

  enumeration::ExhaustiveOptions options;  // the full default bounds
  options.chunk_size = 8192;
  enumeration::ExhaustiveStream stream(options);
  explore::TheoremHarnessReport report;
  explore::TheoremHarnessOptions harness;
  // Collision-audit the hash-based dedup over the whole 5.16M-test
  // space: every class's full canonical key is retained and checked
  // against its 128-bit hash, so the equivalence below also proves the
  // hash dedup changes nothing (a collision throws mid-stream).
  harness.stream.audit_dedup_keys = true;
  const auto by_naive = explore::distinguishability_streamed(
      eng, models, stream, harness, &report);

  // ---- The headline equivalence, bit for bit. ----
  EXPECT_TRUE(by_naive == by_suite_nodep)
      << "naive-only pairs: " << by_naive.pairs_beyond(by_suite_nodep).size()
      << ", suite-only pairs: "
      << by_suite_nodep.pairs_beyond(by_naive).size();
  EXPECT_EQ(by_naive.distinguished_pairs(), 3843);
  EXPECT_TRUE(by_naive.subset_of(by_suite_dep));
  EXPECT_EQ(by_suite_dep.distinguished_pairs(), 4005 - 8);

  // ---- Stream accounting: the whole space went through, and the
  // canonical machinery reduced it by an order of magnitude. ----
  EXPECT_EQ(report.stream.tests_streamed, 5160270u);
  EXPECT_EQ(static_cast<long long>(report.stream.tests_streamed),
            stream.emitted().tests);
  EXPECT_EQ(stream.emitted().programs, 887364);
  EXPECT_EQ(report.stream.novel_tests, 445565u);  // canonical test classes
  EXPECT_EQ(report.candidate_tests + report.filtered_tests,
            report.stream.novel_tests);
  EXPECT_EQ(report.candidate_tests, 40817u);  // survive the extremes filter
  EXPECT_GT(report.stream.dedup_rate(), 0.9);
}

TEST(ExhaustiveFull, DepSpaceDistinguishabilityEqualsWithDepSuite) {
  const auto space = explore::model_space(true);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());

  engine::VerdictEngine eng;
  const auto by_suite_dep = explore::distinguishability(
      eng, models, enumeration::corollary1_suite(true));

  enumeration::ExhaustiveOptions options;  // the full default bounds...
  options.bounds.deps = true;              // ...plus dependency slots
  options.chunk_size = 8192;
  enumeration::ExhaustiveStream stream(options);
  explore::TheoremHarnessReport report;
  explore::TheoremHarnessOptions harness;
  // No collision audit here: the fingerprint/string-key cross-check
  // already runs nightly over the full no-dep space (above) and over
  // the dep-carrying 2-access slice in tier-1, and on this 25.4M-test
  // space retaining every class's key string costs ~800 MB of RSS and
  // ~5x keys-stage time for no additional dep-specific coverage.
  const auto by_naive = explore::distinguishability_streamed(
      eng, models, stream, harness, &report);

  // ---- The headline with-dep equivalence, bit for bit. ----
  EXPECT_TRUE(by_naive == by_suite_dep)
      << "naive-only pairs: " << by_naive.pairs_beyond(by_suite_dep).size()
      << ", suite-only pairs: " << by_suite_dep.pairs_beyond(by_naive).size();
  EXPECT_EQ(by_naive.distinguished_pairs(), 4005 - 8);

  // ---- Stream accounting, pinned from the audited reference run. ----
  EXPECT_EQ(report.stream.tests_streamed, 25435926u);
  EXPECT_EQ(static_cast<long long>(report.stream.tests_streamed),
            stream.emitted().tests);
  EXPECT_EQ(stream.emitted().programs, 4235364);
  EXPECT_EQ(report.stream.novel_tests, 2198389u);  // canonical test classes
  EXPECT_EQ(report.candidate_tests + report.filtered_tests,
            report.stream.novel_tests);
  EXPECT_EQ(report.candidate_tests, 219517u);  // survive the extremes filter
  EXPECT_GT(report.stream.dedup_rate(), 0.9);
}

}  // namespace
}  // namespace mcmc
