// Tests for the forbidden-outcome explanation machinery.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/explain.h"
#include "litmus/catalog.h"
#include "models/zoo.h"

namespace mcmc::core {
namespace {

TEST(Explain, AllowedOutcomeIsReportedAsAllowed) {
  const auto t = litmus::store_buffering();
  const Analysis an(t.program());
  const auto explanation =
      explain_forbidden(an, models::tso(), t.outcome());
  EXPECT_TRUE(explanation.actually_allowed);
  EXPECT_TRUE(explanation.candidates.empty());
}

TEST(Explain, SbUnderScShowsTheClassicFourEdgeCycle) {
  const auto t = litmus::store_buffering();
  const Analysis an(t.program());
  const auto explanation = explain_forbidden(an, models::sc(), t.outcome());
  ASSERT_FALSE(explanation.actually_allowed);
  ASSERT_EQ(explanation.candidates.size(), 1u);  // rf is pinned (both 0)
  const auto& item = explanation.candidates[0];
  ASSERT_EQ(item.forced_cycle.size(), 4u);
  // Two program-order edges and two from-read edges.
  int po = 0;
  int fr = 0;
  for (const auto& line : item.forced_cycle) {
    po += line.find("program order") != std::string::npos;
    fr += line.find("from-read") != std::string::npos;
  }
  EXPECT_EQ(po, 2);
  EXPECT_EQ(fr, 2);
}

TEST(Explain, TestAUnderIbm370MentionsTheForwardingEdge) {
  const auto t = litmus::test_a();
  const Analysis an(t.program());
  const auto explanation =
      explain_forbidden(an, models::ibm370(), t.outcome());
  ASSERT_FALSE(explanation.actually_allowed);
  ASSERT_EQ(explanation.candidates.size(), 1u);
  const auto& item = explanation.candidates[0];
  ASSERT_FALSE(item.forced_cycle.empty());
  // The cycle runs through the same-address Write Y => Read Y edge that
  // IBM370 (unlike TSO) enforces.
  bool found = false;
  for (const auto& line : item.forced_cycle) {
    if (line.find("Write Y <- 2  =>  T2: Read Y -> r2") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << item.forced_cycle[0];
}

TEST(Explain, UnwritableValueIsDiagnosed) {
  const auto t = litmus::store_buffering();
  const Analysis an(t.program());
  Outcome impossible;
  impossible.require(1, 99);
  const auto explanation =
      explain_forbidden(an, models::tso(), impossible);
  ASSERT_FALSE(explanation.actually_allowed);
  ASSERT_EQ(explanation.candidates.size(), 1u);
  EXPECT_NE(explanation.candidates[0].summary.find("no read-from map"),
            std::string::npos);
}

TEST(Explain, StaleLocalReadIsDiagnosedAsInfeasibleRf) {
  // T: Write X <- 1 ; Read X -> r1 with r1 = 0 has a candidate rf (the
  // initial value) that is coherence-infeasible.
  Program p;
  p.add_thread({make_write(0, 1), make_read(0, 1)});
  const Analysis an(p);
  Outcome stale;
  stale.require(1, 0);
  const auto explanation =
      explain_forbidden(an, MemoryModel("weakest", f_false()), stale);
  ASSERT_FALSE(explanation.actually_allowed);
  ASSERT_EQ(explanation.candidates.size(), 1u);
  EXPECT_NE(explanation.candidates[0].summary.find("infeasible"),
            std::string::npos);
}

TEST(Explain, DisjunctionDrivenFailureIsSummarized) {
  // L2 under TSO: the cycle runs through the read-from edge plus the
  // same-address read-read program-order edge; for the rf candidate the
  // forced edges alone may or may not close the cycle -- the explanation
  // must either show a forced cycle or report exhausted choices.
  const auto t = litmus::l2();
  const Analysis an(t.program());
  const auto explanation = explain_forbidden(an, models::tso(), t.outcome());
  ASSERT_FALSE(explanation.actually_allowed);
  ASSERT_FALSE(explanation.candidates.empty());
  for (const auto& item : explanation.candidates) {
    EXPECT_FALSE(item.summary.empty());
  }
}

TEST(Explain, EveryForbiddenCatalogVerdictHasAnExplanation) {
  for (const auto& t : litmus::full_catalog()) {
    const Analysis an(t.program());
    for (const auto& model : models::all_named_models()) {
      const auto explanation = explain_forbidden(an, model, t.outcome());
      if (explanation.actually_allowed) continue;
      ASSERT_FALSE(explanation.candidates.empty())
          << t.name() << " under " << model.name();
      for (const auto& item : explanation.candidates) {
        EXPECT_FALSE(item.summary.empty());
      }
    }
  }
}

}  // namespace
}  // namespace mcmc::core
