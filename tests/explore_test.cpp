// Tests for the model-space exploration (paper Section 4.2): the 90-model
// space, the eight equivalent pairs, Figure 4's lattice, and the
// nine-litmus-test sufficiency result.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "enumeration/suite.h"
#include "explore/cover.h"
#include "explore/lattice.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "models/zoo.h"

namespace mcmc::explore {
namespace {

/// Shared fixture: the 90-model space against the Corollary-1 suite.
class Exploration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    space_ = new std::vector<ModelChoices>(model_space(true));
    std::vector<core::MemoryModel> models;
    models.reserve(space_->size());
    for (const auto& c : *space_) models.push_back(c.to_model());
    suite_ = new std::vector<litmus::LitmusTest>(
        enumeration::corollary1_suite(true));
    matrix_ = new AdmissibilityMatrix(models, *suite_);
  }
  static void TearDownTestSuite() {
    delete matrix_;
    delete suite_;
    delete space_;
    matrix_ = nullptr;
    suite_ = nullptr;
    space_ = nullptr;
  }

  static int index_of(const ModelChoices& c) {
    const auto it = std::find(space_->begin(), space_->end(), c);
    EXPECT_NE(it, space_->end());
    return static_cast<int>(it - space_->begin());
  }

  static std::vector<ModelChoices>* space_;
  static std::vector<litmus::LitmusTest>* suite_;
  static AdmissibilityMatrix* matrix_;
};

std::vector<ModelChoices>* Exploration::space_ = nullptr;
std::vector<litmus::LitmusTest>* Exploration::suite_ = nullptr;
AdmissibilityMatrix* Exploration::matrix_ = nullptr;

TEST(ModelSpace, Has90ModelsWithDepsAnd36Without) {
  EXPECT_EQ(model_space(true).size(), 90u);
  EXPECT_EQ(model_space(false).size(), 36u);
}

TEST(ModelSpace, NamesRoundTrip) {
  for (const auto& c : model_space(true)) {
    const auto back = parse_model_name(c.name());
    ASSERT_TRUE(back.has_value()) << c.name();
    EXPECT_TRUE(*back == c);
  }
  EXPECT_FALSE(parse_model_name("M0444").has_value());  // ww=0 eliminated
  EXPECT_FALSE(parse_model_name("M4244").has_value());  // wr=2 eliminated
  EXPECT_FALSE(parse_model_name("M4424").has_value());  // rw=2 eliminated
  EXPECT_FALSE(parse_model_name("X4444").has_value());
}

TEST(ModelSpace, NamedHardwareModelCoordinatesMatchFigure4) {
  EXPECT_EQ(sc_choices().name(), "M4444");
  EXPECT_EQ(tso_choices().name(), "M4044");
  EXPECT_EQ(pso_choices().name(), "M1044");
  EXPECT_EQ(ibm370_choices().name(), "M4144");
  EXPECT_EQ(rmo_nodep_choices().name(), "M1010");
  EXPECT_EQ(alpha_choices().name(), "M1110");
}

TEST_F(Exploration, ChoiceModelsAgreeWithHandWrittenFormulas) {
  // The digit-encoded models must induce the same verdicts as the
  // Section 2.4 formulas on the full suite.
  struct Pairing {
    core::MemoryModel zoo;
    ModelChoices choices;
  };
  const std::vector<Pairing> pairings = {
      {models::sc(), sc_choices()},
      {models::tso(), tso_choices()},
      {models::pso(), pso_choices()},
      {models::ibm370(), ibm370_choices()},
      {models::rmo_no_ctrl(), rmo_choices()},
  };
  for (const auto& p : pairings) {
    const auto digit_model = p.choices.to_model();
    for (const auto& t : *suite_) {
      const core::Analysis an(t.program());
      EXPECT_EQ(core::is_allowed(an, p.zoo, t.outcome()),
                core::is_allowed(an, digit_model, t.outcome()))
          << p.zoo.name() << " vs " << digit_model.name() << " on "
          << t.name();
    }
  }
}

TEST_F(Exploration, ExactlyEightEquivalentPairs) {
  std::set<std::pair<std::string, std::string>> equivalent;
  for (int a = 0; a < matrix_->num_models(); ++a) {
    for (int b = a + 1; b < matrix_->num_models(); ++b) {
      if (matrix_->compare(a, b) == Relation::Equivalent) {
        equivalent.insert({(*space_)[static_cast<std::size_t>(a)].name(),
                           (*space_)[static_cast<std::size_t>(b)].name()});
      }
    }
  }
  const std::set<std::pair<std::string, std::string>> expected = {
      {"M1010", "M1110"}, {"M1011", "M1111"}, {"M4010", "M4110"},
      {"M4011", "M4111"}, {"M4030", "M4130"}, {"M4031", "M4131"},
      {"M4040", "M4140"}, {"M4041", "M4141"},
  };
  EXPECT_EQ(equivalent, expected);
}

TEST_F(Exploration, EquivalentPairsDifferOnlyInSameAddressWriteRead) {
  // Section 4.2: "All equivalent pairs of models are models that differ
  // only with the choice of whether to allow reordering of writes with
  // later reads to the same address."
  for (int a = 0; a < matrix_->num_models(); ++a) {
    for (int b = a + 1; b < matrix_->num_models(); ++b) {
      if (matrix_->compare(a, b) != Relation::Equivalent) continue;
      const auto& ca = (*space_)[static_cast<std::size_t>(a)];
      const auto& cb = (*space_)[static_cast<std::size_t>(b)];
      EXPECT_EQ(ca.ww, cb.ww);
      EXPECT_EQ(ca.rw, cb.rw);
      EXPECT_EQ(ca.rr, cb.rr);
      EXPECT_TRUE((ca.wr == 0 && cb.wr == 1) || (ca.wr == 1 && cb.wr == 0));
    }
  }
}

TEST_F(Exploration, StrengtheningADigitNeverWeakensTheModel) {
  // Property: raising one digit within its option chain (0 < {1,2} < 3 < 4,
  // with 1 and 2 incomparable) can only shrink the allowed set.
  auto stronger_digit = [](int lo, int hi) {
    if (lo == hi) return true;
    if (lo == 0) return true;
    if (hi == 4) return true;
    return (lo == 1 || lo == 2) && hi == 3;
  };
  const int n = matrix_->num_models();
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      const auto& ca = (*space_)[static_cast<std::size_t>(a)];
      const auto& cb = (*space_)[static_cast<std::size_t>(b)];
      const bool pointwise =
          stronger_digit(ca.ww, cb.ww) && stronger_digit(ca.wr, cb.wr) &&
          stronger_digit(ca.rw, cb.rw) && stronger_digit(ca.rr, cb.rr);
      if (!pointwise) continue;
      const Relation r = matrix_->compare(a, b);
      EXPECT_TRUE(r == Relation::FirstWeaker || r == Relation::Equivalent)
          << ca.name() << " vs " << cb.name() << ": " << to_string(r);
    }
  }
}

TEST_F(Exploration, NineCatalogTestsDistinguishEverything) {
  // Build the verdicts of L1..L9 over the 90 models and check they cover
  // every pair the 126-test suite distinguishes.
  std::vector<core::MemoryModel> models;
  for (const auto& c : *space_) models.push_back(c.to_model());
  const AdmissibilityMatrix nine(models, litmus::figure3_tests());
  const auto pairs = distinguishable_pairs(*matrix_);
  for (const auto& [a, b] : pairs) {
    bool covered = false;
    for (int t = 0; t < nine.num_tests(); ++t) {
      if (nine.allowed(a, t) != nine.allowed(b, t)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << (*space_)[static_cast<std::size_t>(a)].name()
                         << " vs "
                         << (*space_)[static_cast<std::size_t>(b)].name();
  }
}

TEST_F(Exploration, GreedyCoverNeedsNineTests) {
  const auto cover = greedy_cover(*matrix_);
  EXPECT_EQ(cover.size(), 9u);
  EXPECT_TRUE(covers_all(*matrix_, cover, distinguishable_pairs(*matrix_)));
}

TEST_F(Exploration, ExactMinimumCoverIsNine) {
  const auto cover = exact_minimum_cover(*matrix_);
  EXPECT_EQ(cover.size(), 9u);
  EXPECT_TRUE(covers_all(*matrix_, cover, distinguishable_pairs(*matrix_)));
}

TEST_F(Exploration, LatticeGroupsFigure4MergedNodes) {
  // The dependency-free 36-model subspace must yield 30 nodes, six of
  // which are merged pairs (Figure 4 shows them as double-labeled nodes).
  const auto sub = model_space(false);
  std::vector<core::MemoryModel> models;
  std::vector<std::string> names;
  for (const auto& c : sub) {
    models.push_back(c.to_model());
    names.push_back(c.name());
  }
  const auto nine = litmus::figure3_tests();
  std::vector<std::string> test_names;
  for (const auto& t : nine) test_names.push_back(t.name());
  const AdmissibilityMatrix m(models, nine);
  const Lattice lattice = build_lattice(m, names, test_names);
  EXPECT_EQ(lattice.nodes.size(), 30u);
  int merged = 0;
  for (const auto& node : lattice.nodes) merged += node.members.size() == 2;
  EXPECT_EQ(merged, 6);
}

TEST_F(Exploration, LatticeEdgesAreGenuineWitnessedCovers) {
  const auto sub = model_space(false);
  std::vector<core::MemoryModel> models;
  std::vector<std::string> names;
  for (const auto& c : sub) {
    models.push_back(c.to_model());
    names.push_back(c.name());
  }
  const auto nine = litmus::figure3_tests();
  std::vector<std::string> test_names;
  for (const auto& t : nine) test_names.push_back(t.name());
  const AdmissibilityMatrix m(models, nine);
  const Lattice lattice = build_lattice(m, names, test_names);
  for (const auto& e : lattice.edges) {
    const int weaker =
        lattice.nodes[static_cast<std::size_t>(e.weaker)].members[0];
    const int stronger =
        lattice.nodes[static_cast<std::size_t>(e.stronger)].members[0];
    EXPECT_EQ(m.compare(weaker, stronger), Relation::FirstWeaker);
    EXPECT_TRUE(m.allowed(weaker, e.witness_test));
    EXPECT_FALSE(m.allowed(stronger, e.witness_test));
  }
  // SC must be a maximal node: no outgoing edge from SC's class.
  int sc_node = -1;
  for (std::size_t i = 0; i < lattice.nodes.size(); ++i) {
    if (lattice.nodes[i].label.find("M4444") != std::string::npos) {
      sc_node = static_cast<int>(i);
    }
  }
  ASSERT_GE(sc_node, 0);
  for (const auto& e : lattice.edges) EXPECT_NE(e.weaker, sc_node);
}

TEST_F(Exploration, KnownHardwareOrderings) {
  // RMO is weaker than PSO, PSO weaker than TSO, TSO weaker than SC;
  // TSO and IBM370 are incomparable (Test A vs nothing the other allows:
  // in fact IBM370 is strictly stronger than TSO -- it forbids forwarding
  // -- so check that instead).
  const int rmo = index_of(rmo_nodep_choices());
  const int pso = index_of(pso_choices());
  const int tso = index_of(tso_choices());
  const int ibm = index_of(ibm370_choices());
  const int sc = index_of(sc_choices());
  EXPECT_EQ(matrix_->compare(rmo, pso), Relation::FirstWeaker);
  EXPECT_EQ(matrix_->compare(pso, tso), Relation::FirstWeaker);
  EXPECT_EQ(matrix_->compare(tso, sc), Relation::FirstWeaker);
  EXPECT_EQ(matrix_->compare(tso, ibm), Relation::FirstWeaker);
  EXPECT_EQ(matrix_->compare(ibm, sc), Relation::FirstWeaker);
}

TEST_F(Exploration, LatticeDotOutputIsWellFormed) {
  const auto sub = model_space(false);
  std::vector<core::MemoryModel> models;
  std::vector<std::string> names;
  for (const auto& c : sub) {
    models.push_back(c.to_model());
    names.push_back(c.name());
  }
  const auto nine = litmus::figure3_tests();
  std::vector<std::string> test_names;
  for (const auto& t : nine) test_names.push_back(t.name());
  const AdmissibilityMatrix m(models, nine);
  const Lattice lattice = build_lattice(m, names, test_names);
  const std::string dot = lattice.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("M4444"), std::string::npos);
  EXPECT_NE(dot.find("M1010=M1110"), std::string::npos);
  // Every edge label is one of the nine tests.
  for (const auto& e : lattice.edges) {
    EXPECT_EQ(e.witness_name.size(), 2u);
    EXPECT_EQ(e.witness_name[0], 'L');
  }
}

TEST_F(Exploration, NoDepSubspaceVerdictsEmbedInFullSpace) {
  // A dependency-free model must behave identically whether constructed
  // through the 36-model or the 90-model enumeration path.
  const auto sub = model_space(false);
  for (const auto& c : sub) {
    EXPECT_TRUE(c.dependency_free()) << c.name();
    const int idx = index_of(c);
    EXPECT_EQ((*space_)[static_cast<std::size_t>(idx)].name(), c.name());
  }
}

TEST_F(Exploration, SatAndExplicitEnginesAgreeOnSampledSpace) {
  // Cross-engine agreement over a slice of the matrix (every 7th model,
  // every 5th test keeps this fast while covering all templates).
  std::vector<core::MemoryModel> models;
  for (std::size_t i = 0; i < space_->size(); i += 7) {
    models.push_back((*space_)[i].to_model());
  }
  for (std::size_t t = 0; t < suite_->size(); t += 5) {
    const core::Analysis an((*suite_)[t].program());
    for (const auto& m : models) {
      EXPECT_EQ(
          core::is_allowed(an, m, (*suite_)[t].outcome(), core::Engine::Sat),
          core::is_allowed(an, m, (*suite_)[t].outcome(),
                           core::Engine::Explicit))
          << m.name() << " on " << (*suite_)[t].name();
    }
  }
}

}  // namespace
}  // namespace mcmc::explore
