// Tests for model fingerprinting: recovering a model's coordinates in the
// 90-model space from litmus verdicts alone.
#include <gtest/gtest.h>

#include <algorithm>

#include "explore/fingerprint.h"
#include "models/zoo.h"

namespace mcmc::explore {
namespace {

bool contains(const std::vector<ModelChoices>& v, const ModelChoices& c) {
  return std::find(v.begin(), v.end(), c) != v.end();
}

TEST(Fingerprint, RecoversNamedHardwareModels) {
  struct Case {
    core::MemoryModel model;
    ModelChoices expected;
  };
  const Case cases[] = {
      {models::sc(), sc_choices()},
      {models::tso(), tso_choices()},
      {models::pso(), pso_choices()},
      {models::ibm370(), ibm370_choices()},
      {models::rmo_no_ctrl(), rmo_choices()},
      {models::alpha_variant(), alpha_choices()},
  };
  for (const auto& c : cases) {
    const auto fp = fingerprint_model(c.model);
    EXPECT_TRUE(fp.verified) << c.model.name();
    EXPECT_TRUE(contains(fp.candidates, c.expected))
        << c.model.name() << " -> "
        << (fp.candidates.empty() ? "none" : fp.candidates[0].name());
  }
}

TEST(Fingerprint, AlphaVariantIsAmbiguousExactlyAsThePaperPredicts) {
  // Alpha-like = M1110 sits in an equivalent pair (M1010 == M1110), so the
  // fingerprint must return both WR candidates.
  const auto fp = fingerprint_model(models::alpha_variant());
  ASSERT_EQ(fp.candidates.size(), 2u);
  EXPECT_TRUE(contains(fp.candidates, ModelChoices{1, 0, 1, 0}));
  EXPECT_TRUE(contains(fp.candidates, ModelChoices{1, 1, 1, 0}));
  EXPECT_TRUE(fp.verified);
}

class FingerprintAllModels : public ::testing::TestWithParam<int> {};

TEST_P(FingerprintAllModels, RoundTripsThroughVerdicts) {
  const auto space = model_space(true);
  const auto& choices = space[static_cast<std::size_t>(GetParam())];
  const auto fp = fingerprint_model(choices.to_model());
  EXPECT_TRUE(fp.verified) << choices.name();
  EXPECT_TRUE(contains(fp.candidates, choices)) << choices.name();
  // Ambiguity arises exactly for the paper's eight equivalent pairs:
  // wr in {0,1} with both detection routes closed.
  const bool l8_route = choices.rr >= 2;
  const bool l9_route = choices.ww == 1 && choices.rw >= 3;
  const bool ambiguous =
      (choices.wr == 0 || choices.wr == 1) && !l8_route && !l9_route;
  EXPECT_EQ(fp.candidates.size(), ambiguous ? 2u : 1u) << choices.name();
}

INSTANTIATE_TEST_SUITE_P(
    Space, FingerprintAllModels, ::testing::Range(0, 90),
    [](const ::testing::TestParamInfo<int>& param_info) {
      return model_space(true)[static_cast<std::size_t>(param_info.param)]
          .name();
    });

}  // namespace
}  // namespace mcmc::explore
