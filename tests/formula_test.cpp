// Tests for the must-not-reorder formula language, including the paper's
// Section 3.3 construction (n special fences that only order as a chain),
// which shows local segments can need unboundedly many non-memory-access
// instructions for exotic predicate sets.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/formula.h"
#include "core/model.h"
#include "litmus/catalog.h"
#include "models/special_fence.h"

namespace mcmc::core {
namespace {

TEST(Formula, ConstantsEvaluate) {
  const auto t = litmus::store_buffering();
  const Analysis an(t.program());
  EXPECT_TRUE(f_true().eval(an, 0, 1));
  EXPECT_FALSE(f_false().eval(an, 0, 1));
}

TEST(Formula, AtomsMatchAnalysis) {
  const auto t = litmus::test_a();  // T1: W X; Fence; R Y | T2: W Y; R Y; R X
  const Analysis an(t.program());
  EXPECT_TRUE(write_x().eval(an, 0, 1));
  EXPECT_TRUE(fence_y().eval(an, 0, 1));
  EXPECT_TRUE(fence_x().eval(an, 1, 2));
  EXPECT_TRUE(read_y().eval(an, 1, 2));
  EXPECT_TRUE(same_addr().eval(an, 3, 4));   // W Y ; R Y
  EXPECT_FALSE(same_addr().eval(an, 3, 5));  // W Y ; R X
}

TEST(Formula, ConjunctionAndDisjunctionShortCircuitCorrectly) {
  const auto t = litmus::test_a();
  const Analysis an(t.program());
  EXPECT_TRUE((write_x() && fence_y()).eval(an, 0, 1));
  EXPECT_FALSE((write_x() && read_y()).eval(an, 0, 1));
  EXPECT_TRUE((read_x() || fence_y()).eval(an, 0, 1));
  EXPECT_FALSE((read_x() || read_y()).eval(an, 0, 1));
}

TEST(Formula, PrintsReadably) {
  const Formula f =
      (write_x() && write_y()) || read_x() || fence_x() || fence_y();
  EXPECT_EQ(f.to_string(),
            "(Write(x) & Write(y)) | Read(x) | Fence(x) | Fence(y)");
  EXPECT_EQ(f_true().to_string(), "true");
  EXPECT_EQ(data_dep().to_string(), "DataDep(x,y)");
}

TEST(Formula, CustomPredicateEvaluates) {
  // Order only pairs whose thread is 0.
  const Formula f = Formula::custom(
      "FirstThread",
      [](const Analysis& an, EventId x, EventId) {
        return an.event(x).thread == 0;
      });
  const auto t = litmus::store_buffering();
  const Analysis an(t.program());
  EXPECT_TRUE(f.eval(an, 0, 1));
  EXPECT_FALSE(f.eval(an, 2, 3));
  EXPECT_EQ(f.to_string(), "FirstThread(x,y)");
}

// ---------------------------------------------------------------------------
// Section 3.3: the special-fence chain (construction in
// src/models/special_fence.h).  F1 = SameAddr | special orders a thread
// only through a complete chain Read, f1, ..., fn, Write, so contrasting
// it from F2 = SameAddr needs a local segment of n+2 instructions.
// ---------------------------------------------------------------------------

class SpecialFenceChain : public ::testing::TestWithParam<int> {};

TEST_P(SpecialFenceChain, OnlyTheFullChainOrders) {
  const int n = GetParam();
  const MemoryModel f1 = models::special_fence_chain(n);
  const MemoryModel f2 = models::same_addr_only();
  // With fewer than n fences both models allow the LB outcome...
  for (int fences = 0; fences < n; ++fences) {
    const auto t = models::lb_with_fence_chain(fences);
    const Analysis an(t.program());
    EXPECT_TRUE(is_allowed(an, f1, t.outcome())) << "fences=" << fences;
    EXPECT_TRUE(is_allowed(an, f2, t.outcome())) << "fences=" << fences;
  }
  // ...with the full chain of n fences, F1 forbids and F2 still allows:
  // the contrasting litmus test needs a local segment of n+2 instructions.
  const auto t = models::lb_with_fence_chain(n);
  const Analysis an(t.program());
  EXPECT_FALSE(is_allowed(an, f1, t.outcome()));
  EXPECT_TRUE(is_allowed(an, f2, t.outcome()));
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, SpecialFenceChain,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mcmc::core
