// Soundness of the generic F-guided machine: everything it can reach must
// be axiomatically allowed, for every model in the 90-model space.  For
// the four models with dedicated textbook machines we additionally check
// exact agreement between the generic machine and the axioms on the
// catalog programs.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "enumeration/naive.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "models/zoo.h"
#include "sim/generic.h"

namespace mcmc {
namespace {

core::Outcome to_outcome(const sim::RegValuation& valuation) {
  core::Outcome o;
  for (const auto& [reg, value] : valuation) o.require(reg, value);
  return o;
}

void expect_sound(const core::Program& program,
                  const core::MemoryModel& model, const char* tag) {
  const auto machine = sim::make_generic_machine(model);
  const core::Analysis an(program);
  for (const auto& valuation : machine->reachable_outcomes(program)) {
    const auto outcome = to_outcome(valuation);
    EXPECT_TRUE(core::is_allowed(an, model, outcome))
        << tag << " under " << model.name() << "\n"
        << program.to_string() << "machine outcome: " << outcome.to_string();
  }
}

class GenericMachineSoundness : public ::testing::TestWithParam<int> {};

TEST_P(GenericMachineSoundness, CatalogOutcomesAreAxiomaticallyAllowed) {
  const auto space = explore::model_space(true);
  const auto model =
      space[static_cast<std::size_t>(GetParam())].to_model();
  for (const auto& t : litmus::full_catalog()) {
    if (t.program().num_threads() > 2) continue;  // keep the sweep fast
    expect_sound(t.program(), model, t.name().c_str());
  }
}

// Every 5th model keeps the sweep quick while covering all digit values.
INSTANTIATE_TEST_SUITE_P(SampledSpace, GenericMachineSoundness,
                         ::testing::Range(0, 90, 5));

TEST(GenericMachineSoundness, RandomProgramsUnderNamedModels) {
  enumeration::NaiveOptions options;
  options.num_locations = 2;
  const auto tests = enumeration::sample_naive_tests(options, 20, 2024);
  for (const auto& t : tests) {
    for (const auto& model : models::all_named_models()) {
      expect_sound(t.program(), model, t.name().c_str());
    }
  }
}

TEST(GenericMachine, RealizesStoreForwardingUnderTso) {
  // Figure 1's Test A: the generic machine with F_TSO must reach the
  // forwarding outcome (this is what separates it from a plain
  // permutation machine).
  const auto t = litmus::test_a();
  const auto machine = sim::make_generic_machine(models::tso());
  EXPECT_TRUE(machine->outcome_reachable(t.program(), t.outcome()));
}

TEST(GenericMachine, StaysSequentialForSc) {
  const auto machine = sim::make_generic_machine(models::sc());
  for (const auto& t :
       {litmus::store_buffering(), litmus::message_passing(),
        litmus::load_buffering(), litmus::corr()}) {
    EXPECT_FALSE(machine->outcome_reachable(t.program(), t.outcome()))
        << t.name();
  }
}

TEST(GenericMachine, MatchesAxiomsExactlyForScOnCatalog) {
  // For SC the machine is complete as well as sound: compare the full
  // reachable set against the axioms.
  const auto machine = sim::make_generic_machine(models::sc());
  for (const auto& t : litmus::full_catalog()) {
    if (t.program().num_threads() > 2) continue;
    const core::Analysis an(t.program());
    // Soundness direction.
    for (const auto& valuation :
         machine->reachable_outcomes(t.program())) {
      EXPECT_TRUE(core::is_allowed(an, models::sc(), to_outcome(valuation)))
          << t.name();
    }
    // Completeness direction: the test's own outcome.
    const bool axiomatic =
        core::is_allowed(an, models::sc(), t.outcome());
    const bool machine_reaches =
        machine->outcome_reachable(t.program(), t.outcome());
    EXPECT_EQ(axiomatic, machine_reaches) << t.name();
  }
}

}  // namespace
}  // namespace mcmc
