// Structural tests of the happens-before constraint builder: exact edge
// sets, origins, disjunction counts, infeasibility, and the CNF export.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/hb.h"
#include "litmus/catalog.h"
#include "models/zoo.h"
#include "sat/brute.h"
#include "sat/dimacs.h"

namespace mcmc::core {
namespace {

/// A problem bundled with its forced-edge provenance (the hot-path
/// builder no longer records origins; the traced variant does).
struct TracedProblem {
  HbProblem p;
  HbTrace trace;
};

TracedProblem problem_for(const litmus::LitmusTest& t, const MemoryModel& m,
                          std::size_t rf_index = 0) {
  const Analysis an(t.program());
  const auto rfs = enumerate_read_from(an, t.outcome());
  EXPECT_GT(rfs.size(), rf_index);
  TracedProblem out;
  out.p = build_hb_problem_traced(an, m, rfs[rf_index], out.trace);
  return out;
}

bool has_forced(const TracedProblem& tp, EventId x, EventId y,
                EdgeOrigin origin) {
  for (std::size_t i = 0; i < tp.p.forced.size(); ++i) {
    if (tp.p.forced[i] == Edge{x, y} && tp.trace.forced_origin[i] == origin) {
      return true;
    }
  }
  return false;
}

TEST(HbStructure, StoreBufferingUnderScHasExactlyTheClassicEdges) {
  // SB events: 0=WX 1=RY (T1), 2=WY 3=RX (T2); both reads read 0.
  const auto tp = problem_for(litmus::store_buffering(), models::sc());
  EXPECT_EQ(tp.p.num_events, 4);
  EXPECT_FALSE(tp.p.infeasible);
  ASSERT_EQ(tp.p.forced.size(), 4u);
  EXPECT_TRUE(has_forced(tp, 0, 1, EdgeOrigin::ProgramOrder));
  EXPECT_TRUE(has_forced(tp, 2, 3, EdgeOrigin::ProgramOrder));
  EXPECT_TRUE(has_forced(tp, 1, 2, EdgeOrigin::FromRead));
  EXPECT_TRUE(has_forced(tp, 3, 0, EdgeOrigin::FromRead));
  EXPECT_TRUE(tp.p.disjunctions.empty());  // one write per location
  EXPECT_TRUE(tp.p.forbidden.empty());
}

TEST(HbStructure, StoreBufferingUnderTsoDropsTheProgramOrderEdges) {
  const auto tp = problem_for(litmus::store_buffering(), models::tso());
  ASSERT_EQ(tp.p.forced.size(), 2u);  // only the two from-read edges
  EXPECT_TRUE(has_forced(tp, 1, 2, EdgeOrigin::FromRead));
  EXPECT_TRUE(has_forced(tp, 3, 0, EdgeOrigin::FromRead));
}

TEST(HbStructure, TestAUnderTsoShowsNoLocalReadFromEdge) {
  // Events: 0=WX 1=Fence 2=RY (T1); 3=WY 4=RY 5=RX (T2).
  // r2 reads the local write WY: no ReadFrom edge may be generated.
  const auto tp = problem_for(litmus::test_a(), models::tso());
  for (std::size_t i = 0; i < tp.p.forced.size(); ++i) {
    const bool local_rf_edge =
        tp.trace.forced_origin[i] == EdgeOrigin::ReadFrom &&
        tp.p.forced[i] == Edge(3, 4);
    EXPECT_FALSE(local_rf_edge);
  }
  // The fence pins T1 (WX => Fence => RY), and TSO's Read(x) pins RY=>RX.
  EXPECT_TRUE(has_forced(tp, 0, 1, EdgeOrigin::ProgramOrder));
  EXPECT_TRUE(has_forced(tp, 1, 2, EdgeOrigin::ProgramOrder));
  EXPECT_TRUE(has_forced(tp, 4, 5, EdgeOrigin::ProgramOrder));
  // From-read: RY(T1) reads 0 before WY; RX reads 0 before WX.
  EXPECT_TRUE(has_forced(tp, 2, 3, EdgeOrigin::FromRead));
  EXPECT_TRUE(has_forced(tp, 5, 0, EdgeOrigin::FromRead));
}

TEST(HbStructure, L9CoherenceEscapeIsGenerated) {
  // L9's T2 reads X from T1's write while T2's own earlier write to X is
  // unsourced: the escape co(WX_T2, WX_T1) must be a forced edge.
  const auto t = litmus::l9();
  const Analysis an(t.program());
  const auto rfs = enumerate_read_from(an, t.outcome());
  ASSERT_EQ(rfs.size(), 1u);  // values pin everything
  TracedProblem tp;
  tp.p = build_hb_problem_traced(an, models::pso(), rfs[0], tp.trace);
  const EventId wx_t1 = an.event_id(0, 0);
  const EventId wx_t2 = an.event_id(1, 2);
  EXPECT_TRUE(has_forced(tp, wx_t2, wx_t1, EdgeOrigin::CoherenceEscape));
}

TEST(HbStructure, LocalWritePairsAreCoherenceForced) {
  const auto tp = problem_for(litmus::l2(), models::tso());
  // L2: T1 has WX<-1 (0) and WX<-2 (1).
  EXPECT_TRUE(has_forced(tp, 0, 1, EdgeOrigin::Coherence));
}

TEST(HbStructure, CrossThreadWritePairsBecomeDisjunctions) {
  const auto tp = problem_for(litmus::l7(), models::tso());
  EXPECT_TRUE(tp.p.disjunctions.empty());  // different locations
  const auto tp2 = problem_for(litmus::l9(), models::tso());
  // L9 has two X-writes in different threads, but the observer read
  // forces the orientation via the escape; the ww disjunction remains
  // (harmlessly) alongside it.
  int ww_disjunctions = 0;
  for (const auto& d : tp2.p.disjunctions) {
    if (d.first.first == d.second.second && d.first.second == d.second.first) {
      ++ww_disjunctions;
    }
  }
  EXPECT_EQ(ww_disjunctions, 1);
}

TEST(HbStructure, InfeasibleRfIsFlagged) {
  // Read of the initial value with an earlier local same-address write.
  Program prog;
  prog.add_thread({make_write(0, 1), make_read(0, 1)});
  const Analysis an(prog);
  Outcome stale;
  stale.require(1, 0);
  const auto rfs = enumerate_read_from(an, stale);
  ASSERT_EQ(rfs.size(), 1u);  // the initial-value candidate
  const auto p = build_hb_problem(an, models::sc(), rfs[0]);
  EXPECT_TRUE(p.infeasible);
  EXPECT_FALSE(hb_satisfiable(p, Engine::Explicit));
  EXPECT_FALSE(hb_satisfiable(p, Engine::Sat));
}

TEST(HbStructure, CnfExportMatchesEngineVerdicts) {
  for (const auto& t : {litmus::store_buffering(), litmus::l2(),
                        litmus::l9(), litmus::test_a()}) {
    for (const auto& m : {models::sc(), models::tso()}) {
      const Analysis an(t.program());
      for (const auto& rf : enumerate_read_from(an, t.outcome())) {
        const auto p = build_hb_problem(an, m, rf);
        if (p.infeasible) continue;
        const auto cnf = hb_to_cnf(p);
        // DIMACS round-trip preserves the formula.
        const auto back = sat::parse_dimacs(sat::to_dimacs(cnf));
        EXPECT_EQ(back.num_vars, cnf.num_vars);
        EXPECT_EQ(back.clauses.size(), cnf.clauses.size());
        // Brute force on the CNF agrees with the explicit engine
        // (16 variables for 4-event problems; skip larger ones).
        if (cnf.num_vars <= 20) {
          const bool brute = sat::brute_force_solve(cnf).has_value();
          EXPECT_EQ(brute, hb_satisfiable(p, Engine::Explicit))
              << t.name() << " under " << m.name();
        }
      }
    }
  }
}

TEST(HbStructure, ForcedAndOriginStayParallel) {
  for (const auto& t : litmus::full_catalog()) {
    const Analysis an(t.program());
    for (const auto& m : models::all_named_models()) {
      for (const auto& rf : enumerate_read_from(an, t.outcome())) {
        HbTrace trace;
        const auto p = build_hb_problem_traced(an, m, rf, trace);
        if (p.infeasible) continue;
        EXPECT_EQ(p.forced.size(), trace.forced_origin.size());
        // The untraced hot-path builder emits the same constraints.
        const auto hot = build_hb_problem(an, m, rf);
        EXPECT_EQ(hot.forced, p.forced);
        EXPECT_EQ(hot.disjunctions, p.disjunctions);
        EXPECT_EQ(hot.infeasible, p.infeasible);
        // All edges reference valid events and are off-diagonal.
        for (const auto& [x, y] : p.forced) {
          EXPECT_NE(x, y);
          EXPECT_GE(x, 0);
          EXPECT_LT(y, p.num_events);
        }
      }
    }
  }
}

}  // namespace
}  // namespace mcmc::core
