// Parser/printer tests: grammar coverage, diagnostics, and round-trips
// over the whole catalog.
#include <gtest/gtest.h>

#include "litmus/catalog.h"
#include "litmus/parser.h"

namespace mcmc::litmus {
namespace {

TEST(Parser, ParsesFigure1TestA) {
  const auto t = parse_test(R"(
name: TestA
thread:
  Write X <- 1
  Fence
  Read Y -> r1
thread:
  Write Y <- 2
  Read Y -> r2
  Read X -> r3
outcome: r1=0 r2=2 r3=0
)");
  EXPECT_EQ(t.name(), "TestA");
  EXPECT_EQ(t.program().num_threads(), 2);
  EXPECT_EQ(t.program().size(), 6);
  EXPECT_EQ(t.program().num_memory_accesses(), 5);
  EXPECT_EQ(t.outcome().required(1), 0);
  EXPECT_EQ(t.outcome().required(2), 2);
  EXPECT_EQ(t.outcome().required(3), 0);
  // Structural equality against the catalog version.
  EXPECT_TRUE(t.program() == test_a().program());
  EXPECT_TRUE(t.outcome() == test_a().outcome());
}

TEST(Parser, ParsesDependencyIdiom) {
  const auto t = parse_test(R"(
name: deps
thread:
  Read Y -> r1
  r3 = r1 - r1 + X
  Read [r3] -> r2
thread:
  Write X <- 1
  Write Y <- 1
outcome: r1=1 r2=0
)");
  const auto& th = t.program().thread(0);
  ASSERT_EQ(th.size(), 3u);
  EXPECT_EQ(th[1].op, core::Op::DepConst);
  EXPECT_EQ(th[1].value, 0);  // X
  EXPECT_EQ(th[2].addr_reg, 3);
}

TEST(Parser, ParsesCompactDependencySpelling) {
  const auto t = parse_test(R"(
name: deps2
thread:
  Read X -> r1
  r2 = r1-r1+1
  Write Y <- r2
outcome: r1=0
)");
  const auto& th = t.program().thread(0);
  EXPECT_EQ(th[1].op, core::Op::DepConst);
  EXPECT_EQ(th[1].value, 1);
  EXPECT_TRUE(th[2].value_from_reg);
}

TEST(Parser, ParsesBranchAndIndirectStore) {
  const auto t = parse_test(R"(
name: br
thread:
  Read X -> r1
  Branch r1
  r2 = r1 - r1 + Y
  Write [r2] <- 5
outcome: r1=0
)");
  const auto& th = t.program().thread(0);
  EXPECT_EQ(th[1].op, core::Op::Branch);
  EXPECT_EQ(th[3].op, core::Op::Write);
  EXPECT_EQ(th[3].addr_reg, 2);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  const auto t = parse_test(R"(
# leading comment
name: c

thread:
  Write X <- 1   # trailing comment
outcome: # nothing
)");
  EXPECT_EQ(t.program().size(), 1);
}

TEST(Parser, DiagnosticsCarryLineNumbers) {
  try {
    (void)parse_test("name: x\nthread:\n  Frobnicate X\noutcome:\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Parser, RejectsMalformedInputs) {
  EXPECT_THROW((void)parse_test(""), std::invalid_argument);
  EXPECT_THROW((void)parse_test("name: x\noutcome: r1=0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_test("name: x\nthread:\n  Read X -> r1\n"),
               std::invalid_argument);  // no outcome
  EXPECT_THROW((void)parse_test("name: x\n  Read X -> r1\noutcome:\n"),
               std::invalid_argument);  // instruction before thread
  EXPECT_THROW(
      (void)parse_test("name: x\nthread:\n  Read X -> r1\noutcome: r1=zap\n"),
      std::invalid_argument);
  EXPECT_THROW(
      (void)parse_test(
          "name: x\nthread:\n  r2 = r1 - r3 + 1\noutcome: r2=1\n"),
      std::invalid_argument);  // mismatched dependency registers
}

// Table-driven negative-path sweep: every malformed input must produce
// std::invalid_argument carrying the expected diagnostic fragment —
// never a logic_error (internal invariant), never UB, never silent
// acceptance.
TEST(Parser, BadInputTableProducesTaggedParseErrors) {
  struct BadInput {
    const char* label;
    const char* text;
    const char* expect_in_message;
  };
  const BadInput table[] = {
      {"unknown instruction",
       "name: x\nthread:\n  Frobnicate X\noutcome:\n", "line 3"},
      {"fence with operand", "name: x\nthread:\n  Fence X\noutcome:\n",
       "Fence takes no operands"},
      {"branch without register", "name: x\nthread:\n  Branch\noutcome:\n",
       "line 3"},
      {"branch on location", "name: x\nthread:\n  Branch X\noutcome:\n",
       "expected register"},
      {"read missing arrow", "name: x\nthread:\n  Read X r1\noutcome:\n",
       "usage: Read"},
      {"read from register token",
       "name: x\nthread:\n  Read r1 -> r2\noutcome:\n", "expected location"},
      {"write missing arrow", "name: x\nthread:\n  Write X 1\noutcome:\n",
       "usage: Write"},
      {"write bad value", "name: x\nthread:\n  Write X <- banana\noutcome:\n",
       "bad store value"},
      {"write value overflow",
       "name: x\nthread:\n  Write X <- 99999999999999999999\noutcome:\n",
       "line 3"},
      {"indirect store with register value",
       "name: x\nthread:\n  r1 = r0 - r0 + 1\n  Write [r1] <- r1\noutcome:\n",
       "indirect store"},
      {"register index overflow",
       "name: x\nthread:\n  Read X -> r99999999999999999999\noutcome:\n",
       "line 3"},
      {"register index huge", "name: x\nthread:\n  Read X -> r300\noutcome:\n",
       "register index out of range"},
      {"location index huge",
       "name: x\nthread:\n  Read A99 -> r1\noutcome:\n",
       "location index out of range"},
      {"dep-const mismatched registers",
       "name: x\nthread:\n  r2 = r1 - r3 + 1\noutcome: r2=1\n",
       "same register"},
      {"dep-const bad constant",
       "name: x\nthread:\n  r2 = r1 - r1 + banana\noutcome: r2=1\n",
       "bad constant"},
      {"dep-const constant overflow",
       "name: x\nthread:\n  r2 = r1 - r1 + 99999999999999999999\noutcome:\n",
       "line 3"},
      {"outcome missing equals",
       "name: x\nthread:\n  Read X -> r1\noutcome: r1\n", "bad outcome item"},
      {"outcome non-integer value",
       "name: x\nthread:\n  Read X -> r1\noutcome: r1=zap\n", "bad value"},
      {"outcome empty value",
       "name: x\nthread:\n  Read X -> r1\noutcome: r1=\n", "bad value"},
      {"outcome value overflow",
       "name: x\nthread:\n  Read X -> r1\noutcome: r1=99999999999999999999\n",
       "line 4"},
      {"outcome duplicate register",
       "name: x\nthread:\n  Read X -> r1\noutcome: r1=0 r1=1\n",
       "more than once"},
      {"outcome on location token",
       "name: x\nthread:\n  Read X -> r1\noutcome: X=0\n",
       "expected register"},
  };
  for (const auto& bad : table) {
    try {
      (void)parse_test(bad.text);
      FAIL() << bad.label << ": accepted malformed input";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(bad.expect_in_message),
                std::string::npos)
          << bad.label << ": diagnostic was '" << e.what() << "'";
    } catch (const std::exception& e) {
      FAIL() << bad.label << ": threw non-invalid_argument: " << e.what();
    }
  }
}

TEST(Parser, RejectsSemanticViolationsViaValidation) {
  // Register used before definition.
  EXPECT_THROW((void)parse_test(R"(
name: bad
thread:
  Read [r1] -> r2
outcome: r2=0
)"),
               std::invalid_argument);
  // Dynamic (read-defined) address register.
  EXPECT_THROW((void)parse_test(R"(
name: bad2
thread:
  Read X -> r1
  Read [r1] -> r2
outcome: r2=0
)"),
               std::invalid_argument);
}

TEST(Parser, RoundTripsWholeCatalog) {
  for (const auto& t : full_catalog()) {
    const std::string text = write_test(t);
    const auto back = parse_test(text);
    EXPECT_EQ(back.name(), t.name()) << text;
    EXPECT_TRUE(back.program() == t.program()) << text;
    EXPECT_TRUE(back.outcome() == t.outcome()) << text;
  }
}

TEST(Parser, CorpusSplitsOnNameLines) {
  const auto tests = parse_corpus(R"(
name: first
thread:
  Write X <- 1
outcome:

name: second
thread:
  Read X -> r1
outcome: r1=0
)");
  ASSERT_EQ(tests.size(), 2u);
  EXPECT_EQ(tests[0].name(), "first");
  EXPECT_EQ(tests[1].name(), "second");
}

TEST(Parser, CorpusRoundTripsCatalog) {
  const auto catalog = full_catalog();
  const auto back = parse_corpus(write_corpus(catalog));
  ASSERT_EQ(back.size(), catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(back[i].name(), catalog[i].name());
    EXPECT_TRUE(back[i].program() == catalog[i].program());
    EXPECT_TRUE(back[i].outcome() == catalog[i].outcome());
  }
}

TEST(Parser, EmptyCorpusRejected) {
  EXPECT_THROW((void)parse_corpus(""), std::invalid_argument);
  EXPECT_THROW((void)parse_corpus("# only comments\n"),
               std::invalid_argument);
}

TEST(Printer, RendersProgramTable) {
  const std::string s = test_a().to_string();
  EXPECT_NE(s.find("Write X <- 1"), std::string::npos);
  EXPECT_NE(s.find("Outcome: r1 = 0; r2 = 2; r3 = 0"), std::string::npos);
}

}  // namespace
}  // namespace mcmc::litmus
