// Printer/parser round trips: parse_test(write_test(t)) must reproduce
// the program and the outcome for every Corollary-1 suite test and for
// generated corpora (sampled and exhaustively enumerated).
#include <gtest/gtest.h>

#include "enumeration/exhaustive.h"
#include "enumeration/naive.h"
#include "enumeration/suite.h"
#include "litmus/catalog.h"
#include "litmus/parser.h"

namespace mcmc {
namespace {

void expect_roundtrip(const litmus::LitmusTest& test) {
  const std::string text = litmus::write_test(test);
  const litmus::LitmusTest back = litmus::parse_test(text);
  EXPECT_EQ(back.name(), test.name()) << text;
  EXPECT_TRUE(back.program() == test.program()) << text;
  EXPECT_TRUE(back.outcome() == test.outcome()) << text;
}

TEST(LitmusRoundTrip, Corollary1SuiteWithAndWithoutDeps) {
  for (const bool deps : {false, true}) {
    for (const auto& test : enumeration::corollary1_suite(deps)) {
      expect_roundtrip(test);
    }
  }
}

TEST(LitmusRoundTrip, NamedCatalog) {
  for (const auto& test : litmus::full_catalog()) {
    expect_roundtrip(test);
  }
}

TEST(LitmusRoundTrip, SampledNaiveTests) {
  // Includes read-free programs whose outcome line carries no items.
  const auto tests =
      enumeration::sample_naive_tests(enumeration::NaiveOptions{}, 300, 77);
  for (const auto& test : tests) expect_roundtrip(test);
}

TEST(LitmusRoundTrip, ExhaustiveStreamSlice) {
  enumeration::ExhaustiveOptions options;
  options.bounds.max_accesses_per_thread = 2;
  options.chunk_size = 512;
  enumeration::ExhaustiveStream stream(options);
  int seen = 0;
  engine::for_each_test(stream, [&](const litmus::LitmusTest& test) {
    expect_roundtrip(test);
    ++seen;
  });
  EXPECT_EQ(seen, 13086);  // the whole 2-access slice round-trips
}

TEST(LitmusRoundTrip, CorpusRoundTripsAsAWhole) {
  const auto suite = enumeration::corollary1_suite(true);
  const auto back = litmus::parse_corpus(litmus::write_corpus(suite));
  ASSERT_EQ(back.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(back[i].name(), suite[i].name());
    EXPECT_TRUE(back[i].program() == suite[i].program());
    EXPECT_TRUE(back[i].outcome() == suite[i].outcome());
  }
}

}  // namespace
}  // namespace mcmc
