// Differential validation: the axiomatic checker (paper Section 2.2
// axioms) against independent textbook operational machines for SC, TSO,
// PSO and IBM370.
//
// For every test program we enumerate the full outcome space (each read
// observes the initial value or any value written to its location) and
// demand the machine-reachable set equals the axiomatically-allowed set.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "enumeration/naive.h"
#include "litmus/catalog.h"
#include "models/zoo.h"
#include "sim/storebuffer.h"

namespace mcmc {
namespace {

using core::Analysis;
using core::Outcome;

struct ModelMachinePair {
  const char* label;
  core::MemoryModel model;
  std::unique_ptr<sim::Machine> machine;
};

std::vector<ModelMachinePair> pairs() {
  std::vector<ModelMachinePair> out;
  out.push_back({"SC", models::sc(), sim::sc_machine()});
  out.push_back({"TSO", models::tso(), sim::tso_machine()});
  out.push_back({"PSO", models::pso(), sim::pso_machine()});
  out.push_back({"IBM370", models::ibm370(), sim::ibm370_machine()});
  return out;
}

void expect_agreement(const core::Program& program, const char* tag) {
  const Analysis an(program);
  for (const auto& pm : pairs()) {
    for (const auto& outcome : core::outcome_space(an)) {
      const bool axiomatic =
          core::is_allowed(an, pm.model, outcome, core::Engine::Explicit);
      const bool operational = pm.machine->outcome_reachable(program, outcome);
      ASSERT_EQ(axiomatic, operational)
          << tag << " under " << pm.label << "\n"
          << program.to_string() << "outcome: " << outcome.to_string()
          << "\n(axiomatic=" << axiomatic << ", machine=" << operational
          << ")";
    }
  }
}

TEST(OperationalDifferential, CatalogProgramsAgreeOnFullOutcomeSpace) {
  for (const auto& t : litmus::full_catalog()) {
    if (t.program().num_threads() > 2 && t.name() == "IRIW") {
      continue;  // covered separately; the 4-thread space is larger
    }
    expect_agreement(t.program(), t.name().c_str());
  }
}

TEST(OperationalDifferential, IriwAgrees) {
  const auto t = litmus::iriw();
  expect_agreement(t.program(), "IRIW");
}

/// Randomized sweep over naive programs (two threads, <=3 accesses each).
class RandomProgramDifferential : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramDifferential, MachinesMatchAxioms) {
  enumeration::NaiveOptions options;
  options.num_locations = 2;
  const auto tests = enumeration::sample_naive_tests(
      options, 12, static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  for (const auto& t : tests) {
    expect_agreement(t.program(), t.name().c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramDifferential,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace mcmc
