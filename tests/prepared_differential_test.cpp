// Differential tests pinning the prepared fast path to the seed
// semantics: every verdict produced through core::PreparedTest (and
// through the engine's prepared routing) must be bit-for-bit identical
// to the per-cell core::is_allowed loop it replaced — across the full
// 90-model space x the Corollary-1 suite, both decision engines, custom
// predicates, and the compiled reorder masks themselves.
#include <gtest/gtest.h>

#include <vector>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/prepared.h"
#include "engine/verdict_engine.h"
#include "enumeration/suite.h"
#include "explore/space.h"
#include "litmus/catalog.h"
#include "models/special_fence.h"
#include "models/zoo.h"

namespace mcmc {
namespace {

using core::Engine;
using core::PreparedTest;

TEST(PreparedDifferential, NinetyModelsTimesCorollary1SuiteBitForBit) {
  const auto suite = enumeration::corollary1_suite(true);
  const auto space = explore::model_space(true);
  ASSERT_EQ(space.size(), 90u);
  std::vector<core::MemoryModel> models;
  for (const auto& c : space) models.push_back(c.to_model());

  for (const auto& t : suite) {
    const PreparedTest prep(t.program(), t.outcome());
    for (const auto& m : models) {
      ASSERT_EQ(prep.allowed(m, Engine::Explicit),
                core::is_allowed(prep.analysis(), m, t.outcome(),
                                 Engine::Explicit))
          << t.name() << " under " << m.name();
    }
  }
}

TEST(PreparedDifferential, SatBackendAgreesOnTheCatalog) {
  for (const auto& t : litmus::full_catalog()) {
    const PreparedTest prep(t.program(), t.outcome());
    for (const auto& m : models::all_named_models()) {
      ASSERT_EQ(prep.allowed(m, Engine::Sat),
                core::is_allowed(prep.analysis(), m, t.outcome(), Engine::Sat))
          << t.name() << " under " << m.name();
    }
  }
}

TEST(PreparedDifferential, CustomPredicateModelsUsePerPairFallback) {
  for (int n = 1; n <= 3; ++n) {
    const auto model = models::special_fence_chain(n);
    ASSERT_TRUE(model.formula().has_custom());
    for (int k = 0; k <= 3; ++k) {
      const auto t = models::lb_with_fence_chain(k);
      const PreparedTest prep(t.program(), t.outcome());
      core::PreparedCheckStats stats;
      const bool fast = prep.allowed(model, Engine::Explicit, &stats);
      EXPECT_EQ(fast, core::is_allowed(prep.analysis(), model, t.outcome(),
                                       Engine::Explicit))
          << "n=" << n << " k=" << k;
      // Custom atoms cannot be mask-compiled; the fallback runs per-pair.
      EXPECT_GT(stats.formula_evals, 1u);
    }
  }
}

TEST(PreparedDifferential, CompiledMaskMatchesPerPairEvaluation) {
  for (const auto& t : litmus::full_catalog()) {
    const PreparedTest prep(t.program(), t.outcome());
    const auto& an = prep.analysis();
    for (const auto& m : models::all_named_models()) {
      core::ReorderMask mask;
      prep.compile_mask(m, mask);
      ASSERT_EQ(mask.num_events, an.num_events());
      for (core::EventId x = 0; x < an.num_events(); ++x) {
        for (core::EventId y = 0; y < an.num_events(); ++y) {
          const bool in_mask =
              (mask.rows[static_cast<std::size_t>(x)] & (1ULL << y)) != 0;
          const bool expected = x != y && an.po(x, y) &&
                                m.must_not_reorder(an, x, y);
          ASSERT_EQ(in_mask, expected)
              << t.name() << " under " << m.name() << " pair (" << x << ","
              << y << ")";
        }
      }
    }
  }
}

TEST(PreparedDifferential, EngineMatrixIdenticalWithAndWithoutPreparedPath) {
  const auto suite = enumeration::corollary1_suite(true);
  std::vector<core::MemoryModel> models;
  for (const auto& c : explore::model_space(true)) {
    models.push_back(c.to_model());
  }

  engine::EngineOptions prepared_options;
  prepared_options.backend = engine::Backend::Explicit;
  prepared_options.num_threads = 2;
  engine::VerdictEngine prepared_engine(prepared_options);

  engine::EngineOptions pr1_options = prepared_options;
  pr1_options.prepared = false;
  engine::VerdictEngine pr1_engine(pr1_options);

  const auto a = prepared_engine.run_matrix(models, suite);
  const auto b = pr1_engine.run_matrix(models, suite);
  EXPECT_TRUE(a == b);

  // The prepared path actually engaged and did strictly less formula
  // work than the per-cell loop it replaced — at least 3x fewer
  // evaluations on this sweep (measured ~8.7x: one compiled-matrix
  // traversal per check vs po-pairs x rf-maps tree walks).
  const auto& stats = prepared_engine.last_stats();
  EXPECT_GT(stats.formula_evals, 0u);
  EXPECT_GE(stats.formula_evals_saved, 3 * stats.formula_evals);
  EXPECT_GT(stats.rf_enums_saved, 0u);
  EXPECT_EQ(pr1_engine.last_stats().formula_evals, 0u);
}

TEST(PreparedDifferential, StaticallyImpossibleOutcomeIsDisallowed) {
  // An outcome no write can produce yields zero rf maps; the prepared
  // test must answer false, as the seed path does.
  const auto t = litmus::store_buffering();
  core::Outcome impossible;
  impossible.require(1, 42);
  const PreparedTest prep(t.program(), impossible);
  EXPECT_TRUE(prep.rf_maps().empty());
  EXPECT_FALSE(prep.allowed(models::sc(), Engine::Explicit));
  EXPECT_FALSE(prep.allowed(models::sc(), Engine::Sat));
}

}  // namespace
}  // namespace mcmc
