// Allocation regression tests for the prepared fast path: this binary
// overrides global operator new to count heap allocations and asserts
// that the prepared explicit admissibility check — mask compilation,
// base po-closure, and the disjunction DFS — performs exactly zero of
// them, as does the classic explicit engine's non-witness decision on a
// prebuilt HbProblem.  (These overrides are binary-wide, which is why
// this suite lives in its own test executable.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/analysis.h"
#include "core/checker.h"
#include "core/hb.h"
#include "core/prepared.h"
#include "litmus/catalog.h"
#include "models/zoo.h"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mcmc {
namespace {

/// Allocations performed by `fn`, measured outside any gtest assertion
/// machinery.
template <typename Fn>
std::size_t allocations_during(Fn&& fn) {
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(PreparedAllocation, OperatorNewOverrideIsActive) {
  const std::size_t n = allocations_during([] {
    std::vector<int>* v = new std::vector<int>(100);
    delete v;
  });
  EXPECT_GE(n, 1u);
}

TEST(PreparedAllocation, PreparedExplicitCheckIsAllocationFree) {
  // Tests chosen to exercise every hot-path shape: forced-edge-only
  // problems (SB), coherence + escape edges (L9), fences (TestA), and
  // multi-rf-map enumerations (MP's unconstrained-read variants).
  const auto tests = {litmus::store_buffering(), litmus::test_a(),
                      litmus::l2(), litmus::l9(), litmus::message_passing(),
                      litmus::iriw()};
  const auto models = models::all_named_models();
  for (const auto& t : tests) {
    const core::PreparedTest prep(t.program(), t.outcome());
    for (const auto& m : models) {
      bool verdict = false;
      const std::size_t allocs = allocations_during([&] {
        verdict = prep.allowed(m, core::Engine::Explicit);
      });
      EXPECT_EQ(allocs, 0u) << t.name() << " under " << m.name();
      // The fast path must agree with the classic per-cell check.
      EXPECT_EQ(verdict, core::is_allowed(prep.analysis(), m, t.outcome(),
                                          core::Engine::Explicit))
          << t.name() << " under " << m.name();
    }
  }
}

TEST(PreparedAllocation, PreparedCheckWithStatsIsAllocationFree) {
  const auto t = litmus::test_a();
  const core::PreparedTest prep(t.program(), t.outcome());
  const auto model = models::tso();
  core::PreparedCheckStats stats;
  const std::size_t allocs = allocations_during([&] {
    (void)prep.allowed(model, core::Engine::Explicit, &stats);
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_GE(stats.formula_evals, 1u);
  EXPECT_GE(stats.skeletons_used, 1u);
  EXPECT_GE(stats.equivalent_pair_evals, stats.skeletons_used);
}

TEST(PreparedAllocation, ClassicExplicitDecisionIsAllocationFree) {
  // The rewritten ExplicitSearch (fixed closure arrays + frame-local
  // stack copies) must not allocate when no witness is requested.
  const auto t = litmus::l9();
  const core::Analysis an(t.program());
  const auto model = models::pso();
  const auto rfs = core::enumerate_read_from(an, t.outcome());
  ASSERT_FALSE(rfs.empty());
  const core::HbProblem p = core::build_hb_problem(an, model, rfs[0]);
  bool verdict = false;
  const std::size_t allocs = allocations_during([&] {
    verdict = core::hb_satisfiable(p, core::Engine::Explicit);
  });
  EXPECT_EQ(allocs, 0u);
  (void)verdict;
}

TEST(PreparedAllocation, CompileMaskIsAllocationFree) {
  const auto t = litmus::store_buffering();
  const core::PreparedTest prep(t.program(), t.outcome());
  const auto model = models::sc();
  core::ReorderMask mask;
  const std::size_t allocs =
      allocations_during([&] { prep.compile_mask(model, mask); });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(mask.num_events, prep.analysis().num_events());
}

}  // namespace
}  // namespace mcmc
