// Unit and property tests for the CDCL SAT solver (src/sat).
#include <gtest/gtest.h>

#include "sat/brute.h"
#include "sat/dimacs.h"
#include "sat/solver.h"
#include "util/rng.h"

namespace mcmc::sat {
namespace {

Lit P(Var v) { return Lit::pos(v); }
Lit N(Var v) { return Lit::neg(v); }

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_TRUE(s.solve());
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(P(a));
  ASSERT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(a));
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(P(a));
  s.add_unit(N(a));
  EXPECT_FALSE(s.solve());
  EXPECT_TRUE(s.conflicting());
}

TEST(SatSolver, TautologyIsIgnored) {
  Solver s;
  const Var a = s.new_var();
  s.add_binary(P(a), N(a));
  EXPECT_TRUE(s.solve());
}

TEST(SatSolver, DuplicateLiteralsAreMerged) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({P(a), P(a), P(a)});
  ASSERT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(a));
}

TEST(SatSolver, UnitPropagationChain) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_unit(P(a));
  s.add_binary(N(a), P(b));   // a -> b
  s.add_binary(N(b), P(c));   // b -> c
  ASSERT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.model_value(c));
}

TEST(SatSolver, ImplicationCycleWithNegationIsUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  // a -> b, b -> a, a | b, ~a | ~b is satisfiable? a->b & b->a forces a==b;
  // (a|b) forces both true; (~a|~b) then fails.
  s.add_binary(N(a), P(b));
  s.add_binary(N(b), P(a));
  s.add_binary(P(a), P(b));
  s.add_binary(N(a), N(b));
  EXPECT_FALSE(s.solve());
}

TEST(SatSolver, XorChainSat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 0: satisfiable.
  Solver s;
  const Var x1 = s.new_var();
  const Var x2 = s.new_var();
  const Var x3 = s.new_var();
  auto add_xor = [&](Var u, Var v, bool value) {
    if (value) {
      s.add_binary(P(u), P(v));
      s.add_binary(N(u), N(v));
    } else {
      s.add_binary(P(u), N(v));
      s.add_binary(N(u), P(v));
    }
  };
  add_xor(x1, x2, true);
  add_xor(x2, x3, true);
  add_xor(x1, x3, false);
  ASSERT_TRUE(s.solve());
  EXPECT_NE(s.model_value(x1), s.model_value(x2));
  EXPECT_NE(s.model_value(x2), s.model_value(x3));
  EXPECT_EQ(s.model_value(x1), s.model_value(x3));
}

TEST(SatSolver, XorTriangleUnsat) {
  // Odd cycle of xors summing to 1 is unsatisfiable.
  Solver s;
  const Var x1 = s.new_var();
  const Var x2 = s.new_var();
  const Var x3 = s.new_var();
  auto add_xor = [&](Var u, Var v, bool value) {
    if (value) {
      s.add_binary(P(u), P(v));
      s.add_binary(N(u), N(v));
    } else {
      s.add_binary(P(u), N(v));
      s.add_binary(N(u), P(v));
    }
  };
  add_xor(x1, x2, true);
  add_xor(x2, x3, true);
  add_xor(x1, x3, true);
  EXPECT_FALSE(s.solve());
}

/// Pigeonhole principle: n+1 pigeons in n holes; classically hard, UNSAT.
Cnf pigeonhole(int holes) {
  Cnf cnf;
  const int pigeons = holes + 1;
  cnf.num_vars = pigeons * holes;
  auto var = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause c;
    for (int h = 0; h < holes; ++h) c.push_back(Lit::pos(var(p, h)));
    cnf.clauses.push_back(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.clauses.push_back({Lit::neg(var(p1, h)), Lit::neg(var(p2, h))});
      }
    }
  }
  return cnf;
}

void load(Solver& s, const Cnf& cnf) {
  for (int i = 0; i < cnf.num_vars; ++i) s.new_var();
  for (const auto& c : cnf.clauses) s.add_clause(c);
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 1; holes <= 5; ++holes) {
    Solver s;
    load(s, pigeonhole(holes));
    EXPECT_FALSE(s.solve()) << "pigeonhole(" << holes << ")";
  }
}

TEST(SatSolver, AssumptionsRestrictThenRelax) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(P(a), P(b));
  EXPECT_TRUE(s.solve({N(a), N(b)}) == false);
  EXPECT_TRUE(s.solve({N(a)}));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_TRUE(s.solve());  // relaxed again
}

TEST(SatSolver, IncrementalAddingClausesBetweenSolves) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  EXPECT_TRUE(s.solve());
  s.add_binary(P(a), P(b));
  EXPECT_TRUE(s.solve());
  s.add_unit(N(a));
  ASSERT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(b));
  s.add_unit(N(b));
  EXPECT_FALSE(s.solve());
}

TEST(SatSolver, StatisticsReflectSearchEffort) {
  Solver s;
  load(s, pigeonhole(5));
  EXPECT_FALSE(s.solve());
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_GT(s.stats().learned_clauses, 0u);
}

TEST(SatSolver, SolveAfterLevelZeroConflictStaysUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(P(a));
  s.add_unit(N(a));
  EXPECT_FALSE(s.solve());
  EXPECT_FALSE(s.solve());  // sticky
  EXPECT_FALSE(s.solve({P(a)}));
}

TEST(SatSolver, WideClauseWatchesMigrate) {
  // A 6-literal clause whose watched literals are falsified one by one.
  Solver s;
  std::vector<Var> vars;
  Clause c;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(s.new_var());
    c.push_back(P(vars.back()));
  }
  s.add_clause(c);
  std::vector<Lit> assumptions;
  for (int i = 0; i < 5; ++i) assumptions.push_back(N(vars[i]));
  ASSERT_TRUE(s.solve(assumptions));
  EXPECT_TRUE(s.model_value(vars[5]));
}

TEST(Dimacs, RoundTrip) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{P(0), N(1)}, {P(2)}, {N(0), P(1), N(2)}};
  const auto text = to_dimacs(cnf);
  const Cnf back = parse_dimacs(text);
  EXPECT_EQ(back.num_vars, cnf.num_vars);
  ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
  }
}

TEST(Dimacs, RejectsMalformed) {
  EXPECT_THROW(parse_dimacs("1 2 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 3 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_dimacs("p cnf 2 2\n1 2 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 2\n"), std::invalid_argument);
}

/// Random 3-SAT instances, differential-tested against brute force.
class RandomCnfDifferential : public ::testing::TestWithParam<int> {};

Cnf random_cnf(util::Rng& rng, int num_vars, int num_clauses) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    const int len = 1 + static_cast<int>(rng.below(3));
    for (int k = 0; k < len; ++k) {
      const auto v =
          static_cast<Var>(rng.below(static_cast<std::uint64_t>(num_vars)));
      clause.push_back(Lit(v, rng.chance(1, 2)));
    }
    cnf.clauses.push_back(clause);
  }
  return cnf;
}

bool model_satisfies(const Cnf& cnf, const Solver& s) {
  for (const auto& clause : cnf.clauses) {
    bool sat = false;
    for (const Lit l : clause) {
      if (s.model_value(l.var()) != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

TEST_P(RandomCnfDifferential, AgreesWithBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int iter = 0; iter < 40; ++iter) {
    const int num_vars = 3 + static_cast<int>(rng.below(10));
    const int num_clauses = 2 + static_cast<int>(rng.below(50));
    const Cnf cnf = random_cnf(rng, num_vars, num_clauses);
    Solver s;
    load(s, cnf);
    const bool cdcl = s.solve();
    const bool brute = brute_force_solve(cnf).has_value();
    ASSERT_EQ(cdcl, brute) << to_dimacs(cnf);
    if (cdcl) {
      EXPECT_TRUE(model_satisfies(cnf, s)) << to_dimacs(cnf);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfDifferential,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace mcmc::sat
