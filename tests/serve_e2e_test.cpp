// End-to-end tests of the litmusd serving tier: each test spawns the
// real daemon binary (LITMUSD_PATH, injected by CMake) on a private
// socket and store, drives it through the real client, and kills it
// with the real signal.  Covered: cold check computes while the warm
// repeat is served from the store without the engine (asserted via the
// served-from-store stats), concurrent clients get bit-for-bit
// identical verdicts, SIGTERM drains to a clean exit, a store
// persisted by one daemon lifetime answers the next, a corrupted store
// file degrades to recomputation with identical verdicts (the PR-7
// quarantine path, end to end), and garbage bytes on the socket never
// take the server down.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "enumeration/exhaustive.h"
#include "litmus/parser.h"
#include "litmus/test.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace mcmc::serve {
namespace {

constexpr const char* kSbTest =
    "name: SB\n"
    "thread:\n"
    "  Write X <- 1\n"
    "  Read Y -> r0\n"
    "thread:\n"
    "  Write Y <- 1\n"
    "  Read X -> r1\n"
    "outcome: r0=0 r1=0\n";

/// A small deterministic slice of the exhaustive 2-access space,
/// serialized as a corpus the daemon parses back.
[[nodiscard]] std::vector<litmus::LitmusTest> slice_tests(int count) {
  enumeration::ExhaustiveOptions options;
  options.bounds.num_locations = 1;
  options.bounds.max_accesses_per_thread = 2;
  options.chunk_size = count;
  enumeration::ExhaustiveStream stream(options);
  std::vector<litmus::LitmusTest> tests;
  (void)stream.next_chunk(tests);
  EXPECT_EQ(tests.size(), static_cast<std::size_t>(count));
  return tests;
}

class ServeE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    char dir_template[] = "/tmp/serve_e2e_XXXXXX";
    ASSERT_NE(::mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
    socket_path_ = dir_ + "/litmusd.sock";
    store_path_ = dir_ + "/verdicts.bin";
  }

  void TearDown() override {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
      pid_ = -1;
    }
    ::unlink(socket_path_.c_str());
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".corrupt").c_str());
    ::rmdir(dir_.c_str());
  }

  /// Spawns litmusd and waits until its socket accepts a connection.
  void spawn() {
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      const char* argv[] = {LITMUSD_PATH, "--socket", socket_path_.c_str(),
                            "--store",    store_path_.c_str(),
                            "--save-every", "1",      nullptr};
      ::execv(LITMUSD_PATH, const_cast<char**>(argv));
      ::_exit(127);
    }
    for (int attempt = 0; attempt < 300; ++attempt) {
      Client probe_client;
      if (probe_client.connect_unix(socket_path_)) return;
      // A child that died (bad binary path, bind failure) never
      // serves; fail fast instead of burning the full retry budget.
      int status = 0;
      ASSERT_EQ(::waitpid(pid_, &status, WNOHANG), 0) << "litmusd exited";
      ::usleep(100 * 1000);
    }
    FAIL() << "litmusd never came up on " << socket_path_;
  }

  /// SIGTERM drain; asserts the daemon exits 0 (clean shutdown).
  void terminate_cleanly() {
    ASSERT_GT(pid_, 0);
    ASSERT_EQ(::kill(pid_, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid_, &status, 0), pid_);
    pid_ = -1;
    ASSERT_TRUE(WIFEXITED(status)) << "litmusd did not exit";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "drain was not clean";
  }

  [[nodiscard]] Client connect() {
    Client client;
    std::string error;
    EXPECT_TRUE(client.connect_unix(socket_path_, &error)) << error;
    return client;
  }

  std::string dir_;
  std::string socket_path_;
  std::string store_path_;
  pid_t pid_ = -1;
};

TEST_F(ServeE2E, ColdCheckComputesWarmCheckAndProbeHitStore) {
  spawn();
  Client client = connect();
  std::string error;

  VerdictRowWire cold;
  ASSERT_TRUE(client.check(kSbTest, cold, &error)) << error;
  EXPECT_EQ(cold.source, VerdictSource::kComputed);
  EXPECT_EQ(cold.num_models, 90u);

  VerdictRowWire warm;
  ASSERT_TRUE(client.check(kSbTest, warm, &error)) << error;
  EXPECT_EQ(warm.source, VerdictSource::kStore);
  EXPECT_EQ(warm.valid, cold.valid);
  EXPECT_EQ(warm.bits, cold.bits);

  // The store speaks canonical fingerprints, so a probe computed
  // client-side finds the row the check persisted.
  litmus::KeyScratch scratch;
  const util::Key128 key =
      litmus::canonical_fingerprint(litmus::parse_test(kSbTest), scratch);
  VerdictRowWire probed;
  ASSERT_TRUE(client.probe(key, probed, &error)) << error;
  EXPECT_EQ(probed.source, VerdictSource::kStore);
  EXPECT_EQ(probed.bits, cold.bits);

  // The serving claim, in the server's own accounting: exactly one
  // engine pass; the warm check and the probe were store-served.
  std::vector<std::uint64_t> stats;
  ASSERT_TRUE(client.stats(stats, &error)) << error;
  ASSERT_EQ(stats.size(), static_cast<std::size_t>(kStatFieldCount));
  EXPECT_EQ(stats[kStatChecks], 2u);
  EXPECT_EQ(stats[kStatCheckComputed], 1u);
  EXPECT_EQ(stats[kStatCheckStoreHits], 1u);
  EXPECT_EQ(stats[kStatProbes], 1u);
  EXPECT_EQ(stats[kStatProbeStoreHits], 1u);
  EXPECT_EQ(stats[kStatStoreEntries], 1u);
  EXPECT_EQ(stats[kStatClientRequests], 4u);

  // The batcher commits after answering, so the save is only
  // eventually visible — poll briefly.
  for (int attempt = 0; attempt < 100 && stats[kStatStoreSaves] == 0;
       ++attempt) {
    ::usleep(20 * 1000);
    ASSERT_TRUE(client.stats(stats, &error)) << error;
  }
  EXPECT_GE(stats[kStatStoreSaves], 1u);

  terminate_cleanly();
}

TEST_F(ServeE2E, UnknownFingerprintProbeNeverComputes) {
  spawn();
  Client client = connect();
  std::string error;
  VerdictRowWire row;
  ASSERT_TRUE(client.probe({0x1234, 0x5678}, row, &error)) << error;
  EXPECT_EQ(row.source, VerdictSource::kUnknown);
  for (std::uint64_t word : row.valid) EXPECT_EQ(word, 0u);

  std::vector<std::uint64_t> stats;
  ASSERT_TRUE(client.stats(stats, &error)) << error;
  EXPECT_EQ(stats[kStatProbeUnknown], 1u);
  EXPECT_EQ(stats[kStatCheckComputed], 0u);
  EXPECT_EQ(stats[kStatBatchesCoalesced], 0u);
  terminate_cleanly();
}

TEST_F(ServeE2E, ConcurrentClientsGetIdenticalVerdicts) {
  spawn();
  const std::string corpus = litmus::write_corpus(slice_tests(24));

  constexpr int kClients = 4;
  std::vector<std::vector<VerdictRowWire>> results(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client;
      if (!client.connect_unix(socket_path_, &errors[i])) return;
      (void)client.batch_check(corpus, results[i], &errors[i]);
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_FALSE(results[0].empty()) << errors[0];
  for (int i = 1; i < kClients; ++i) {
    ASSERT_EQ(results[i].size(), results[0].size()) << errors[i];
    for (std::size_t t = 0; t < results[0].size(); ++t) {
      // Sources may differ (one client computed, another hit what it
      // stored) but the verdict bits must be bit-for-bit identical.
      EXPECT_EQ(results[i][t].valid, results[0][t].valid);
      EXPECT_EQ(results[i][t].bits, results[0][t].bits);
    }
  }

  // And a warm follow-up serves the whole slice from the store.
  Client client = connect();
  std::string error;
  std::vector<VerdictRowWire> warm;
  ASSERT_TRUE(client.batch_check(corpus, warm, &error)) << error;
  for (std::size_t t = 0; t < warm.size(); ++t) {
    EXPECT_EQ(warm[t].source, VerdictSource::kStore);
    EXPECT_EQ(warm[t].bits, results[0][t].bits);
  }
  terminate_cleanly();
}

TEST_F(ServeE2E, RestartServesPersistedVerdictsWithoutEngine) {
  const std::string corpus = litmus::write_corpus(slice_tests(16));
  spawn();
  std::vector<VerdictRowWire> first;
  {
    Client client = connect();
    std::string error;
    ASSERT_TRUE(client.batch_check(corpus, first, &error)) << error;
  }
  terminate_cleanly();

  // Second daemon lifetime, same store file: everything is a store
  // hit and the engine never runs.
  spawn();
  Client client = connect();
  std::string error;
  std::vector<VerdictRowWire> second;
  ASSERT_TRUE(client.batch_check(corpus, second, &error)) << error;
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t t = 0; t < first.size(); ++t) {
    EXPECT_EQ(second[t].source, VerdictSource::kStore);
    EXPECT_EQ(second[t].valid, first[t].valid);
    EXPECT_EQ(second[t].bits, first[t].bits);
  }
  std::vector<std::uint64_t> stats;
  ASSERT_TRUE(client.stats(stats, &error)) << error;
  EXPECT_EQ(stats[kStatCheckComputed], 0u);
  EXPECT_EQ(stats[kStatBatchesCoalesced], 0u);
  terminate_cleanly();
}

TEST_F(ServeE2E, CorruptedStoreRecoversWithIdenticalVerdicts) {
  const std::string corpus = litmus::write_corpus(slice_tests(12));
  spawn();
  std::vector<VerdictRowWire> reference;
  {
    Client client = connect();
    std::string error;
    ASSERT_TRUE(client.batch_check(corpus, reference, &error)) << error;
  }
  terminate_cleanly();

  // Tear the committed file the way an interrupted write would:
  // overwrite a span in the middle with garbage.
  {
    std::fstream file(store_path_,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(64);
    const char garbage[32] = "THIS IS NOT A VERDICT STORE....";
    file.write(garbage, sizeof(garbage));
  }

  // The next lifetime quarantines the file, starts empty, recomputes,
  // and the verdicts are still bit-for-bit right.
  spawn();
  Client client = connect();
  std::string error;
  std::vector<VerdictRowWire> recovered;
  ASSERT_TRUE(client.batch_check(corpus, recovered, &error)) << error;
  ASSERT_EQ(recovered.size(), reference.size());
  for (std::size_t t = 0; t < reference.size(); ++t) {
    EXPECT_EQ(recovered[t].source, VerdictSource::kComputed);
    EXPECT_EQ(recovered[t].valid, reference[t].valid);
    EXPECT_EQ(recovered[t].bits, reference[t].bits);
  }
  terminate_cleanly();
}

TEST_F(ServeE2E, GarbageBytesDoNotKillTheServer) {
  spawn();

  // Raw connection feeding bytes that are not a frame: the server
  // answers with a malformed-frame error (best effort) and drops the
  // link — and keeps serving everyone else.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, MSG_NOSIGNAL), 0);
    char reply[256];
    while (::read(fd, reply, sizeof(reply)) > 0) {
    }
    ::close(fd);
  }

  // A well-framed but undecodable payload keeps the connection alive:
  // the same socket answers a real request right after the error.
  {
    Client client = connect();
    std::string error;
    std::vector<std::uint64_t> stats;
    ASSERT_TRUE(client.stats(stats, &error)) << error;
    VerdictRowWire row;
    ASSERT_TRUE(client.check(kSbTest, row, &error)) << error;
    EXPECT_EQ(row.source, VerdictSource::kComputed);
  }

  // Malformed litmus source is a per-request error, not a connection
  // (or server) failure.
  {
    Client client = connect();
    std::string error;
    VerdictRowWire row;
    EXPECT_FALSE(client.check("name: broken\nthread:\n  Explode\n", row,
                              &error));
    EXPECT_NE(error.find("server error"), std::string::npos) << error;
    std::vector<std::uint64_t> stats;
    ASSERT_TRUE(client.stats(stats, &error)) << error;
  }

  terminate_cleanly();
}

}  // namespace
}  // namespace mcmc::serve
