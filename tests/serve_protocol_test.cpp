// Wire-contract tests of serve/protocol.h: every message type
// round-trips bit-exactly, and no truncation, oversizing, or byte
// garbage can make the codecs crash, over-allocate, or accept a
// mangled payload as valid.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace mcmc::serve {
namespace {

[[nodiscard]] Request sample_probe() {
  Request r;
  r.type = MsgType::kProbe;
  r.id = 0x1122334455667788ULL;
  r.key = {0xdeadbeefcafef00dULL, 0x0123456789abcdefULL};
  return r;
}

[[nodiscard]] Request sample_batch_probe() {
  Request r;
  r.type = MsgType::kBatchProbe;
  r.id = 7;
  for (std::uint64_t i = 0; i < 5; ++i) r.keys.push_back({i * 31, i * 17 + 1});
  return r;
}

[[nodiscard]] Request sample_check() {
  Request r;
  r.type = MsgType::kCheck;
  r.id = 42;
  r.text = "name: T\nthread:\n  Write X <- 1\noutcome:\n";
  return r;
}

[[nodiscard]] VerdictRowWire sample_row(std::uint32_t num_models) {
  VerdictRowWire row;
  row.source = VerdictSource::kStore;
  row.num_models = num_models;
  const std::size_t words = (num_models + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) {
    row.valid.push_back(~0ULL);
    row.bits.push_back(0x5555555555555555ULL ^ w);
  }
  if (num_models % 64 != 0) {
    row.valid.back() &= (1ULL << (num_models % 64)) - 1;
    row.bits.back() &= row.valid.back();
  }
  return row;
}

void expect_rows_equal(const VerdictRowWire& a, const VerdictRowWire& b) {
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.num_models, b.num_models);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.bits, b.bits);
}

TEST(ServeProtocol, RequestsRoundTrip) {
  for (const Request& original :
       {sample_probe(), sample_batch_probe(), sample_check()}) {
    const std::string payload = encode_request(original);
    Request decoded;
    ASSERT_TRUE(decode_request(payload, decoded));
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.id, original.id);
    EXPECT_EQ(decoded.key, original.key);
    ASSERT_EQ(decoded.keys.size(), original.keys.size());
    for (std::size_t i = 0; i < original.keys.size(); ++i) {
      EXPECT_EQ(decoded.keys[i], original.keys[i]);
    }
    EXPECT_EQ(decoded.text, original.text);
  }
}

TEST(ServeProtocol, EmptyBodiedRequestsRoundTrip) {
  for (const MsgType type : {MsgType::kStats, MsgType::kModels}) {
    Request original;
    original.type = type;
    original.id = 9;
    Request decoded;
    ASSERT_TRUE(decode_request(encode_request(original), decoded));
    EXPECT_EQ(decoded.type, type);
    EXPECT_EQ(decoded.id, 9u);
  }
}

TEST(ServeProtocol, ResponsesRoundTrip) {
  Response row_response;
  row_response.type = MsgType::kVerdictRow;
  row_response.id = 3;
  row_response.row = sample_row(90);

  Response rows_response;
  rows_response.type = MsgType::kVerdictRows;
  rows_response.id = 4;
  rows_response.rows = {sample_row(90), sample_row(64), sample_row(1)};
  rows_response.rows[1].source = VerdictSource::kComputed;
  rows_response.rows[2].source = VerdictSource::kUnknown;

  Response stats_response;
  stats_response.type = MsgType::kStatsReply;
  stats_response.id = 5;
  for (std::size_t i = 0; i < kStatFieldCount; ++i) {
    stats_response.stats.push_back(i * 1000 + 1);
  }

  Response models_response;
  models_response.type = MsgType::kModelsReply;
  models_response.id = 6;
  models_response.model_names = {"M4444", "M1010", ""};

  Response error_response;
  error_response.type = MsgType::kError;
  error_response.id = 7;
  error_response.error_code = ErrorCode::kOverloaded;
  error_response.error_message = "admission queue full";

  for (const Response& original :
       {row_response, rows_response, stats_response, models_response,
        error_response}) {
    Response decoded;
    ASSERT_TRUE(decode_response(encode_response(original), decoded));
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.id, original.id);
    expect_rows_equal(decoded.row, original.row);
    ASSERT_EQ(decoded.rows.size(), original.rows.size());
    for (std::size_t i = 0; i < original.rows.size(); ++i) {
      expect_rows_equal(decoded.rows[i], original.rows[i]);
    }
    EXPECT_EQ(decoded.stats, original.stats);
    EXPECT_EQ(decoded.model_names, original.model_names);
    if (original.type == MsgType::kError) {
      EXPECT_EQ(decoded.error_code, original.error_code);
      EXPECT_EQ(decoded.error_message, original.error_message);
    }
  }
}

TEST(ServeProtocol, RowHelpersIndexBits) {
  const VerdictRowWire row = sample_row(90);
  EXPECT_TRUE(row.known(0));
  EXPECT_TRUE(row.known(89));
  EXPECT_FALSE(row.known(90));
  EXPECT_FALSE(row.known(-1));
  EXPECT_TRUE(row.allowed(0));   // 0x...55 bit 0
  EXPECT_FALSE(row.allowed(1));  // 0x...55 bit 1
}

TEST(ServeProtocol, FrameExtractionIsIncremental) {
  std::string stream;
  const std::string p1 = encode_request(sample_probe());
  const std::string p2 = encode_request(sample_check());
  append_frame(stream, p1);
  append_frame(stream, p2);

  // Feed the byte stream one byte at a time, extracting as we go:
  // exactly two frames come out, in order, whatever the read chunking.
  std::string buffer;
  std::vector<std::string> payloads;
  for (char c : stream) {
    buffer.push_back(c);
    std::size_t consumed = 0;
    std::string payload;
    while (extract_frame(buffer, consumed, payload) == FrameStatus::kFrame) {
      buffer.erase(0, consumed);
      payloads.push_back(payload);
    }
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], p1);
  EXPECT_EQ(payloads[1], p2);
  EXPECT_TRUE(buffer.empty());
}

TEST(ServeProtocol, BadMagicAndOversizedLengthAreRejected) {
  std::string frame;
  append_frame(frame, encode_request(sample_probe()));

  std::string bad_magic = frame;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x01);
  std::size_t consumed = 0;
  std::string payload;
  EXPECT_EQ(extract_frame(bad_magic, consumed, payload), FrameStatus::kBad);

  // A length word beyond the cap must be rejected without waiting for
  // (or allocating) the claimed bytes.
  std::string oversized;
  util::append_u32(oversized, kFrameMagic);
  util::append_u32(oversized, kMaxFramePayload + 1);
  EXPECT_EQ(extract_frame(oversized, consumed, payload), FrameStatus::kBad);
}

TEST(ServeProtocol, TruncationsNeverDecode) {
  // Every proper prefix of a valid payload must decode as malformed —
  // for requests and responses alike.
  const std::string request_payload = encode_request(sample_batch_probe());
  for (std::size_t len = 0; len < request_payload.size(); ++len) {
    Request decoded;
    EXPECT_FALSE(decode_request(request_payload.substr(0, len), decoded))
        << "request prefix of length " << len << " decoded";
  }

  Response rows;
  rows.type = MsgType::kVerdictRows;
  rows.id = 11;
  rows.rows = {sample_row(90), sample_row(90)};
  const std::string response_payload = encode_response(rows);
  for (std::size_t len = 0; len < response_payload.size(); ++len) {
    Response decoded;
    EXPECT_FALSE(decode_response(response_payload.substr(0, len), decoded))
        << "response prefix of length " << len << " decoded";
  }
}

TEST(ServeProtocol, TrailingBytesAreRejected) {
  std::string payload = encode_request(sample_probe());
  payload.push_back('\0');
  Request decoded;
  EXPECT_FALSE(decode_request(payload, decoded));
}

TEST(ServeProtocol, HostileCountsAreBoundedByPayload) {
  // A batch-probe count claiming far more keys than the payload holds
  // must fail before resizing anything.
  std::string payload;
  util::append_u32(payload, kProtocolVersion);
  util::append_u32(payload, static_cast<std::uint32_t>(MsgType::kBatchProbe));
  util::append_u64(payload, 1);
  util::append_u32(payload, 0xffffffffu);
  Request decoded;
  EXPECT_FALSE(decode_request(payload, decoded));

  // Same for a verdict-rows response and for a row's model count.
  std::string response;
  util::append_u32(response, kProtocolVersion);
  util::append_u32(response, static_cast<std::uint32_t>(MsgType::kVerdictRows));
  util::append_u64(response, 1);
  util::append_u32(response, 0xffffffffu);
  Response out;
  EXPECT_FALSE(decode_response(response, out));

  std::string row_response;
  util::append_u32(row_response, kProtocolVersion);
  util::append_u32(row_response,
                   static_cast<std::uint32_t>(MsgType::kVerdictRow));
  util::append_u64(row_response, 1);
  row_response.push_back(static_cast<char>(VerdictSource::kStore));
  util::append_u32(row_response, 0xffffffffu);  // num_models
  EXPECT_FALSE(decode_response(row_response, out));
}

TEST(ServeProtocol, WrongVersionIsDistinguishable) {
  Request original = sample_probe();
  std::string payload = encode_request(original);
  payload[0] = static_cast<char>(kProtocolVersion + 1);  // low LE byte
  Request decoded;
  std::uint32_t version = 0;
  EXPECT_FALSE(decode_request(payload, decoded, &version));
  EXPECT_EQ(version, kProtocolVersion + 1);
}

TEST(ServeProtocol, GarbageFuzzNeverCrashes) {
  // Deterministic xorshift-filled buffers of many lengths: decoding
  // must never crash or accept garbage that cannot round-trip back to
  // the same bytes.
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = next() % 200;
    std::string payload(len, '\0');
    for (auto& c : payload) c = static_cast<char>(next());
    Request request;
    if (decode_request(payload, request)) {
      EXPECT_EQ(encode_request(request), payload);
    }
    Response response;
    if (decode_response(payload, response)) {
      EXPECT_EQ(encode_response(response), payload);
    }
    std::size_t consumed = 0;
    std::string extracted;
    (void)extract_frame(payload, consumed, extracted);
  }
}

TEST(ServeProtocol, MutationFuzzRoundTripsOrRejects) {
  // Single-byte mutations of a valid payload: each either fails to
  // decode or decodes to something that re-encodes to the mutated
  // bytes exactly (no silent reinterpretation).
  const std::string base = encode_request(sample_batch_probe());
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (int delta : {1, 0x80}) {
      std::string mutated = base;
      mutated[pos] = static_cast<char>(mutated[pos] ^ delta);
      Request decoded;
      if (decode_request(mutated, decoded)) {
        EXPECT_EQ(encode_request(decoded), mutated);
      }
    }
  }
}

}  // namespace
}  // namespace mcmc::serve
