// Unit coverage of the shared generator core (enumeration/shapes.h):
// well-formedness of separator-carrying shapes, rejection of the
// historically silent first-slot separator, dependency gating in
// all_thread_shapes, encode markers, checked space arithmetic, and the
// materialization idioms that must match enumeration::TestBuilder's
// dependency instruction sequences exactly (canonical classes of
// generated and hand-built tests coincide only if they do).
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/instruction.h"
#include "enumeration/shapes.h"

namespace mcmc::enumeration::shapes {
namespace {

ThreadShape shape_of(std::initializer_list<Access> accesses) {
  return ThreadShape(accesses);
}

NaiveOptions bounds(int max_accesses, bool fences, bool deps) {
  NaiveOptions o;
  o.max_accesses_per_thread = max_accesses;
  o.num_locations = 3;
  o.fences = fences;
  o.deps = deps;
  return o;
}

// ---------------------------------------------------------------------------
// Well-formedness.
// ---------------------------------------------------------------------------

TEST(ShapeWellFormed, FirstSlotSeparatorIsRejected) {
  // The old `fence_before` flag on a thread's first slot was silently
  // meaningless; the Sep representation rejects it outright.
  for (const Sep sep : {Sep::Fence, Sep::DataDep, Sep::CtrlDep}) {
    EXPECT_FALSE(well_formed(shape_of({{true, 0, sep}})));
    EXPECT_FALSE(well_formed(shape_of({{false, 1, sep}, {true, 0}})));
  }
  EXPECT_TRUE(well_formed(shape_of({{true, 0, Sep::None}})));
}

TEST(ShapeWellFormed, DepsRequireAPrecedingRead) {
  // Only a read produces a value to depend on.
  for (const Sep dep : {Sep::DataDep, Sep::CtrlDep}) {
    EXPECT_FALSE(well_formed(shape_of({{false, 0}, {true, 1, dep}})));
    EXPECT_TRUE(well_formed(shape_of({{true, 0}, {true, 1, dep}})));
    EXPECT_TRUE(well_formed(shape_of({{true, 0}, {false, 1, dep}})));
  }
  // A fence needs no predecessor value.
  EXPECT_TRUE(well_formed(shape_of({{false, 0}, {true, 1, Sep::Fence}})));
}

TEST(ShapeWellFormed, EncodeAndMaterializeRejectIllFormedShapes) {
  const ThreadShape bad = shape_of({{true, 0, Sep::Fence}});
  const std::vector<int> id_perm = {0, 1, 2};
  EXPECT_THROW((void)encode(bad, id_perm), std::invalid_argument);
  std::map<int, int> values;
  core::Reg next_reg = 0;
  EXPECT_THROW((void)materialize(bad, values, next_reg),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Generation: dependency gating and space sizes.
// ---------------------------------------------------------------------------

TEST(ShapeGeneration, EveryGeneratedShapeIsWellFormed) {
  for (const auto& shape : all_thread_shapes(bounds(3, true, true))) {
    EXPECT_TRUE(well_formed(shape)) << encode(shape, {0, 1, 2});
  }
}

TEST(ShapeGeneration, DepsOffYieldsNoDepSeparators) {
  const auto shapes = all_thread_shapes(bounds(3, true, false));
  for (const auto& shape : shapes) {
    for (const auto& a : shape) {
      EXPECT_TRUE(a.sep == Sep::None || a.sep == Sep::Fence);
    }
  }
}

TEST(ShapeGeneration, SpaceSizesMatchHandCounts) {
  // No deps: 6 one-access shapes, 72 two-access (6 firsts x {none,
  // fence} x 6), 864 three-access.
  EXPECT_EQ(all_thread_shapes(bounds(2, true, false)).size(), 78u);
  EXPECT_EQ(all_thread_shapes(bounds(3, true, false)).size(), 942u);
  // With deps a slot after a read has 4 separator choices instead of 2:
  // 6 + 108 two-access, then 1944 three-access (54 read-ending
  // two-access shapes x 24 + 54 write-ending x 12).
  EXPECT_EQ(all_thread_shapes(bounds(2, true, true)).size(), 114u);
  EXPECT_EQ(all_thread_shapes(bounds(3, true, true)).size(), 2058u);
}

TEST(ShapeGeneration, DepsOffOrderIsAPrefixFilterOfDepsOn) {
  // The dep-extended generator must not perturb the no-dep space:
  // deps=false produces exactly the deps=true sequence with the
  // dep-carrying shapes removed (separator candidates are tried in
  // enum order, so relative order is preserved).
  const auto with = all_thread_shapes(bounds(3, true, true));
  const auto without = all_thread_shapes(bounds(3, true, false));
  std::vector<ThreadShape> filtered;
  for (const auto& shape : with) {
    bool has_dep = false;
    for (const auto& a : shape) {
      has_dep = has_dep || a.sep == Sep::DataDep || a.sep == Sep::CtrlDep;
    }
    if (!has_dep) filtered.push_back(shape);
  }
  ASSERT_EQ(filtered.size(), without.size());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(encode(filtered[i], {0, 1, 2}), encode(without[i], {0, 1, 2}));
  }
}

TEST(ShapeEncode, DepSeparatorsGetDistinctMarkers) {
  const ThreadShape t = shape_of({{true, 0},
                                  {false, 1, Sep::DataDep},
                                  {true, 2, Sep::Fence}});
  EXPECT_EQ(encode(t, {0, 1, 2}), "R0dW1fR2");
  const ThreadShape c = shape_of({{true, 1}, {true, 0, Sep::CtrlDep}});
  EXPECT_EQ(encode(c, {0, 1, 2}), "R1cR0");
  // Location permutation applies to dep-addressed slots too.
  EXPECT_EQ(encode(c, {2, 1, 0}), "R1cR2");
}

// ---------------------------------------------------------------------------
// Checked space arithmetic.
// ---------------------------------------------------------------------------

TEST(ShapeArithmetic, CheckedMulAndAddFailLoudlyOnOverflow) {
  EXPECT_EQ(checked_mul(1'000'000, 1'000'000), 1'000'000'000'000LL);
  EXPECT_EQ(checked_add(1LL << 62, 1LL << 61), (1LL << 62) + (1LL << 61));
  constexpr long long kMax = std::numeric_limits<long long>::max();
  EXPECT_THROW((void)checked_mul(1LL << 62, 4), std::logic_error);
  EXPECT_THROW((void)checked_add(kMax, 1), std::logic_error);
}

// ---------------------------------------------------------------------------
// Materialization: the TestBuilder dependency idioms, instruction for
// instruction.
// ---------------------------------------------------------------------------

TEST(ShapeMaterialize, DataDepReadUsesDepConstPlusIndirectRead) {
  std::map<int, int> values;
  core::Reg next_reg = 0;
  const auto t = materialize(shape_of({{true, 2}, {true, 0, Sep::DataDep}}),
                             values, next_reg);
  // Read z -> r0 ; DepConst r1 = f(r0, 0) ; Read [r1] -> r2
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].op, core::Op::Read);
  EXPECT_EQ(t[0].loc, 2);
  EXPECT_EQ(t[0].dst, 0);
  EXPECT_EQ(t[1].op, core::Op::DepConst);
  EXPECT_EQ(t[1].dst, 1);
  EXPECT_EQ(t[1].src, 0);
  EXPECT_EQ(t[1].value, 0);  // encodes the target location
  EXPECT_EQ(t[2].op, core::Op::Read);
  EXPECT_EQ(t[2].addr_reg, 1);
  EXPECT_EQ(t[2].dst, 2);
  EXPECT_EQ(next_reg, 3);
}

TEST(ShapeMaterialize, DataDepWriteUsesDepConstPlusRegisterValuedWrite) {
  std::map<int, int> values;
  core::Reg next_reg = 0;
  const auto t = materialize(shape_of({{true, 0}, {false, 1, Sep::DataDep}}),
                             values, next_reg);
  // Read x -> r0 ; DepConst r1 = f(r0, 1) ; Write y <- r1
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].op, core::Op::DepConst);
  EXPECT_EQ(t[1].dst, 1);
  EXPECT_EQ(t[1].src, 0);
  EXPECT_EQ(t[1].value, 1);  // first value written to location 1
  EXPECT_EQ(t[2].op, core::Op::Write);
  EXPECT_EQ(t[2].loc, 1);
  EXPECT_EQ(t[2].src, 1);
  EXPECT_TRUE(t[2].value_from_reg);
  EXPECT_EQ(values.at(1), 1);
}

TEST(ShapeMaterialize, CtrlDepInsertsABranchOnThePrecedingRead) {
  std::map<int, int> values;
  core::Reg next_reg = 0;
  const auto t = materialize(shape_of({{true, 1}, {false, 0, Sep::CtrlDep}}),
                             values, next_reg);
  // Read y -> r0 ; Branch r0 ; Write x <- 1
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].op, core::Op::Branch);
  EXPECT_EQ(t[1].src, 0);
  EXPECT_EQ(t[2].op, core::Op::Write);
  EXPECT_EQ(t[2].loc, 0);
  EXPECT_EQ(t[2].value, 1);
}

TEST(ShapeMaterialize, ForEachReadResolvesDepIndirectAddresses) {
  std::map<int, int> values;
  core::Reg next_reg = 0;
  const auto t = materialize(
      shape_of({{true, 2}, {true, 0, Sep::DataDep}, {true, 1, Sep::CtrlDep}}),
      values, next_reg);
  std::vector<std::pair<core::Reg, int>> reads;
  for_each_read(t,
                [&](core::Reg dst, int loc) { reads.push_back({dst, loc}); });
  // The dep-addressed middle read resolves to its DepConst location,
  // not core::kNoLoc (the bug the dependency extension flushed out).
  const std::vector<std::pair<core::Reg, int>> want = {{0, 2}, {2, 0}, {3, 1}};
  EXPECT_EQ(reads, want);
}

}  // namespace
}  // namespace mcmc::enumeration::shapes
