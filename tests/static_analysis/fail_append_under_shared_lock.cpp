// Negative case: appending to the verdict store while holding only the
// shared (reader) side of the lock must be rejected by -Wthread-safety.
//
// set_bit_locked is REQUIRES(mu_) -- exclusive.  A SharedLock grants
// only REQUIRES_SHARED, so a writer sneaking in under a reader lock is
// a compile error, not a data race found at runtime.
#include "store/verdict_store.h"

namespace {

void bad_append(mcmc::store::VerdictStore& store, mcmc::util::Key128 key) {
  mcmc::util::SharedLock lock(store.mu());
  // BAD: mutation under a shared lock; needs util::ExclusiveLock.
  store.set_bit_locked(key, 0, true);
}

}  // namespace

int main() {
  (void)&bad_append;
  return 0;
}
