// Negative case: acquiring the same mutex twice in one scope must be
// rejected by -Wthread-safety.  util::Mutex is not recursive; a second
// MutexLock on the same capability is a guaranteed self-deadlock.
#include "util/mutex.h"

namespace {

void bad_double_lock(mcmc::util::Mutex& mu) {
  mcmc::util::MutexLock first(mu);
  // BAD: mu is already held by `first`.
  mcmc::util::MutexLock second(mu);
}

}  // namespace

int main() {
  (void)&bad_double_lock;
  return 0;
}
