// Negative case: probing the verdict store without holding the store
// mutex in shared mode must be rejected by -Wthread-safety.
//
// probe_bit_locked is REQUIRES_SHARED(mu_): the caller promises it
// already holds the reader side of the store lock.  Calling it bare is
// exactly the race the annotated contract exists to rule out.
#include "store/verdict_store.h"

namespace {

bool bad_probe(const mcmc::store::VerdictStore& store,
               mcmc::util::Key128 key) {
  // BAD: no SharedLock (or ExclusiveLock) on store.mu() is held here.
  return store.probe_bit_locked(key, 0).has_value();
}

}  // namespace

int main() {
  (void)&bad_probe;
  return 0;
}
