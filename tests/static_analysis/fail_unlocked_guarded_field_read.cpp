// Negative case: reading a GUARDED_BY field without holding its mutex
// must be rejected by -Wthread-safety.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Counter {
  mcmc::util::Mutex mu;
  int value GUARDED_BY(mu) = 0;
};

int bad_read(const Counter& c) {
  // BAD: c.value is guarded by c.mu, which is not held here.
  return c.value;
}

}  // namespace

int main() {
  (void)&bad_read;
  return 0;
}
