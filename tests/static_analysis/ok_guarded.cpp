// Positive control: correct guarded-field access and condition-variable
// waiting compile cleanly under -Wthread-safety -Werror.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Queue {
  mcmc::util::Mutex mu;
  mcmc::util::CondVar ready;
  int depth GUARDED_BY(mu) = 0;
  bool stopped GUARDED_BY(mu) = false;
};

void push(Queue& q) {
  mcmc::util::MutexLock lock(q.mu);
  ++q.depth;
  q.ready.notify_one();
}

int pop(Queue& q) {
  mcmc::util::MutexLock lock(q.mu);
  while (q.depth == 0 && !q.stopped) {
    q.ready.wait(q.mu);
  }
  if (q.depth > 0) {
    --q.depth;
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  (void)&push;
  (void)&pop;
  return 0;
}
