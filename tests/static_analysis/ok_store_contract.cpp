// Positive control: the intended verdict-store usage patterns compile
// cleanly under -Wthread-safety -Werror.  If this file ever fails, the
// negative cases prove nothing (the harness would be rejecting correct
// code, not catching violations).
#include <vector>

#include "store/verdict_store.h"

namespace {

// Convenience wrappers: each call takes the right lock internally.
bool wrapped_usage(mcmc::store::VerdictStore& store, mcmc::util::Key128 key) {
  store.set_bit(key, 0, true);
  return store.probe_bit(key, 0).has_value();
}

// Batched reader: one shared acquisition covers many probes.
bool batched_probes(const mcmc::store::VerdictStore& store,
                    const std::vector<mcmc::util::Key128>& keys) {
  mcmc::util::SharedLock lock(store.mu());
  bool any = false;
  for (const auto& key : keys) {
    any = any || store.probe_bit_locked(key, 0).has_value();
  }
  return any;
}

// Batched writer: one exclusive acquisition covers many appends.
void batched_appends(mcmc::store::VerdictStore& store,
                     const std::vector<mcmc::util::Key128>& keys) {
  mcmc::util::ExclusiveLock lock(store.mu());
  for (const auto& key : keys) {
    store.set_bit_locked(key, 0, true);
  }
}

}  // namespace

int main() {
  (void)&wrapped_usage;
  (void)&batched_probes;
  (void)&batched_appends;
  return 0;
}
