// Negative-compile harness for the thread-safety annotations.
//
// Each fail_*.cpp under tests/static_analysis/ seeds one lock-discipline
// violation (probe without a shared lock, append under a shared lock,
// unlocked guarded-field read, double acquire).  This driver shells out
// to a real clang and asserts, per case, that:
//
//   1. the file FAILS to compile with -Wthread-safety
//      -Wthread-safety-beta -Werror, and the diagnostic is actually a
//      thread-safety one (not some unrelated error masking a broken
//      test), and
//   2. the same file compiles CLEANLY without the analysis flags, so
//      the only defect in it is the seeded locking violation.
//
// The ok_*.cpp positive controls must compile cleanly WITH the flags;
// without them, a harness that rejected everything would look like it
// was catching violations.
//
// When no clang is on PATH (MCMC_TSA_CLANG empty -- e.g. a GCC-only
// box), every test skips: the annotations are no-ops off Clang, so
// there is nothing to check locally; the CI thread-safety job provides
// clang and runs this for real.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

constexpr const char* kClang = MCMC_TSA_CLANG;
constexpr const char* kSourceDir = MCMC_SOURCE_DIR;

struct CompileResult {
  int exit_code = -1;
  std::string output;
};

// Runs `cmd` with stderr folded into stdout and captures both.
CompileResult run(const std::string& cmd) {
  CompileResult result;
  FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf{};
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) !=
         nullptr) {
    result.output += buf.data();
  }
  result.exit_code = ::pclose(pipe);
  return result;
}

std::string compile_command(const std::string& case_file, bool with_tsa) {
  std::string cmd = std::string(kClang) + " -fsyntax-only -std=c++17 -I " +
                    kSourceDir + "/src";
  if (with_tsa) {
    cmd += " -Wthread-safety -Wthread-safety-beta -Werror";
  }
  cmd += " " + std::string(kSourceDir) + "/tests/static_analysis/" + case_file;
  return cmd;
}

class StaticAnalysis : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(kClang).empty()) {
      GTEST_SKIP() << "no clang available; thread-safety analysis needs "
                      "Clang (the CI thread-safety job runs this)";
    }
  }

  // The seeded violation must be rejected by the analysis and by
  // nothing else: clean without the flags, thread-safety error with.
  void expect_rejected(const std::string& case_file) {
    const CompileResult plain = run(compile_command(case_file, false));
    EXPECT_EQ(plain.exit_code, 0)
        << case_file << " must be valid C++ apart from the seeded "
        << "locking violation, but failed without analysis flags:\n"
        << plain.output;
    const CompileResult checked = run(compile_command(case_file, true));
    EXPECT_NE(checked.exit_code, 0)
        << case_file << " compiled cleanly; the seeded violation was "
        << "not caught:\n"
        << checked.output;
    EXPECT_NE(checked.output.find("thread-safety"), std::string::npos)
        << case_file << " failed for a reason other than the "
        << "thread-safety analysis:\n"
        << checked.output;
  }

  void expect_accepted(const std::string& case_file) {
    const CompileResult checked = run(compile_command(case_file, true));
    EXPECT_EQ(checked.exit_code, 0)
        << case_file << " is a positive control and must compile "
        << "cleanly under the analysis:\n"
        << checked.output;
  }
};

TEST_F(StaticAnalysis, ProbeWithoutSharedLockIsRejected) {
  expect_rejected("fail_probe_without_shared_lock.cpp");
}

TEST_F(StaticAnalysis, AppendUnderSharedLockIsRejected) {
  expect_rejected("fail_append_under_shared_lock.cpp");
}

TEST_F(StaticAnalysis, UnlockedGuardedFieldReadIsRejected) {
  expect_rejected("fail_unlocked_guarded_field_read.cpp");
}

TEST_F(StaticAnalysis, DoubleAcquireIsRejected) {
  expect_rejected("fail_double_acquire.cpp");
}

TEST_F(StaticAnalysis, StoreContractPatternsAreAccepted) {
  expect_accepted("ok_store_contract.cpp");
}

TEST_F(StaticAnalysis, GuardedAccessPatternsAreAccepted) {
  expect_accepted("ok_guarded.cpp");
}

}  // namespace
