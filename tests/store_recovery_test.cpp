// End-to-end recovery drills for the persistent verdict store: the
// tier-1 2-access Theorem-1 slice is run through the streamed harness
// with checkpointing enabled, then interrupted, corrupted, starved of
// filesystem, and resumed — and every variant must land on the exact
// reference DistinguishMatrix.  The unit-level corruption and fault
// cases live in store_test.cpp; this suite proves the same guarantees
// hold through the whole engine + harness stack.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "engine/verdict_engine.h"
#include "enumeration/exhaustive.h"
#include "explore/distinguish.h"
#include "explore/space.h"
#include "store/fs.h"
#include "store/verdict_store.h"

namespace mcmc {
namespace {

enumeration::ExhaustiveOptions slice_options() {
  enumeration::ExhaustiveOptions options;
  options.bounds.max_accesses_per_thread = 2;
  // Small chunks so a couple of seals interrupt the run mid-stream.
  options.chunk_size = 256;
  return options;
}

const std::vector<core::MemoryModel>& ninety_models() {
  static const std::vector<core::MemoryModel> models = [] {
    std::vector<core::MemoryModel> out;
    for (const auto& c : explore::model_space(true)) {
      out.push_back(c.to_model());
    }
    return out;
  }();
  return models;
}

/// Forwards to an ExhaustiveStream while counting the tests actually
/// delivered to the engine — the direct observable for "a resumed run
/// does not re-stream sealed chunks".
class CountingSource final : public engine::TestSource {
 public:
  explicit CountingSource(enumeration::ExhaustiveOptions options)
      : inner_(options) {}

  bool next_chunk(std::vector<litmus::LitmusTest>& out) override {
    const std::size_t before = out.size();
    const bool more = inner_.next_chunk(out);
    delivered_ += out.size() - before;
    return more;
  }
  [[nodiscard]] bool snapshot_cursor(
      std::vector<std::uint64_t>& out) const override {
    return inner_.snapshot_cursor(out);
  }
  [[nodiscard]] bool restore_cursor(
      const std::vector<std::uint64_t>& cursor) override {
    return inner_.restore_cursor(cursor);
  }

  [[nodiscard]] std::size_t delivered() const { return delivered_; }

 private:
  enumeration::ExhaustiveStream inner_;
  std::size_t delivered_ = 0;
};

struct SliceRun {
  explore::DistinguishMatrix matrix;
  explore::TheoremHarnessReport report;
  store::OpenOutcome outcome = store::OpenOutcome::Fresh;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  std::size_t tests_delivered = 0;  ///< streamed by THIS run, not restored
  bool interrupted = false;
};

/// The store-free ground truth, computed once.
const SliceRun& reference() {
  static const SliceRun ref = [] {
    SliceRun r;
    engine::VerdictEngine eng;
    enumeration::ExhaustiveStream stream(slice_options());
    r.matrix = explore::distinguishability_streamed(
        eng, ninety_models(), stream, explore::TheoremHarnessOptions{},
        &r.report);
    return r;
  }();
  return ref;
}

/// One harness run over the slice with a store attached at `path`.
/// A StreamInterrupted from the kill hook is caught and flagged, with
/// the partial report preserved — exactly what a wrapper around a
/// SIGKILLed process would observe.
SliceRun run_slice_with_store(const std::string& path, store::Fs* fs,
                              bool resume, int kill_after_seals) {
  SliceRun run;
  const auto& models = ninety_models();
  auto opened =
      store::VerdictStore::open(path, explore::harness_store_meta(models), fs);
  run.outcome = opened.outcome;

  store::StreamPersistence persistence;
  persistence.path = path;
  persistence.fs = fs;
  persistence.checkpoint_every_chunks = 4;
  persistence.resume = resume;
  persistence.kill_after_seals = kill_after_seals;

  explore::TheoremHarnessOptions options;
  options.verdict_store = opened.store.get();
  options.persistence = &persistence;

  engine::VerdictEngine eng;
  CountingSource stream(slice_options());
  try {
    run.matrix = explore::distinguishability_streamed(
        eng, models, stream, options, &run.report);
  } catch (const store::StreamInterrupted&) {
    run.interrupted = true;
  }
  run.store_hits = opened.store->hits();
  run.store_misses = opened.store->misses();
  run.tests_delivered = stream.delivered();
  return run;
}

void expect_matches_reference(const SliceRun& run) {
  const SliceRun& ref = reference();
  EXPECT_TRUE(run.matrix == ref.matrix);
  EXPECT_EQ(run.matrix.distinguished_pairs(), ref.matrix.distinguished_pairs());
  EXPECT_EQ(run.report.stream.tests_streamed, ref.report.stream.tests_streamed);
  EXPECT_EQ(run.report.stream.novel_tests, ref.report.stream.novel_tests);
  EXPECT_EQ(run.report.stream.duplicate_tests,
            ref.report.stream.duplicate_tests);
  EXPECT_EQ(run.report.candidate_tests, ref.report.candidate_tests);
  EXPECT_EQ(run.report.filtered_tests, ref.report.filtered_tests);
}

class StoreRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-case path: ctest registers each case as its own test, so
    // parallel runs would clobber a shared file.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "recovery_store_" +
            std::string(info->name()) + ".mcvs";
    scrub();
  }
  void TearDown() override { scrub(); }

  void scrub() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
    std::remove((path_ + ".corrupt").c_str());
  }

  /// Runs the slice to completion with the store attached, leaving a
  /// warm, checkpoint-free file at path_.
  void warm_store() {
    const SliceRun run = run_slice_with_store(path_, nullptr, false, -1);
    ASSERT_FALSE(run.interrupted);
    expect_matches_reference(run);
    ASSERT_TRUE(store::RealFs::instance().exists(path_));
  }

  std::string read_bytes() {
    std::string bytes;
    EXPECT_TRUE(store::RealFs::instance().read_file(path_, bytes));
    return bytes;
  }

  void write_bytes(const std::string& bytes) {
    auto writer = store::RealFs::instance().create(path_);
    ASSERT_NE(writer, nullptr);
    ASSERT_TRUE(writer->write(bytes.data(), bytes.size()));
    ASSERT_TRUE(writer->close());
  }

  std::string path_;
};

// The headline acceptance drill: kill the stream after two sealed
// checkpoints, resume from the file the kill left behind, and land on
// the reference bit for bit without re-streaming sealed chunks.
TEST_F(StoreRecovery, KillThenResumeReproducesSliceBitForBit) {
  const SliceRun killed = run_slice_with_store(path_, nullptr, false, 2);
  ASSERT_TRUE(killed.interrupted);

  // The on-disk file is a complete, loadable store holding a mid-stream
  // checkpoint covering strictly partial progress.
  std::uint64_t sealed_tests = 0;
  {
    auto opened = store::VerdictStore::open(
        path_, explore::harness_store_meta(ninety_models()));
    ASSERT_EQ(opened.outcome, store::OpenOutcome::Loaded);
    ASSERT_TRUE(opened.store->checkpoint().has_value());
    const store::StreamCheckpoint ck = *opened.store->checkpoint();
    EXPECT_GT(ck.tests_streamed, 0u);
    EXPECT_LT(ck.tests_streamed, reference().report.stream.tests_streamed);
    EXPECT_EQ(ck.tests_streamed, ck.novel_tests + ck.duplicate_tests);
    EXPECT_EQ(ck.seen_keys.size(), ck.novel_tests);
    EXPECT_FALSE(ck.source_cursor.empty());
    EXPECT_FALSE(ck.sink_state.empty());
    sealed_tests = ck.tests_streamed;
  }

  const SliceRun resumed = run_slice_with_store(path_, nullptr, true, -1);
  ASSERT_FALSE(resumed.interrupted);
  ASSERT_EQ(resumed.outcome, store::OpenOutcome::Loaded);
  expect_matches_reference(resumed);
  // Resume really resumed: the source delivered exactly the unsealed
  // suffix, never the chunks the checkpoint already covered.
  EXPECT_EQ(resumed.tests_delivered,
            reference().report.stream.tests_streamed -
                static_cast<std::size_t>(sealed_tests));

  // Completion clears the checkpoint, so the next run starts clean.
  auto opened = store::VerdictStore::open(
      path_, explore::harness_store_meta(ninety_models()));
  ASSERT_EQ(opened.outcome, store::OpenOutcome::Loaded);
  EXPECT_FALSE(opened.store->checkpoint().has_value());
}

// A warm rerun against the completed store must serve essentially every
// verdict from disk — the artifact-reload gate CI enforces at >= 99%.
TEST_F(StoreRecovery, WarmRerunServesVerdictsFromStore) {
  warm_store();
  const SliceRun warm = run_slice_with_store(path_, nullptr, true, -1);
  ASSERT_FALSE(warm.interrupted);
  ASSERT_EQ(warm.outcome, store::OpenOutcome::Loaded);
  expect_matches_reference(warm);
  ASSERT_GT(warm.store_hits, 0u);
  const double rate =
      static_cast<double>(warm.store_hits) /
      static_cast<double>(warm.store_hits + warm.store_misses);
  EXPECT_GE(rate, 0.99);
}

// Corruption class: a flipped bit anywhere must be caught by the
// checksums; the file is quarantined and the run recomputes correctly.
TEST_F(StoreRecovery, BitFlipIsQuarantinedAndRecomputed) {
  warm_store();
  std::string bytes = read_bytes();
  bytes[bytes.size() / 2] ^= 0x10;
  write_bytes(bytes);

  const SliceRun run = run_slice_with_store(path_, nullptr, true, -1);
  EXPECT_EQ(run.outcome, store::OpenOutcome::Corrupt);
  EXPECT_TRUE(store::RealFs::instance().exists(path_ + ".corrupt"));
  ASSERT_FALSE(run.interrupted);
  expect_matches_reference(run);
  // The recomputing run repopulated a healthy file.
  auto opened = store::VerdictStore::open(
      path_, explore::harness_store_meta(ninety_models()));
  EXPECT_EQ(opened.outcome, store::OpenOutcome::Loaded);
}

// Corruption class: truncation (a partial copy, a torn download).
TEST_F(StoreRecovery, TruncationIsQuarantinedAndRecomputed) {
  warm_store();
  std::string bytes = read_bytes();
  bytes.resize(bytes.size() / 2);
  write_bytes(bytes);

  const SliceRun run = run_slice_with_store(path_, nullptr, true, -1);
  EXPECT_EQ(run.outcome, store::OpenOutcome::Corrupt);
  EXPECT_TRUE(store::RealFs::instance().exists(path_ + ".corrupt"));
  ASSERT_FALSE(run.interrupted);
  expect_matches_reference(run);
}

// Corruption class: a store computed against a different model zoo
// self-invalidates (no quarantine — the file is healthy, just stale)
// and the harness recomputes against the current zoo.
TEST_F(StoreRecovery, StaleZooFingerprintSelfInvalidates) {
  std::vector<core::MemoryModel> other_zoo = ninety_models();
  other_zoo.pop_back();
  {
    auto opened = store::VerdictStore::open(
        path_, explore::harness_store_meta(other_zoo));
    util::Key128 key;
    key.hi = 1;
    key.lo = 2;
    opened.store->set_bit(key, 0, true);
    std::string error;
    ASSERT_TRUE(opened.store->save(path_, nullptr, &error)) << error;
  }

  const SliceRun run = run_slice_with_store(path_, nullptr, true, -1);
  EXPECT_EQ(run.outcome, store::OpenOutcome::ZooMismatch);
  EXPECT_FALSE(store::RealFs::instance().exists(path_ + ".corrupt"));
  ASSERT_FALSE(run.interrupted);
  expect_matches_reference(run);
  // The stale file was replaced by one matching the current zoo.
  auto opened = store::VerdictStore::open(
      path_, explore::harness_store_meta(ninety_models()));
  EXPECT_EQ(opened.outcome, store::OpenOutcome::Loaded);
}

// Corruption class: a temp file abandoned by a killed (or concurrent)
// writer must not confuse anything — it is inert and overwritten by
// this run's own seals.
TEST_F(StoreRecovery, LeftoverTempFileIsInertAcrossTheRun) {
  {
    const std::string garbage = "half-written garbage from a dead writer";
    auto writer = store::RealFs::instance().create(path_ + ".tmp");
    ASSERT_NE(writer, nullptr);
    ASSERT_TRUE(writer->write(garbage.data(), garbage.size()));
    ASSERT_TRUE(writer->close());
  }

  const SliceRun run = run_slice_with_store(path_, nullptr, true, -1);
  EXPECT_EQ(run.outcome, store::OpenOutcome::Fresh);
  ASSERT_FALSE(run.interrupted);
  expect_matches_reference(run);
  auto opened = store::VerdictStore::open(
      path_, explore::harness_store_meta(ninety_models()));
  EXPECT_EQ(opened.outcome, store::OpenOutcome::Loaded);
}

// Fault class: a filesystem where every fsync fails (dying disk, full
// tmpfs).  Every seal's save fails, which must be non-fatal: the run
// completes with the correct matrix and no damaged file appears under
// the final name.
TEST_F(StoreRecovery, SealFaultsAreNonFatalAndLeaveNoPartialFile) {
  store::FaultFs faulty(store::RealFs::instance());
  faulty.fail_sync_at = 0;
  faulty.sticky = true;

  const SliceRun run = run_slice_with_store(path_, &faulty, false, -1);
  ASSERT_FALSE(run.interrupted);
  expect_matches_reference(run);
  EXPECT_FALSE(store::RealFs::instance().exists(path_));
}

}  // namespace
}  // namespace mcmc
