// Unit coverage of the persistent verdict store: round trips, the
// atomic-commit protocol, every corruption class open() must classify
// (truncation, bit flip, bad magic, trailing bytes, version and zoo
// mismatches, leftover temp files), and fault-injected save paths
// (torn writes, ENOSPC-style budgets, failing fsync/create/rename).
// The invariant throughout: recovery never throws, never yields a
// wrong verdict, and degrades to an empty store at worst.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/formula.h"
#include "core/model.h"
#include "store/fs.h"
#include "store/verdict_store.h"
#include "util/bytes.h"
#include "util/hash128.h"

namespace mcmc::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "store_test_" + name + ".vstore";
}

void scrub(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".corrupt").c_str());
}

StoreMeta small_meta() {
  StoreMeta meta;
  meta.model_keys = {"F:alpha", "F:beta", "F:gamma"};
  return meta;
}

util::Key128 key_of(int i) {
  const std::string s = "test-" + std::to_string(i);
  return util::hash128(s);
}

std::string slurp(const std::string& path) {
  std::string out;
  EXPECT_TRUE(RealFs::instance().read_file(path, out));
  return out;
}

void spit(const std::string& path, const std::string& bytes) {
  auto w = RealFs::instance().create(path);
  ASSERT_NE(w, nullptr);
  ASSERT_TRUE(w->write(bytes.data(), bytes.size()));
  ASSERT_TRUE(w->close());
}

// ---------------------------------------------------------------------------
// Metadata and keys
// ---------------------------------------------------------------------------

TEST(StoreMeta, CustomPredicateModelsGetNoKey) {
  const core::MemoryModel plain("plain", core::f_false());
  EXPECT_FALSE(model_store_key(plain).empty());
  core::CustomPredicate pred = [](const core::Analysis&, core::EventId,
                                  core::EventId) { return false; };
  const core::MemoryModel custom("custom", core::Formula::custom("p", pred));
  EXPECT_EQ(model_store_key(custom), "");
}

TEST(StoreMeta, ZooFingerprintSensitiveToOrderAndContent) {
  StoreMeta a = small_meta();
  StoreMeta b = small_meta();
  EXPECT_EQ(a.zoo_fingerprint(), b.zoo_fingerprint());
  std::swap(b.model_keys[0], b.model_keys[1]);
  EXPECT_NE(a.zoo_fingerprint(), b.zoo_fingerprint());
  StoreMeta c = small_meta();
  c.model_keys.push_back("F:delta");
  EXPECT_NE(a.zoo_fingerprint(), c.zoo_fingerprint());
}

// ---------------------------------------------------------------------------
// In-memory bit semantics
// ---------------------------------------------------------------------------

TEST(VerdictStore, ProbeMatchesSetAndCountsHits) {
  VerdictStore store(small_meta());
  EXPECT_EQ(store.column_of("F:beta"), 1);
  EXPECT_EQ(store.column_of("F:unknown"), -1);
  EXPECT_EQ(store.column_of(""), -1);

  EXPECT_FALSE(store.probe_bit(key_of(1), 0).has_value());
  EXPECT_EQ(store.misses(), 1u);
  store.set_bit(key_of(1), 0, true);
  store.set_bit(key_of(1), 2, false);
  ASSERT_TRUE(store.probe_bit(key_of(1), 0).has_value());
  EXPECT_TRUE(*store.probe_bit(key_of(1), 0));
  ASSERT_TRUE(store.probe_bit(key_of(1), 2).has_value());
  EXPECT_FALSE(*store.probe_bit(key_of(1), 2));
  EXPECT_FALSE(store.probe_bit(key_of(1), 1).has_value());  // column unset
  EXPECT_FALSE(store.probe_bit(key_of(2), 0).has_value());  // row absent
}

TEST(VerdictStore, ConcurrentProbesWithSerializedAppender) {
  // The documented contract (verdict_store.h): any number of probing
  // threads concurrent with one appending thread and with save().
  // Every bit an appender publishes must read back exactly as written,
  // and hit+miss totals must not lose counts.  Run under the tsan CI
  // job, this is the serve-path race detector.
  const std::string path = temp_path("concurrent");
  scrub(path);
  VerdictStore store(small_meta());
  constexpr int kKeys = 512;
  constexpr int kReaders = 4;

  std::atomic<int> published{0};
  std::thread appender([&] {
    for (int i = 0; i < kKeys; ++i) {
      store.set_bit(key_of(i), 0, i % 3 == 0);
      store.set_bit(key_of(i), 2, i % 5 == 0);
      published.store(i + 1, std::memory_order_release);
      if (i % 128 == 0) {
        EXPECT_TRUE(store.save(path));
      }
    }
  });
  std::vector<std::thread> readers;
  std::atomic<bool> wrong{false};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int round = 0; round < 4; ++round) {
        const int upto = published.load(std::memory_order_acquire);
        for (int i = 0; i < upto; ++i) {
          const auto bit = store.probe_bit(key_of(i), 0);
          if (!bit.has_value() || *bit != (i % 3 == 0)) wrong.store(true);
        }
        (void)store.size();
      }
    });
  }
  appender.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(wrong.load());

  // Totals are exact even though probes raced: every probe above was
  // of a published cell, so every one counted a hit; the misses
  // counter never moved.
  EXPECT_EQ(store.misses(), 0u);
  ASSERT_TRUE(store.save(path));
  auto reopened = VerdictStore::open(path, small_meta());
  EXPECT_EQ(reopened.outcome, OpenOutcome::Loaded);
  EXPECT_EQ(reopened.store->size(), static_cast<std::size_t>(kKeys));
  scrub(path);
}

TEST(VerdictStore, MixedProbeAppendCheckpointScheduleUnderContention) {
  // litmusd-shaped schedule: the serving tier runs batched shared-lock
  // probes (one SharedLock per request batch) concurrent with the
  // engine's batched exclusive write-back (one ExclusiveLock per
  // chunk), while a checkpoint thread snapshots and persists progress.
  // This exercises the annotated _locked contract end to end -- every
  // access below holds exactly the lock mode its annotation demands --
  // and under the tsan CI job it is the detector for the batched
  // write-back paths that the per-cell test above cannot reach.
  const std::string path = temp_path("mixed_schedule");
  scrub(path);
  VerdictStore store(small_meta());
  constexpr int kChunks = 32;
  constexpr int kChunkSize = 16;
  constexpr int kProbers = 3;

  std::atomic<int> chunks_published{0};
  std::atomic<bool> wrong{false};

  std::thread appender([&] {
    for (int c = 0; c < kChunks; ++c) {
      {
        // One exclusive acquisition covers the whole chunk.
        util::ExclusiveLock lock(store.mu());
        for (int j = 0; j < kChunkSize; ++j) {
          const int i = c * kChunkSize + j;
          store.set_bit_locked(key_of(i), 0, i % 3 == 0);
          store.set_bit_locked(key_of(i), 1, i % 7 == 0);
        }
      }
      chunks_published.store(c + 1, std::memory_order_release);
    }
  });

  std::vector<std::thread> probers;
  for (int r = 0; r < kProbers; ++r) {
    probers.emplace_back([&] {
      const std::vector<int> cols = {0, 1};
      std::vector<std::uint64_t> row;
      for (int round = 0; round < 8; ++round) {
        const int upto =
            chunks_published.load(std::memory_order_acquire) * kChunkSize;
        // One shared acquisition covers the whole probe batch.
        util::SharedLock lock(store.mu());
        for (int i = 0; i < upto; ++i) {
          if (!store.probe_row_locked(key_of(i), cols, row)) {
            wrong.store(true);
            continue;
          }
          if ((row[0] & 1u) != (i % 3 == 0 ? 1u : 0u)) wrong.store(true);
          if (((row[0] >> 1) & 1u) != (i % 7 == 0 ? 1u : 0u)) {
            wrong.store(true);
          }
        }
      }
    });
  }

  std::thread checkpointer([&] {
    for (int round = 0; round < 8; ++round) {
      const int done = chunks_published.load(std::memory_order_acquire);
      StreamCheckpoint ck;
      ck.chunks = static_cast<std::uint64_t>(done);
      ck.tests_streamed = static_cast<std::uint64_t>(done) * kChunkSize;
      store.set_checkpoint(ck);
      const auto back = store.checkpoint();
      if (!back.has_value() || back->tests_streamed != ck.tests_streamed ||
          back->chunks * kChunkSize != back->tests_streamed) {
        wrong.store(true);
      }
      if (round % 3 == 0) {
        EXPECT_TRUE(store.save(path));
      }
    }
  });

  appender.join();
  for (auto& t : probers) t.join();
  checkpointer.join();
  EXPECT_FALSE(wrong.load());
  EXPECT_EQ(store.misses(), 0u);

  ASSERT_TRUE(store.save(path));
  auto reopened = VerdictStore::open(path, small_meta());
  EXPECT_EQ(reopened.outcome, OpenOutcome::Loaded) << reopened.detail;
  EXPECT_EQ(reopened.store->size(),
            static_cast<std::size_t>(kChunks * kChunkSize));
  ASSERT_TRUE(reopened.store->checkpoint().has_value());
  EXPECT_EQ(reopened.store->checkpoint()->chunks,
            static_cast<std::uint64_t>(kChunks));
  scrub(path);
}

TEST(VerdictStore, ProbeRowIsAllOrNothing) {
  VerdictStore store(small_meta());
  store.set_bit(key_of(7), 0, true);
  store.set_bit(key_of(7), 1, false);
  std::vector<std::uint64_t> row;
  const std::vector<int> cols01 = {0, 1};
  const std::vector<int> cols012 = {0, 1, 2};
  EXPECT_TRUE(store.probe_row(key_of(7), cols01, row));
  EXPECT_EQ(row[0] & 1u, 1u);         // col 0 allowed
  EXPECT_EQ((row[0] >> 1) & 1u, 0u);  // col 1 forbidden
  EXPECT_FALSE(store.probe_row(key_of(7), cols012, row));  // col 2 missing
  EXPECT_FALSE(store.probe_row(key_of(8), cols01, row));   // row missing
}

// ---------------------------------------------------------------------------
// Save / open round trips
// ---------------------------------------------------------------------------

TEST(VerdictStore, SaveOpenRoundTripsEntriesAndCheckpoint) {
  const std::string path = temp_path("roundtrip");
  scrub(path);
  VerdictStore store(small_meta());
  for (int i = 0; i < 100; ++i) {
    store.set_bit(key_of(i), i % 3, i % 2 == 0);
  }
  StreamCheckpoint ck;
  ck.chunks = 5;
  ck.tests_streamed = 640;
  ck.novel_tests = 100;
  ck.duplicate_tests = 540;
  ck.seen_keys = {key_of(1), key_of(2)};
  ck.source_cursor = {1, 2, 3};
  ck.sink_state = {9, 8};
  store.set_checkpoint(ck);
  ASSERT_TRUE(store.save(path));

  auto opened = VerdictStore::open(path, small_meta());
  EXPECT_EQ(opened.outcome, OpenOutcome::Loaded) << opened.detail;
  EXPECT_EQ(opened.store->size(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto bit = opened.store->probe_bit(key_of(i), i % 3);
    ASSERT_TRUE(bit.has_value()) << i;
    EXPECT_EQ(*bit, i % 2 == 0) << i;
    EXPECT_FALSE(opened.store->probe_bit(key_of(i), (i + 1) % 3).has_value());
  }
  ASSERT_TRUE(opened.store->checkpoint().has_value());
  EXPECT_EQ(opened.store->checkpoint()->chunks, 5u);
  EXPECT_EQ(opened.store->checkpoint()->seen_keys.size(), 2u);
  EXPECT_EQ(opened.store->checkpoint()->source_cursor,
            (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(opened.store->checkpoint()->sink_state,
            (std::vector<std::uint64_t>{9, 8}));
  scrub(path);
}

TEST(VerdictStore, EqualStatesSerializeToIdenticalBytes) {
  const std::string p1 = temp_path("det1");
  const std::string p2 = temp_path("det2");
  scrub(p1);
  scrub(p2);
  VerdictStore a(small_meta());
  VerdictStore b(small_meta());
  for (int i = 0; i < 50; ++i) {
    a.set_bit(key_of(i), i % 3, true);
    b.set_bit(key_of(i), i % 3, true);
  }
  ASSERT_TRUE(a.save(p1));
  ASSERT_TRUE(b.save(p2));
  EXPECT_EQ(slurp(p1), slurp(p2));
  scrub(p1);
  scrub(p2);
}

TEST(VerdictStore, MissingFileOpensFresh) {
  const std::string path = temp_path("missing");
  scrub(path);
  auto opened = VerdictStore::open(path, small_meta());
  EXPECT_EQ(opened.outcome, OpenOutcome::Fresh);
  EXPECT_EQ(opened.store->size(), 0u);
}

// ---------------------------------------------------------------------------
// Corruption classes
// ---------------------------------------------------------------------------

class StoreCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = temp_path(std::string("corruption_") + info->name());
    scrub(path_);
    VerdictStore store(small_meta());
    for (int i = 0; i < 40; ++i) store.set_bit(key_of(i), i % 3, true);
    ASSERT_TRUE(store.save(path_));
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), 60u);
  }

  void TearDown() override { scrub(path_); }

  /// Opens path_ and expects quarantine: outcome Corrupt, empty store,
  /// original file moved aside to .corrupt.
  void expect_quarantined(const std::string& label) {
    auto opened = VerdictStore::open(path_, small_meta());
    EXPECT_EQ(opened.outcome, OpenOutcome::Corrupt) << label << ": "
                                                    << opened.detail;
    EXPECT_EQ(opened.store->size(), 0u) << label;
    EXPECT_FALSE(RealFs::instance().exists(path_)) << label;
    EXPECT_TRUE(RealFs::instance().exists(path_ + ".corrupt")) << label;
    std::remove((path_ + ".corrupt").c_str());
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(StoreCorruption, TruncationDetected) {
  spit(path_, bytes_.substr(0, bytes_.size() / 2));
  expect_quarantined("half file");
  spit(path_, bytes_.substr(0, 10));  // shorter than the header
  expect_quarantined("10 bytes");
}

TEST_F(StoreCorruption, BitFlipAnywhereDetected) {
  // A flip in the header, in a section tag, and deep in the payload.
  for (const std::size_t offset :
       {std::size_t{12}, std::size_t{48}, bytes_.size() - 9}) {
    std::string damaged = bytes_;
    damaged[offset] = static_cast<char>(damaged[offset] ^ 0x40);
    spit(path_, damaged);
    expect_quarantined("flip at " + std::to_string(offset));
  }
}

TEST_F(StoreCorruption, BadMagicDetected) {
  std::string damaged = bytes_;
  damaged[0] = 'X';
  spit(path_, damaged);
  expect_quarantined("bad magic");
}

TEST_F(StoreCorruption, TrailingGarbageDetected) {
  spit(path_, bytes_ + std::string(16, '\xEE'));
  expect_quarantined("trailing bytes");
}

TEST_F(StoreCorruption, VersionMismatchIgnoredNotQuarantined) {
  std::string other = bytes_;
  other[8] = static_cast<char>(other[8] + 1);  // version u32 after magic
  // The header checksum covers the version, so a raw byte edit reads as
  // corruption; a genuine other-version file is simulated by checking
  // open() against a file whose *checksummed* version differs.  That
  // needs a writer for version N+1, which this build doesn't have — so
  // assert the documented fallback instead: damage to the version byte
  // is caught by the checksum, never silently accepted.
  spit(path_, other);
  expect_quarantined("version byte edit");
}

TEST_F(StoreCorruption, ZooMismatchSelfInvalidatesWithoutQuarantine) {
  StoreMeta other = small_meta();
  other.model_keys.push_back("F:delta");
  auto opened = VerdictStore::open(path_, other);
  EXPECT_EQ(opened.outcome, OpenOutcome::ZooMismatch) << opened.detail;
  EXPECT_EQ(opened.store->size(), 0u);
  // Not bit rot: the original file stays put, no .corrupt appears.
  EXPECT_TRUE(RealFs::instance().exists(path_));
  EXPECT_FALSE(RealFs::instance().exists(path_ + ".corrupt"));
  // And the store self-heals on the next save: the stale file is
  // replaced by one the new zoo loads cleanly.
  opened.store->set_bit(key_of(0), 3, true);
  ASSERT_TRUE(opened.store->save(path_));
  auto reopened = VerdictStore::open(path_, other);
  EXPECT_EQ(reopened.outcome, OpenOutcome::Loaded) << reopened.detail;
  EXPECT_EQ(reopened.store->size(), 1u);
}

TEST_F(StoreCorruption, SchemaMismatchSelfInvalidatesWithoutQuarantine) {
  // Simulate a pre-dependency-generator store: same format version,
  // older space-schema word (header bytes 36..39, 0 in pre-schema
  // files), header checksum fixed up so the file is structurally
  // valid.  Every fingerprint and stream cursor inside such a file was
  // computed against a different enumeration space, so open() must
  // self-invalidate it rather than serve stale verdicts.
  for (const std::uint32_t old_schema : {0u, kSpaceSchemaVersion - 1}) {
    std::string old_file = bytes_;
    std::string word;
    util::append_u32(word, old_schema);
    old_file.replace(36, 4, word);
    std::string sum;
    util::append_key128(sum, util::hash128(old_file.data(), 40));
    old_file.replace(40, 16, sum);
    spit(path_, old_file);

    auto opened = VerdictStore::open(path_, small_meta());
    EXPECT_EQ(opened.outcome, OpenOutcome::SchemaMismatch) << opened.detail;
    EXPECT_EQ(opened.store->size(), 0u);
    // Not bit rot: the stale file stays put, no .corrupt appears.
    EXPECT_TRUE(RealFs::instance().exists(path_));
    EXPECT_FALSE(RealFs::instance().exists(path_ + ".corrupt"));
    // Self-heals: the next save writes the current schema.
    opened.store->set_bit(key_of(0), 0, true);
    ASSERT_TRUE(opened.store->save(path_));
    auto reopened = VerdictStore::open(path_, small_meta());
    EXPECT_EQ(reopened.outcome, OpenOutcome::Loaded) << reopened.detail;
    EXPECT_EQ(reopened.store->size(), 1u);
  }
}

TEST_F(StoreCorruption, LeftoverTempFileIsInertAndOverwritten) {
  // A concurrent writer (or kill mid-save) leaves path.tmp behind; open
  // must ignore it and load the real file, and the next save must
  // replace it without tripping over the leftover.
  spit(path_ + ".tmp", "partial garbage from a killed writer");
  auto opened = VerdictStore::open(path_, small_meta());
  EXPECT_EQ(opened.outcome, OpenOutcome::Loaded) << opened.detail;
  EXPECT_EQ(opened.store->size(), 40u);
  opened.store->set_bit(key_of(100), 0, true);
  ASSERT_TRUE(opened.store->save(path_));
  auto reopened = VerdictStore::open(path_, small_meta());
  EXPECT_EQ(reopened.outcome, OpenOutcome::Loaded);
  EXPECT_EQ(reopened.store->size(), 41u);
  std::remove((path_ + ".tmp").c_str());
}

// ---------------------------------------------------------------------------
// Fault-injected save: every failure leaves the previous file intact.
// ---------------------------------------------------------------------------

class StoreFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-case path: ctest runs each case as its own test, possibly in
    // parallel, so a name shared across cases would collide.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = temp_path(std::string("faults_") + info->name());
    scrub(path_);
    // Commit a known-good generation first.
    VerdictStore store(small_meta());
    store.set_bit(key_of(0), 0, true);
    ASSERT_TRUE(store.save(path_));
    good_bytes_ = slurp(path_);
  }

  void TearDown() override { scrub(path_); }

  /// Saves a bigger second generation through `fs` expecting failure,
  /// then proves the first generation still loads bit for bit.
  void expect_failed_save_keeps_old_file(FaultFs& fs,
                                         const std::string& label) {
    VerdictStore next(small_meta());
    for (int i = 0; i < 64; ++i) next.set_bit(key_of(i), i % 3, true);
    std::string error;
    EXPECT_FALSE(next.save(path_, &fs, &error)) << label;
    EXPECT_FALSE(error.empty()) << label;
    EXPECT_EQ(slurp(path_), good_bytes_) << label;
    auto opened = VerdictStore::open(path_, small_meta());
    EXPECT_EQ(opened.outcome, OpenOutcome::Loaded) << label << ": "
                                                   << opened.detail;
    EXPECT_EQ(opened.store->size(), 1u) << label;
  }

  std::string path_;
  std::string good_bytes_;
};

TEST_F(StoreFaults, TornWriteFailsSaveAndKeepsOldFile) {
  FaultFs fs(RealFs::instance());
  fs.fail_write_after_bytes = 17;  // mid-header: the prefix really lands
  expect_failed_save_keeps_old_file(fs, "torn write");
}

TEST_F(StoreFaults, EnospcStyleStickyBudgetFailsSave) {
  FaultFs fs(RealFs::instance());
  fs.fail_write_after_bytes = 100;
  fs.sticky = true;
  expect_failed_save_keeps_old_file(fs, "sticky byte budget");
}

TEST_F(StoreFaults, FsyncFailureFailsSave) {
  FaultFs fs(RealFs::instance());
  fs.fail_sync_at = 0;
  expect_failed_save_keeps_old_file(fs, "fsync");
}

TEST_F(StoreFaults, CreateFailureFailsSave) {
  FaultFs fs(RealFs::instance());
  fs.fail_create_at = 0;
  expect_failed_save_keeps_old_file(fs, "create");
}

TEST_F(StoreFaults, RenameFailureFailsSave) {
  FaultFs fs(RealFs::instance());
  fs.fail_rename_at = 0;
  expect_failed_save_keeps_old_file(fs, "rename");
}

TEST_F(StoreFaults, ReadFailureOpensFresh) {
  FaultFs fs(RealFs::instance());
  fs.fail_read_at = 0;
  auto opened = VerdictStore::open(path_, small_meta(), &fs);
  EXPECT_EQ(opened.outcome, OpenOutcome::Fresh) << opened.detail;
  EXPECT_EQ(opened.store->size(), 0u);
  // The unreadable file is left alone (it may be fine for others).
  EXPECT_TRUE(RealFs::instance().exists(path_));
}

TEST_F(StoreFaults, SaveRecoversOnceFaultsClear) {
  FaultFs fs(RealFs::instance());
  fs.fail_sync_at = 0;
  VerdictStore next(small_meta());
  next.set_bit(key_of(5), 1, false);
  EXPECT_FALSE(next.save(path_, &fs));
  // Same store, same FaultFs, fault spent: the retry must land.
  ASSERT_TRUE(next.save(path_, &fs));
  auto opened = VerdictStore::open(path_, small_meta());
  EXPECT_EQ(opened.outcome, OpenOutcome::Loaded);
  ASSERT_TRUE(opened.store->probe_bit(key_of(5), 1).has_value());
  EXPECT_FALSE(*opened.store->probe_bit(key_of(5), 1));
}

}  // namespace
}  // namespace mcmc::store
