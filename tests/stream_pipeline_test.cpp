// The parallel streaming pipeline: determinism under any thread count,
// hash-based sharded dedup (with collision audit), producer-overlap
// chunk hand-off, and exception propagation from pool tasks through
// run_batch / run_stream.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_key_set.h"
#include "engine/test_stream.h"
#include "engine/thread_pool.h"
#include "engine/verdict_engine.h"
#include "enumeration/exhaustive.h"
#include "enumeration/suite.h"
#include "explore/distinguish.h"
#include "explore/space.h"
#include "models/zoo.h"
#include "util/hash128.h"

namespace mcmc {
namespace {

// ---------------------------------------------------------------------------
// util::hash128
// ---------------------------------------------------------------------------

TEST(Hash128, DistinguishesAndRepeats) {
  const util::Key128 a = util::hash128(std::string("R0=1;W0<1"));
  const util::Key128 b = util::hash128(std::string("R0=1;W0<2"));
  const util::Key128 c = util::hash128(std::string("R0=1;W0<1"));
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_NE(util::hash128(std::string("")),
            util::hash128(std::string("\0", 1)));
  // Same content split differently by length must differ.
  EXPECT_NE(util::hash128("ab", 2), util::hash128("ab", 1));
}

TEST(Hash128, NoCollisionsAcrossSuiteKeys) {
  // Every canonical key of the with-dep suite hashes uniquely (the keys
  // themselves are unique: the suite is symmetry-reduced).
  std::set<std::pair<std::uint64_t, std::uint64_t>> hashes;
  std::set<std::string> keys;
  for (const auto& test : enumeration::corollary1_suite(true)) {
    const std::string key = litmus::canonical_key(test);
    const util::Key128 h = util::hash128(key);
    keys.insert(key);
    hashes.insert({h.hi, h.lo});
  }
  EXPECT_EQ(hashes.size(), keys.size());
}

TEST(Hash128, ScratchOverloadMatchesAllocatingOverload) {
  litmus::KeyScratch scratch;
  for (const auto& test : enumeration::corollary1_suite(false)) {
    const core::Analysis analysis(test.program());
    EXPECT_EQ(litmus::canonical_key(analysis, test.outcome(), scratch),
              litmus::canonical_key(analysis, test.outcome()));
    std::string structural;
    litmus::structural_key(test, structural);
    EXPECT_EQ(structural, litmus::structural_key(test));
  }
}

// ---------------------------------------------------------------------------
// engine::ShardedKeySet
// ---------------------------------------------------------------------------

TEST(ShardedKeySet, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(engine::ShardedKeySet(1).num_shards(), 1);
  EXPECT_EQ(engine::ShardedKeySet(3).num_shards(), 4);
  EXPECT_EQ(engine::ShardedKeySet(64).num_shards(), 64);
  EXPECT_EQ(engine::ShardedKeySet(0).num_shards(),
            engine::ShardedKeySet::kDefaultShards);
}

TEST(ShardedKeySet, MinIndexOwnsWithinChunkAndEarlierChunksSeal) {
  engine::ShardedKeySet set(4);
  const util::Key128 k1 = util::hash128(std::string("k1"));
  const util::Key128 k2 = util::hash128(std::string("k2"));

  set.begin_chunk();
  EXPECT_FALSE(set.claim(k1, 7));  // claims arrive out of order
  EXPECT_FALSE(set.claim(k1, 3));
  EXPECT_FALSE(set.claim(k1, 5));
  EXPECT_FALSE(set.claim(k2, 1));
  EXPECT_EQ(set.owner(k1), 3u);  // the minimum index wins
  EXPECT_EQ(set.owner(k2), 1u);

  set.begin_chunk();
  EXPECT_TRUE(set.claim(k1, 0));  // sealed by the previous chunk
  EXPECT_TRUE(set.claim(k2, 2));  // ditto
  EXPECT_EQ(set.size(), 2u);
}

TEST(ShardedKeySet, SealedKeysReportDuplicateOfPast) {
  engine::ShardedKeySet set(8);
  const util::Key128 k = util::hash128(std::string("key"));
  set.begin_chunk();
  EXPECT_FALSE(set.claim(k, 0));
  EXPECT_EQ(set.owner(k), 0u);
  set.begin_chunk();
  EXPECT_TRUE(set.claim(k, 4));
  EXPECT_TRUE(set.claim(k, 9));
}

TEST(ShardedKeySet, ParallelClaimsResolveDeterministically) {
  // Claims race from several threads; the resolved owner must be the
  // minimum claiming index, run after run.
  for (int round = 0; round < 20; ++round) {
    engine::ShardedKeySet set(16);
    set.begin_chunk();
    const util::Key128 shared = util::hash128(std::string("shared"));
    std::vector<std::thread> threads;
    std::atomic<int> sealed{0};
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (std::uint32_t i = 0; i < 64; ++i) {
          if (set.claim(shared, i * 4 + static_cast<std::uint32_t>(t))) {
            sealed.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(sealed.load(), 0);
    EXPECT_EQ(set.owner(shared), 0u);
    EXPECT_EQ(set.size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// engine::ChunkPrefetcher
// ---------------------------------------------------------------------------

TEST(ChunkPrefetcher, DeliversSameChunksAsDirectDrain) {
  const auto suite = enumeration::corollary1_suite(true);

  engine::VectorSource direct(suite, 13);
  std::vector<std::vector<std::string>> direct_chunks;
  {
    std::vector<litmus::LitmusTest> chunk;
    bool more = true;
    while (more) {
      chunk.clear();
      more = direct.next_chunk(chunk);
      std::vector<std::string> names;
      for (const auto& t : chunk) names.push_back(t.name());
      direct_chunks.push_back(std::move(names));
    }
  }

  engine::VectorSource wrapped(suite, 13);
  engine::ChunkPrefetcher prefetcher(wrapped, 2);
  std::vector<std::vector<std::string>> prefetched_chunks;
  {
    std::vector<litmus::LitmusTest> chunk;
    bool more = true;
    while (more) {
      chunk.clear();
      more = prefetcher.next_chunk(chunk);
      std::vector<std::string> names;
      for (const auto& t : chunk) names.push_back(t.name());
      prefetched_chunks.push_back(std::move(names));
      EXPECT_GE(prefetcher.last_produce_seconds(), 0.0);
    }
  }
  EXPECT_EQ(prefetched_chunks, direct_chunks);
  // Exhausted: further calls keep returning false without blocking.
  std::vector<litmus::LitmusTest> chunk;
  EXPECT_FALSE(prefetcher.next_chunk(chunk));
  EXPECT_TRUE(chunk.empty());
}

TEST(ChunkPrefetcher, EarlyDestructionDoesNotHang) {
  const auto suite = enumeration::corollary1_suite(true);
  engine::VectorSource wrapped(suite, 1);  // many small chunks, depth 1
  {
    engine::ChunkPrefetcher prefetcher(wrapped, 1);
    std::vector<litmus::LitmusTest> chunk;
    (void)prefetcher.next_chunk(chunk);  // consume one, abandon the rest
  }
  SUCCEED();
}

namespace {
class ThrowingSource final : public engine::TestSource {
 public:
  explicit ThrowingSource(std::vector<litmus::LitmusTest> first)
      : first_(std::move(first)) {}
  bool next_chunk(std::vector<litmus::LitmusTest>& out) override {
    if (!delivered_) {
      delivered_ = true;
      for (auto& t : first_) out.push_back(std::move(t));
      return true;
    }
    throw std::runtime_error("source failed");
  }

 private:
  std::vector<litmus::LitmusTest> first_;
  bool delivered_ = false;
};
}  // namespace

TEST(ChunkPrefetcher, ProducerExceptionSurfacesAfterEarlierChunks) {
  auto suite = enumeration::corollary1_suite(false);
  suite.erase(suite.begin() + 4, suite.end());
  ThrowingSource source(suite);
  engine::ChunkPrefetcher prefetcher(source, 2);
  std::vector<litmus::LitmusTest> chunk;
  EXPECT_TRUE(prefetcher.next_chunk(chunk));  // the good chunk arrives
  EXPECT_EQ(chunk.size(), 4u);
  chunk.clear();
  EXPECT_THROW(prefetcher.next_chunk(chunk), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Exception propagation: pool -> run_batch -> run_stream
// ---------------------------------------------------------------------------

TEST(PoolExceptions, FirstTaskExceptionRethrownAndPoolReusable) {
  engine::WorkStealingPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(256,
                        [](std::size_t i) {
                          if (i == 97) throw std::runtime_error("task 97");
                        }),
      std::runtime_error);

  // The pool survives a poisoned batch: the next batch runs every task.
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(512, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 512u);
}

TEST(PoolExceptions, FailFastSkipsWorkAfterFailure) {
  // A single-slot pool pops its own deque LIFO, so index 99 executes
  // first; throwing there must abandon the remaining 99 tasks (popped
  // and counted, never run) instead of grinding through them.
  engine::WorkStealingPool pool(1);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 99) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 1u);
}

core::MemoryModel throwing_model() {
  return core::MemoryModel(
      "throwing",
      core::Formula::custom("Boom", [](const core::Analysis&, core::EventId,
                                       core::EventId) -> bool {
        throw std::runtime_error("predicate exploded");
      }));
}

TEST(EngineExceptions, ThrowingPredicateSurfacesFromRunBatch) {
  for (const int threads : {1, 4}) {
    engine::EngineOptions options;
    options.num_threads = threads;
    engine::VerdictEngine eng(options);
    const auto suite = enumeration::corollary1_suite(false);
    const std::vector<core::MemoryModel> models = {throwing_model()};
    std::vector<engine::VerdictRequest> requests;
    for (int t = 0; t < static_cast<int>(suite.size()); ++t) {
      requests.push_back({0, t});
    }
    EXPECT_THROW((void)eng.run_batch(models, suite, requests),
                 std::runtime_error)
        << "threads=" << threads;

    // The engine (and its pool) must remain usable afterwards.
    const auto matrix = eng.run_matrix({models::sc(), models::tso()}, suite);
    EXPECT_EQ(matrix.rows(), 2);
    EXPECT_EQ(matrix.cols(), static_cast<int>(suite.size()));
  }
}

TEST(EngineExceptions, ThrowingPredicateSurfacesFromRunStream) {
  for (const int threads : {1, 4}) {
    engine::EngineOptions options;
    options.num_threads = threads;
    engine::VerdictEngine eng(options);
    engine::VectorSource source(enumeration::corollary1_suite(false), 16);
    const std::vector<core::MemoryModel> models = {throwing_model(),
                                                   models::sc()};
    EXPECT_THROW((void)eng.run_stream(models, source, nullptr),
                 std::runtime_error)
        << "threads=" << threads;

    engine::VectorSource good(enumeration::corollary1_suite(false), 16);
    const auto stats = eng.run_stream({models::sc()}, good, nullptr);
    EXPECT_EQ(stats.tests_streamed,
              enumeration::corollary1_suite(false).size());
  }
}

// ---------------------------------------------------------------------------
// Determinism: identical streamed results under any thread count
// ---------------------------------------------------------------------------

struct StreamCapture {
  std::vector<std::string> novel_names;
  std::vector<char> verdict_bits;
  std::vector<std::size_t> chunk_streamed;
  std::vector<std::size_t> chunk_novel;
  std::vector<std::size_t> chunk_duplicates;
};

StreamCapture run_slice_stream(int threads, bool overlap, bool audit,
                               int shards) {
  enumeration::ExhaustiveOptions options;
  options.bounds.max_accesses_per_thread = 2;
  options.chunk_size = 512;
  enumeration::ExhaustiveStream stream(options);

  engine::EngineOptions engine_options;
  engine_options.num_threads = threads;
  engine::VerdictEngine eng(engine_options);

  engine::StreamOptions stream_options;
  stream_options.overlap_production = overlap;
  stream_options.audit_dedup_keys = audit;
  stream_options.dedup_shards = shards;

  const std::vector<core::MemoryModel> models = {
      explore::ModelChoices{4, 4, 4, 4}.to_model(),
      explore::ModelChoices{1, 0, 1, 0}.to_model()};

  StreamCapture capture;
  (void)eng.run_stream(
      models, stream,
      [&](const std::vector<litmus::LitmusTest>& novel,
          const engine::BitMatrix& verdicts,
          const engine::StreamChunkStats& cs) {
        for (std::size_t i = 0; i < novel.size(); ++i) {
          capture.novel_names.push_back(novel[i].name());
          for (int m = 0; m < verdicts.rows(); ++m) {
            capture.verdict_bits.push_back(
                verdicts.get(m, static_cast<int>(i)) ? 1 : 0);
          }
        }
        capture.chunk_streamed.push_back(cs.streamed);
        capture.chunk_novel.push_back(cs.novel);
        capture.chunk_duplicates.push_back(cs.duplicates);
      },
      stream_options);
  return capture;
}

TEST(StreamDeterminism, TwoAccessSliceBitForBitAcrossThreadCounts) {
  // The serial reference: 1 thread, no producer overlap, audit on (the
  // collision audit must hold on the whole slice).
  const StreamCapture serial =
      run_slice_stream(1, /*overlap=*/false, /*audit=*/true, /*shards=*/0);
  ASSERT_FALSE(serial.novel_names.empty());

  // Parallel runs with different thread counts, shard counts, overlap
  // on: every delivered name, verdict bit, and chunk stat identical.
  for (const int threads : {2, 4}) {
    const StreamCapture parallel =
        run_slice_stream(threads, /*overlap=*/true, /*audit=*/true,
                         threads == 2 ? 8 : 0);
    EXPECT_EQ(parallel.novel_names, serial.novel_names) << threads;
    EXPECT_EQ(parallel.verdict_bits, serial.verdict_bits) << threads;
    EXPECT_EQ(parallel.chunk_streamed, serial.chunk_streamed) << threads;
    EXPECT_EQ(parallel.chunk_novel, serial.chunk_novel) << threads;
    EXPECT_EQ(parallel.chunk_duplicates, serial.chunk_duplicates) << threads;
  }
}

TEST(StreamDeterminism, HarnessMatrixIdenticalAcrossThreadCounts) {
  // The full Theorem harness (extremes prefilter + 90-model sweep) over
  // a bounded slice: 4 threads must reproduce the 1-thread matrix bit
  // for bit.
  enumeration::ExhaustiveOptions slice;
  slice.bounds.max_accesses_per_thread = 2;
  slice.bounds.num_locations = 2;
  slice.chunk_size = 256;

  std::vector<core::MemoryModel> models;
  for (const auto& c : explore::model_space(true)) {
    models.push_back(c.to_model());
  }

  auto run = [&](int threads) {
    engine::EngineOptions options;
    options.num_threads = threads;
    engine::VerdictEngine eng(options);
    enumeration::ExhaustiveStream stream(slice);
    explore::TheoremHarnessReport report;
    const auto matrix = explore::distinguishability_streamed(
        eng, models, stream, explore::TheoremHarnessOptions{}, &report);
    return std::make_pair(matrix, report.stream.novel_tests);
  };

  const auto [serial_matrix, serial_novel] = run(1);
  const auto [parallel_matrix, parallel_novel] = run(4);
  EXPECT_TRUE(serial_matrix == parallel_matrix);
  EXPECT_EQ(serial_novel, parallel_novel);
  EXPECT_GT(serial_matrix.distinguished_pairs(), 0);
}

}  // namespace
}  // namespace mcmc
