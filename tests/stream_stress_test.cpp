// Contention stress for the streaming pipeline, sized to stay tier-1
// fast but to maximize cross-thread traffic: tiny chunks (so the
// producer hand-off, the sharded claim phase, and the merged
// prepare+evaluate pass all cycle hundreds of times), duplicate-heavy
// corpora (so cross-chunk sealing and within-chunk min-index races both
// fire constantly), and more threads than this machine likely has
// cores.  CI runs this under ThreadSanitizer (the `tsan` job); the
// assertions here pin determinism, the TSan run pins data-race freedom.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/test_stream.h"
#include "engine/verdict_engine.h"
#include "enumeration/exhaustive.h"
#include "enumeration/suite.h"
#include "explore/space.h"
#include "models/zoo.h"

namespace mcmc {
namespace {

// A duplicate-rich corpus: several interleaved copies of the suite so
// almost every chunk mixes novel tests with duplicates of earlier (and
// same-chunk) ones.
std::vector<litmus::LitmusTest> duplicate_heavy_corpus(int copies) {
  const auto suite = enumeration::corollary1_suite(true);
  std::vector<litmus::LitmusTest> corpus;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (int c = 0; c < copies; ++c) {
      corpus.push_back(suite[i]);
    }
  }
  return corpus;
}

struct Folded {
  std::vector<std::string> names;
  std::vector<char> bits;
  std::size_t novel = 0;
  std::size_t duplicates = 0;
};

Folded run_once(const std::vector<litmus::LitmusTest>& corpus, int threads,
                std::size_t chunk_size, int shards) {
  engine::EngineOptions options;
  options.num_threads = threads;
  engine::VerdictEngine eng(options);

  engine::StreamOptions stream_options;
  stream_options.dedup_shards = shards;

  const std::vector<core::MemoryModel> models = {
      models::sc(), models::tso(), models::pso(),
      explore::ModelChoices{2, 1, 3, 0}.to_model()};

  engine::VectorSource source(corpus, chunk_size);
  Folded folded;
  const auto stats = eng.run_stream(
      models, source,
      [&](const std::vector<litmus::LitmusTest>& novel,
          const engine::BitMatrix& verdicts, const engine::StreamChunkStats&) {
        for (std::size_t i = 0; i < novel.size(); ++i) {
          folded.names.push_back(novel[i].name());
          for (int m = 0; m < verdicts.rows(); ++m) {
            folded.bits.push_back(verdicts.get(m, static_cast<int>(i)) ? 1 : 0);
          }
        }
      },
      stream_options);
  folded.novel = stats.novel_tests;
  folded.duplicates = stats.duplicate_tests;
  return folded;
}

TEST(StreamStress, TinyChunksManyThreadsDuplicateHeavy) {
  const auto corpus = duplicate_heavy_corpus(5);
  const auto reference = run_once(corpus, 1, 7, 1);
  ASSERT_GT(reference.novel, 0u);
  ASSERT_GT(reference.duplicates, reference.novel);  // 5 copies: ~80% dups

  for (int round = 0; round < 3; ++round) {
    for (const int threads : {4, 8}) {
      const auto contended = run_once(corpus, threads, 7, 4);
      EXPECT_EQ(contended.names, reference.names)
          << "threads=" << threads << " round=" << round;
      EXPECT_EQ(contended.bits, reference.bits)
          << "threads=" << threads << " round=" << round;
      EXPECT_EQ(contended.novel, reference.novel);
      EXPECT_EQ(contended.duplicates, reference.duplicates);
    }
  }
}

TEST(StreamStress, ExhaustiveSliceTinyChunksUnderContention) {
  // The real generator under the same pressure: a 2-location 2-access
  // slice in 64-test chunks, 8 threads on (likely) fewer cores.
  enumeration::ExhaustiveOptions slice;
  slice.bounds.max_accesses_per_thread = 2;
  slice.bounds.num_locations = 2;
  slice.chunk_size = 64;

  auto run = [&](int threads) {
    engine::EngineOptions options;
    options.num_threads = threads;
    engine::VerdictEngine eng(options);
    enumeration::ExhaustiveStream stream(slice);
    std::vector<std::string> names;
    const auto stats = eng.run_stream(
        {models::sc(), models::rmo()}, stream,
        [&](const std::vector<litmus::LitmusTest>& novel,
            const engine::BitMatrix&, const engine::StreamChunkStats&) {
          for (const auto& t : novel) names.push_back(t.name());
        });
    return std::make_pair(std::move(names), stats.novel_tests);
  };

  const auto [serial_names, serial_novel] = run(1);
  const auto [contended_names, contended_novel] = run(8);
  EXPECT_EQ(contended_names, serial_names);
  EXPECT_EQ(contended_novel, serial_novel);
  EXPECT_GT(serial_novel, 100u);
}

}  // namespace
}  // namespace mcmc
