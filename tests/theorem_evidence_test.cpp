// Empirical evidence for the paper's theorems, beyond the catalog:
//
//   * Theorem 1 (suite completeness): models that agree on the bounded
//     template suite also agree on randomized larger tests,
//   * monotonicity: strengthening the must-not-reorder function never
//     adds behaviors,
//   * per-location coherence: on single-location programs, models whose
//     read-read digit orders same-address reads are indistinguishable
//     from SC.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "enumeration/naive.h"
#include "enumeration/suite.h"
#include "explore/matrix.h"
#include "explore/space.h"
#include "models/zoo.h"
#include "util/rng.h"

namespace mcmc {
namespace {

using core::Analysis;
using explore::ModelChoices;

// ---------------------------------------------------------------------------
// Theorem 1 evidence: suite-equivalent models agree on random tests.
// ---------------------------------------------------------------------------

TEST(TheoremEvidence, SuiteEquivalentModelsAgreeOnRandomTests) {
  // The eight equivalent pairs found on the 124-test suite must agree on
  // randomized naive tests too (the theorem says: on ALL tests).
  const std::pair<ModelChoices, ModelChoices> pairs[] = {
      {{1, 0, 1, 0}, {1, 1, 1, 0}}, {{1, 0, 1, 1}, {1, 1, 1, 1}},
      {{4, 0, 1, 0}, {4, 1, 1, 0}}, {{4, 0, 1, 1}, {4, 1, 1, 1}},
      {{4, 0, 3, 0}, {4, 1, 3, 0}}, {{4, 0, 3, 1}, {4, 1, 3, 1}},
      {{4, 0, 4, 0}, {4, 1, 4, 0}}, {{4, 0, 4, 1}, {4, 1, 4, 1}},
  };
  enumeration::NaiveOptions options;
  const auto tests = enumeration::sample_naive_tests(options, 150, 31337);
  for (const auto& [ca, cb] : pairs) {
    const auto ma = ca.to_model();
    const auto mb = cb.to_model();
    for (const auto& t : tests) {
      const Analysis an(t.program());
      EXPECT_EQ(core::is_allowed(an, ma, t.outcome()),
                core::is_allowed(an, mb, t.outcome()))
          << ca.name() << " vs " << cb.name() << " on " << t.name();
    }
  }
}

TEST(TheoremEvidence, SuiteDistinctionsImplyConcreteWitnesses) {
  // Conversely: any two non-equivalent models have a witness within the
  // Theorem-1 bounds (2 threads, <= 6 accesses) -- true by construction
  // of the suite, asserted here over a sample of model pairs.
  const auto space = explore::model_space(true);
  const auto suite = enumeration::corollary1_suite(true);
  util::Rng rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    const auto& a = space[rng.below(space.size())];
    const auto& b = space[rng.below(space.size())];
    if (a == b) continue;
    const auto ma = a.to_model();
    const auto mb = b.to_model();
    for (const auto& t : suite) {
      const Analysis an(t.program());
      if (core::is_allowed(an, ma, t.outcome()) !=
          core::is_allowed(an, mb, t.outcome())) {
        EXPECT_LE(t.program().num_threads(), 2);
        EXPECT_LE(t.program().num_memory_accesses(), 6);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Monotonicity: more must-not-reorder implies fewer behaviors.
// ---------------------------------------------------------------------------

core::Formula random_positive_formula(util::Rng& rng, int depth) {
  using namespace core;
  if (depth == 0 || rng.chance(2, 5)) {
    switch (rng.below(9)) {
      case 0: return read_x();
      case 1: return read_y();
      case 2: return write_x();
      case 3: return write_y();
      case 4: return fence_x();
      case 5: return fence_y();
      case 6: return same_addr();
      case 7: return data_dep();
      default: return f_false();
    }
  }
  const auto a = random_positive_formula(rng, depth - 1);
  const auto b = random_positive_formula(rng, depth - 1);
  return rng.chance(1, 2) ? (a && b) : (a || b);
}

class MonotonicitySweep : public ::testing::TestWithParam<int> {};

TEST_P(MonotonicitySweep, StrongerFormulaAllowsSubset) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 5);
  const auto f1 = random_positive_formula(rng, 3);
  const auto f2 = f1 || random_positive_formula(rng, 3);  // implies more order
  const core::MemoryModel weaker("weaker", f1);
  const core::MemoryModel stronger("stronger", f2);
  enumeration::NaiveOptions options;
  options.num_locations = 2;
  const auto tests = enumeration::sample_naive_tests(
      options, 40, static_cast<std::uint64_t>(GetParam()) + 1);
  for (const auto& t : tests) {
    const Analysis an(t.program());
    const bool allowed_strong = core::is_allowed(an, stronger, t.outcome());
    if (allowed_strong) {
      EXPECT_TRUE(core::is_allowed(an, weaker, t.outcome()))
          << "F1 = " << f1.to_string() << "\nF2 = " << f2.to_string()
          << "\n" << t.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicitySweep, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Per-location coherence.
// ---------------------------------------------------------------------------

class SingleLocationSweep : public ::testing::TestWithParam<int> {};

TEST_P(SingleLocationSweep, CoherentModelsAreScOnOneLocation) {
  // For models that order same-address reads (rr in {1,3,4}) every
  // single-location program behaves sequentially consistently: the WR
  // digit (forwarding) and all different-address relaxations are
  // invisible with one location, and same-address write-write /
  // read-write reordering is excluded from the space outright.
  enumeration::NaiveOptions options;
  options.num_locations = 1;
  const auto tests = enumeration::sample_naive_tests(
      options, 25, static_cast<std::uint64_t>(GetParam()) * 13 + 3);
  const auto sc = models::sc();
  for (const auto& choices : explore::model_space(true)) {
    if (choices.rr != 1 && choices.rr != 3 && choices.rr != 4) continue;
    const auto model = choices.to_model();
    for (const auto& t : tests) {
      const Analysis an(t.program());
      EXPECT_EQ(core::is_allowed(an, model, t.outcome()),
                core::is_allowed(an, sc, t.outcome()))
          << choices.name() << " on " << t.name() << "\n"
          << t.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleLocationSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace mcmc
