// Tests for the utility layer: contracts, strings, tables, DOT, RNG.
#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/dot.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace mcmc::util {
namespace {

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MCMC_REQUIRE(1 == 2), std::invalid_argument);
  EXPECT_NO_THROW(MCMC_REQUIRE(1 == 1));
  try {
    MCMC_REQUIRE_MSG(false, "extra context");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"), std::string::npos);
  }
}

TEST(Check, CheckThrowsLogicError) {
  EXPECT_THROW(MCMC_CHECK(false), std::logic_error);
  EXPECT_THROW(MCMC_UNREACHABLE("boom"), std::logic_error);
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split_ws("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, JoinTrimPad) {
  EXPECT_EQ(join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcde", 3), "abcde");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW((void)parse_int("4x"), std::invalid_argument);
  EXPECT_THROW((void)parse_int(""), std::invalid_argument);
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("thread:", "thread"));
  EXPECT_FALSE(starts_with("th", "thread"));
}

TEST(Table, AlignsColumns) {
  Table t({"a", "bbbb"});
  t.add_row({"xxxx", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a    | bbbb |"), std::string::npos);
  EXPECT_NE(s.find("| xxxx | y    |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Dot, EscapesAndRenders) {
  DotGraph g("g");
  g.add_node("n0", "label \"quoted\"");
  g.add_edge("n0", "n1", "e");
  const std::string s = g.to_string();
  EXPECT_NE(s.find("digraph \"g\""), std::string::npos);
  EXPECT_NE(s.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(s.find("\"n0\" -> \"n1\" [label=\"e\"]"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) {
    const auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(11);
  EXPECT_FALSE(rng.chance(0, 10));
  EXPECT_TRUE(rng.chance(10, 10));
}

TEST(Timer, MeasuresForwardTime) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace mcmc::util
