// Closed-form verdict predictions.
//
// For every catalog test the allowed/forbidden verdict under a choice
// model M[ww][wr][rw][rr] can be derived by hand from the conflict-cycle
// structure (which program-order edges exist for which digits, plus the
// forced coherence / read-from / from-read edges).  This suite pins those
// derivations against the checker for all 90 models -- about 1400
// verdicts -- so any regression in the axioms, the formula evaluation, or
// the engines shows up as a precise digit-level discrepancy.
//
// Derivations (see DESIGN.md section 2 for the edge notation):
//
//   TestA : forbidden iff wr=4 or (wr=1 and rr=4)
//   L1    : forbidden iff ww=4
//   L2    : forbidden iff rr in {1,3,4}
//   L3    : forbidden iff rr=4
//   L4    : forbidden iff rr in {2,3,4}
//   L5    : forbidden iff rw=4
//   L6    : forbidden iff rw in {3,4}
//   L7/SB : forbidden iff wr=4
//   L8    : forbidden iff wr=4 or (wr=1 and rr in {2,3,4})
//   L9    : forbidden iff rw in {3,4} and (ww=4 or wr in {1,4})
//   MP    : forbidden iff ww=4 and rr=4
//   LB    : forbidden iff rw=4
//   CoRR  : forbidden iff rr in {1,3,4}
//   2+2W  : forbidden iff ww=4
//   IRIW  : forbidden always (store atomicity + fences)
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/checker.h"
#include "explore/space.h"
#include "litmus/catalog.h"

namespace mcmc {
namespace {

using explore::ModelChoices;

bool in(int digit, std::initializer_list<int> set) {
  for (const int d : set) {
    if (digit == d) return true;
  }
  return false;
}

struct Prediction {
  litmus::LitmusTest test;
  bool (*forbidden)(const ModelChoices&);
};

std::vector<Prediction> predictions() {
  std::vector<Prediction> out;
  out.push_back({litmus::test_a(), [](const ModelChoices& m) {
                   return m.wr == 4 || (m.wr == 1 && m.rr == 4);
                 }});
  out.push_back({litmus::l1(),
                 [](const ModelChoices& m) { return m.ww == 4; }});
  out.push_back({litmus::l2(), [](const ModelChoices& m) {
                   return in(m.rr, {1, 3, 4});
                 }});
  out.push_back({litmus::l3(),
                 [](const ModelChoices& m) { return m.rr == 4; }});
  out.push_back({litmus::l4(), [](const ModelChoices& m) {
                   return in(m.rr, {2, 3, 4});
                 }});
  out.push_back({litmus::l5(),
                 [](const ModelChoices& m) { return m.rw == 4; }});
  out.push_back({litmus::l6(), [](const ModelChoices& m) {
                   return in(m.rw, {3, 4});
                 }});
  out.push_back({litmus::l7(),
                 [](const ModelChoices& m) { return m.wr == 4; }});
  out.push_back({litmus::l8(), [](const ModelChoices& m) {
                   return m.wr == 4 || (m.wr == 1 && in(m.rr, {2, 3, 4}));
                 }});
  out.push_back({litmus::l9(), [](const ModelChoices& m) {
                   return in(m.rw, {3, 4}) &&
                          (m.ww == 4 || in(m.wr, {1, 4}));
                 }});
  out.push_back({litmus::message_passing(), [](const ModelChoices& m) {
                   return m.ww == 4 && m.rr == 4;
                 }});
  out.push_back({litmus::load_buffering(),
                 [](const ModelChoices& m) { return m.rw == 4; }});
  out.push_back({litmus::corr(), [](const ModelChoices& m) {
                   return in(m.rr, {1, 3, 4});
                 }});
  out.push_back({litmus::two_plus_two_w(),
                 [](const ModelChoices& m) { return m.ww == 4; }});
  out.push_back({litmus::iriw(), [](const ModelChoices&) { return true; }});
  return out;
}

class AllNinetyModels : public ::testing::TestWithParam<int> {};

TEST_P(AllNinetyModels, CheckerMatchesClosedFormPredictions) {
  const auto space = explore::model_space(true);
  const auto& choices = space[static_cast<std::size_t>(GetParam())];
  const auto model = choices.to_model();
  for (const auto& p : predictions()) {
    const core::Analysis an(p.test.program());
    const bool predicted_forbidden = p.forbidden(choices);
    const bool allowed = core::is_allowed(an, model, p.test.outcome());
    EXPECT_EQ(allowed, !predicted_forbidden)
        << p.test.name() << " under " << choices.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Space, AllNinetyModels, ::testing::Range(0, 90),
    [](const ::testing::TestParamInfo<int>& param_info) {
      return explore::model_space(true)[static_cast<std::size_t>(
                 param_info.param)]
          .name();
    });

}  // namespace
}  // namespace mcmc
