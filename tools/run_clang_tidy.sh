#!/usr/bin/env bash
# Runs clang-tidy over every translation unit in src/ using the checks
# in .clang-tidy, failing on any finding (WarningsAsErrors: '*').
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# Needs a compile_commands.json; configures one into the build dir if
# missing.  CI runs this as the clang-tidy job; locally it needs
# clang-tidy on PATH (any recent LLVM).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tidy}"

tidy="$(command -v clang-tidy || true)"
if [[ -z "${tidy}" ]]; then
  for ver in 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-${ver}" >/dev/null 2>&1; then
      tidy="clang-tidy-${ver}"
      break
    fi
  done
fi
if [[ -z "${tidy}" ]]; then
  echo "error: clang-tidy not found on PATH" >&2
  exit 2
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Only first-party sources: fetched third-party code (googletest) is in
# the compile database but is not ours to lint.
mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
echo "clang-tidy (${tidy}) over ${#sources[@]} files in src/"

status=0
for f in "${sources[@]}"; do
  if ! "${tidy}" -p "${build_dir}" --quiet "${f}"; then
    status=1
  fi
done

if [[ "${status}" -ne 0 ]]; then
  echo "clang-tidy: findings above must be fixed (gate is zero findings)" >&2
fi
exit "${status}"
